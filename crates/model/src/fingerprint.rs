//! Stable 64-bit fingerprinting for state interning.
//!
//! The explicit-state model checker in `anonreg-sim` deduplicates billions
//! of candidate configurations. Rust's default [`std::collections::HashMap`]
//! hasher is randomly keyed per process, which is exactly right for
//! DoS-resistant maps but wrong for *interning*: the parallel explorer
//! shards its dedup table by state hash and exchanges `(id, fingerprint)`
//! pairs between workers, so every thread must compute the **same**
//! fingerprint for the same configuration, and a run must be reproducible
//! from its recorded fingerprints.
//!
//! [`Fnv64`] is the classic FNV-1a 64-bit hash as a [`Hasher`], with the
//! multi-byte integer writes pinned to little-endian so fingerprints are
//! stable across platforms as well as across threads. It is *not* collision
//! resistant against adversarial inputs — interners must confirm candidate
//! matches with a full equality check, which is what the explorer's sharded
//! table does.

use std::hash::{Hash, Hasher};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// The FNV-1a 64-bit hash as a deterministic [`Hasher`].
///
/// Unlike [`std::collections::hash_map::RandomState`], two `Fnv64` values
/// fed the same bytes always agree — across instances, threads, processes
/// and platforms (integer writes are little-endian).
#[derive(Clone, Copy, Debug)]
pub struct Fnv64 {
    state: u64,
}

impl Fnv64 {
    /// Creates a hasher at the standard FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        // FNV-1a is inherently byte-serial, but splitting the loop into
        // fixed four-byte batches lets the compiler keep the state in a
        // register and unroll the multiply chain; the output is byte-exact
        // with the naive loop (checked against the reference vectors).
        let mut state = self.state;
        let mut chunks = bytes.chunks_exact(4);
        for chunk in &mut chunks {
            state = (state ^ u64::from(chunk[0])).wrapping_mul(FNV_PRIME);
            state = (state ^ u64::from(chunk[1])).wrapping_mul(FNV_PRIME);
            state = (state ^ u64::from(chunk[2])).wrapping_mul(FNV_PRIME);
            state = (state ^ u64::from(chunk[3])).wrapping_mul(FNV_PRIME);
        }
        for &b in chunks.remainder() {
            state = (state ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        self.state = state;
    }

    fn write_u8(&mut self, i: u8) {
        self.write(&[i]);
    }

    fn write_u16(&mut self, i: u16) {
        self.write(&i.to_le_bytes());
    }

    fn write_u32(&mut self, i: u32) {
        self.write(&i.to_le_bytes());
    }

    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }

    fn write_u128(&mut self, i: u128) {
        self.write(&i.to_le_bytes());
    }

    fn write_usize(&mut self, i: usize) {
        // Hash as u64 so 32- and 64-bit builds agree.
        self.write_u64(i as u64);
    }

    fn write_i8(&mut self, i: i8) {
        self.write_u8(i as u8);
    }

    fn write_i16(&mut self, i: i16) {
        self.write_u16(i as u16);
    }

    fn write_i32(&mut self, i: i32) {
        self.write_u32(i as u32);
    }

    fn write_i64(&mut self, i: i64) {
        self.write_u64(i as u64);
    }

    fn write_i128(&mut self, i: i128) {
        self.write_u128(i as u128);
    }

    fn write_isize(&mut self, i: isize) {
        self.write_u64(i as u64);
    }
}

/// The stable fingerprint of any hashable value: `value` fed through a
/// fresh [`Fnv64`].
#[must_use]
pub fn fingerprint_of<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = Fnv64::new();
    value.hash(&mut hasher);
    hasher.finish()
}

/// A 128-bit FNV-1a fingerprint split into two independent 64-bit halves.
///
/// The lock-free dedup table in `anonreg-sim` keys probe sequences on
/// `lo` and stores (part of) `hi` alongside the interned id, so a match
/// on both halves carries ~96–128 bits of discrimination before the full
/// canonical-code comparison. At 10⁸ interned states the birthday bound
/// for a 128-bit hash puts the collision probability below 2⁻⁷⁰, which is
/// what lets the spill tier fall back to fingerprint-only matching when a
/// code is neither cached nor yet flushed to disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Fp128 {
    /// Low half: selects the probe sequence in open-addressing tables.
    pub lo: u64,
    /// High half: verified in-slot before any code comparison.
    pub hi: u64,
}

/// Hashes `bytes` with FNV-1a 128 (standard offset basis and prime) and
/// returns the two 64-bit halves.
///
/// Like [`Fnv64`], the loop is batched four bytes at a time without
/// changing the byte-serial result.
#[must_use]
pub fn fp128(bytes: &[u8]) -> Fp128 {
    let mut state = FNV128_OFFSET;
    let mut chunks = bytes.chunks_exact(4);
    for chunk in &mut chunks {
        state = (state ^ u128::from(chunk[0])).wrapping_mul(FNV128_PRIME);
        state = (state ^ u128::from(chunk[1])).wrapping_mul(FNV128_PRIME);
        state = (state ^ u128::from(chunk[2])).wrapping_mul(FNV128_PRIME);
        state = (state ^ u128::from(chunk[3])).wrapping_mul(FNV128_PRIME);
    }
    for &b in chunks.remainder() {
        state = (state ^ u128::from(b)).wrapping_mul(FNV128_PRIME);
    }
    Fp128 {
        lo: state as u64,
        hi: (state >> 64) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let a = fingerprint_of(&(1u64, vec![2u8, 3], "state"));
        let b = fingerprint_of(&(1u64, vec![2u8, 3], "state"));
        assert_eq!(a, b);
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(fingerprint_of(&1u64), fingerprint_of(&2u64));
        assert_ne!(fingerprint_of(&[1u8, 2]), fingerprint_of(&[2u8, 1]));
    }

    #[test]
    fn matches_reference_vectors() {
        // FNV-1a 64 reference values for raw byte input.
        let mut h = Fnv64::new();
        h.write(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv64::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn batched_write_matches_serial_fnv() {
        // Lengths straddling the 4-byte batch boundary must agree with a
        // plain byte-at-a-time FNV-1a evaluation.
        for len in 0..32usize {
            let bytes: Vec<u8> = (0..len as u8).map(|b| b.wrapping_mul(37)).collect();
            let mut serial = FNV_OFFSET;
            for &b in &bytes {
                serial = (serial ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            }
            let mut h = Fnv64::new();
            h.write(&bytes);
            assert_eq!(h.finish(), serial, "length {len}");
        }
    }

    #[test]
    fn fp128_matches_reference_vectors() {
        // FNV-1a 128 reference values (lo = low 64 bits, hi = high 64).
        let empty = fp128(b"");
        assert_eq!(empty.hi, 0x6c62_272e_07bb_0142);
        assert_eq!(empty.lo, 0x62b8_2175_6295_c58d);
        // "a": 0xd228cb696f1a8caf78912b704e4a8964
        let a = fp128(b"a");
        assert_eq!(a.hi, 0xd228_cb69_6f1a_8caf);
        assert_eq!(a.lo, 0x7891_2b70_4e4a_8964);
    }

    #[test]
    fn fp128_batches_match_serial() {
        for len in 0..32usize {
            let bytes: Vec<u8> = (0..len as u8).map(|b| b.wrapping_mul(91)).collect();
            let mut serial = FNV128_OFFSET;
            for &b in &bytes {
                serial = (serial ^ u128::from(b)).wrapping_mul(FNV128_PRIME);
            }
            let got = fp128(&bytes);
            assert_eq!(got.lo, serial as u64, "length {len}");
            assert_eq!(got.hi, (serial >> 64) as u64, "length {len}");
        }
    }

    #[test]
    fn fp128_halves_are_independent_discriminators() {
        let a = fp128(b"configuration-a");
        let b = fp128(b"configuration-b");
        assert_ne!(a, b);
        assert_ne!(a.lo, b.lo);
        assert_ne!(a.hi, b.hi);
    }

    #[test]
    fn integer_writes_are_width_stable() {
        // usize hashes like u64, so fingerprints agree across pointer widths.
        let mut a = Fnv64::new();
        a.write_usize(7);
        let mut b = Fnv64::new();
        b.write_u64(7);
        assert_eq!(a.finish(), b.finish());
    }
}
