//! The generic covering-attack builder (§6.1 / §6.2 skeleton, steps 1–3).

use std::fmt;
use std::hash::Hash;

use anonreg_model::{Machine, Step, View};
use anonreg_obs::{Metric, NoopProbe, Probe, Span};
use anonreg_sim::{SimError, Simulation, StepOutcome};

/// Error returned when a covering attack cannot be assembled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoverError {
    /// The solo victim never reached its milestone within the step budget.
    VictimDidNotFinish {
        /// The exhausted budget.
        budget: usize,
    },
    /// The solo victim reached its milestone without writing — possible
    /// only for broken algorithms (the paper shows every correct algorithm
    /// must write before its milestone).
    EmptyWriteSet,
    /// A coverer halted before issuing its first write.
    CovererNeverWrites {
        /// Index of the coverer within `P`.
        index: usize,
    },
    /// A coverer's first write did not land on its assigned register even
    /// after view adjustment (its first-write register depends on reads in
    /// a way the rotation heuristic cannot compensate).
    CoverMismatch {
        /// Index of the coverer within `P`.
        index: usize,
        /// The register it was supposed to cover.
        wanted: usize,
        /// The register it actually covers.
        got: usize,
    },
    /// An underlying simulation error.
    Sim(SimError),
}

impl fmt::Display for CoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoverError::VictimDidNotFinish { budget } => {
                write!(
                    f,
                    "solo victim did not reach its milestone in {budget} steps"
                )
            }
            CoverError::EmptyWriteSet => {
                write!(f, "solo victim reached its milestone without writing")
            }
            CoverError::CovererNeverWrites { index } => {
                write!(f, "coverer {index} halted before its first write")
            }
            CoverError::CoverMismatch { index, wanted, got } => write!(
                f,
                "coverer {index} covers register {got} instead of {wanted}"
            ),
            CoverError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl std::error::Error for CoverError {}

impl From<SimError> for CoverError {
    fn from(e: SimError) -> Self {
        CoverError::Sim(e)
    }
}

/// The assembled attack, paused at the decisive moment: the victim has
/// reached its milestone, the block write has landed, and the shared memory
/// is **indistinguishable** from a world in which the victim never ran.
pub struct CoveringAttack<M: Machine> {
    /// The combined simulation: slot 0 is the victim `q`, slots `1..` are
    /// the coverers `P`. The victim has halted (or is parked at its
    /// milestone); the block write has been applied.
    pub sim: Simulation<M>,
    /// The registers the victim wrote during its solo run — `write(y, q)`.
    pub write_set: Vec<usize>,
    /// The memory as it would be if **only** the coverers had run and
    /// immediately performed their block write (the run `x'`). Equal to the
    /// current memory of `sim` — that equality *is* Theorem 6.1's
    /// indistinguishability, and [`build`](CoveringAttack::build) verifies
    /// it.
    pub ghost_registers: Vec<M::Value>,
}

impl<M> CoveringAttack<M>
where
    M: Machine + Eq + Hash,
{
    /// Assembles the covering attack.
    ///
    /// * `victim` — the process `q`, run alone until `milestone` holds for
    ///   its machine (checked after every step).
    /// * `coverers` — the candidate processes `P`; the first
    ///   `|write(y, q)|` of them are used, each assigned a rotated view
    ///   placing its first write on a distinct register of the write set.
    ///   Supply at least `registers` many (the write set can be that
    ///   large).
    /// * `budget` — solo-step budget for the victim run.
    ///
    /// On success the returned attack holds the post-block-write state; the
    /// caller schedules the coverers (step 4) and checks for the violation
    /// of its choosing.
    ///
    /// # Errors
    ///
    /// See [`CoverError`].
    pub fn build<F>(
        victim: M,
        coverers: Vec<M>,
        milestone: F,
        budget: usize,
    ) -> Result<Self, CoverError>
    where
        F: FnMut(&M) -> bool,
    {
        Self::build_probed(victim, coverers, milestone, budget, &NoopProbe)
    }

    /// [`build`](CoveringAttack::build) with a live [`Probe`].
    ///
    /// Emits one span per attack phase — `cover_solo` (length: steps of
    /// the victim's solo run), `cover_place` (length: coverers placed),
    /// `cover_block` (length: poised writes released) — plus a
    /// `cover_write_set` counter holding `|write(y, q)|`, the quantity the
    /// paper's space lower bounds are about. With [`NoopProbe`] this is
    /// exactly [`build`](CoveringAttack::build).
    ///
    /// # Errors
    ///
    /// See [`CoverError`].
    pub fn build_probed<F, P>(
        victim: M,
        coverers: Vec<M>,
        mut milestone: F,
        budget: usize,
        probe: &P,
    ) -> Result<Self, CoverError>
    where
        F: FnMut(&M) -> bool,
        P: Probe,
    {
        let registers = victim.register_count();

        // Step 1: the solo run y — victim alone, identity view.
        if P::ENABLED {
            probe.span_open(Span::CoverSolo, 0);
        }
        let mut solo = Simulation::builder()
            .process(victim.clone(), View::identity(registers))
            .build()?;
        let mut reached = false;
        for _ in 0..budget {
            if milestone(solo.machine(0)) {
                reached = true;
                break;
            }
            if solo.is_halted(0) {
                break;
            }
            solo.step(0)?;
        }
        if P::ENABLED {
            probe.span_close(Span::CoverSolo, 0, solo.trace().len() as u64);
        }
        if !reached && !milestone(solo.machine(0)) {
            return Err(CoverError::VictimDidNotFinish { budget });
        }
        let write_set = solo.trace().write_set_of(0);
        if write_set.is_empty() {
            return Err(CoverError::EmptyWriteSet);
        }
        if P::ENABLED {
            probe.counter(Metric::CoverWriteSet, 0, write_set.len() as u64);
        }

        // Each coverer's first write, on untouched memory, lands at some
        // local index j0 independent of its view (its reads all return the
        // initial value). Probe j0 with a scratch run, then rotate the view
        // so that local j0 is the assigned physical register.
        let mut chosen: Vec<(M, View)> = Vec::new();
        for (index, target) in write_set.iter().copied().enumerate() {
            let machine = coverers
                .get(index)
                .cloned()
                .ok_or(CoverError::CovererNeverWrites { index })?;
            let j0 = first_write_local_index(&machine, budget)
                .ok_or(CoverError::CovererNeverWrites { index })?;
            let shift = (target + registers - (j0 % registers)) % registers;
            chosen.push((machine, View::rotated(registers, shift)));
        }

        // Assemble the combined simulation: victim (slot 0) + coverers.
        let mut builder = Simulation::builder().process(victim, View::identity(registers));
        for (machine, view) in &chosen {
            builder = builder.process(machine.clone(), view.clone());
        }
        let mut sim = builder.build()?;

        // Step 2: the run x — each coverer runs alone (no writes applied)
        // until it covers its register.
        if P::ENABLED {
            probe.span_open(Span::CoverPlace, 0);
        }
        for (index, target) in write_set.iter().copied().enumerate() {
            let proc = index + 1;
            match sim.step_to_cover(proc)? {
                StepOutcome::Write => {}
                _ => return Err(CoverError::CovererNeverWrites { index }),
            }
            let got = sim
                .covered_register(proc)
                .expect("step_to_cover left a poised write");
            if got != target {
                return Err(CoverError::CoverMismatch {
                    index,
                    wanted: target,
                    got,
                });
            }
        }
        if P::ENABLED {
            probe.span_close(Span::CoverPlace, 0, write_set.len() as u64);
        }

        // The ghost world x': only the coverers' block write, on fresh
        // memory.
        let mut ghost_registers = vec![M::Value::default(); registers];
        for (index, target) in write_set.iter().copied().enumerate() {
            let proc = index + 1;
            // The poised value is applied to `target`; read it by applying
            // on a clone.
            let mut probe = sim.clone();
            probe.apply_poised(proc)?;
            ghost_registers[target] = probe.registers()[target].clone();
        }

        // Step 3a: x;y — the victim runs its solo run to the milestone.
        // The coverers performed no writes, so this replays y exactly.
        for _ in 0..budget {
            if milestone(sim.machine(0)) {
                break;
            }
            if sim.is_halted(0) {
                break;
            }
            sim.step(0)?;
        }
        if !milestone(sim.machine(0)) {
            return Err(CoverError::VictimDidNotFinish { budget });
        }

        // Step 3b: the block write w — all covered writes land, erasing
        // every register the victim wrote.
        if P::ENABLED {
            probe.span_open(Span::CoverBlock, 0);
        }
        for index in 0..write_set.len() {
            sim.apply_poised(index + 1)?;
        }
        if P::ENABLED {
            probe.span_close(Span::CoverBlock, 0, write_set.len() as u64);
        }

        // Indistinguishability check (Theorem 6.1's engine): after the
        // block write, memory equals the ghost world x'.
        debug_assert_eq!(
            sim.registers(),
            &ghost_registers[..],
            "block write must erase every trace of the victim"
        );

        Ok(CoveringAttack {
            sim,
            write_set,
            ghost_registers,
        })
    }

    /// Does the current shared memory equal the ghost (victim-never-ran)
    /// memory? True immediately after [`build`](CoveringAttack::build); the
    /// paper's indistinguishability claim.
    #[must_use]
    pub fn memory_indistinguishable(&self) -> bool {
        self.sim.registers() == &self.ghost_registers[..]
    }

    /// The number of coverers in the attack (`|write(y, q)|`).
    #[must_use]
    pub fn coverer_count(&self) -> usize {
        self.write_set.len()
    }
}

impl<M: Machine> fmt::Debug for CoveringAttack<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CoveringAttack")
            .field("write_set", &self.write_set)
            .field("sim", &self.sim)
            .finish()
    }
}

/// The local register index of a machine's first write when run on
/// untouched memory (all reads return the default value), or `None` if it
/// halts first.
fn first_write_local_index<M: Machine>(machine: &M, budget: usize) -> Option<usize> {
    let mut machine = machine.clone();
    let mut pending: Option<M::Value> = None;
    for _ in 0..budget {
        match machine.resume(pending.take()) {
            Step::Read(_) => pending = Some(M::Value::default()),
            Step::Write(local, _) => return Some(local),
            Step::Event(_) => {}
            Step::Halt => return None,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonreg_model::Pid;

    /// Writes its pid into local registers 0..k, emits "done", halts.
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct KWriter {
        pid: Pid,
        m: usize,
        k: usize,
        next: usize,
        done: bool,
    }

    impl Machine for KWriter {
        type Value = u64;
        type Event = &'static str;

        fn pid(&self) -> Pid {
            self.pid
        }

        fn register_count(&self) -> usize {
            self.m
        }

        fn resume(&mut self, _read: Option<u64>) -> Step<u64, &'static str> {
            if self.next < self.k {
                let j = self.next;
                self.next += 1;
                Step::Write(j, self.pid.get())
            } else if !self.done {
                self.done = true;
                Step::Event("done")
            } else {
                Step::Halt
            }
        }
    }

    fn kwriter(id: u64, m: usize, k: usize) -> KWriter {
        KWriter {
            pid: Pid::new(id).unwrap(),
            m,
            k,
            next: 0,
            done: false,
        }
    }

    #[test]
    fn attack_assembles_and_is_indistinguishable() {
        let victim = kwriter(1, 4, 3);
        let coverers = vec![kwriter(2, 4, 1), kwriter(3, 4, 1), kwriter(4, 4, 1)];
        let attack = CoveringAttack::build(victim, coverers, |m: &KWriter| m.done, 100).unwrap();
        assert_eq!(attack.write_set, vec![0, 1, 2]);
        assert_eq!(attack.coverer_count(), 3);
        assert!(attack.memory_indistinguishable());
        // The block write replaced the victim's values with the coverers'.
        assert_eq!(attack.sim.registers(), &[2, 3, 4, 0]);
    }

    #[test]
    fn probed_build_reports_phase_spans() {
        use anonreg_obs::MemProbe;
        let victim = kwriter(1, 4, 3);
        let coverers = vec![kwriter(2, 4, 1), kwriter(3, 4, 1), kwriter(4, 4, 1)];
        let probe = MemProbe::new();
        let attack =
            CoveringAttack::build_probed(victim, coverers, |m: &KWriter| m.done, 100, &probe)
                .unwrap();
        let snap = probe.into_snapshot();
        assert_eq!(
            snap.counter_total(Metric::CoverWriteSet),
            attack.write_set.len() as u64
        );
        let span_of = |kind: Span| {
            snap.spans
                .iter()
                .find(|s| s.span == kind)
                .unwrap_or_else(|| panic!("missing {kind:?} span"))
        };
        // Solo run: 3 writes + the "done" event.
        assert_eq!(span_of(Span::CoverSolo).length, 4);
        assert_eq!(span_of(Span::CoverPlace).length, 3);
        assert_eq!(span_of(Span::CoverBlock).length, 3);
    }

    #[test]
    fn first_write_probe() {
        assert_eq!(first_write_local_index(&kwriter(1, 4, 2), 10), Some(0));
        assert_eq!(first_write_local_index(&kwriter(1, 4, 0), 10), None);
    }

    #[test]
    fn victim_budget_is_enforced() {
        let victim = kwriter(1, 4, 3);
        let coverers = vec![kwriter(2, 4, 1)];
        let err = CoveringAttack::build(victim, coverers, |m: &KWriter| m.done, 2).unwrap_err();
        assert_eq!(err, CoverError::VictimDidNotFinish { budget: 2 });
    }

    #[test]
    fn missing_coverers_error() {
        let victim = kwriter(1, 4, 3);
        let coverers = vec![kwriter(2, 4, 1)]; // need 3
        let err = CoveringAttack::build(victim, coverers, |m: &KWriter| m.done, 100).unwrap_err();
        assert_eq!(err, CoverError::CovererNeverWrites { index: 1 });
    }

    #[test]
    fn non_writing_victim_error() {
        /// Emits its milestone without ever writing.
        #[derive(Clone, Debug, PartialEq, Eq, Hash)]
        struct Silent {
            pid: Pid,
            done: bool,
        }
        impl Machine for Silent {
            type Value = u64;
            type Event = ();
            fn pid(&self) -> Pid {
                self.pid
            }
            fn register_count(&self) -> usize {
                2
            }
            fn resume(&mut self, _read: Option<u64>) -> Step<u64, ()> {
                if self.done {
                    Step::Halt
                } else {
                    self.done = true;
                    Step::Event(())
                }
            }
        }
        let victim = Silent {
            pid: Pid::new(1).unwrap(),
            done: false,
        };
        let err = CoveringAttack::build(victim.clone(), vec![victim], |m: &Silent| m.done, 100)
            .unwrap_err();
        assert_eq!(err, CoverError::EmptyWriteSet);
    }

    #[test]
    fn error_display_nonempty() {
        let errors: Vec<CoverError> = vec![
            CoverError::VictimDidNotFinish { budget: 5 },
            CoverError::EmptyWriteSet,
            CoverError::CovererNeverWrites { index: 2 },
            CoverError::CoverMismatch {
                index: 1,
                wanted: 0,
                got: 3,
            },
            CoverError::Sim(SimError::NoProcesses),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
