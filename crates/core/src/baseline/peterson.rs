//! Peterson's two-process mutual exclusion — the canonical *named-register*
//! baseline for the Figure 1 algorithm.
//!
//! Peterson's algorithm needs only 3 registers for any two processes, but it
//! fundamentally relies on prior agreement: process 0 and process 1 must
//! know *which* register is `flag[0]`, which is `flag[1]` and which is
//! `turn`, and each process must know whether it is process 0 or 1. None of
//! that agreement is available in the memory-anonymous model.

use std::fmt;

use anonreg_model::{Machine, Pid, PidMap, Step};

use crate::mutex::{MutexConfigError, MutexEvent, Section};

/// Register layout: `flag[0]` at index 0, `flag[1]` at index 1, `turn` at
/// index 2.
const FLAG0: usize = 0;
const FLAG1: usize = 1;
const TURN: usize = 2;

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Pc {
    Remainder,
    /// `flag[me] := 1` just issued.
    SetFlag,
    /// `turn := other` just issued.
    SetTurn,
    /// Read of `flag[other]` issued (spin-loop head).
    ReadFlag,
    /// Read of `turn` issued (spin-loop tail).
    ReadTurn,
    /// In the critical section.
    Critical,
    /// `Event(Exit)` emitted; `flag[me] := 0` follows.
    ExitWrite,
}

/// Peterson's two-process mutual exclusion algorithm over 3 *named*
/// registers.
///
/// Unlike the memory-anonymous [`AnonMutex`](crate::mutex::AnonMutex), the
/// constructor takes a `slot` (0 or 1): Peterson's processes are not
/// symmetric — they run different register indices — which is exactly the
/// prior agreement the paper's model removes.
///
/// # Example
///
/// ```
/// use anonreg::baseline::Peterson;
/// use anonreg::{Machine, Pid};
///
/// let machine = Peterson::new(Pid::new(9).unwrap(), 0)?;
/// assert_eq!(machine.register_count(), 3);
/// # Ok::<(), anonreg::mutex::MutexConfigError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Peterson {
    pid: Pid,
    /// Which of the two agreed-upon roles this process plays (0 or 1).
    slot: usize,
    cycles_remaining: Option<u64>,
    pc: Pc,
}

impl Peterson {
    /// Creates Peterson's machine for the process `pid` playing `slot`
    /// (0 or 1). The two competing processes must use different slots —
    /// that is the prior agreement the named model grants.
    ///
    /// # Errors
    ///
    /// Returns an error if `slot > 1`.
    pub fn new(pid: Pid, slot: usize) -> Result<Self, MutexConfigError> {
        if slot > 1 {
            // Reuse the mutex config error type for a uniform API surface.
            return Err(MutexConfigError::slot(slot));
        }
        Ok(Peterson {
            pid,
            slot,
            cycles_remaining: None,
            pc: Pc::Remainder,
        })
    }

    /// Bounds the machine to `cycles` critical-section entries.
    #[must_use]
    pub fn with_cycles(mut self, cycles: u64) -> Self {
        self.cycles_remaining = Some(cycles);
        self
    }

    /// The code section the process is currently in.
    #[must_use]
    pub fn section(&self) -> Section {
        match self.pc {
            Pc::Remainder => Section::Remainder,
            Pc::SetFlag | Pc::SetTurn | Pc::ReadFlag | Pc::ReadTurn => Section::Entry,
            Pc::Critical => Section::Critical,
            Pc::ExitWrite => Section::Exit,
        }
    }

    fn my_flag(&self) -> usize {
        if self.slot == 0 {
            FLAG0
        } else {
            FLAG1
        }
    }

    fn other_flag(&self) -> usize {
        if self.slot == 0 {
            FLAG1
        } else {
            FLAG0
        }
    }

    /// The value written to `turn`: the *other* slot, encoded as 1 or 2 so
    /// the initial register value 0 means "no one has yielded yet".
    fn other_turn_token(&self) -> u64 {
        (1 - self.slot) as u64 + 1
    }
}

impl Machine for Peterson {
    type Value = u64;
    type Event = MutexEvent;

    fn pid(&self) -> Pid {
        self.pid
    }

    fn register_count(&self) -> usize {
        3
    }

    fn resume(&mut self, read: Option<u64>) -> Step<u64, MutexEvent> {
        match self.pc {
            Pc::Remainder => {
                debug_assert!(read.is_none());
                match self.cycles_remaining {
                    Some(0) => Step::Halt,
                    other => {
                        if let Some(c) = other {
                            self.cycles_remaining = Some(c - 1);
                        }
                        self.pc = Pc::SetFlag;
                        Step::Write(self.my_flag(), 1)
                    }
                }
            }
            Pc::SetFlag => {
                debug_assert!(read.is_none());
                self.pc = Pc::SetTurn;
                Step::Write(TURN, self.other_turn_token())
            }
            Pc::SetTurn => {
                debug_assert!(read.is_none());
                self.pc = Pc::ReadFlag;
                Step::Read(self.other_flag())
            }
            Pc::ReadFlag => {
                let flag = read.expect("flag read result expected");
                if flag == 0 {
                    self.pc = Pc::Critical;
                    Step::Event(MutexEvent::Enter)
                } else {
                    self.pc = Pc::ReadTurn;
                    Step::Read(TURN)
                }
            }
            Pc::ReadTurn => {
                let turn = read.expect("turn read result expected");
                if turn == self.other_turn_token() {
                    // Still the other's priority: spin.
                    self.pc = Pc::ReadFlag;
                    Step::Read(self.other_flag())
                } else {
                    self.pc = Pc::Critical;
                    Step::Event(MutexEvent::Enter)
                }
            }
            Pc::Critical => {
                debug_assert!(read.is_none());
                self.pc = Pc::ExitWrite;
                Step::Event(MutexEvent::Exit)
            }
            Pc::ExitWrite => {
                debug_assert!(read.is_none());
                self.pc = Pc::Remainder;
                Step::Write(self.my_flag(), 0)
            }
        }
    }
}

impl PidMap for Peterson {
    /// Renames only the identifier: `slot` is the agreed role and the
    /// register tokens this machine exchanges (flags, turn) are role
    /// markers, not identifiers. Peterson's is a *named*-model baseline,
    /// so identifier renaming is not a symmetry the algorithm promises —
    /// the symmetry parity suite checks the shipped configurations
    /// empirically.
    fn map_pids(&self, f: &mut dyn FnMut(Pid) -> Pid) -> Self {
        Peterson {
            pid: f(self.pid),
            ..self.clone()
        }
    }
}

impl fmt::Debug for Peterson {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Peterson")
            .field("pid", &self.pid)
            .field("slot", &self.slot)
            .field("pc", &self.pc)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u64) -> Pid {
        Pid::new(n).unwrap()
    }

    fn run_solo(mut machine: Peterson) -> (Vec<MutexEvent>, Vec<u64>) {
        let mut regs = vec![0u64; 3];
        let mut read = None;
        let mut events = Vec::new();
        for _ in 0..10_000 {
            match machine.resume(read.take()) {
                Step::Read(j) => read = Some(regs[j]),
                Step::Write(j, v) => regs[j] = v,
                Step::Event(e) => events.push(e),
                Step::Halt => return (events, regs),
            }
        }
        panic!("machine did not halt");
    }

    #[test]
    fn invalid_slot_rejected() {
        assert!(Peterson::new(pid(1), 2).is_err());
        assert!(Peterson::new(pid(1), 0).is_ok());
        assert!(Peterson::new(pid(1), 1).is_ok());
    }

    #[test]
    fn solo_enters_and_exits() {
        for slot in [0, 1] {
            let (events, regs) = run_solo(Peterson::new(pid(5), slot).unwrap().with_cycles(2));
            assert_eq!(
                events,
                vec![
                    MutexEvent::Enter,
                    MutexEvent::Exit,
                    MutexEvent::Enter,
                    MutexEvent::Exit
                ]
            );
            // Flag is down again; turn keeps its last value.
            assert_eq!(regs[slot], 0);
        }
    }

    #[test]
    fn blocks_when_other_has_priority() {
        // flag[1] = 1 and turn says "slot 1's priority token" — slot 0 wrote
        // turn := 2 (token of slot 1) and must spin.
        let mut machine = Peterson::new(pid(5), 0).unwrap();
        let mut regs = [0u64, 1, 0];
        let mut read = None;
        let mut spins = 0;
        for _ in 0..100 {
            match machine.resume(read.take()) {
                Step::Read(j) => read = Some(regs[j]),
                Step::Write(j, v) => regs[j] = v,
                Step::Event(MutexEvent::Enter) => panic!("must not enter while blocked"),
                other => panic!("unexpected {other:?}"),
            }
            if machine.section() == Section::Entry {
                spins += 1;
            }
        }
        assert!(spins > 10);
    }

    #[test]
    fn enters_when_other_yields_turn() {
        // flag[1] = 1 but turn = 1 (slot 0's token): slot 0 may enter.
        let mut machine = Peterson::new(pid(5), 0).unwrap();
        let mut regs = [0u64, 1, 0];
        let mut read = None;
        let mut entered = false;
        for _ in 0..20 {
            match machine.resume(read.take()) {
                Step::Read(j) => {
                    // After the machine writes turn := 2, the other process
                    // "overwrites" it with 1 (its own yield).
                    if j == TURN {
                        regs[TURN] = 1;
                    }
                    read = Some(regs[j]);
                }
                Step::Write(j, v) => regs[j] = v,
                Step::Event(MutexEvent::Enter) => {
                    entered = true;
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(entered);
    }

    #[test]
    fn section_tracking() {
        let mut machine = Peterson::new(pid(5), 0).unwrap().with_cycles(1);
        assert_eq!(machine.section(), Section::Remainder);
        machine.resume(None); // write flag
        assert_eq!(machine.section(), Section::Entry);
    }
}
