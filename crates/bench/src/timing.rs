//! A tiny wall-clock timing harness with a criterion-shaped API.
//!
//! The container this reproduction builds in has no network access, so the
//! workspace cannot depend on the `criterion` crate. The benches only use a
//! small slice of its surface — groups, `bench_with_input`, `iter` — which
//! this module reimplements over `std::time::Instant`. Numbers are medians
//! over `sample_size` samples with a short warm-up; they are good enough to
//! compare algorithm variants, not for microbenchmark-grade rigor.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Entry point handed to each registered bench function (criterion's `&mut
/// Criterion` role).
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Builds a harness, honoring a `--bench <filter>`-style substring
    /// filter passed on the command line (criterion CLI compatibility:
    /// unknown flags are ignored).
    #[must_use]
    pub fn from_args() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        Criterion { filter }
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup {
            harness: self,
            sample_size: 20,
        }
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// A named collection of related measurements.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    harness: &'a Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark (minimum 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f`, passing it `input` (criterion signature
    /// compatibility; the input is whatever the caller closed over).
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        if self.harness.matches(&id.0) {
            let mut bencher = Bencher::new(self.sample_size);
            f(&mut bencher, input);
            bencher.report(&id.0);
        }
        self
    }

    /// Benchmarks a parameterless closure.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.harness.matches(name) {
            let mut bencher = Bencher::new(self.sample_size);
            f(&mut bencher);
            bencher.report(name);
        }
        self
    }

    /// Ends the group (printing is incremental, so this is cosmetic).
    pub fn finish(&mut self) {}
}

/// Times closures; the criterion `Bencher` role.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            samples: Vec::new(),
        }
    }

    /// Runs `f` once as warm-up, then `sample_size` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        self.samples = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                std::hint::black_box(f());
                start.elapsed()
            })
            .collect();
    }

    fn report(&mut self, id: &str) {
        if self.samples.is_empty() {
            println!("  {id:<40} (no samples)");
            return;
        }
        self.samples.sort_unstable();
        let median = self.samples[self.samples.len() / 2];
        let min = self.samples[0];
        let max = self.samples[self.samples.len() - 1];
        println!(
            "  {id:<40} median {median:>12?}   [min {min:?}, max {max:?}, n={}]",
            self.samples.len()
        );
    }
}

/// A `group/function/parameter` benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a function name and a displayable parameter.
    pub fn new(function: &str, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

/// Registers bench functions under a group name (criterion macro shape).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut harness = $crate::timing::Criterion::from_args();
            $($target(&mut harness);)+
        }
    };
}

/// Produces `main` for a bench binary (criterion macro shape).
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::new("count", 7), &7usize, |b, &n| {
            b.iter(|| {
                runs += 1;
                (0..n).sum::<usize>()
            });
        });
        group.bench_function("plain", |b| b.iter(|| 2 + 2));
        group.finish();
        // warm-up + 3 samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn filter_limits_what_runs() {
        let c = Criterion {
            filter: Some("consensus".into()),
        };
        assert!(c.matches("e3_one_validated_run/consensus/4"));
        assert!(!c.matches("e9_mutex"));
        let unfiltered = Criterion::default();
        assert!(unfiltered.matches("anything"));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::new("g", "m2_l4").0, "g/m2_l4");
    }
}
