//! Figure 2: memory-anonymous symmetric obstruction-free consensus.
//!
//! `n` processes share `2n − 1` anonymous registers, each holding an
//! *(identifier, preference)* pair, initially `(0, 0)`. A process repeatedly
//! scans all registers and:
//!
//! 1. if some nonzero preference appears in at least `n` of the value
//!    fields, it **adopts** that preference (at most one value can clear the
//!    `n`-of-`2n−1` threshold);
//! 2. if its own *(id, preference)* pair fills **all** `2n − 1` registers,
//!    it **decides** its preference and terminates;
//! 3. otherwise it writes its *(id, preference)* pair into the first
//!    register that differs and rescans.
//!
//! Agreement holds because a decision requires unanimity of all `2n − 1`
//! registers, and between any decision and any later scan the other `n − 1`
//! processes can have overwritten at most `n − 1` registers — leaving at
//! least `n` copies of the decided value, which forces adoption (Theorem
//! 4.1). Validity holds because preferences only ever originate from inputs
//! (Theorem 4.2). Termination is guaranteed when a process runs alone long
//! enough (obstruction freedom); Theorem 6.3 shows this is the strongest
//! achievable progress guarantee, and that fewer registers (or unknown `n`)
//! make the problem unsolvable.

use std::fmt;

use anonreg_model::{Machine, Pid, PidMap, Step};

/// The content of one consensus register: an `(identifier, preference)`
/// record, `(0, 0)` when untouched.
///
/// The paper (remark in §4.1) notes the two fields are a convenience and can
/// be encoded as a single value; `anonreg-runtime` does exactly that to fit
/// the pair into one 64-bit atomic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct ConsRecord {
    /// Identifier of the writing process, `0` if the register is untouched.
    pub id: u64,
    /// The writer's preference at the time of the write, `0` if untouched.
    pub val: u64,
}

impl ConsRecord {
    /// The record process `pid` writes while preferring `pref`.
    #[must_use]
    pub fn of(pid: Pid, pref: u64) -> Self {
        ConsRecord {
            id: pid.get(),
            val: pref,
        }
    }
}

impl PidMap for ConsRecord {
    fn map_pids(&self, f: &mut dyn FnMut(Pid) -> Pid) -> Self {
        ConsRecord {
            id: self.id.map_pids(f),
            val: self.val,
        }
    }
}

/// Observable milestone of a consensus algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConsensusEvent {
    /// The process decided on the given value and is about to terminate.
    Decide(u64),
}

/// Error returned for invalid consensus configurations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConsensusConfigError {
    /// `n` must be at least 1.
    NoProcesses,
    /// The input value `0` is reserved for "untouched register".
    ZeroInput,
}

impl fmt::Display for ConsensusConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsensusConfigError::NoProcesses => {
                write!(f, "consensus needs at least one process")
            }
            ConsensusConfigError::ZeroInput => {
                write!(f, "input value 0 is reserved for empty registers")
            }
        }
    }
}

impl std::error::Error for ConsensusConfigError {}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Pc {
    /// Line 1 done (`mypref := input`); the first scan has not started yet.
    Start,
    /// Line 3, read issued for register `j`: filling `myview`.
    ViewRead,
    /// Line 7, write just issued: restart the scan.
    Wrote,
    /// Decision announced; next step halts.
    Decided,
}

/// The Figure 2 algorithm: memory-anonymous symmetric obstruction-free
/// consensus for `n` processes using `2n − 1` anonymous registers.
///
/// The machine announces [`ConsensusEvent::Decide`] and halts when it
/// decides. Under contention it may run forever — that is what
/// obstruction-freedom permits, and the FLP-style impossibility results
/// cited in §4 show registers cannot do better.
///
/// For demonstrations of Theorem 6.3 the register count can be overridden
/// with [`with_registers`](AnonConsensus::with_registers); correctness is
/// only claimed for the default `2n − 1`.
///
/// # Example
///
/// Solo run: the process fills all registers with its pair and decides its
/// own input.
///
/// ```
/// use anonreg::consensus::{AnonConsensus, ConsensusEvent};
/// use anonreg::{Machine, Pid, Step};
///
/// let mut machine = AnonConsensus::new(Pid::new(5).unwrap(), 2, 77)?;
/// let mut regs = vec![Default::default(); machine.register_count()];
/// let mut read = None;
/// loop {
///     match machine.resume(read.take()) {
///         Step::Read(j) => read = Some(regs[j]),
///         Step::Write(j, v) => regs[j] = v,
///         Step::Event(ConsensusEvent::Decide(v)) => {
///             assert_eq!(v, 77);
///             break;
///         }
///         Step::Halt => unreachable!("decides before halting"),
///     }
/// }
/// # Ok::<(), anonreg::consensus::ConsensusConfigError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct AnonConsensus {
    pub(crate) pid: Pid,
    pub(crate) n: usize,
    registers: usize,
    pub(crate) input: u64,
    pub(crate) mypref: u64,
    pub(crate) myview: Vec<ConsRecord>,
    j: usize,
    pc: Pc,
}

impl AnonConsensus {
    /// Creates the Figure 2 machine for process `pid`, one of `n` processes,
    /// with input value `input`, using the prescribed `2n − 1` registers.
    ///
    /// # Errors
    ///
    /// Returns [`ConsensusConfigError`] if `n == 0` or `input == 0` (zero
    /// encodes "untouched register" and therefore cannot be proposed).
    pub fn new(pid: Pid, n: usize, input: u64) -> Result<Self, ConsensusConfigError> {
        if n == 0 {
            return Err(ConsensusConfigError::NoProcesses);
        }
        if input == 0 {
            return Err(ConsensusConfigError::ZeroInput);
        }
        let registers = 2 * n - 1;
        Ok(AnonConsensus {
            pid,
            n,
            registers,
            input,
            mypref: input,
            myview: vec![ConsRecord::default(); registers],
            j: 0,
            pc: Pc::Start,
        })
    }

    /// Overrides the number of registers. **This intentionally breaks the
    /// algorithm's requirements** when `registers < 2n − 1`; it exists so the
    /// covering adversary of Theorem 6.3 can construct real agreement
    /// violations (experiment E4).
    ///
    /// # Panics
    ///
    /// Panics if `registers == 0`.
    #[must_use]
    pub fn with_registers(mut self, registers: usize) -> Self {
        assert!(registers > 0, "consensus needs at least one register");
        self.registers = registers;
        self.myview = vec![ConsRecord::default(); registers];
        self
    }

    /// This process's input value.
    #[must_use]
    pub fn input(&self) -> u64 {
        self.input
    }

    /// The process's current preference (initially its input; may change by
    /// adoption).
    #[must_use]
    pub fn preference(&self) -> u64 {
        self.mypref
    }

    /// Returns `true` once the process has decided.
    #[must_use]
    pub fn has_decided(&self) -> bool {
        self.pc == Pc::Decided
    }

    /// Lines 4–8, evaluated after a full scan: adopt a dominant preference,
    /// decide on unanimity, or write the first differing register.
    fn after_view(&mut self) -> Step<ConsRecord, ConsensusEvent> {
        // Line 4: a nonzero value in at least n of the val fields is adopted.
        // At most one value can reach the threshold when registers = 2n − 1;
        // with fewer registers (lower-bound experiments) ties are broken by
        // the first qualifying value in local scan order, keeping the machine
        // deterministic.
        if let Some(v) = self.dominant_value() {
            self.mypref = v;
        }
        let mine = ConsRecord::of(self.pid, self.mypref);
        // Line 8 (checked here, against the scan just taken, per the §4.1
        // prose): my pair everywhere means it is safe to decide.
        if self.myview.iter().all(|r| *r == mine) {
            self.pc = Pc::Decided;
            return Step::Event(ConsensusEvent::Decide(self.mypref));
        }
        // Lines 6–7: write the first entry that differs.
        let j = self
            .myview
            .iter()
            .position(|r| *r != mine)
            .expect("some entry differs when not deciding");
        self.pc = Pc::Wrote;
        Step::Write(j, mine)
    }

    /// The unique nonzero value appearing in at least `n` val fields, if any.
    fn dominant_value(&self) -> Option<u64> {
        for (idx, record) in self.myview.iter().enumerate() {
            let v = record.val;
            if v == 0 {
                continue;
            }
            // Count occurrences of v; only the first occurrence drives the
            // count so the scan stays O(m²) worst case but allocation free.
            if self.myview[..idx].iter().any(|r| r.val == v) {
                continue;
            }
            let count = self.myview.iter().filter(|r| r.val == v).count();
            if count >= self.n {
                return Some(v);
            }
        }
        None
    }
}

impl Machine for AnonConsensus {
    type Value = ConsRecord;
    type Event = ConsensusEvent;

    fn pid(&self) -> Pid {
        self.pid
    }

    fn register_count(&self) -> usize {
        self.registers
    }

    fn resume(&mut self, read: Option<ConsRecord>) -> Step<ConsRecord, ConsensusEvent> {
        match self.pc {
            Pc::Start => {
                debug_assert!(read.is_none());
                self.pc = Pc::ViewRead;
                self.j = 0;
                Step::Read(0)
            }
            Pc::ViewRead => {
                let value = read.expect("view read result expected");
                self.myview[self.j] = value;
                self.j += 1;
                if self.j < self.registers {
                    Step::Read(self.j)
                } else {
                    self.j = 0;
                    self.after_view()
                }
            }
            Pc::Wrote => {
                debug_assert!(read.is_none());
                self.pc = Pc::ViewRead;
                self.j = 0;
                Step::Read(0)
            }
            Pc::Decided => Step::Halt,
        }
    }
}

impl PidMap for AnonConsensus {
    fn map_pids(&self, f: &mut dyn FnMut(Pid) -> Pid) -> Self {
        AnonConsensus {
            pid: f(self.pid),
            myview: self.myview.iter().map(|r| r.map_pids(f)).collect(),
            ..self.clone()
        }
    }
}

impl fmt::Debug for AnonConsensus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AnonConsensus")
            .field("pid", &self.pid)
            .field("n", &self.n)
            .field("registers", &self.registers)
            .field("input", &self.input)
            .field("mypref", &self.mypref)
            .field("pc", &self.pc)
            .field("j", &self.j)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u64) -> Pid {
        Pid::new(n).unwrap()
    }

    fn run_solo(mut machine: AnonConsensus, regs: &mut [ConsRecord]) -> (u64, usize) {
        let mut read = None;
        let mut ops = 0;
        for _ in 0..1_000_000 {
            match machine.resume(read.take()) {
                Step::Read(j) => {
                    ops += 1;
                    read = Some(regs[j]);
                }
                Step::Write(j, v) => {
                    ops += 1;
                    regs[j] = v;
                }
                Step::Event(ConsensusEvent::Decide(v)) => return (v, ops),
                Step::Halt => panic!("halt before decide"),
            }
        }
        panic!("machine did not decide")
    }

    #[test]
    fn config_errors() {
        assert_eq!(
            AnonConsensus::new(pid(1), 0, 5).unwrap_err(),
            ConsensusConfigError::NoProcesses
        );
        assert_eq!(
            AnonConsensus::new(pid(1), 2, 0).unwrap_err(),
            ConsensusConfigError::ZeroInput
        );
        assert!(ConsensusConfigError::ZeroInput.to_string().contains("0"));
    }

    #[test]
    fn register_count_is_2n_minus_1() {
        for n in 1..8 {
            let m = AnonConsensus::new(pid(1), n, 9).unwrap();
            assert_eq!(m.register_count(), 2 * n - 1);
        }
    }

    #[test]
    fn solo_run_decides_own_input() {
        for n in 1..6 {
            let machine = AnonConsensus::new(pid(3), n, 42).unwrap();
            let mut regs = vec![ConsRecord::default(); machine.register_count()];
            let (decided, _) = run_solo(machine, &mut regs);
            assert_eq!(decided, 42, "n={n}");
            assert!(regs.iter().all(|r| *r == ConsRecord { id: 3, val: 42 }));
        }
    }

    #[test]
    fn solo_step_complexity_matches_bound() {
        // The Theorem 4.1 proof bounds a solo run by 2n−1 writing iterations;
        // each iteration costs 2n−1 reads + 1 write, plus one final all-read
        // scan: total (2n−1)·(2n−1+1) + (2n−1) = (2n−1)(2n+1) ops.
        for n in 1..6 {
            let m = 2 * n - 1;
            let machine = AnonConsensus::new(pid(3), n, 42).unwrap();
            let mut regs = vec![ConsRecord::default(); m];
            let (_, ops) = run_solo(machine, &mut regs);
            assert_eq!(ops, m * (m + 1) + m, "n={n}");
        }
    }

    #[test]
    fn adopts_dominant_value() {
        // n = 2, registers = 3; two registers already carry value 9 from the
        // other process: threshold n = 2 is met, so the machine must adopt 9
        // and eventually decide it.
        let machine = AnonConsensus::new(pid(1), 2, 5).unwrap();
        let mut regs = vec![
            ConsRecord { id: 2, val: 9 },
            ConsRecord { id: 2, val: 9 },
            ConsRecord::default(),
        ];
        let (decided, _) = run_solo(machine, &mut regs);
        assert_eq!(decided, 9);
    }

    #[test]
    fn below_threshold_keeps_own_preference() {
        // Only one register carries the other value: below the n = 2
        // threshold, so the solo process must push its own input through.
        let machine = AnonConsensus::new(pid(1), 2, 5).unwrap();
        let mut regs = vec![
            ConsRecord { id: 2, val: 9 },
            ConsRecord::default(),
            ConsRecord::default(),
        ];
        let (decided, _) = run_solo(machine, &mut regs);
        assert_eq!(decided, 5);
    }

    #[test]
    fn preference_accessor_tracks_adoption() {
        let mut machine = AnonConsensus::new(pid(1), 2, 5).unwrap();
        assert_eq!(machine.preference(), 5);
        let regs = [
            ConsRecord { id: 2, val: 9 },
            ConsRecord { id: 2, val: 9 },
            ConsRecord::default(),
        ];
        let mut read = None;
        // One full scan: 3 reads then the machine adopts.
        for _ in 0..4 {
            match machine.resume(read.take()) {
                Step::Read(j) => read = Some(regs[j]),
                Step::Write(..) => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(machine.preference(), 9);
        assert_eq!(machine.input(), 5);
        assert!(!machine.has_decided());
    }

    #[test]
    fn decided_machine_halts() {
        let mut machine = AnonConsensus::new(pid(3), 1, 8).unwrap();
        let mut regs = [ConsRecord::default(); 1];
        let mut read = None;
        loop {
            match machine.resume(read.take()) {
                Step::Read(j) => read = Some(regs[j]),
                Step::Write(j, v) => regs[j] = v,
                Step::Event(ConsensusEvent::Decide(v)) => {
                    assert_eq!(v, 8);
                    break;
                }
                Step::Halt => panic!("halt before decide"),
            }
        }
        assert!(machine.has_decided());
        assert_eq!(machine.resume(None), Step::Halt);
        assert_eq!(machine.resume(None), Step::Halt);
    }

    #[test]
    fn with_registers_overrides_for_lower_bounds() {
        let machine = AnonConsensus::new(pid(1), 2, 5).unwrap().with_registers(1);
        assert_eq!(machine.register_count(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one register")]
    fn with_zero_registers_panics() {
        let _ = AnonConsensus::new(pid(1), 2, 5).unwrap().with_registers(0);
    }

    #[test]
    fn pid_map_round_trips() {
        let a = pid(1);
        let b = pid(2);
        let mut machine = AnonConsensus::new(a, 2, 5).unwrap();
        let regs = [
            ConsRecord { id: 1, val: 5 },
            ConsRecord { id: 2, val: 9 },
            ConsRecord::default(),
        ];
        let mut read = None;
        for _ in 0..3 {
            match machine.resume(read.take()) {
                Step::Read(j) => read = Some(regs[j]),
                _ => break,
            }
        }
        let swapped = machine.map_pids(&mut |p| if p == a { b } else { a });
        assert_eq!(swapped.pid(), b);
        let back = swapped.map_pids(&mut |p| if p == a { b } else { a });
        assert_eq!(back, machine);
    }

    #[test]
    fn dominant_value_is_unique_at_full_register_count() {
        // 2n−1 = 5 registers, n = 3: two values cannot both appear 3 times.
        let machine = AnonConsensus::new(pid(1), 3, 4).unwrap();
        assert_eq!(machine.register_count(), 5);
        // (Structural sanity; the uniqueness argument is in the module docs.)
        assert!(machine.dominant_value().is_none());
    }
}
