//! E20 — incremental verification: cold exploration vs warm certificate
//! replay.
//!
//! A finished exploration is a *proof*: the reachable set is closed under
//! the transition relation and the verdicts are predicates of that set.
//! [`run_cached`] makes the proof durable — the first run explores cold
//! and writes an `anonreg-cache` certificate keyed by the problem's
//! structural hash; every later run with the same machines, views and
//! limits *replays* the certificate (a linear streaming membership +
//! closure check) instead of searching. This experiment measures the
//! payoff across all seven verified families, with parity hard-asserted:
//! a warm replay that changed a count or a verdict would be a cache
//! soundness bug, not a measurement.
//!
//! The `mutex` row is the E16 quick workload (the `m = 2, ℓ = 2` ring)
//! — the acceptance gate for the cache PR pins its warm/cold speedup.
//! The other six rows are the `por_modelcheck` tier-1 configurations, so
//! the table doubles as evidence that the suite's cached mode answers
//! the same verdicts the cold suite does.

use std::hash::Hash;
use std::time::Duration;

use anonreg::baseline::Peterson;
use anonreg::consensus::AnonConsensus;
use anonreg::election::AnonElection;
use anonreg::hybrid::{named_view, HybridMutex};
use anonreg::mutex::{AnonMutex, Section};
use anonreg::ordered::OrderedMutex;
use anonreg::renaming::AnonRenaming;
use anonreg::{Machine, Pid, View};
use anonreg_obs::Probe;
use anonreg_sim::prelude::*;

use crate::benchjson::BenchMetric;
use crate::e16_symmetry::mutex_ring_sim;
use crate::table::Table;

/// The seven families measured, in table order.
pub const FAMILIES: [&str; 7] = [
    "mutex",
    "ordered",
    "hybrid",
    "peterson",
    "consensus",
    "renaming",
    "election",
];

/// One family's cold-explore vs warm-replay measurement.
#[derive(Clone, Debug)]
pub struct Row {
    /// Family name (one of [`FAMILIES`]).
    pub family: &'static str,
    /// Certified reachable states.
    pub states: u64,
    /// Certified transitions.
    pub edges: u64,
    /// The family's safety verdict (`true` = violation reachable),
    /// identical on both paths by assertion.
    pub violated: bool,
    /// Wall time of the first run: a cold exploration + certificate
    /// emission against a fresh store, or a replay when a prior
    /// invocation already populated it (see [`Row::cold_hit`]).
    pub cold: Duration,
    /// Wall time of the second run: a warm certificate replay (or a
    /// recomputation when the cache is disabled — see
    /// [`Row::warm_hit`]).
    pub warm: Duration,
    /// Whether the *first* run already found a replayable certificate.
    /// `false` against a fresh or just-invalidated store — the
    /// cold-vs-warm speedup is only meaningful then.
    pub cold_hit: bool,
    /// Whether the second run actually replayed a certificate. `false`
    /// only under `ANONREG_NO_CACHE`.
    pub warm_hit: bool,
}

impl Row {
    /// Cold/warm wall-clock ratio (how much faster replay is).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.cold.as_secs_f64() / self.warm.as_secs_f64().max(1e-9)
    }
}

/// Runs the family twice through the store and asserts parity.
///
/// Against a fresh (or just-invalidated) store the first run explores
/// cold and certifies, the second replays — the cold-vs-warm
/// measurement. Against a populated store both runs replay, which is
/// what the warm CI leg asserts via [`Row::cold_hit`].
///
/// # Panics
///
/// Panics if the second outcome's counts or verdicts differ from the
/// first — certificate replay must be bit-identical to exploration.
fn measure<'p, M, P, F>(
    family: &'static str,
    store: &CacheStore,
    make: F,
) -> Result<Row, ExploreError>
where
    M: Machine + Eq + Hash,
    P: Probe + 'p,
    F: Fn() -> Explorer<'p, M, P>,
{
    let cold = run_cached(store, &make)?;
    let warm = run_cached(store, &make)?;
    if !cache_disabled() {
        assert!(warm.warm, "{family}: second run did not replay the cache");
    }
    assert_eq!(
        (cold.states, cold.edges),
        (warm.states, warm.edges),
        "{family}: warm replay changed the counts"
    );
    assert_eq!(
        cold.verdicts, warm.verdicts,
        "{family}: warm replay changed a verdict"
    );
    let violated = cold.verdicts.first().is_some_and(|(_, violated)| *violated);
    Ok(Row {
        family,
        states: cold.states,
        edges: cold.edges,
        violated,
        cold: cold.elapsed,
        warm: warm.elapsed,
        cold_hit: cold.warm,
        warm_hit: warm.warm,
    })
}

fn pid(n: u64) -> Pid {
    Pid::new(n).unwrap()
}

/// The ≥2-in-critical-section overlap verdict shared by the mutex-like
/// families.
fn overlap<M>(
    section: impl Fn(&M) -> Section + Copy + 'static,
) -> impl Fn(&StateGraph<M>) -> bool + 'static
where
    M: Machine + Eq + Hash,
{
    move |g: &StateGraph<M>| {
        g.find_state(|s| {
            (0..s.process_count())
                .filter(|&p| section(s.machine(p)) == Section::Critical)
                .count()
                >= 2
        })
        .is_some()
    }
}

/// Measures all seven families: cold explore + certify, then warm
/// replay, through `store`.
///
/// # Errors
///
/// Propagates [`ExploreError`] from any cold exploration (e.g.
/// [`ExploreError::StateLimitExceeded`] if `max_states` is too tight).
///
/// # Panics
///
/// Panics on any cold/warm parity divergence (see [`measure`]).
pub fn rows(
    store: &CacheStore,
    threads: usize,
    max_states: usize,
) -> Result<Vec<Row>, ExploreError> {
    let mut out = Vec::new();
    out.push(measure("mutex", store, || {
        Explorer::new(mutex_ring_sim(2, 2))
            .max_states(max_states)
            .parallelism(threads)
            .verdict("safety", overlap(AnonMutex::section))
    })?);
    out.push(measure("ordered", store, || {
        let sim = Simulation::builder()
            .process(OrderedMutex::new(pid(1), 3).unwrap(), View::identity(3))
            .process(OrderedMutex::new(pid(2), 3).unwrap(), View::rotated(3, 1))
            .build()
            .unwrap();
        Explorer::new(sim)
            .max_states(max_states)
            .parallelism(threads)
            .verdict("safety", overlap(OrderedMutex::section))
    })?);
    out.push(measure("hybrid", store, || {
        let anon: Vec<usize> = (0..3).map(|j| (j + 1) % 3).collect();
        let sim = Simulation::builder()
            .process(
                HybridMutex::new(pid(1), 3).unwrap(),
                named_view(3, (0..3).collect()).unwrap(),
            )
            .process(
                HybridMutex::new(pid(2), 3).unwrap(),
                named_view(3, anon).unwrap(),
            )
            .build()
            .unwrap();
        Explorer::new(sim)
            .max_states(max_states)
            .parallelism(threads)
            .verdict("safety", overlap(HybridMutex::section))
    })?);
    out.push(measure("peterson", store, || {
        let sim = Simulation::builder()
            .process_identity(Peterson::new(pid(1), 0).unwrap())
            .process_identity(Peterson::new(pid(2), 1).unwrap())
            .build()
            .unwrap();
        Explorer::new(sim)
            .max_states(max_states)
            .parallelism(threads)
            .verdict("safety", overlap(Peterson::section))
    })?);
    out.push(measure("consensus", store, || {
        let sim = Simulation::builder()
            .process(
                AnonConsensus::new(pid(1), 2, 1).unwrap().with_registers(2),
                View::identity(2),
            )
            .process(
                AnonConsensus::new(pid(2), 2, 2).unwrap().with_registers(2),
                View::rotated(2, 1),
            )
            .build()
            .unwrap();
        Explorer::new(sim)
            .max_states(max_states)
            .parallelism(threads)
            .verdict("safety", |g: &StateGraph<AnonConsensus>| {
                g.find_state(|s| {
                    let decided: Vec<u64> = (0..s.process_count())
                        .map(|p| s.machine(p))
                        .filter(|m| m.has_decided())
                        .map(AnonConsensus::preference)
                        .collect();
                    decided.len() == 2 && decided[0] != decided[1]
                })
                .is_some()
            })
    })?);
    out.push(measure("renaming", store, || {
        let sim = Simulation::builder()
            .process(AnonRenaming::new(pid(1), 2).unwrap(), View::identity(3))
            .process(AnonRenaming::new(pid(2), 2).unwrap(), View::rotated(3, 1))
            .build()
            .unwrap();
        Explorer::new(sim)
            .max_states(max_states)
            .parallelism(threads)
            .verdict("safety", |g: &StateGraph<AnonRenaming>| {
                g.find_state(|s| {
                    s.all_halted() && (0..s.process_count()).any(|p| !s.machine(p).has_name())
                })
                .is_some()
            })
    })?);
    out.push(measure("election", store, || {
        let sim = Simulation::builder()
            .process(AnonElection::new(pid(1), 2).unwrap(), View::identity(3))
            .process(AnonElection::new(pid(2), 2).unwrap(), View::rotated(3, 1))
            .build()
            .unwrap();
        Explorer::new(sim)
            .max_states(max_states)
            .parallelism(threads)
            .verdict("safety", |g: &StateGraph<AnonElection>| {
                g.find_state(|s| {
                    s.all_halted() && (0..s.process_count()).any(|p| !s.machine(p).has_elected())
                })
                .is_some()
            })
    })?);
    debug_assert_eq!(out.len(), FAMILIES.len());
    Ok(out)
}

/// Renders the cold/warm comparison table.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(vec![
        "family", "states", "edges", "violated", "cold", "warm", "speedup", "path",
    ]);
    for r in rows {
        t.row(vec![
            r.family.to_string(),
            r.states.to_string(),
            r.edges.to_string(),
            r.violated.to_string(),
            format!("{:?}", r.cold),
            format!("{:?}", r.warm),
            format!("{:.2}x", r.speedup()),
            match (r.cold_hit, r.warm_hit) {
                (false, true) => "cold→replay",
                (true, true) => "replay×2",
                _ => "recompute",
            }
            .to_string(),
        ]);
    }
    t.render()
}

/// Machine-readable metrics for the given rows (experiment `E20`).
#[must_use]
pub fn metrics(rows: &[Row]) -> Vec<BenchMetric> {
    let mut out = Vec::new();
    for r in rows {
        out.push(BenchMetric::new(
            "E20",
            r.family,
            format!("{}_states", r.family),
            r.states as f64,
            "states",
        ));
        out.push(BenchMetric::new(
            "E20",
            r.family,
            format!("{}_edges", r.family),
            r.edges as f64,
            "edges",
        ));
        out.push(BenchMetric::new(
            "E20",
            r.family,
            format!("{}_cold_time", r.family),
            r.cold.as_secs_f64() * 1000.0,
            "ms",
        ));
        out.push(BenchMetric::new(
            "E20",
            r.family,
            format!("{}_warm_time", r.family),
            r.warm.as_secs_f64() * 1000.0,
            "ms",
        ));
        out.push(BenchMetric::new(
            "E20",
            r.family,
            format!("{}_speedup", r.family),
            r.speedup(),
            "x",
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_store(name: &str) -> CacheStore {
        let dir = std::env::temp_dir().join(format!("anonreg-e20-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CacheStore::new(dir).unwrap()
    }

    #[test]
    fn seven_families_warm_up_with_identical_counts() {
        let store = test_store("families");
        let first = rows(&store, 1, 2_000_000).unwrap();
        assert_eq!(first.len(), FAMILIES.len());
        for (row, family) in first.iter().zip(FAMILIES) {
            assert_eq!(row.family, family);
            assert!(row.states > 0, "{family}: empty graph");
            assert!(!row.cold_hit, "{family}: fresh store had a certificate");
            assert!(row.warm_hit, "{family}: warm run did not replay");
            // Only the deliberately under-provisioned consensus (2
            // registers < 2n − 1 = 3, the Theorem 6.3 regime) reaches a
            // violation; anything else would mean replay returned
            // verdicts for the wrong problem.
            assert_eq!(
                row.violated,
                family == "consensus",
                "{family}: safety verdict flipped"
            );
        }
        // A second invocation against the now-populated store replays on
        // the first run too — the cross-invocation warm path.
        let again = rows(&store, 1, 2_000_000).unwrap();
        for row in &again {
            assert!(row.cold_hit, "{}: populated store missed", row.family);
            assert_eq!(
                (row.states, row.edges),
                (
                    first
                        .iter()
                        .find(|r| r.family == row.family)
                        .unwrap()
                        .states,
                    first.iter().find(|r| r.family == row.family).unwrap().edges,
                ),
                "{}: replay counts drifted across invocations",
                row.family
            );
        }
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn render_and_metrics_cover_all_rows() {
        let store = test_store("render");
        let rows = rows(&store, 1, 2_000_000).unwrap();
        let table = render(&rows);
        assert!(table.contains("speedup"));
        assert!(table.contains("mutex"));
        let metrics = metrics(&rows);
        assert_eq!(metrics.len(), 5 * rows.len());
        assert!(metrics.iter().all(|m| m.experiment == "E20"));
        assert!(metrics
            .iter()
            .any(|m| m.name == "mutex_speedup" && m.unit == "x"));
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
