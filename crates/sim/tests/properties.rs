//! Property-style tests for the simulator: determinism, covering
//! semantics, and explorer completeness.
//!
//! Randomized with the workspace's seeded [`Rng64`] (fixed seeds, fully
//! replayable, no external dependencies).

use anonreg_model::rng::Rng64;
use anonreg_model::{Machine, Pid, Step, View};
use anonreg_sim::prelude::*;
use anonreg_sim::{sched, Simulation};

const CASES: usize = 64;

/// A compact machine with interesting behavior: reads a register, writes
/// its pid xor the value read to the next register, `k` times, then halts.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Mixer {
    pid: Pid,
    m: usize,
    k: usize,
    at: usize,
    awaiting: bool,
    acc: u64,
}

impl Mixer {
    fn new(id: u64, m: usize, k: usize) -> Self {
        Mixer {
            pid: Pid::new(id).unwrap(),
            m,
            k,
            at: 0,
            awaiting: false,
            acc: 0,
        }
    }
}

impl Machine for Mixer {
    type Value = u64;
    type Event = ();

    fn pid(&self) -> Pid {
        self.pid
    }

    fn register_count(&self) -> usize {
        self.m
    }

    fn resume(&mut self, read: Option<u64>) -> Step<u64, ()> {
        if self.k == 0 {
            return Step::Halt;
        }
        if self.awaiting {
            self.awaiting = false;
            self.acc ^= read.expect("read result");
            let target = (self.at + 1) % self.m;
            self.at = target;
            self.k -= 1;
            Step::Write(target, self.pid.get() ^ self.acc)
        } else {
            self.awaiting = true;
            Step::Read(self.at)
        }
    }
}

fn two_mixers(shift: usize, m: usize) -> Simulation<Mixer> {
    Simulation::builder()
        .process(Mixer::new(3, m, 3), View::identity(m))
        .process(Mixer::new(5, m, 3), View::rotated(m, shift % m))
        .build()
        .unwrap()
}

/// The same seed always reproduces the same run, registers and trace.
#[test]
fn seeded_runs_are_deterministic() {
    let mut rng = Rng64::seed_from_u64(0x5EED);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let shift = rng.gen_index(4);
        let m = rng.gen_range_inclusive(2, 4);
        let run = |seed| {
            let mut sim = two_mixers(shift, m);
            sched::random(&mut sim, seed, 1_000);
            (sim.registers().to_vec(), format!("{}", sim.trace()))
        };
        assert_eq!(run(seed), run(seed));
    }
}

/// Bursty and plain random scheduling preserve per-seed determinism.
#[test]
fn burst_runs_are_deterministic() {
    let mut rng = Rng64::seed_from_u64(0xB0257);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let burst = rng.gen_range_inclusive(1, 7);
        let run = |seed| {
            let mut sim = two_mixers(1, 3);
            sched::random_bursts(&mut sim, seed, burst, 1_000);
            sim.registers().to_vec()
        };
        assert_eq!(run(seed), run(seed));
    }
}

/// Covering then releasing immediately is identical to stepping directly
/// (when nobody runs in between) — poising must not disturb semantics.
#[test]
fn cover_then_release_equals_direct_steps() {
    for m in 2..5 {
        let mut direct = two_mixers(1, m);
        let (_, halted) = direct.run_solo(0, 10_000).unwrap();
        assert!(halted);

        let mut covered = two_mixers(1, m);
        // Drive through poise/release pairs until the machine halts.
        for _ in 0..10_000 {
            if covered.is_halted(0) {
                break;
            }
            match covered.step_to_cover(0).unwrap() {
                anonreg_sim::StepOutcome::Write => covered.apply_poised(0).unwrap(),
                anonreg_sim::StepOutcome::Halted => break,
                _ => {}
            }
        }
        assert!(covered.is_halted(0));
        assert_eq!(direct.registers(), covered.registers());
        assert_eq!(direct.machine(0), covered.machine(0));
    }
}

/// Explorer completeness: every configuration reached by a random schedule
/// appears in the exhaustive state graph.
#[test]
fn random_runs_stay_within_the_explored_graph() {
    let graph = Explorer::new(two_mixers(2, 3)).run().unwrap();
    let mut rng = Rng64::seed_from_u64(0x6AF);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let prefix = rng.gen_index(14);
        let mut sim = two_mixers(2, 3);
        sched::random(&mut sim, seed, prefix);
        let found = graph.states().any(|(_, s)| {
            s.registers() == sim.registers()
                && (0..2)
                    .all(|p| s.machine(p) == sim.machine(p) && s.is_halted(p) == sim.is_halted(p))
        });
        assert!(found, "random run escaped the exhaustive graph");
    }
}

/// Schedules reconstructed by the explorer replay to their states.
#[test]
fn reconstructed_schedules_replay() {
    let graph = Explorer::new(two_mixers(1, 3)).run().unwrap();
    let mut rng = Rng64::seed_from_u64(0x3C0);
    for _ in 0..CASES {
        let id = rng.gen_index(graph.state_count());
        let schedule = graph.schedule_to(id);
        let mut sim = two_mixers(1, 3);
        for &p in &schedule {
            sim.step(p).unwrap();
        }
        assert_eq!(sim.registers(), graph.state(id).registers());
        for p in 0..2 {
            assert_eq!(sim.machine(p), graph.state(id).machine(p));
        }
    }
}
