//! E7 — the unknown-process-count table (Theorem 6.2).
//!
//! For each register count `m`, mount the covering attack with `m + 1`
//! processes against the two-process Figure 1 algorithm and report how it
//! fails: a direct mutual exclusion violation (`m = 1`), or starvation
//! behind an indistinguishable fresh-looking memory (`m ≥ 2`). Either way
//! no fixed `m` survives an unknown number of processes.

use anonreg_lower::mutex_cover::{unknown_n_attack, MutexFailure};

use crate::benchjson::{flag, BenchMetric};
use crate::table::Table;

/// One row of the unknown-n table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Register count attacked.
    pub m: usize,
    /// Size of the victim's write set (always `m`: Figure 1 writes every
    /// register on a solo entry).
    pub write_set: usize,
    /// Whether memory after the block write was indistinguishable from the
    /// victim-free world (Theorem 6.1's engine; always true).
    pub indistinguishable: bool,
    /// The observed failure mode.
    pub failure: MutexFailure,
}

/// Runs the attack for every `m ∈ 1..=max_m`.
#[must_use]
pub fn rows(max_m: usize) -> Vec<Row> {
    (1..=max_m)
        .map(|m| {
            let outcome = unknown_n_attack(m, 40_000);
            Row {
                m,
                write_set: outcome.write_set.len(),
                indistinguishable: outcome.indistinguishable,
                failure: outcome.failure,
            }
        })
        .collect()
}

/// Renders the table for the given rows.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(vec!["m", "covered", "indistinguishable", "failure mode"]);
    for r in rows {
        let failure = match &r.failure {
            MutexFailure::MutualExclusionViolated { .. } => {
                "MUTUAL EXCLUSION VIOLATED (two in CS)".to_string()
            }
            MutexFailure::Starvation { .. } => "STARVATION (deadlock-freedom violated)".to_string(),
        };
        t.row(vec![
            r.m.to_string(),
            r.write_set.to_string(),
            if r.indistinguishable { "yes" } else { "NO" }.into(),
            failure,
        ]);
    }
    t.render()
}

/// Machine-readable metrics for the given rows. `failed` is 1.0 for both
/// failure modes — every `m` fails, the modes just differ.
#[must_use]
pub fn metrics(rows: &[Row]) -> Vec<BenchMetric> {
    let mut out = Vec::new();
    for r in rows {
        let m = r.m;
        out.push(BenchMetric::new(
            "E7",
            "mutex",
            format!("m{m}_write_set"),
            r.write_set as f64,
            "registers",
        ));
        out.push(BenchMetric::new(
            "E7",
            "mutex",
            format!("m{m}_indistinguishable"),
            flag(r.indistinguishable),
            "bool",
        ));
        out.push(BenchMetric::new(
            "E7",
            "mutex",
            format!("m{m}_failed"),
            1.0,
            "bool",
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_m_fails_and_memory_is_indistinguishable() {
        let rs = rows(5);
        assert!(rs.iter().all(|r| r.indistinguishable));
        assert!(matches!(
            rs[0].failure,
            MutexFailure::MutualExclusionViolated { .. }
        ));
        for r in &rs[1..] {
            assert!(matches!(r.failure, MutexFailure::Starvation { .. }));
        }
    }
}
