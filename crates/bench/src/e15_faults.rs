//! E15 — fault-injection stress sweeps across every algorithm family.
//!
//! The paper's §2 failure model lets a process crash at any point of its
//! protocol, leaving the shared registers exactly as written; the model
//! checker explores that adversary exhaustively for small configurations
//! (`Explorer::crashes(true)`), and this experiment drives the *same*
//! crash model on real threads at scale. Each seeded schedule draws a
//! [`FaultPlan`] (crashes, stalls, optional restarts), runs one
//! coordination object of the family under it, and checks the safety
//! invariant that must survive any crash pattern:
//!
//! * mutual exclusion (`mutex`, `hybrid`, `ordered`, `baseline`) — never
//!   two live processes in the critical section;
//! * consensus / election — agreement and validity among the deciders;
//! * renaming — names distinct and within `{1..n}`.
//!
//! Liveness is *not* asserted: a crash mid-doorway may legitimately block
//! the survivor forever (mutual exclusion does not tolerate crashes for
//! progress), so budget exhaustions are counted as `timeouts`, never as
//! violations. Every schedule is a pure function of its seed — a
//! violation report prints the seed, and
//! `check stress --family F --replay SEED` reruns exactly that schedule.
//!
//! The [`BROKEN`] pseudo-family is a deliberately unprotected doorway
//! (write one register, walk straight in) used to prove the harness can
//! detect violations at all; `check stress --broken` is expected to fail.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use anonreg::baseline::Peterson;
use anonreg::mutex::{MutexEvent, Section};
use anonreg::ordered::OrderedMutex;
use anonreg::{Machine, Pid, View};
use anonreg_model::rng::Rng64;
use anonreg_model::Step;
use anonreg_obs::{MemProbe, Metric, Probe as _};
use anonreg_runtime::{
    AnonymousConsensus, AnonymousElection, AnonymousMemory, AnonymousMutex, AnonymousRenaming,
    DriveOutcome, FaultCell, FaultKind, FaultPlan, FaultProfile, FaultyDriver,
    FaultyHybridMutexHandle, FaultyMutexHandle, FaultyStep, HybridAnonymousMutex,
    PackedAtomicRegister, Register,
};

use crate::benchjson::BenchMetric;
use crate::table::Table;

/// The algorithm families swept by `check stress` (all expected clean).
pub const FAMILIES: [&str; 7] = [
    "mutex",
    "hybrid",
    "ordered",
    "baseline",
    "consensus",
    "election",
    "renaming",
];

/// The deliberately broken fixture family (expected to violate).
pub const BROKEN: &str = "broken";

/// Machine-step budget for one lock entry or exit attempt.
const LOCK_BUDGET: u64 = 200_000;

/// Critical-section entries each lock participant attempts.
const LOCK_CYCLES: u64 = 3;

/// Spin iterations a participant dwells inside the critical section,
/// widening the overlap window a safety violation would need.
const DWELL_SPINS: u64 = 64;

/// Machine-step budget for one one-shot protocol run (consensus,
/// election, renaming).
const ONESHOT_BUDGET: u64 = 2_000_000;

/// Read steps the broken doorway dwells in its "critical section" —
/// long enough that two live survivors overlap with near certainty.
const BROKEN_DWELL: u64 = 20_000;

/// Outcome of one seeded schedule of one family cell.
#[derive(Clone, Debug)]
pub struct CellReport {
    /// Crashes the plan scheduled (including points the run never reached).
    pub crashes: u64,
    /// Stalls the plan scheduled.
    pub stalls: u64,
    /// Restarts the plan scheduled.
    pub restarts: u64,
    /// Some process exhausted its step budget (liveness loss, not a
    /// safety violation — expected when a crash blocks a doorway).
    pub timed_out: bool,
    /// Human-readable description of a safety violation, if any.
    pub violation: Option<String>,
}

/// Aggregated sweep results for one family.
#[derive(Clone, Debug)]
pub struct Row {
    /// Family name (one of [`FAMILIES`] or [`BROKEN`]).
    pub family: &'static str,
    /// Seeded schedules run.
    pub schedules: u64,
    /// Total crashes scheduled across all plans.
    pub crashes: u64,
    /// Total stalls scheduled.
    pub stalls: u64,
    /// Total restarts scheduled.
    pub restarts: u64,
    /// Schedules that finished with neither a timeout nor a violation.
    pub completed: u64,
    /// Schedules in which some process ran out of step budget.
    pub timeouts: u64,
    /// Schedules that violated the family's safety invariant.
    pub violations: u64,
    /// Seed of the first violating schedule, for replay.
    pub first_violation_seed: Option<u64>,
}

/// The seed of schedule `index` in a sweep based on `base_seed` — the
/// exact value `check stress --replay` accepts.
#[must_use]
pub fn schedule_seed(base_seed: u64, index: u64) -> u64 {
    base_seed.wrapping_add(index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Runs one seeded schedule of `family` and reports what happened.
///
/// # Panics
///
/// Panics if `family` is not in [`FAMILIES`] and not [`BROKEN`].
#[must_use]
pub fn run_one(family: &str, seed: u64) -> CellReport {
    match family {
        "mutex" => mutex_cell(seed),
        "hybrid" => hybrid_cell(seed),
        "ordered" => ordered_cell(seed),
        "baseline" => baseline_cell(seed),
        "consensus" => consensus_cell(seed),
        "election" => election_cell(seed),
        "renaming" => renaming_cell(seed),
        _ if family == BROKEN => broken_cell(seed),
        other => panic!("unknown stress family {other:?}"),
    }
}

/// Sweeps `schedules` seeded schedules of one family.
#[must_use]
pub fn sweep(family: &'static str, base_seed: u64, schedules: u64) -> Row {
    sweep_with(family, base_seed, schedules, None, 0)
}

/// [`sweep`] with a live heartbeat: after every schedule the probe's
/// [`Metric::StressSchedules`] counter (keyed by `family_key`, the
/// family's index in the sweep) ticks, and [`Metric::StressViolations`]
/// ticks on violations — what `check stress --stream` snapshots.
#[must_use]
pub fn sweep_with(
    family: &'static str,
    base_seed: u64,
    schedules: u64,
    probe: Option<&MemProbe>,
    family_key: u64,
) -> Row {
    let mut row = Row {
        family,
        schedules,
        crashes: 0,
        stalls: 0,
        restarts: 0,
        completed: 0,
        timeouts: 0,
        violations: 0,
        first_violation_seed: None,
    };
    for index in 0..schedules {
        let seed = schedule_seed(base_seed, index);
        let report = run_one(family, seed);
        row.crashes += report.crashes;
        row.stalls += report.stalls;
        row.restarts += report.restarts;
        if report.timed_out {
            row.timeouts += 1;
        }
        if report.violation.is_some() {
            row.violations += 1;
            if row.first_violation_seed.is_none() {
                row.first_violation_seed = Some(seed);
            }
        } else if !report.timed_out {
            row.completed += 1;
        }
        if let Some(p) = probe {
            p.counter(Metric::StressSchedules, family_key, 1);
            if report.violation.is_some() {
                p.counter(Metric::StressViolations, family_key, 1);
            }
        }
    }
    row
}

/// Sweeps every clean family (the default `check stress` workload).
#[must_use]
pub fn rows(base_seed: u64, schedules: u64) -> Vec<Row> {
    FAMILIES
        .iter()
        .map(|&family| sweep(family, base_seed, schedules))
        .collect()
}

/// Renders the stress table.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(vec![
        "family",
        "schedules",
        "crashes",
        "stalls",
        "restarts",
        "completed",
        "timeouts",
        "violations",
        "first bad seed",
    ]);
    for r in rows {
        t.row(vec![
            r.family.to_string(),
            r.schedules.to_string(),
            r.crashes.to_string(),
            r.stalls.to_string(),
            r.restarts.to_string(),
            r.completed.to_string(),
            r.timeouts.to_string(),
            r.violations.to_string(),
            r.first_violation_seed
                .map_or_else(|| "-".to_string(), |s| s.to_string()),
        ]);
    }
    t.render()
}

/// Machine-readable metrics for the given rows (experiment `E15`).
#[must_use]
pub fn metrics(rows: &[Row]) -> Vec<BenchMetric> {
    let mut out = Vec::new();
    for r in rows {
        for (name, value) in [
            ("schedules", r.schedules),
            ("crashes", r.crashes),
            ("stalls", r.stalls),
            ("restarts", r.restarts),
            ("completed", r.completed),
            ("timeouts", r.timeouts),
            ("violations", r.violations),
        ] {
            out.push(BenchMetric::new(
                "E15",
                r.family,
                format!("{}_{name}", r.family),
                value as f64,
                "count",
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Shared machinery
// ---------------------------------------------------------------------------

fn pid(n: u64) -> Pid {
    Pid::new(n).unwrap()
}

/// How one participant's run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ThreadEnd {
    Completed,
    Crashed,
    TimedOut,
}

/// Counts the fault points a plan schedules across `pids`.
fn plan_counts(plan: &FaultPlan, pids: &[Pid]) -> (u64, u64, u64) {
    let (mut crashes, mut stalls, mut restarts) = (0, 0, 0);
    for &p in pids {
        for point in plan.for_pid(p) {
            match point.kind {
                FaultKind::Crash => crashes += 1,
                FaultKind::Stall { .. } => stalls += 1,
                FaultKind::Restart => restarts += 1,
            }
        }
    }
    (crashes, stalls, restarts)
}

fn scheduled_crash(plan: &FaultPlan, p: Pid) -> bool {
    plan.for_pid(p)
        .iter()
        .any(|point| point.kind == FaultKind::Crash)
}

/// The common shape of every fault-injected lock participant: bounded
/// entry and bounded exit, both of which may observe a crash.
trait FaultyLock: Send {
    fn try_enter(&mut self, max_steps: u64) -> DriveOutcome;
    fn exit(&mut self, max_steps: u64) -> DriveOutcome;
}

impl FaultyLock for FaultyMutexHandle {
    fn try_enter(&mut self, max_steps: u64) -> DriveOutcome {
        FaultyMutexHandle::try_enter(self, max_steps)
    }
    fn exit(&mut self, max_steps: u64) -> DriveOutcome {
        FaultyMutexHandle::exit(self, max_steps)
    }
}

impl FaultyLock for FaultyHybridMutexHandle {
    fn try_enter(&mut self, max_steps: u64) -> DriveOutcome {
        FaultyHybridMutexHandle::try_enter(self, max_steps)
    }
    fn exit(&mut self, max_steps: u64) -> DriveOutcome {
        FaultyHybridMutexHandle::exit(self, max_steps)
    }
}

/// A raw [`FaultyDriver`] over any mutex machine with a section map —
/// how the ordered and named-baseline families join the sweep without
/// dedicated facades.
struct RawLock<M: Machine, R> {
    driver: FaultyDriver<M, R>,
    section: fn(&M) -> Section,
}

impl<M, R> FaultyLock for RawLock<M, R>
where
    M: Machine,
    R: Register<M::Value> + Send + Sync,
{
    fn try_enter(&mut self, max_steps: u64) -> DriveOutcome {
        let section = self.section;
        self.driver
            .run_until_bounded(|m| section(m) == Section::Critical, max_steps)
    }
    fn exit(&mut self, max_steps: u64) -> DriveOutcome {
        let section = self.section;
        self.driver
            .run_until_bounded(|m| section(m) == Section::Remainder, max_steps)
    }
}

/// Drives a set of lock participants through [`LOCK_CYCLES`] critical
/// sections each, under one shared overlap monitor. The monitor counts
/// *live* occupants only: the count is raised after entry is granted and
/// lowered before the exit protocol starts, and a process that crashes
/// can only do so inside `try_enter`/`exit` (faults fire at machine
/// steps, never during the dwell spin), so a crashed process never
/// inflates the count — matching §2, where a crashed process is not in
/// its critical section.
fn lock_cell(locks: Vec<Box<dyn FaultyLock>>, plan: &FaultPlan, pids: &[Pid]) -> CellReport {
    let in_cs = AtomicUsize::new(0);
    let max_in_cs = AtomicUsize::new(0);
    let barrier = Barrier::new(locks.len());
    let ends: Vec<ThreadEnd> = std::thread::scope(|s| {
        let joins: Vec<_> = locks
            .into_iter()
            .map(|mut lock| {
                let (in_cs, max_in_cs, barrier) = (&in_cs, &max_in_cs, &barrier);
                s.spawn(move || {
                    barrier.wait();
                    let mut cycles = 0;
                    loop {
                        match lock.try_enter(LOCK_BUDGET) {
                            DriveOutcome::Satisfied => {}
                            DriveOutcome::Crashed => return ThreadEnd::Crashed,
                            DriveOutcome::Halted => return ThreadEnd::Completed,
                            DriveOutcome::OutOfBudget => return ThreadEnd::TimedOut,
                        }
                        let now = in_cs.fetch_add(1, Ordering::SeqCst) + 1;
                        max_in_cs.fetch_max(now, Ordering::SeqCst);
                        for _ in 0..DWELL_SPINS {
                            std::hint::spin_loop();
                        }
                        in_cs.fetch_sub(1, Ordering::SeqCst);
                        match lock.exit(LOCK_BUDGET) {
                            DriveOutcome::Satisfied | DriveOutcome::Halted => {
                                cycles += 1;
                                if cycles == LOCK_CYCLES {
                                    return ThreadEnd::Completed;
                                }
                            }
                            DriveOutcome::Crashed => return ThreadEnd::Crashed,
                            DriveOutcome::OutOfBudget => return ThreadEnd::TimedOut,
                        }
                    }
                })
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().expect("lock participant panicked"))
            .collect()
    });
    let overlap = max_in_cs.load(Ordering::SeqCst);
    let (crashes, stalls, restarts) = plan_counts(plan, pids);
    CellReport {
        crashes,
        stalls,
        restarts,
        timed_out: ends.contains(&ThreadEnd::TimedOut),
        violation: (overlap >= 2).then(|| {
            format!("mutual exclusion violated: {overlap} live processes in the critical section")
        }),
    }
}

// ---------------------------------------------------------------------------
// Family cells
// ---------------------------------------------------------------------------

fn mutex_cell(seed: u64) -> CellReport {
    let pids = [pid(1), pid(2)];
    let plan = FaultPlan::random(seed, &pids, &FaultProfile::default());
    let mutex = AnonymousMutex::new(5).expect("5 is odd and >= 3");
    let locks: Vec<Box<dyn FaultyLock>> = pids
        .iter()
        .map(|&p| {
            Box::new(mutex.faulty_handle(p, &plan).expect("fresh pid and slot"))
                as Box<dyn FaultyLock>
        })
        .collect();
    lock_cell(locks, &plan, &pids)
}

fn hybrid_cell(seed: u64) -> CellReport {
    let pids = [pid(1), pid(2)];
    let plan = FaultPlan::random(seed, &pids, &FaultProfile::default());
    let mutex = HybridAnonymousMutex::new(2).expect("any m >= 2 works");
    let locks: Vec<Box<dyn FaultyLock>> = pids
        .iter()
        .map(|&p| {
            Box::new(mutex.faulty_handle(p, &plan).expect("fresh pid and slot"))
                as Box<dyn FaultyLock>
        })
        .collect();
    lock_cell(locks, &plan, &pids)
}

fn ordered_cell(seed: u64) -> CellReport {
    let pids = [pid(1), pid(2)];
    let plan = FaultPlan::random(seed, &pids, &FaultProfile::default());
    let m = 4; // even m: legal in the arbitrary-comparisons model (E13)
    let memory: Arc<AnonymousMemory<PackedAtomicRegister<u64>>> = Arc::new(AnonymousMemory::new(m));
    let cell = Arc::new(FaultCell::new());
    let locks: Vec<Box<dyn FaultyLock>> = pids
        .iter()
        .map(|&p| {
            let memory = Arc::clone(&memory);
            let driver = FaultyDriver::new(
                p,
                move |incarnation| {
                    let machine = OrderedMutex::new(p, m)
                        .expect("m >= 2")
                        .with_cycles(LOCK_CYCLES);
                    let mut rng = Rng64::seed_from_u64(
                        seed ^ p.get().wrapping_mul(0x9e37_79b9) ^ incarnation,
                    );
                    (machine, memory.random_view(&mut rng))
                },
                &plan,
                Arc::clone(&cell),
            );
            Box::new(RawLock {
                driver,
                section: OrderedMutex::section,
            }) as Box<dyn FaultyLock>
        })
        .collect();
    lock_cell(locks, &plan, &pids)
}

fn baseline_cell(seed: u64) -> CellReport {
    let pids = [pid(1), pid(2)];
    let plan = FaultPlan::random(seed, &pids, &FaultProfile::default());
    let memory: Arc<AnonymousMemory<PackedAtomicRegister<u64>>> = Arc::new(AnonymousMemory::new(3));
    let cell = Arc::new(FaultCell::new());
    let locks: Vec<Box<dyn FaultyLock>> = pids
        .iter()
        .enumerate()
        .map(|(slot, &p)| {
            let memory = Arc::clone(&memory);
            let driver = FaultyDriver::new(
                p,
                // Named baseline: every incarnation sees the identity view.
                move |_incarnation| {
                    let machine = Peterson::new(p, slot)
                        .expect("slot is 0 or 1")
                        .with_cycles(LOCK_CYCLES);
                    (machine, memory.view(View::identity(3)))
                },
                &plan,
                Arc::clone(&cell),
            );
            Box::new(RawLock {
                driver,
                section: Peterson::section,
            }) as Box<dyn FaultyLock>
        })
        .collect();
    lock_cell(locks, &plan, &pids)
}

fn consensus_cell(seed: u64) -> CellReport {
    let pids = [pid(1), pid(2), pid(3)];
    let profile = FaultProfile {
        restarts: true, // safe for consensus: a restart re-proposes itself
        ..FaultProfile::default()
    };
    let plan = FaultPlan::random(seed, &pids, &profile);
    let consensus = AnonymousConsensus::new(pids.len()).expect("n > 0");
    let input_of = |p: Pid| p.get() * 7;
    let results: Vec<(Pid, Option<u64>)> = std::thread::scope(|s| {
        let joins: Vec<_> = pids
            .iter()
            .map(|&p| {
                let handle = consensus.handle(p).expect("fresh pid");
                let plan = &plan;
                s.spawn(move || {
                    let decided = handle
                        .propose_with_faults(input_of(p), plan, ONESHOT_BUDGET)
                        .expect("input is nonzero and narrow");
                    (p, decided)
                })
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().expect("proposer panicked"))
            .collect()
    });
    let decided: Vec<u64> = results.iter().filter_map(|&(_, d)| d).collect();
    let violation = if decided.windows(2).any(|w| w[0] != w[1]) {
        Some(format!("agreement violated: decisions {decided:?}"))
    } else if let Some(&value) = decided.first() {
        (!pids.iter().any(|&p| input_of(p) == value))
            .then(|| format!("validity violated: decision {value} was never proposed"))
    } else {
        None
    };
    oneshot_report(&plan, &pids, &results, violation)
}

fn election_cell(seed: u64) -> CellReport {
    let pids = [pid(1), pid(2), pid(3)];
    let profile = FaultProfile {
        restarts: true, // election is consensus on identifiers
        ..FaultProfile::default()
    };
    let plan = FaultPlan::random(seed, &pids, &profile);
    let election = AnonymousElection::new(pids.len()).expect("n > 0");
    let results: Vec<(Pid, Option<Pid>)> = std::thread::scope(|s| {
        let joins: Vec<_> = pids
            .iter()
            .map(|&p| {
                let handle = election.handle(p).expect("fresh pid");
                let plan = &plan;
                s.spawn(move || {
                    let leader = handle
                        .elect_with_faults(plan, ONESHOT_BUDGET)
                        .expect("pid is narrow");
                    (p, leader)
                })
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().expect("participant panicked"))
            .collect()
    });
    let leaders: Vec<Pid> = results.iter().filter_map(|&(_, l)| l).collect();
    let violation = if leaders.windows(2).any(|w| w[0] != w[1]) {
        Some(format!("agreement violated: leaders {leaders:?}"))
    } else if let Some(&leader) = leaders.first() {
        (!pids.contains(&leader))
            .then(|| format!("validity violated: leader {leader:?} is not a participant"))
    } else {
        None
    };
    oneshot_report(&plan, &pids, &results, violation)
}

fn renaming_cell(seed: u64) -> CellReport {
    let pids = [pid(1), pid(2), pid(3)];
    // Crashes and stalls only: a restarted incarnation could claim a
    // second name (see `RenamingHandle::acquire_with_faults`).
    let plan = FaultPlan::random(seed, &pids, &FaultProfile::default());
    let renaming = AnonymousRenaming::new(pids.len()).expect("n > 0");
    let results: Vec<(Pid, Option<u32>)> = std::thread::scope(|s| {
        let joins: Vec<_> = pids
            .iter()
            .map(|&p| {
                let handle = renaming.handle(p).expect("fresh pid");
                let plan = &plan;
                s.spawn(move || (p, handle.acquire_with_faults(plan, ONESHOT_BUDGET)))
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().expect("participant panicked"))
            .collect()
    });
    let mut names: Vec<u32> = results.iter().filter_map(|&(_, n)| n).collect();
    names.sort_unstable();
    let violation = if names.windows(2).any(|w| w[0] == w[1]) {
        Some(format!("uniqueness violated: names {names:?}"))
    } else {
        names
            .iter()
            .find(|&&n| n == 0 || n as usize > pids.len())
            .map(|&n| format!("range violated: name {n} outside 1..={}", pids.len()))
    };
    oneshot_report(&plan, &pids, &results, violation)
}

/// Builds the report for a one-shot cell: a `None` result from a pid the
/// plan scheduled to crash is the expected crash; a `None` from any other
/// pid means the step budget ran out.
fn oneshot_report<T>(
    plan: &FaultPlan,
    pids: &[Pid],
    results: &[(Pid, Option<T>)],
    violation: Option<String>,
) -> CellReport {
    let timed_out = results
        .iter()
        .any(|(p, r)| r.is_none() && !scheduled_crash(plan, *p));
    let (crashes, stalls, restarts) = plan_counts(plan, pids);
    CellReport {
        crashes,
        stalls,
        restarts,
        timed_out,
        violation,
    }
}

// ---------------------------------------------------------------------------
// The deliberately broken fixture
// ---------------------------------------------------------------------------

/// A doorway with no doorway: write one register, announce `Enter`, dwell,
/// announce `Exit`, halt. Mutual exclusion fails as soon as two live
/// processes run concurrently — which the harness must detect, seed in
/// hand, or its clean verdicts mean nothing.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct BrokenDoorway {
    pid: Pid,
    step: u64,
}

impl Machine for BrokenDoorway {
    type Value = u64;
    type Event = MutexEvent;

    fn pid(&self) -> Pid {
        self.pid
    }

    fn register_count(&self) -> usize {
        1
    }

    fn resume(&mut self, _read: Option<u64>) -> Step<u64, MutexEvent> {
        let step = self.step;
        self.step += 1;
        match step {
            0 => Step::Write(0, self.pid.get()),
            1 => Step::Event(MutexEvent::Enter),
            s if s < 2 + BROKEN_DWELL => Step::Read(0),
            s if s == 2 + BROKEN_DWELL => Step::Event(MutexEvent::Exit),
            _ => Step::Halt,
        }
    }
}

/// Three processes, at most one scheduled crash — at least two live
/// survivors walk straight into the unprotected section together.
fn broken_cell(seed: u64) -> CellReport {
    let pids = [pid(1), pid(2), pid(3)];
    let plan = FaultPlan::random(seed, &pids, &FaultProfile::default());
    let memory: Arc<AnonymousMemory<PackedAtomicRegister<u64>>> = Arc::new(AnonymousMemory::new(1));
    let cell = Arc::new(FaultCell::new());
    let in_cs = AtomicUsize::new(0);
    let max_in_cs = AtomicUsize::new(0);
    let barrier = Barrier::new(pids.len());
    let ends: Vec<ThreadEnd> = std::thread::scope(|s| {
        let joins: Vec<_> = pids
            .iter()
            .map(|&p| {
                let memory = Arc::clone(&memory);
                let mut driver = FaultyDriver::new(
                    p,
                    move |_incarnation| {
                        (
                            BrokenDoorway { pid: p, step: 0 },
                            memory.view(View::identity(1)),
                        )
                    },
                    &plan,
                    Arc::clone(&cell),
                );
                let (in_cs, max_in_cs, barrier) = (&in_cs, &max_in_cs, &barrier);
                s.spawn(move || {
                    barrier.wait();
                    let mut entered = false;
                    loop {
                        match driver.advance() {
                            FaultyStep::Op => {}
                            FaultyStep::Event(MutexEvent::Enter) => {
                                entered = true;
                                let now = in_cs.fetch_add(1, Ordering::SeqCst) + 1;
                                max_in_cs.fetch_max(now, Ordering::SeqCst);
                            }
                            FaultyStep::Event(MutexEvent::Exit) => {
                                entered = false;
                                in_cs.fetch_sub(1, Ordering::SeqCst);
                            }
                            FaultyStep::Event(MutexEvent::Aborted) => {}
                            FaultyStep::Halted => return ThreadEnd::Completed,
                            FaultyStep::Crashed => {
                                // A §2-crashed process is not in its
                                // critical section; keep the live count
                                // honest.
                                if entered {
                                    in_cs.fetch_sub(1, Ordering::SeqCst);
                                }
                                return ThreadEnd::Crashed;
                            }
                        }
                    }
                })
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().expect("broken participant panicked"))
            .collect()
    });
    let overlap = max_in_cs.load(Ordering::SeqCst);
    let (crashes, stalls, restarts) = plan_counts(&plan, &pids);
    CellReport {
        crashes,
        stalls,
        restarts,
        timed_out: ends.contains(&ThreadEnd::TimedOut),
        violation: (overlap >= 2).then(|| {
            format!("mutual exclusion violated: {overlap} live processes in the critical section")
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_families_survive_a_short_sweep() {
        for family in FAMILIES {
            let row = sweep(family, 0xE15, 4);
            assert_eq!(row.schedules, 4, "{family}");
            assert_eq!(
                row.violations, 0,
                "{family} violated its safety invariant (seed {:?})",
                row.first_violation_seed
            );
        }
    }

    #[test]
    fn broken_fixture_violates_and_the_seed_replays() {
        let mut found = None;
        for index in 0..32 {
            let seed = schedule_seed(0xBAD, index);
            if run_one(BROKEN, seed).violation.is_some() {
                found = Some(seed);
                break;
            }
        }
        let seed = found.expect("an unprotected doorway must violate within 32 schedules");
        let replay = run_one(BROKEN, seed);
        assert!(
            replay.violation.is_some(),
            "replaying seed {seed} must reproduce the violation"
        );
    }

    #[test]
    fn seeds_are_deterministic_per_schedule() {
        for family in ["mutex", "consensus"] {
            let seed = schedule_seed(7, 3);
            let a = run_one(family, seed);
            let b = run_one(family, seed);
            assert_eq!(
                (a.crashes, a.stalls, a.restarts),
                (b.crashes, b.stalls, b.restarts),
                "{family}: the drawn plan must be a pure function of the seed"
            );
        }
    }

    #[test]
    fn render_and_metrics_cover_all_rows() {
        let rows = vec![sweep("mutex", 1, 2), sweep("renaming", 1, 2)];
        let table = render(&rows);
        assert!(table.contains("violations"));
        assert!(table.contains("mutex"));
        let metrics = metrics(&rows);
        assert_eq!(metrics.len(), 7 * rows.len());
        assert!(metrics.iter().all(|m| m.experiment == "E15"));
    }
}
