//! Backend of the `check lint` subcommand: runs the `anonreg-lint`
//! battery (L1–L6) over every algorithm this reproduction ships, with the
//! per-algorithm wiring — value domains, pid-substitution maps, solo
//! budgets, pack-width predicates — that the generic analyzer cannot
//! guess.
//!
//! Wiring decisions, per lint:
//!
//! - **Domains** contain exactly the values each algorithm can encounter
//!   in the linted two-process configuration: the untouched value
//!   (`Default`) plus everything either process writes. Larger domains
//!   would only add unreachable reads; smaller ones would under-explore.
//! - **L3 maps** swap the two identifiers for the symmetric algorithms.
//!   `OrderedMutex` is symmetric *with arbitrary comparisons* (§2), so
//!   its map must preserve identifier order, not just equality — we use a
//!   monotone renaming instead of a swap. The named baselines rely on
//!   prior agreement (slots) and are asymmetric by design: L3 is skipped
//!   with a reason, not failed.
//! - **L4** is the Figure 1 exit-code obligation and applies to the mutex
//!   family; one-shot objects (consensus, election, renaming) intentionally
//!   leave their records behind, and the named baselines never promised
//!   restoration (Bakery's ticket registers do reset, and we check that).
//! - **L6** uses the runtime's real [`Pack64`](anonreg_runtime) contract:
//!   `ConsRecord` packs as two 32-bit fields; plain `u64` registers hold
//!   identifiers that must stay in 32 bits to survive the same lowering.
//!   `RenRecord` has no `Pack64` lowering (renaming runs only in the
//!   simulator), so its width check is vacuously over the record's id/val.

use anonreg::baseline::{Bakery, LockConsensus, Peterson, SplitterRenaming};
use anonreg::consensus::{AnonConsensus, ConsRecord};
use anonreg::election::AnonElection;
use anonreg::hybrid::HybridMutex;
use anonreg::mutex::AnonMutex;
use anonreg::ordered::OrderedMutex;
use anonreg::renaming::{AnonRenaming, RenRecord};
use anonreg::{Machine, Pid, PidMap};
use anonreg_lint::{
    exit_restores_memory, solo_termination, symmetry, Analysis, CfgConfig, LintId, LintReport,
    Verdict,
};
use std::hash::Hash;

/// The algorithm families `check lint` accepts, in presentation order.
/// `"baselines"` expands to the four named-model baselines.
pub const ALGORITHMS: &[&str] = &[
    "mutex",
    "hybrid",
    "ordered",
    "consensus",
    "election",
    "renaming",
    "baselines",
];

fn pid(n: u64) -> Pid {
    Pid::new(n).expect("lint suite pids are nonzero")
}

/// The identifier substitution for a two-process symmetry check: swap the
/// two pids, fix everything else.
fn pid_swap(a: u64, b: u64) -> impl Fn(Pid) -> Pid {
    move |p| {
        if p.get() == a {
            pid(b)
        } else if p.get() == b {
            pid(a)
        } else {
            p
        }
    }
}

/// `pid_swap` lifted to raw `u64` register values (0 = untouched).
fn value_swap(a: u64, b: u64) -> impl Fn(&u64) -> u64 {
    move |&v| {
        if v == a {
            b
        } else if v == b {
            a
        } else {
            v
        }
    }
}

/// The 32-bit headroom every identifier needs to survive the runtime's
/// `Pack64` lowering (`ConsRecord` packs as `id << 32 | val`).
fn fits_u32(v: &u64) -> bool {
    *v <= u64::from(u32::MAX)
}

fn cons_fits(r: &ConsRecord) -> bool {
    r.id <= u64::from(u32::MAX) && r.val <= u64::from(u32::MAX)
}

fn ren_fits(r: &RenRecord) -> bool {
    r.id <= u64::from(u32::MAX) && r.val <= u64::from(u32::MAX)
}

/// Records L1, L2 and L6 — the lints that need only the machine's own
/// CFG — into `report`.
fn cfg_battery<M, F>(report: &mut LintReport, machine: &M, config: &CfgConfig<M::Value>, fits: F)
where
    M: Machine + Eq + Hash,
    F: Fn(&M::Value) -> bool,
{
    let analysis = Analysis::new(machine, config);
    report.record(LintId::IndexBounds, analysis.index_bounds());
    report.record(LintId::Protocol, analysis.protocol());
    report.record(LintId::PackWidth, analysis.pack_width(fits));
}

fn skip(report: &mut LintReport, lint: LintId, why: &str) {
    report.record(lint, Verdict::Skipped(why.to_string()));
}

/// Figure 1 mutex: `m = 3`, one critical-section cycle, pids 1 and 2.
/// A cycle is ~4m operations solo (mark a majority, read them back,
/// erase on exit); 96 is a comfortable bound.
fn lint_mutex() -> LintReport {
    const M: usize = 3;
    const BUDGET: u64 = 96;
    let mut report = LintReport::new("mutex — AnonMutex (Figure 1), m = 3, 1 cycle");
    let config = CfgConfig::new(vec![0u64, 1, 2]);
    let machine = AnonMutex::new(pid(1), M).unwrap().with_cycles(1);
    cfg_battery(&mut report, &machine, &config, fits_u32);
    report.record(
        LintId::Symmetry,
        symmetry(
            &machine,
            &AnonMutex::new(pid(2), M).unwrap().with_cycles(1),
            value_swap(1, 2),
            &config,
        ),
    );
    report.record(
        LintId::ExitRestoresMemory,
        exit_restores_memory(machine.clone(), vec![0; M], BUDGET),
    );
    report.record(
        LintId::SoloTermination,
        solo_termination(machine, vec![0; M], BUDGET),
    );
    report
}

/// §8 hybrid mutex: `m = 2` anonymous registers plus one named, so 3
/// registers total; same obligations as the anonymous mutex.
fn lint_hybrid() -> LintReport {
    const M: usize = 2;
    const BUDGET: u64 = 96;
    let mut report = LintReport::new("hybrid — HybridMutex (§8), m = 2 (+1 named), 1 cycle");
    let config = CfgConfig::new(vec![0u64, 1, 2]);
    let machine = HybridMutex::new(pid(1), M).unwrap().with_cycles(1);
    cfg_battery(&mut report, &machine, &config, fits_u32);
    report.record(
        LintId::Symmetry,
        symmetry(
            &machine,
            &HybridMutex::new(pid(2), M).unwrap().with_cycles(1),
            value_swap(1, 2),
            &config,
        ),
    );
    report.record(
        LintId::ExitRestoresMemory,
        exit_restores_memory(machine.clone(), vec![0; M + 1], BUDGET),
    );
    report.record(
        LintId::SoloTermination,
        solo_termination(machine, vec![0; M + 1], BUDGET),
    );
    report
}

/// §2 ordered-comparison mutex. Its symmetry license allows *arbitrary*
/// identifier comparisons, so the L3 substitution must preserve order:
/// a's world `{0 < 1 < 2}` maps monotonically onto b's `{0 < 2 < 3}`
/// (own pid 1 → own pid 2, opponent 2 → opponent 3).
fn lint_ordered() -> LintReport {
    const M: usize = 3;
    const BUDGET: u64 = 96;
    let mut report = LintReport::new("ordered — OrderedMutex (§2 variant), m = 3, 1 cycle");
    let config = CfgConfig::new(vec![0u64, 1, 2]);
    let machine = OrderedMutex::new(pid(1), M).unwrap().with_cycles(1);
    cfg_battery(&mut report, &machine, &config, fits_u32);
    let monotone = |v: &u64| match *v {
        0 => 0,
        1 => 2,
        2 => 3,
        other => other,
    };
    report.record(
        LintId::Symmetry,
        symmetry(
            &machine,
            &OrderedMutex::new(pid(2), M).unwrap().with_cycles(1),
            monotone,
            &config,
        ),
    );
    report.record(
        LintId::ExitRestoresMemory,
        exit_restores_memory(machine.clone(), vec![0; M], BUDGET),
    );
    report.record(
        LintId::SoloTermination,
        solo_termination(machine, vec![0; M], BUDGET),
    );
    report
}

/// Figure 2 consensus: `n = 2`, `2n − 1 = 3` registers. Both linted
/// processes propose the same input 7, so the L3 substitution touches
/// only the record's identifier field (`ConsRecord`'s own `PidMap`).
fn lint_consensus() -> LintReport {
    const N: usize = 2;
    const REGISTERS: usize = 2 * N - 1;
    const BUDGET: u64 = 4 * (REGISTERS as u64) * (REGISTERS as u64 + 2) + 64;
    let mut report = LintReport::new("consensus — AnonConsensus (Figure 2), n = 2, 3 registers");
    let config = CfgConfig::new(vec![
        ConsRecord::default(),
        ConsRecord { id: 1, val: 7 },
        ConsRecord { id: 2, val: 7 },
    ]);
    let machine = AnonConsensus::new(pid(1), N, 7).unwrap();
    cfg_battery(&mut report, &machine, &config, cons_fits);
    let swap = pid_swap(1, 2);
    report.record(
        LintId::Symmetry,
        symmetry(
            &machine,
            &AnonConsensus::new(pid(2), N, 7).unwrap(),
            move |r: &ConsRecord| r.map_pids(&mut &swap),
            &config,
        ),
    );
    skip(
        &mut report,
        LintId::ExitRestoresMemory,
        "one-shot object: decided records intentionally persist \
         (restoration is a mutex-exit obligation)",
    );
    report.record(
        LintId::SoloTermination,
        solo_termination(machine, vec![ConsRecord::default(); REGISTERS], BUDGET),
    );
    report
}

/// §4 leader election. Unlike plain consensus, the proposed *values* are
/// themselves identifiers, so the L3 substitution must rewrite both the
/// `id` and `val` fields of every record.
fn lint_election() -> LintReport {
    const N: usize = 2;
    const REGISTERS: usize = 2 * N - 1;
    const BUDGET: u64 = 4 * (REGISTERS as u64) * (REGISTERS as u64 + 2) + 64;
    let mut report = LintReport::new("election — AnonElection (§4), n = 2, 3 registers");
    let config = CfgConfig::new(vec![
        ConsRecord::default(),
        ConsRecord { id: 1, val: 1 },
        ConsRecord { id: 2, val: 2 },
    ]);
    let machine = AnonElection::new(pid(1), N).unwrap();
    cfg_battery(&mut report, &machine, &config, cons_fits);
    let swap = value_swap(1, 2);
    report.record(
        LintId::Symmetry,
        symmetry(
            &machine,
            &AnonElection::new(pid(2), N).unwrap(),
            move |r: &ConsRecord| ConsRecord {
                id: swap(&r.id),
                val: swap(&r.val),
            },
            &config,
        ),
    );
    skip(
        &mut report,
        LintId::ExitRestoresMemory,
        "one-shot object: the elected leader's records intentionally persist",
    );
    report.record(
        LintId::SoloTermination,
        solo_termination(machine, vec![ConsRecord::default(); REGISTERS], BUDGET),
    );
    report
}

/// Figure 3 renaming: `n = 2`, `2n − 1 = 3` registers. The domain covers
/// both rounds a two-process run can reach: round-1 records from either
/// pid, and the round-2 record a loser writes after seeing the round-1
/// leader in its history. `RenRecord`'s `PidMap` rewrites id, val and the
/// history set in one go.
fn lint_renaming() -> LintReport {
    const N: usize = 2;
    const REGISTERS: usize = 2 * N - 1;
    const BUDGET: u64 = 2 * (4 * (REGISTERS as u64) * (REGISTERS as u64 + 2) + 64);
    let mut report = LintReport::new("renaming — AnonRenaming (Figure 3), n = 2, 3 registers");
    let round1 = |id: u64, val: u64| RenRecord {
        id,
        val,
        round: 1,
        history: std::collections::BTreeSet::new(),
    };
    let round2 = |id: u64, leader: u64| RenRecord {
        id,
        val: id,
        round: 2,
        history: [(leader, 1)].into_iter().collect(),
    };
    let config = CfgConfig::new(vec![
        RenRecord::default(),
        round1(1, 1),
        round1(1, 2),
        round1(2, 1),
        round1(2, 2),
        round2(1, 2),
        round2(2, 1),
    ]);
    let machine = AnonRenaming::new(pid(1), N).unwrap();
    cfg_battery(&mut report, &machine, &config, ren_fits);
    let swap = pid_swap(1, 2);
    report.record(
        LintId::Symmetry,
        symmetry(
            &machine,
            &AnonRenaming::new(pid(2), N).unwrap(),
            move |r: &RenRecord| r.map_pids(&mut &swap),
            &config,
        ),
    );
    skip(
        &mut report,
        LintId::ExitRestoresMemory,
        "one-shot object: name-claim records intentionally persist",
    );
    report.record(
        LintId::SoloTermination,
        solo_termination(machine, vec![RenRecord::default(); REGISTERS], BUDGET),
    );
    report
}

/// The four named-model baselines. They exist to be compared against, not
/// to satisfy the paper's anonymous-model obligations: L3 is skipped
/// (slots are prior agreement — asymmetry is their point) and L4 is
/// skipped where the algorithm intentionally leaves state behind
/// (Peterson's turn register, the lock-consensus decision register,
/// splitter doors). Bakery does promise clean ticket registers, so its
/// L4 runs for real.
fn lint_baselines() -> Vec<LintReport> {
    const SLOT_SKIP: &str =
        "named baseline: slots are prior agreement, asymmetric by design (cf. §1)";
    let mut reports = Vec::new();

    {
        let mut report = LintReport::new("baseline/peterson — Peterson, 2 slots, 1 cycle");
        let config = CfgConfig::new(vec![0u64, 1, 2]);
        let machine = Peterson::new(pid(1), 0).unwrap().with_cycles(1);
        cfg_battery(&mut report, &machine, &config, fits_u32);
        skip(&mut report, LintId::Symmetry, SLOT_SKIP);
        skip(
            &mut report,
            LintId::ExitRestoresMemory,
            "Peterson leaves the turn register set after exit by design",
        );
        report.record(
            LintId::SoloTermination,
            solo_termination(machine, vec![0; 3], 64),
        );
        reports.push(report);
    }

    {
        let mut report = LintReport::new("baseline/bakery — Bakery, n = 2, 1 cycle");
        let config = CfgConfig::new(vec![0u64, 1, 2]);
        let machine = Bakery::new(pid(1), 0, 2).unwrap().with_cycles(1);
        cfg_battery(&mut report, &machine, &config, fits_u32);
        skip(&mut report, LintId::Symmetry, SLOT_SKIP);
        report.record(
            LintId::ExitRestoresMemory,
            exit_restores_memory(machine.clone(), vec![0; 4], 96),
        );
        report.record(
            LintId::SoloTermination,
            solo_termination(machine, vec![0; 4], 96),
        );
        reports.push(report);
    }

    {
        let mut report = LintReport::new("baseline/lock-consensus — LockConsensus, n = 2, input 7");
        let config = CfgConfig::new(vec![0u64, 1, 2, 7]);
        let machine = LockConsensus::new(pid(1), 0, 2, 7).unwrap();
        cfg_battery(&mut report, &machine, &config, fits_u32);
        skip(&mut report, LintId::Symmetry, SLOT_SKIP);
        skip(
            &mut report,
            LintId::ExitRestoresMemory,
            "the decision register intentionally retains the decided value",
        );
        report.record(
            LintId::SoloTermination,
            solo_termination(machine, vec![0; 5], 96),
        );
        reports.push(report);
    }

    {
        let mut report =
            LintReport::new("baseline/splitter — SplitterRenaming, n = 2, 3 splitters");
        let machine = SplitterRenaming::new(pid(1), 2).unwrap();
        let registers = machine.register_count();
        // The splitter grid has a hard at-most-n-participants precondition
        // (it panics, documented, when exhausted). Abstract resumption
        // feeds adversarial reads that simulate unboundedly many
        // participants, so the CFG lints would report that contract-correct
        // panic as a violation; only the concrete solo lint applies.
        const GRID_SKIP: &str = "abstract reads simulate more than n participants, which the \
                                 splitter grid rejects by contract; CFG lints do not apply";
        skip(&mut report, LintId::IndexBounds, GRID_SKIP);
        skip(&mut report, LintId::Protocol, GRID_SKIP);
        skip(&mut report, LintId::PackWidth, GRID_SKIP);
        skip(
            &mut report,
            LintId::Symmetry,
            "named baseline: splitter grid addressing is identity-free but \
             compared against the anonymous model, not linted for §2 symmetry",
        );
        skip(
            &mut report,
            LintId::ExitRestoresMemory,
            "splitter doors stay closed after acquisition by design",
        );
        report.record(
            LintId::SoloTermination,
            solo_termination(machine, vec![0; registers], 96),
        );
        reports.push(report);
    }

    reports
}

/// Runs the battery for one algorithm family; `None` for unknown names.
/// `"baselines"` yields four reports, every other family one.
#[must_use]
pub fn lint_algorithm(name: &str) -> Option<Vec<LintReport>> {
    match name {
        "mutex" => Some(vec![lint_mutex()]),
        "hybrid" => Some(vec![lint_hybrid()]),
        "ordered" => Some(vec![lint_ordered()]),
        "consensus" => Some(vec![lint_consensus()]),
        "election" => Some(vec![lint_election()]),
        "renaming" => Some(vec![lint_renaming()]),
        "baselines" => Some(lint_baselines()),
        _ => None,
    }
}

/// Runs the battery over every shipped algorithm family.
#[must_use]
pub fn lint_all() -> Vec<LintReport> {
    ALGORITHMS
        .iter()
        .flat_map(|name| lint_algorithm(name).expect("ALGORITHMS entries are wired"))
        .collect()
}

/// Runs each lint against its negative fixture from
/// [`anonreg_lint::fixtures`] — a demonstration (and regression check)
/// that every lint actually fires, witness attached. Every report in the
/// result is expected to fail.
#[must_use]
pub fn lint_fixtures() -> Vec<LintReport> {
    use anonreg_lint::fixtures::{
        Asymmetric, Diverger, Flicker, Messy, OutOfBounds, WideWriter, Zombie,
    };
    let config = CfgConfig::new(vec![0u64, 1, 2]);
    let mut reports = Vec::new();

    let mut l1 = LintReport::new("fixture/out-of-bounds (trips L1)");
    l1.record(
        LintId::IndexBounds,
        Analysis::new(&OutOfBounds::new(3), &config).index_bounds(),
    );
    reports.push(l1);

    let mut l2a = LintReport::new("fixture/flicker (trips L2: nondeterminism)");
    l2a.record(
        LintId::Protocol,
        Analysis::new(&Flicker::new(), &config).protocol(),
    );
    reports.push(l2a);

    let mut l2b = LintReport::new("fixture/zombie (trips L2: steps after Halt)");
    l2b.record(
        LintId::Protocol,
        Analysis::new(&Zombie::new(), &config).protocol(),
    );
    reports.push(l2b);

    let mut l3 = LintReport::new("fixture/asymmetric (trips L3)");
    l3.record(
        LintId::Symmetry,
        symmetry(
            &Asymmetric::new(pid(1)),
            &Asymmetric::new(pid(2)),
            value_swap(1, 2),
            &config,
        ),
    );
    reports.push(l3);

    let mut l4 = LintReport::new("fixture/messy (trips L4)");
    l4.record(
        LintId::ExitRestoresMemory,
        exit_restores_memory(Messy::new(), vec![0], 64),
    );
    reports.push(l4);

    let mut l5 = LintReport::new("fixture/diverger (trips L5)");
    l5.record(
        LintId::SoloTermination,
        solo_termination(Diverger::new(), vec![0], 64),
    );
    reports.push(l5);

    let mut l6 = LintReport::new("fixture/wide-writer (trips L6)");
    l6.record(
        LintId::PackWidth,
        Analysis::new(&WideWriter::new(), &config).pack_width(fits_u32),
    );
    reports.push(l6);

    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_shipped_algorithm_is_lint_clean() {
        for report in lint_all() {
            assert!(report.passed(), "{report}");
            // Only deliberate skips: no state-space blowups in the wired
            // configurations.
            for (lint, why) in report.skipped() {
                assert!(
                    !why.contains("state space"),
                    "{}: {lint:?} skipped for size: {why}",
                    report.subject
                );
            }
        }
    }

    #[test]
    fn every_fixture_report_fails_with_a_witness() {
        let reports = lint_fixtures();
        assert_eq!(reports.len(), 7);
        for report in reports {
            assert!(!report.passed(), "{report}");
            assert!(
                report.findings().iter().all(|f| !f.witness.is_empty()),
                "{}",
                report.subject
            );
        }
    }

    #[test]
    fn unknown_algorithms_are_rejected() {
        assert!(lint_algorithm("paxos").is_none());
    }

    #[test]
    fn the_mutex_family_checks_all_six_lints_for_real() {
        for name in ["mutex", "hybrid", "ordered"] {
            let report = lint_algorithm(name).unwrap().pop().unwrap();
            assert_eq!(report.results.len(), 6, "{}", report.subject);
            assert!(report.skipped().is_empty(), "{}", report.subject);
        }
    }
}
