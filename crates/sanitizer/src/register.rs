//! The sanitized register: store histories, per-slot vector clocks,
//! acquire/release edge tracking, and the weak-read observation model.
//!
//! Modeled on the vector-clock atomic sanitizer the SNIPPETS exemplar
//! describes: every register keeps a bounded history of stores, each
//! stamped with the writer's clock and the store's ordering; every load
//! picks a store the memory model permits, applies the synchronizes-with
//! edge if (and only if) the store was a release and the load an acquire,
//! and flags a [`MissingEdge`](crate::report::ViolationKind) when a
//! foreign value is consumed with no happens-before path to its store.
//!
//! # The observation model
//!
//! This is "sequential consistency per location, with bounded staleness" —
//! a deliberately checkable over-approximation of C11, documented rather
//! than hidden:
//!
//! * Stores to one register are totally ordered (their `seq`), as C11
//!   coherence orders them.
//! * A `SeqCst` load returns the newest store and joins the global SC
//!   clock — the linearizable register of the paper's §2.
//! * A weaker load may return *any* store no older than the reader's
//!   visibility floor: the newest store already happens-before the reader,
//!   or the newest store the reader itself has observed on that register
//!   (read-read coherence), whichever is later. The choice is made by the
//!   context's seeded RNG, so runs replay deterministically.
//! * `SeqCst` operations additionally join a global SC clock both ways,
//!   modeling the single total order all `SeqCst` operations share.
//!
//! What the model does *not* capture (and the certificates therefore
//! cannot speak to): reordering of operations on different registers
//! within one thread, non-multi-copy-atomic propagation, and release
//! sequences through read-modify-writes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;

use anonreg_model::rng::Rng64;
use anonreg_model::RegisterValue;
use anonreg_obs::{Metric, Probe};
use anonreg_runtime::Register;

use crate::clock::VectorClock;
use crate::plan::{is_acquire, is_release, OrderingPlan, Site};
use crate::report::{OrderingViolation, ViolationKind};

/// Tuning knobs for one sanitizer context.
#[derive(Clone, Copy, Debug)]
pub struct SanitizerConfig {
    /// Stores retained per register (the stale-read window). The newest
    /// store is always retained.
    pub history: usize,
    /// Whether non-`SeqCst` loads may return stale (older) stores. With
    /// this off, only the happens-before edge check remains.
    pub stale_reads: bool,
    /// Seed for the deterministic stale-store choice.
    pub seed: u64,
    /// Operations kept in the witness ring buffer.
    pub witness: usize,
    /// Violations retained verbatim (the total is always counted).
    pub max_violations: usize,
}

impl Default for SanitizerConfig {
    fn default() -> Self {
        SanitizerConfig {
            history: 16,
            stale_reads: true,
            seed: 0,
            witness: 48,
            max_violations: 16,
        }
    }
}

/// Everything the sanitizer counted and flagged, cloned out of a context.
#[derive(Clone, Debug, Default)]
pub struct CtxSnapshot {
    /// Sanitized loads performed.
    pub reads: u64,
    /// Sanitized stores performed.
    pub writes: u64,
    /// Unchecked relaxed peeks (hint loads) performed.
    pub peeks: u64,
    /// Synchronizes-with edges established (release store → acquire load).
    pub hb_edges: u64,
    /// Loads that returned a non-newest store.
    pub stale_reads: u64,
    /// Total ordering violations flagged (may exceed `violations.len()`
    /// when the retention cap was hit).
    pub violation_count: u64,
    /// The retained violations, in order of discovery.
    pub violations: Vec<OrderingViolation>,
}

impl CtxSnapshot {
    /// Emits the sanitizer counters to a [`Probe`] under the schema-v1
    /// metric names (`ordering_violations`, `hb_edges`, `stale_reads`).
    pub fn emit<P: Probe>(&self, probe: &P) {
        probe.counter(Metric::OrderingViolations, 0, self.violation_count);
        probe.counter(Metric::HbEdges, 0, self.hb_edges);
        probe.counter(Metric::StaleReads, 0, self.stale_reads);
    }
}

/// Mutable sanitizer state, behind the context's single mutex.
struct CtxState {
    clocks: Vec<VectorClock>,
    sc_clock: VectorClock,
    rng: Rng64,
    threads: HashMap<ThreadId, usize>,
    next_register: usize,
    op_index: u64,
    oplog: Vec<String>,
    reads: u64,
    writes: u64,
    hb_edges: u64,
    stale_reads: u64,
    violation_count: u64,
    violations: Vec<OrderingViolation>,
}

impl CtxState {
    fn ensure_slot(&mut self, slot: usize) {
        if self.clocks.len() <= slot {
            self.clocks.resize(slot + 1, VectorClock::new());
        }
    }

    fn log_op(&mut self, witness: usize, line: String) {
        self.op_index += 1;
        if self.oplog.len() == witness {
            self.oplog.remove(0);
        }
        self.oplog.push(format!("{}. {line}", self.op_index));
    }
}

/// Shared sanitizer context: one per sanitized memory. All registers of a
/// run attach to the same context so acquire/release edges compose across
/// registers.
pub struct SanitizerCtx {
    plan: OrderingPlan,
    config: SanitizerConfig,
    peeks: AtomicU64,
    state: Mutex<CtxState>,
}

impl SanitizerCtx {
    /// Creates a context executing under `plan`.
    #[must_use]
    pub fn new(config: SanitizerConfig, plan: OrderingPlan) -> Self {
        SanitizerCtx {
            plan,
            config,
            peeks: AtomicU64::new(0),
            state: Mutex::new(CtxState {
                clocks: Vec::new(),
                sc_clock: VectorClock::new(),
                rng: Rng64::seed_from_u64(config.seed ^ 0x5a6e_1717_c0ff_ee00),
                threads: HashMap::new(),
                next_register: 0,
                op_index: 0,
                oplog: Vec::new(),
                reads: 0,
                writes: 0,
                hb_edges: 0,
                stale_reads: 0,
                violation_count: 0,
                violations: Vec::new(),
            }),
        }
    }

    /// The ordering plan this context executes under.
    #[must_use]
    pub fn plan(&self) -> OrderingPlan {
        self.plan
    }

    /// The configuration this context was built with.
    #[must_use]
    pub fn config(&self) -> SanitizerConfig {
        self.config
    }

    /// Clones out counters and retained violations.
    ///
    /// # Panics
    ///
    /// Panics if the context mutex was poisoned.
    #[must_use]
    pub fn snapshot(&self) -> CtxSnapshot {
        let st = self.state.lock().expect("sanitizer state poisoned");
        CtxSnapshot {
            reads: st.reads,
            writes: st.writes,
            peeks: self.peeks.load(Ordering::Relaxed),
            hb_edges: st.hb_edges,
            stale_reads: st.stale_reads,
            violation_count: st.violation_count,
            violations: st.violations.clone(),
        }
    }

    /// The slot assigned to the calling thread, assigning the next free
    /// one on first use. Drop-in (`Register` trait) mode only; executor
    /// runs pass explicit slots and must not mix with thread mode on the
    /// same context.
    ///
    /// # Panics
    ///
    /// Panics if the context mutex was poisoned.
    #[must_use]
    pub fn thread_slot(&self) -> usize {
        let mut st = self.state.lock().expect("sanitizer state poisoned");
        let next = st.threads.len();
        *st.threads
            .entry(std::thread::current().id())
            .or_insert(next)
    }

    fn alloc_register(&self) -> usize {
        let mut st = self.state.lock().expect("sanitizer state poisoned");
        let id = st.next_register;
        st.next_register += 1;
        id
    }
}

impl std::fmt::Debug for SanitizerCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("SanitizerCtx")
            .field("plan", &self.plan.label())
            .field("reads", &snap.reads)
            .field("writes", &snap.writes)
            .field("violations", &snap.violation_count)
            .finish()
    }
}

/// One store in a register's history.
struct StoreRecord<V> {
    seq: u64,
    /// `None` marks the initial value (happens-before everything).
    writer: Option<usize>,
    value: V,
    clock: VectorClock,
    ordering: Ordering,
}

struct RegInner<V> {
    stores: Vec<StoreRecord<V>>,
    next_seq: u64,
    /// Per-slot newest observed `seq` — read-read coherence.
    last_seen: Vec<u64>,
}

/// A register whose every operation takes an explicit [`Ordering`] and is
/// checked against the vector-clock happens-before model.
///
/// Implements [`Register<V>`], so it drops into [`AnonymousMemory`],
/// [`Driver`](anonreg_runtime::Driver) and
/// [`FaultyDriver`](anonreg_runtime::FaultyDriver) unchanged: trait reads
/// and writes pick their orderings from the context's [`OrderingPlan`]
/// (writes classified claim/clear by value), and the thread is mapped to a
/// slot on first use. For deterministic runs use
/// [`SanitizedExec`](crate::exec::SanitizedExec), which passes explicit
/// slots.
///
/// [`AnonymousMemory`]: anonreg_runtime::AnonymousMemory
pub struct SanitizedRegister<V> {
    ctx: Arc<SanitizerCtx>,
    id: usize,
    inner: Mutex<RegInner<V>>,
}

impl<V: RegisterValue> SanitizedRegister<V> {
    /// Creates a register attached to a shared context, holding `initial`.
    #[must_use]
    pub fn attached(ctx: &Arc<SanitizerCtx>, initial: V) -> Self {
        let id = ctx.alloc_register();
        SanitizedRegister {
            ctx: Arc::clone(ctx),
            id,
            inner: Mutex::new(RegInner {
                stores: vec![StoreRecord {
                    seq: 0,
                    writer: None,
                    value: initial,
                    clock: VectorClock::new(),
                    ordering: Ordering::SeqCst,
                }],
                next_seq: 1,
                last_seen: Vec::new(),
            }),
        }
    }

    /// The context this register reports to.
    #[must_use]
    pub fn ctx(&self) -> &Arc<SanitizerCtx> {
        &self.ctx
    }

    /// This register's physical index within its context.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Loads with an explicit ordering on behalf of `slot`.
    ///
    /// # Panics
    ///
    /// Panics if a sanitizer mutex was poisoned.
    #[must_use]
    pub fn read_as(&self, slot: usize, ordering: Ordering) -> V {
        let mut st = self.ctx.state.lock().expect("sanitizer state poisoned");
        let mut reg = self.inner.lock().expect("sanitized register poisoned");
        let st = &mut *st;
        st.ensure_slot(slot);
        st.clocks[slot].tick(slot);
        if ordering == Ordering::SeqCst {
            let sc = st.sc_clock.clone();
            st.clocks[slot].join(&sc);
            st.sc_clock.join(&st.clocks[slot]);
        }
        if reg.last_seen.len() <= slot {
            reg.last_seen.resize(slot + 1, 0);
        }

        // Visibility floor: the newest store already ordered before this
        // read, or the newest store this slot has itself observed.
        let hb_floor = reg
            .stores
            .iter()
            .filter(|s| s.clock.le(&st.clocks[slot]))
            .map(|s| s.seq)
            .max()
            .unwrap_or(0);
        let floor = hb_floor.max(reg.last_seen[slot]);
        let newest = reg.stores.last().expect("history never empty").seq;

        let chosen = if ordering == Ordering::SeqCst || !self.ctx.config.stale_reads {
            reg.stores.len() - 1
        } else {
            let candidates: Vec<usize> = reg
                .stores
                .iter()
                .enumerate()
                .filter(|(_, s)| s.seq >= floor)
                .map(|(i, _)| i)
                .collect();
            candidates[st.rng.gen_index(candidates.len())]
        };
        let store = &reg.stores[chosen];

        if is_acquire(ordering) && is_release(store.ordering) {
            let release_clock = store.clock.clone();
            st.clocks[slot].join(&release_clock);
            st.hb_edges += 1;
        }
        if store.seq != newest {
            st.stale_reads += 1;
        }

        let value = store.value.clone();
        let (store_seq, store_writer, store_ordering) = (store.seq, store.writer, store.ordering);
        let store_clock_known = store.clock.le(&st.clocks[slot]);
        reg.last_seen[slot] = reg.last_seen[slot].max(store_seq);
        st.reads += 1;
        st.log_op(
            self.ctx.config.witness,
            format!(
                "p{slot} read r{}@{ordering:?} => {value:?} (seq {store_seq} of {newest})",
                self.id
            ),
        );

        if let Some(writer) = store_writer {
            if writer != slot && !store_clock_known {
                st.violation_count += 1;
                if st.violations.len() < self.ctx.config.max_violations {
                    let violation = OrderingViolation {
                        kind: ViolationKind::MissingEdge,
                        register: self.id,
                        reader: slot,
                        writer,
                        read_ordering: ordering,
                        write_ordering: store_ordering,
                        store_seq,
                        op_index: st.op_index,
                        value: format!("{value:?}"),
                        witness: st.oplog.clone(),
                    };
                    st.violations.push(violation);
                }
            }
        }
        value
    }

    /// Stores with an explicit ordering on behalf of `slot`.
    ///
    /// # Panics
    ///
    /// Panics if a sanitizer mutex was poisoned.
    pub fn write_as(&self, slot: usize, value: V, ordering: Ordering) {
        let mut st = self.ctx.state.lock().expect("sanitizer state poisoned");
        let mut reg = self.inner.lock().expect("sanitized register poisoned");
        let st = &mut *st;
        st.ensure_slot(slot);
        st.clocks[slot].tick(slot);
        if ordering == Ordering::SeqCst {
            let sc = st.sc_clock.clone();
            st.clocks[slot].join(&sc);
            st.sc_clock.join(&st.clocks[slot]);
        }
        if reg.last_seen.len() <= slot {
            reg.last_seen.resize(slot + 1, 0);
        }
        let seq = reg.next_seq;
        reg.next_seq += 1;
        reg.last_seen[slot] = seq;
        st.writes += 1;
        st.log_op(
            self.ctx.config.witness,
            format!(
                "p{slot} write r{}@{ordering:?} := {value:?} (seq {seq})",
                self.id
            ),
        );
        reg.stores.push(StoreRecord {
            seq,
            writer: Some(slot),
            value,
            clock: st.clocks[slot].clone(),
            ordering,
        });
        let cap = self.ctx.config.history.max(1);
        if reg.stores.len() > cap {
            let excess = reg.stores.len() - cap;
            reg.stores.drain(..excess);
        }
    }

    /// Compare-and-swap with explicit success/failure orderings, for API
    /// completeness (the paper's machines emit only reads and writes).
    /// Like a C11 RMW it always operates on the newest store in coherence
    /// order; `AcqRel` success decomposes into its acquire and release
    /// halves. Returns `Ok(previous)` on success, `Err(actual)` otherwise.
    ///
    /// # Panics
    ///
    /// Panics if a sanitizer mutex was poisoned.
    pub fn compare_exchange_as(
        &self,
        slot: usize,
        current: &V,
        new: V,
        success: Ordering,
        failure: Ordering,
    ) -> Result<V, V> {
        let observed = {
            let reg = self.inner.lock().expect("sanitized register poisoned");
            reg.stores
                .last()
                .expect("history never empty")
                .value
                .clone()
        };
        if observed == *current {
            // The acquire half: consume the newest store at the success
            // ordering (this also runs the happens-before check)...
            let previous = self.read_as(slot, success);
            // ...then the release half publishes the replacement.
            self.write_as(slot, new, success);
            Ok(previous)
        } else {
            Err(self.read_as(slot, failure))
        }
    }

    /// Uncertified relaxed *hint* load: returns the newest store without
    /// ticking clocks, logging, or happens-before checking. This is the
    /// sanitized counterpart of the runtime's certified
    /// `Register::peek` spin-loop path (certificate `ORD-RT-PEEK-001`):
    /// the value may be stale and must never feed back into algorithm
    /// state.
    ///
    /// # Panics
    ///
    /// Panics if the register mutex was poisoned.
    #[must_use]
    pub fn peek_relaxed(&self) -> V {
        self.ctx.peeks.fetch_add(1, Ordering::Relaxed);
        let reg = self.inner.lock().expect("sanitized register poisoned");
        reg.stores
            .last()
            .expect("history never empty")
            .value
            .clone()
    }

    /// The write site class for `value` under the claim/clear split.
    #[must_use]
    pub fn classify(value: &V) -> Site {
        if *value == V::default() {
            Site::Clear
        } else {
            Site::Claim
        }
    }
}

impl<V: RegisterValue> Register<V> for SanitizedRegister<V> {
    /// Creates a register with a **private** context executing the
    /// all-`SeqCst` plan — the degenerate drop-in case. Cross-register
    /// happens-before needs a shared context: build the memory with
    /// [`sanitized_memory`](crate::sanitized_memory) instead.
    fn new_register(initial: V) -> Self {
        let ctx = Arc::new(SanitizerCtx::new(
            SanitizerConfig::default(),
            OrderingPlan::seq_cst(),
        ));
        SanitizedRegister::attached(&ctx, initial)
    }

    fn read(&self) -> V {
        let slot = self.ctx.thread_slot();
        self.read_as(slot, self.ctx.plan.read)
    }

    fn write(&self, value: V) {
        let slot = self.ctx.thread_slot();
        let ordering = self.ctx.plan.of(Self::classify(&value));
        self.write_as(slot, value, ordering);
    }

    fn peek(&self) -> V {
        self.peek_relaxed()
    }
}

impl<V: RegisterValue> std::fmt::Debug for SanitizedRegister<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SanitizedRegister(r{})", self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(plan: OrderingPlan) -> Arc<SanitizerCtx> {
        Arc::new(SanitizerCtx::new(SanitizerConfig::default(), plan))
    }

    #[test]
    fn seqcst_reads_return_the_newest_store() {
        let ctx = ctx(OrderingPlan::seq_cst());
        let reg: SanitizedRegister<u64> = SanitizedRegister::attached(&ctx, 0);
        reg.write_as(0, 7, Ordering::SeqCst);
        reg.write_as(1, 9, Ordering::SeqCst);
        for _ in 0..8 {
            assert_eq!(reg.read_as(0, Ordering::SeqCst), 9);
        }
        assert_eq!(ctx.snapshot().violation_count, 0);
    }

    #[test]
    fn relaxed_read_of_foreign_release_store_is_flagged() {
        let ctx = ctx(OrderingPlan::seq_cst());
        let reg: SanitizedRegister<u64> = SanitizedRegister::attached(&ctx, 0);
        reg.write_as(0, 5, Ordering::Release);
        // Slot 1 reads relaxed: even when it happens to observe the store,
        // no synchronizes-with edge exists.
        let mut saw_foreign = false;
        for _ in 0..16 {
            if reg.read_as(1, Ordering::Relaxed) == 5 {
                saw_foreign = true;
            }
        }
        assert!(saw_foreign, "the store must eventually be observed");
        let snap = ctx.snapshot();
        assert!(snap.violation_count > 0);
        let v = &snap.violations[0];
        assert_eq!(v.kind, ViolationKind::MissingEdge);
        assert_eq!((v.reader, v.writer), (1, 0));
        assert!(!v.witness.is_empty());
    }

    #[test]
    fn acquire_read_of_release_store_synchronizes() {
        let ctx = ctx(OrderingPlan::seq_cst());
        let reg: SanitizedRegister<u64> = SanitizedRegister::attached(&ctx, 0);
        reg.write_as(0, 5, Ordering::Release);
        for _ in 0..16 {
            let _ = reg.read_as(1, Ordering::Acquire);
        }
        let snap = ctx.snapshot();
        assert_eq!(snap.violation_count, 0);
        assert!(snap.hb_edges > 0);
    }

    #[test]
    fn acquire_read_of_relaxed_store_is_flagged() {
        let ctx = ctx(OrderingPlan::seq_cst());
        let reg: SanitizedRegister<u64> = SanitizedRegister::attached(&ctx, 0);
        reg.write_as(0, 5, Ordering::Relaxed);
        let mut saw_foreign = false;
        for _ in 0..16 {
            if reg.read_as(1, Ordering::Acquire) == 5 {
                saw_foreign = true;
            }
        }
        assert!(saw_foreign);
        assert!(ctx.snapshot().violation_count > 0);
    }

    #[test]
    fn own_overwritten_stores_stay_invisible() {
        // Read-read coherence: once a slot wrote seq 2 it can never read
        // its own overwritten seq 1 again, even relaxed.
        let ctx = ctx(OrderingPlan::seq_cst());
        let reg: SanitizedRegister<u64> = SanitizedRegister::attached(&ctx, 0);
        reg.write_as(0, 1, Ordering::Relaxed);
        reg.write_as(0, 2, Ordering::Relaxed);
        for _ in 0..32 {
            assert_eq!(reg.read_as(0, Ordering::Relaxed), 2);
        }
    }

    #[test]
    fn relaxed_reads_can_be_stale() {
        let ctx = ctx(OrderingPlan::seq_cst());
        let reg: SanitizedRegister<u64> = SanitizedRegister::attached(&ctx, 0);
        reg.write_as(0, 1, Ordering::Release);
        reg.write_as(0, 2, Ordering::Release);
        // A fresh slot has no happens-before to either store: both (plus
        // the initial 0) are legal. One read per slot keeps the draws
        // independent — read-read coherence would pin a single reader to
        // the newest store as soon as it saw it once.
        let mut values = std::collections::HashSet::new();
        for slot in 1..64 {
            values.insert(reg.read_as(slot, Ordering::Acquire));
        }
        assert!(values.len() > 1, "expected stale reads, got {values:?}");
        assert!(ctx.snapshot().stale_reads > 0);
    }

    #[test]
    fn compare_exchange_success_and_failure() {
        let ctx = ctx(OrderingPlan::seq_cst());
        let reg: SanitizedRegister<u64> = SanitizedRegister::attached(&ctx, 0);
        assert_eq!(
            reg.compare_exchange_as(0, &0, 5, Ordering::AcqRel, Ordering::Acquire),
            Ok(0)
        );
        assert_eq!(
            reg.compare_exchange_as(1, &0, 9, Ordering::SeqCst, Ordering::SeqCst),
            Err(5)
        );
        assert_eq!(reg.read_as(0, Ordering::SeqCst), 5);
    }

    #[test]
    fn peek_is_unchecked_and_counted() {
        let ctx = ctx(OrderingPlan::seq_cst());
        let reg: SanitizedRegister<u64> = SanitizedRegister::attached(&ctx, 0);
        reg.write_as(0, 3, Ordering::Relaxed);
        assert_eq!(reg.peek_relaxed(), 3);
        let snap = ctx.snapshot();
        assert_eq!(snap.peeks, 1);
        // A peek is a hint: no violation even though the store was relaxed
        // and the peeker foreign.
        assert_eq!(snap.violation_count, 0);
    }

    #[test]
    fn drop_in_trait_mode_assigns_thread_slots() {
        let reg: SanitizedRegister<u64> = Register::new_register(0);
        reg.write(4);
        assert_eq!(reg.read(), 4);
        assert_eq!(Register::peek(&reg), 4);
        assert_eq!(reg.ctx().snapshot().violation_count, 0);
    }

    #[test]
    fn classify_splits_claim_and_clear() {
        assert_eq!(SanitizedRegister::<u64>::classify(&0), Site::Clear);
        assert_eq!(SanitizedRegister::<u64>::classify(&7), Site::Claim);
    }
}
