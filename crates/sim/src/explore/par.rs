//! The breadth-parallel exploration engine.
//!
//! `run_parallel` explores the same reachable graph as the sequential
//! engine, split across worker threads:
//!
//! * **Sharded dedup table** — state identity lives in `SHARDS`
//!   mutex-striped shards, each mapping a 64-bit code fingerprint to the
//!   `(id, code)` pairs carrying it, where a *code* is the flat canonical
//!   byte encoding produced by the engine's
//!   [`StateEncoder`](crate::canon::StateEncoder). Workers exchange ids,
//!   fingerprints and codes, never full `Simulation` clones; fingerprint
//!   collisions are resolved by comparing code bytes under the shard lock
//!   alone — no cross-stripe probe is needed.
//! * **Interned state store** — the authoritative `Simulation` for each id
//!   is kept once, in `STRIPES` mutex-striped slabs indexed by id. Locks
//!   are always taken shard-then-stripe, so the two stripe sets cannot
//!   deadlock.
//! * **Per-worker frontier deques with work stealing** — each worker pops
//!   depth-first from the back of its own deque (keeps the hot end of the
//!   frontier in cache) and steals breadth-first from the front of a
//!   neighbour's when it runs dry.
//!
//! Termination uses a `pending` counter of discovered-but-unexpanded
//! states: a child is counted *before* it is enqueued and its parent is
//! uncounted only *after* every child has been enqueued, so `pending == 0`
//! with an empty local scan really means the frontier is globally drained.
//!
//! State ids are assigned in race order, so two parallel runs (or a
//! parallel and a sequential run) number states differently. The *graph*
//! is identical up to that renumbering — the property tests in
//! `crates/core/tests/parallel_modelcheck.rs` check graph isomorphism
//! against the sequential engine family by family. Under a symmetry mode
//! the stored representative of an orbit is the first *concrete* state to
//! reach the dedup table, so which member represents an orbit (and hence
//! edge event labels) is racy, but the orbit set — state and edge counts,
//! and every verdict — is deterministic.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use anonreg_model::{Machine, SymmetryMode};
use anonreg_obs::{Metric, Phase, Probe, Profiler, Span};

use super::{
    code_fingerprint, record_timer, report_symmetry, Edge, ExploreConfig, ExploreError,
    FlushedCounters, StateGraph, GAUGE_SAMPLE_EVERY,
};
use crate::canon::StateEncoder;
use crate::Simulation;

/// Number of dedup-table shards. More shards mean less lock contention on
/// interning; 64 keeps per-shard maps dense at a few hundred thousand
/// states while making same-shard collisions between a handful of workers
/// unlikely.
const SHARDS: usize = 64;

/// Number of state-store stripes (independent of `SHARDS`; a state's
/// stripe is chosen by id, its shard by fingerprint).
const STRIPES: usize = 64;

/// How many consecutive empty steal sweeps before an idle worker sleeps
/// instead of spinning. Keeps idle workers cheap when the frontier is
/// momentarily narrower than the worker count (and on single-CPU hosts).
const IDLE_SPINS: u32 = 64;

/// A discovered-but-unexpanded state: its interned id and discovery depth.
type WorkItem = (u32, u32);

/// The interned states sharing one code fingerprint: `(id, code)` pairs.
type CodeBucket = Vec<(u32, Box<[u8]>)>;

/// One dedup shard: code fingerprint → `(id, code)` pairs carrying it.
/// Keeping the flat code next to the id lets the equality probe run
/// entirely under the shard lock, without touching the state store.
/// Dedup hits are tallied by the worker that observed them (so they can
/// be flushed live), not by the shard.
#[derive(Default)]
struct Shard {
    map: HashMap<u64, CodeBucket>,
}

/// The interned states, striped by `id % STRIPES`.
struct StateStore<M: Machine> {
    stripes: Vec<Mutex<Vec<Option<Simulation<M>>>>>,
}

impl<M: Machine + Eq> StateStore<M> {
    fn new() -> Self {
        StateStore {
            stripes: (0..STRIPES).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    fn insert(&self, id: usize, state: Simulation<M>) {
        let mut stripe = self.stripes[id % STRIPES].lock().expect("store lock");
        let slot = id / STRIPES;
        if stripe.len() <= slot {
            stripe.resize_with(slot + 1, || None);
        }
        stripe[slot] = Some(state);
    }

    fn clone_state(&self, id: usize) -> Simulation<M> {
        let stripe = self.stripes[id % STRIPES].lock().expect("store lock");
        stripe[id / STRIPES]
            .as_ref()
            .expect("work items reference interned states")
            .clone()
    }

    /// Drains the store into an id-ordered state vector.
    fn into_states(self, total: usize) -> Vec<Simulation<M>> {
        let mut stripes: Vec<Vec<Option<Simulation<M>>>> = self
            .stripes
            .into_iter()
            .map(|m| m.into_inner().expect("store lock"))
            .collect();
        (0..total)
            .map(|id| {
                stripes[id % STRIPES][id / STRIPES]
                    .take()
                    .expect("every assigned id was interned")
            })
            .collect()
    }
}

/// Everything the workers share.
struct Ctx<M: Machine> {
    shards: Vec<Mutex<Shard>>,
    store: StateStore<M>,
    /// One frontier deque per worker.
    queues: Vec<Mutex<VecDeque<WorkItem>>>,
    /// Next state id to assign.
    next_id: AtomicUsize,
    /// Discovered-but-unexpanded states (see module docs).
    pending: AtomicUsize,
    /// Set when the state limit is hit; all workers stop.
    aborted: AtomicBool,
    /// Maximum discovery depth seen (probe bookkeeping only).
    max_depth: AtomicU64,
    /// Effective state cap (`config.max_states`, clamped to id range).
    max_states: usize,
    crashes: bool,
}

/// The outcome of offering a state to the dedup table.
enum Interned {
    /// The state was new; it now owns this id.
    Fresh(u32),
    /// An equal state was already interned under this id.
    Known(u32),
    /// Interning it would exceed the state limit.
    Limit,
}

/// Offers `state` (with canonical code `code`, fingerprinted as `fp`) to
/// the dedup table.
///
/// Lock order: the fingerprint's shard first, then (inside
/// [`StateStore::insert`]) a store stripe. Equality is decided by code
/// bytes under the shard lock, so a `Known` verdict never touches the
/// state store at all.
fn intern<M>(ctx: &Ctx<M>, fp: u64, code: Box<[u8]>, state: Simulation<M>) -> Interned
where
    M: Machine + Eq + Hash,
{
    let mut shard = ctx.shards[(fp % SHARDS as u64) as usize]
        .lock()
        .expect("shard lock");
    if let Some(entries) = shard.map.get(&fp) {
        for (known, known_code) in entries {
            if **known_code == *code {
                return Interned::Known(*known);
            }
        }
    }
    let id = ctx.next_id.fetch_add(1, Ordering::Relaxed);
    if id >= ctx.max_states {
        return Interned::Limit;
    }
    ctx.store.insert(id, state);
    let id = u32::try_from(id).expect("max_states clamped to u32 range");
    shard.map.entry(fp).or_default().push((id, code));
    Interned::Fresh(id)
}

/// What one worker brings home: its slice of the graph plus its tallies.
struct WorkerOut<M: Machine> {
    /// Outgoing edges of every state this worker expanded.
    edges: Vec<(u32, Vec<Edge<M::Event>>)>,
    /// Discovery parents of every state this worker discovered:
    /// `(child, parent, proc, crash)`.
    parents: Vec<(u32, u32, u32, bool)>,
    /// States expanded.
    expanded: u64,
    /// States this worker discovered (interned as `Fresh`).
    fresh: u64,
    /// Dedup hits this worker observed (interned as `Known`).
    dedup: u64,
    /// Work items stolen from other workers.
    steals: u64,
    /// Transitions recorded.
    edge_total: u64,
}

/// Pops the next work item: own deque from the back, else a sweep of the
/// other workers' deques from the front.
fn pop_work<M: Machine>(me: usize, ctx: &Ctx<M>, steals: &mut u64) -> Option<WorkItem> {
    if let Some(item) = ctx.queues[me].lock().expect("queue lock").pop_back() {
        return Some(item);
    }
    let n = ctx.queues.len();
    for offset in 1..n {
        let victim = (me + offset) % n;
        if let Some(item) = ctx.queues[victim].lock().expect("queue lock").pop_front() {
            *steals += 1;
            return Some(item);
        }
    }
    None
}

/// One worker's main loop.
fn worker<M, P>(
    me: usize,
    ctx: &Ctx<M>,
    probe: &P,
    encoder: &StateEncoder<M>,
    profiler: Option<&Profiler>,
) -> WorkerOut<M>
where
    M: Machine + Eq + Hash,
    P: Probe,
{
    if P::ENABLED {
        probe.span_open(Span::ExploreWorker, me as u64);
    }
    let mut timer = profiler.map(|p| p.timer(me as u64));
    let mut out = WorkerOut {
        edges: Vec::new(),
        parents: Vec::new(),
        expanded: 0,
        fresh: 0,
        dedup: 0,
        steals: 0,
        edge_total: 0,
    };
    // See `run_sequential`: the trivial-orbit fast path is plain
    // encoding, so count it as skipped rather than timing it as
    // canonicalization.
    let track_canon =
        P::ENABLED && encoder.mode() != SymmetryMode::Off && !encoder.skips_trivial_orbits();
    let track_skipped = P::ENABLED && encoder.skips_trivial_orbits();
    let mut canon_nanos = 0u64;
    let mut symmetry_hits = 0u64;
    let mut canon_skipped = 0u64;
    let mut flushed = FlushedCounters::default();
    let mut idle = 0u32;
    'outer: while !ctx.aborted.load(Ordering::SeqCst) {
        if let Some(t) = timer.as_mut() {
            t.switch(Phase::Steal);
        }
        let Some((id, depth)) = pop_work(me, ctx, &mut out.steals) else {
            if ctx.pending.load(Ordering::SeqCst) == 0 {
                break;
            }
            if let Some(t) = timer.as_mut() {
                t.switch(Phase::Idle);
            }
            idle += 1;
            if idle >= IDLE_SPINS {
                std::thread::sleep(std::time::Duration::from_micros(50));
            } else {
                std::thread::yield_now();
            }
            continue;
        };
        idle = 0;
        if let Some(t) = timer.as_mut() {
            t.switch(Phase::Step);
        }
        let state = ctx.store.clone_state(id as usize);
        let mut edges_out = Vec::new();
        for proc in 0..state.process_count() {
            if state.is_halted(proc) {
                continue;
            }
            for crash in [false, true] {
                if crash && !ctx.crashes {
                    continue;
                }
                if let Some(t) = timer.as_mut() {
                    t.switch(Phase::Step);
                }
                let mut next = state.clone();
                if crash {
                    next.crash(proc).expect("slot is valid");
                } else {
                    next.step(proc).expect("slot is valid and not halted");
                }
                let events: Vec<M::Event> =
                    next.trace().events().map(|(_, _, e)| e.clone()).collect();
                next.clear_trace();
                if let Some(t) = timer.as_mut() {
                    t.switch(Phase::Canon);
                }
                let code = if track_canon {
                    let start = Instant::now();
                    let (code, moved) = encoder.encode(&next);
                    canon_nanos += start.elapsed().as_nanos() as u64;
                    symmetry_hits += u64::from(moved);
                    code
                } else {
                    canon_skipped += u64::from(track_skipped);
                    encoder.encode(&next).0
                };
                let fp = code_fingerprint(&code);
                if let Some(t) = timer.as_mut() {
                    t.switch(Phase::Dedup);
                }
                let target = match intern(ctx, fp, code, next) {
                    Interned::Known(t) => {
                        out.dedup += 1;
                        t
                    }
                    Interned::Fresh(t) => {
                        out.fresh += 1;
                        out.parents.push((t, id, proc as u32, crash));
                        // Count the child before enqueueing it so `pending`
                        // never under-reports outstanding work.
                        ctx.pending.fetch_add(1, Ordering::SeqCst);
                        ctx.queues[me]
                            .lock()
                            .expect("queue lock")
                            .push_back((t, depth + 1));
                        if P::ENABLED {
                            ctx.max_depth
                                .fetch_max(u64::from(depth) + 1, Ordering::Relaxed);
                        }
                        t
                    }
                    Interned::Limit => {
                        ctx.aborted.store(true, Ordering::SeqCst);
                        break 'outer;
                    }
                };
                out.edge_total += 1;
                edges_out.push(Edge {
                    proc,
                    target: target as usize,
                    events,
                    crash,
                });
            }
        }
        out.edges.push((id, edges_out));
        out.expanded += 1;
        ctx.pending.fetch_sub(1, Ordering::SeqCst);
        if P::ENABLED && out.expanded % GAUGE_SAMPLE_EVERY as u64 == 0 {
            probe.gauge(
                Metric::ExploreFrontier,
                0,
                ctx.pending.load(Ordering::Relaxed) as u64,
            );
            probe.gauge(
                Metric::ExploreDepth,
                0,
                ctx.max_depth.load(Ordering::Relaxed),
            );
            flushed.flush(probe, me as u64, out.fresh, out.edge_total, out.dedup);
        }
    }
    if P::ENABLED {
        flushed.finish(probe, me as u64, out.fresh, out.edge_total, out.dedup);
        probe.counter(Metric::ExploreSteals, me as u64, out.steals);
        report_symmetry(probe, me as u64, symmetry_hits, canon_nanos, canon_skipped);
        probe.span_close(Span::ExploreWorker, me as u64, out.expanded);
    }
    record_timer(profiler, timer);
    out
}

/// Explores the reachable graph of `initial` with `threads` workers.
pub(super) fn run_parallel<M, P>(
    initial: Simulation<M>,
    config: &ExploreConfig,
    probe: &P,
    threads: usize,
    encoder: &StateEncoder<M>,
    profiler: Option<&Profiler>,
) -> Result<StateGraph<M>, ExploreError>
where
    M: Machine + Eq + Hash,
    P: Probe,
{
    let mut initial = initial;
    initial.clear_trace();

    if P::ENABLED {
        probe.span_open(Span::Explore, 0);
    }

    let ctx = Ctx {
        shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
        store: StateStore::new(),
        queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
        next_id: AtomicUsize::new(0),
        pending: AtomicUsize::new(0),
        aborted: AtomicBool::new(false),
        max_depth: AtomicU64::new(0),
        // Ids are u32; clamp so `intern`'s cast cannot overflow. A graph
        // needing more than 2^32 - 1 states would exhaust memory first.
        max_states: config.max_states.min(u32::MAX as usize),
        crashes: config.crashes,
    };

    let (code, _) = encoder.encode(&initial);
    let fp = code_fingerprint(&code);
    match intern(&ctx, fp, code, initial) {
        Interned::Fresh(id) => debug_assert_eq!(id, 0, "first interned state is state 0"),
        Interned::Known(_) => unreachable!("the dedup table starts empty"),
        Interned::Limit => {
            if P::ENABLED {
                report_totals::<M, P>(probe, 0, 0, &[]);
                probe.span_close(Span::Explore, 0, 0);
            }
            return Err(ExploreError::StateLimitExceeded {
                limit: config.max_states,
            });
        }
    }
    ctx.pending.store(1, Ordering::SeqCst);
    ctx.queues[0].lock().expect("queue lock").push_back((0, 0));

    let outs: Vec<WorkerOut<M>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let ctx = &ctx;
                s.spawn(move || worker(i, ctx, probe, encoder, profiler))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("explorer worker panicked"))
            .collect()
    });

    let total = ctx.next_id.load(Ordering::SeqCst).min(ctx.max_states);
    let edge_total: u64 = outs.iter().map(|o| o.edge_total).sum();

    if ctx.aborted.load(Ordering::SeqCst) {
        if P::ENABLED {
            report_totals(probe, total as u64, edge_total, &outs);
            probe.span_close(Span::Explore, 0, total as u64);
        }
        return Err(ExploreError::StateLimitExceeded {
            limit: config.max_states,
        });
    }

    if P::ENABLED {
        report_totals(probe, total as u64, edge_total, &outs);
        probe.gauge(Metric::ExploreFrontier, 0, 0);
        probe.gauge(
            Metric::ExploreDepth,
            0,
            ctx.max_depth.load(Ordering::Relaxed),
        );
        probe.span_close(Span::Explore, 0, total as u64);
    }

    let mut edges: Vec<Vec<Edge<M::Event>>> = Vec::new();
    edges.resize_with(total, Vec::new);
    let mut parents: Vec<Option<(usize, usize, bool)>> = vec![None; total];
    for out in outs {
        for (id, e) in out.edges {
            edges[id as usize] = e;
        }
        for (child, parent, proc, crash) in out.parents {
            parents[child as usize] = Some((parent as usize, proc as usize, crash));
        }
    }
    let states = ctx.store.into_states(total);

    Ok(StateGraph {
        states,
        edges,
        parents,
    })
}

/// Emits the counter remainders the workers did not flush themselves:
/// the initial interned state (discovered by `run_parallel`, not by any
/// worker) and, on an aborted run, ids assigned past the flushed counts.
/// Dedup hits are fully flushed per worker (keyed by worker index), so
/// only states and edges can have a remainder.
fn report_totals<M: Machine, P: Probe>(probe: &P, states: u64, edges: u64, outs: &[WorkerOut<M>]) {
    let flushed_states: u64 = outs.iter().map(|o| o.fresh).sum();
    let flushed_edges: u64 = outs.iter().map(|o| o.edge_total).sum();
    probe.counter(
        Metric::ExploreStates,
        0,
        states.saturating_sub(flushed_states),
    );
    probe.counter(Metric::ExploreEdges, 0, edges.saturating_sub(flushed_edges));
}
