//! Fault injection for the real-thread runtime.
//!
//! The simulator explores §2's crash transitions exhaustively
//! (`ExploreConfig::crashes`); this module realizes the same failure model
//! on real threads. A [`FaultPlan`] is a seeded, replayable schedule of
//! per-pid fault points expressed in machine-step counts — the same
//! granularity the simulator's scheduler uses — and a [`FaultyDriver`]
//! wraps the plain [`Driver`] to honor it:
//!
//! * **Crash** — abandon the machine mid-protocol with the shared
//!   registers left exactly as written, matching the paper's §2 model of a
//!   crashed process that "permanently refrains from writing the shared
//!   registers" (and the sim's `Transition::Crash`, which discards a
//!   poised write: here the retired driver's pending read value is
//!   discarded the same way).
//! * **Stall** — pause the process until a bounded number of *foreign*
//!   memory operations have happened (observed through a shared
//!   [`FaultCell`]), with a spin-budget fallback so a solo run cannot hang.
//!   This manufactures the adversarial schedules (long delays at the worst
//!   moment) that the paper's adversary is allowed to pick.
//! * **Restart** — crash, then immediately start a *fresh* machine with
//!   the same pid and whatever view the factory mints (typically a new
//!   random permutation). This extends the paper's model: §2 processes
//!   never recover, so restart-safety is an experimental question, not a
//!   theorem — see the E15 notes on which families enable it.
//!
//! Every injected fault increments `Metric::FaultInjected` (and restarts
//! additionally `Metric::FaultRecovered`) keyed by the pid when a live
//! probe is attached, and is appended to a deterministic
//! [`FaultRecord`] log: the log depends only on the plan and the machine,
//! never on cross-thread timing, so one seed replays one schedule.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use anonreg_model::rng::Rng64;
use anonreg_model::{Machine, Pid};
use anonreg_obs::{Metric, NoopProbe, Probe};

use crate::driver::DriverStep;
use crate::{Backoff, Driver, DriverReport, MemoryView, Register};

/// Spin-loop iterations a stall is allowed to burn waiting for foreign
/// ops before giving up. The fallback keeps stalls from hanging a run in
/// which every other participant has crashed or finished.
const STALL_SPIN_BUDGET: u64 = 1 << 16;

/// What a fault point does to the process when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Abandon the machine; registers stay as written, the process never
    /// writes again (§2's crash).
    Crash,
    /// Pause until this many foreign memory operations are observed (or
    /// the spin-budget fallback expires).
    Stall {
        /// Foreign operations to wait for.
        foreign_ops: u64,
    },
    /// Crash, then immediately start a fresh machine with the same pid
    /// and a newly minted view.
    Restart,
}

/// One scheduled fault: fire `kind` once the process has performed
/// `at_op` machine steps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPoint {
    /// Machine-step count (cumulative across restarts) at which to fire.
    pub at_op: u64,
    /// The fault to inject.
    pub kind: FaultKind,
}

/// Knobs for [`FaultPlan::random`]: how aggressive a randomly drawn
/// schedule is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultProfile {
    /// Fault points are drawn uniformly from `0..=window` machine steps.
    pub window: u64,
    /// At most this many processes crash (always leaving ≥ 1 survivor).
    pub max_crashes: usize,
    /// Each process receives up to this many stalls.
    pub max_stalls_per_pid: usize,
    /// Inclusive range of foreign ops a stall waits for.
    pub stall_ops: (u64, u64),
    /// If `true`, roughly half the crash points become restarts.
    pub restarts: bool,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile {
            window: 64,
            max_crashes: 1,
            max_stalls_per_pid: 2,
            stall_ops: (1, 16),
            restarts: false,
        }
    }
}

/// A seeded, replayable schedule of per-pid fault points.
///
/// Plans are pure data: the same plan driven against the same machines
/// produces the same per-process fault log every time, so a stress
/// harness only has to print the seed to make a failure reproducible.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    per_pid: BTreeMap<u64, Vec<FaultPoint>>,
}

impl FaultPlan {
    /// An empty plan carrying `seed` (for reporting; an empty plan injects
    /// nothing).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            per_pid: BTreeMap::new(),
        }
    }

    /// The seed this plan was built from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// `true` if the plan schedules no faults at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.per_pid.values().all(Vec::is_empty)
    }

    /// Total scheduled fault points across all pids.
    #[must_use]
    pub fn len(&self) -> usize {
        self.per_pid.values().map(Vec::len).sum()
    }

    fn push(mut self, pid: Pid, point: FaultPoint) -> Self {
        let points = self.per_pid.entry(pid.get()).or_default();
        // Keep each pid's schedule sorted by firing step (stable for ties).
        let pos = points.partition_point(|p| p.at_op <= point.at_op);
        points.insert(pos, point);
        self
    }

    /// Schedules a crash for `pid` after `at_op` machine steps.
    #[must_use]
    pub fn crash(self, pid: Pid, at_op: u64) -> Self {
        self.push(
            pid,
            FaultPoint {
                at_op,
                kind: FaultKind::Crash,
            },
        )
    }

    /// Schedules a stall for `pid` after `at_op` machine steps, waiting
    /// for `foreign_ops` foreign memory operations.
    #[must_use]
    pub fn stall(self, pid: Pid, at_op: u64, foreign_ops: u64) -> Self {
        self.push(
            pid,
            FaultPoint {
                at_op,
                kind: FaultKind::Stall { foreign_ops },
            },
        )
    }

    /// Schedules a crash-and-restart for `pid` after `at_op` machine
    /// steps.
    #[must_use]
    pub fn restart(self, pid: Pid, at_op: u64) -> Self {
        self.push(
            pid,
            FaultPoint {
                at_op,
                kind: FaultKind::Restart,
            },
        )
    }

    /// The (sorted) fault points scheduled for `pid`.
    #[must_use]
    pub fn for_pid(&self, pid: Pid) -> Vec<FaultPoint> {
        self.per_pid.get(&pid.get()).cloned().unwrap_or_default()
    }

    /// Draws a random plan for `pids` from `seed`: a deterministic
    /// function of its arguments, so a stress harness can replay any
    /// schedule from the seed alone. At least one pid is always spared
    /// from crashing (a run in which everyone crashes asserts nothing).
    #[must_use]
    pub fn random(seed: u64, pids: &[Pid], profile: &FaultProfile) -> Self {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut plan = FaultPlan::new(seed);
        let max_crashes = profile.max_crashes.min(pids.len().saturating_sub(1));
        let crash_count = rng.gen_range_inclusive(0, max_crashes);
        let mut order: Vec<usize> = (0..pids.len()).collect();
        rng.shuffle(&mut order);
        for &i in order.iter().take(crash_count) {
            let at = rng.gen_range_inclusive(0, profile.window as usize) as u64;
            if profile.restarts && rng.gen_index(2) == 0 {
                plan = plan.restart(pids[i], at);
            } else {
                plan = plan.crash(pids[i], at);
            }
        }
        for &pid in pids {
            let stalls = rng.gen_range_inclusive(0, profile.max_stalls_per_pid);
            for _ in 0..stalls {
                let at = rng.gen_range_inclusive(0, profile.window as usize) as u64;
                let ops = rng
                    .gen_range_inclusive(profile.stall_ops.0 as usize, profile.stall_ops.1 as usize)
                    as u64;
                plan = plan.stall(pid, at, ops);
            }
        }
        plan
    }
}

/// Shared op counter linking the [`FaultyDriver`]s of one coordination
/// object, so stalls can count *foreign* operations (total minus own).
#[derive(Debug, Default)]
pub struct FaultCell {
    total_ops: AtomicU64,
}

impl FaultCell {
    /// A fresh cell with zero recorded operations.
    #[must_use]
    pub fn new() -> Self {
        FaultCell::default()
    }

    /// Records one machine step performed by some participant.
    pub fn record_op(&self) {
        self.total_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Total machine steps recorded by all participants so far.
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.total_ops.load(Ordering::Relaxed)
    }
}

/// One injected fault, as it actually fired. The log depends only on the
/// plan and the machine (never on cross-thread timing), so two runs of
/// the same seed produce identical logs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultRecord {
    /// The process's machine-step count when the fault fired.
    pub at_op: u64,
    /// What was injected.
    pub kind: FaultKind,
}

/// Outcome of one [`FaultyDriver`] step: the plain [`DriverStep`] cases
/// plus `Crashed`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultyStep<E> {
    /// The machine performed an atomic read or write.
    Op,
    /// The machine emitted an event.
    Event(E),
    /// The machine halted normally.
    Halted,
    /// The process is crashed (now or previously) and will never step
    /// again.
    Crashed,
}

/// How a bounded faulty drive ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriveOutcome {
    /// The predicate held.
    Satisfied,
    /// The machine halted normally.
    Halted,
    /// The process crashed mid-protocol.
    Crashed,
    /// The step budget ran out first.
    OutOfBudget,
}

/// Factory minting incarnation `i` of a process: its machine and the view
/// it runs under. Incarnation 0 is the original process; higher
/// incarnations are post-restart and typically receive a fresh random
/// view.
type IncarnationFactory<M, R> = Box<dyn FnMut(u64) -> (M, MemoryView<R>) + Send>;

/// A [`Driver`] wrapper that injects the faults a [`FaultPlan`] schedules
/// for one pid: crashes (registers left as-written), stalls (bounded
/// waits for foreign ops), and restarts (fresh machine, same pid, new
/// view).
pub struct FaultyDriver<M: Machine, R, P: Probe = NoopProbe> {
    pid: Pid,
    factory: IncarnationFactory<M, R>,
    driver: Option<Driver<M, R, P>>,
    probe: P,
    backoff: Option<Backoff>,
    schedule: Vec<FaultPoint>,
    next_point: usize,
    cell: Arc<FaultCell>,
    /// Machine steps this process has performed, cumulative across
    /// incarnations; fault points fire against this counter.
    my_ops: u64,
    incarnations: u64,
    crashed: bool,
    log: Vec<FaultRecord>,
}

impl<M, R> FaultyDriver<M, R, NoopProbe>
where
    M: Machine,
    R: Register<M::Value>,
{
    /// Wraps `factory`'s incarnation 0 in a driver honoring `plan`'s
    /// schedule for `pid`. `cell` must be shared with every other
    /// participant of the same coordination object for stalls to observe
    /// foreign progress.
    ///
    /// # Panics
    ///
    /// Panics if the factory's machine does not carry `pid`, or if its
    /// register count disagrees with its view.
    #[must_use]
    pub fn new<F>(pid: Pid, mut factory: F, plan: &FaultPlan, cell: Arc<FaultCell>) -> Self
    where
        F: FnMut(u64) -> (M, MemoryView<R>) + Send + 'static,
    {
        let (machine, view) = factory(0);
        assert_eq!(machine.pid(), pid, "factory must mint machines for pid");
        FaultyDriver {
            pid,
            factory: Box::new(factory),
            driver: Some(Driver::new(machine, view)),
            probe: NoopProbe,
            backoff: None,
            schedule: plan.for_pid(pid),
            next_point: 0,
            cell,
            my_ops: 0,
            incarnations: 1,
            crashed: false,
            log: Vec::new(),
        }
    }
}

impl<M, R, P> FaultyDriver<M, R, P>
where
    M: Machine,
    R: Register<M::Value>,
    P: Probe + Clone,
{
    /// Replaces the probe (applied to the current and all future
    /// incarnations).
    #[must_use]
    pub fn with_probe<P2: Probe + Clone>(self, probe: P2) -> FaultyDriver<M, R, P2> {
        FaultyDriver {
            pid: self.pid,
            factory: self.factory,
            driver: self.driver.map(|d| d.with_probe(probe.clone())),
            probe,
            backoff: self.backoff,
            schedule: self.schedule,
            next_point: self.next_point,
            cell: self.cell,
            my_ops: self.my_ops,
            incarnations: self.incarnations,
            crashed: self.crashed,
            log: self.log,
        }
    }

    /// Enables randomized backoff on the current and all future
    /// incarnations.
    #[must_use]
    pub fn with_backoff(mut self, backoff: Backoff) -> Self {
        self.backoff = Some(backoff);
        self.driver = self.driver.map(|d| d.with_backoff(backoff));
        self
    }

    /// The pid this driver injects faults for.
    #[must_use]
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The live machine, or `None` once crashed.
    #[must_use]
    pub fn machine(&self) -> Option<&M> {
        self.driver.as_ref().map(Driver::machine)
    }

    /// Mutable access to the live machine, for out-of-band control knobs
    /// such as abort requests (same caveats as
    /// [`Driver::machine_mut`]); `None` once crashed.
    pub fn machine_mut(&mut self) -> Option<&mut M> {
        self.driver.as_mut().map(Driver::machine_mut)
    }

    /// The current incarnation's statistics, or `None` once crashed.
    #[must_use]
    pub fn report(&self) -> Option<&DriverReport> {
        self.driver.as_ref().map(Driver::report)
    }

    /// Has this process crashed (with no restart scheduled after)?
    #[must_use]
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Has the machine halted normally?
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.driver.as_ref().is_some_and(Driver::is_halted)
    }

    /// Number of machine incarnations started so far (1 = never
    /// restarted).
    #[must_use]
    pub fn incarnations(&self) -> u64 {
        self.incarnations
    }

    /// The faults injected so far, in firing order.
    #[must_use]
    pub fn fault_log(&self) -> &[FaultRecord] {
        &self.log
    }

    /// Performs one machine step, first firing any fault points the plan
    /// schedules at the current step count.
    pub fn advance(&mut self) -> FaultyStep<M::Event> {
        if self.crashed {
            return FaultyStep::Crashed;
        }
        match self.driver.as_ref() {
            None => return FaultyStep::Crashed,
            Some(d) if d.is_halted() => return FaultyStep::Halted,
            Some(_) => {}
        }
        while let Some(point) = self.schedule.get(self.next_point).copied() {
            if point.at_op > self.my_ops {
                break;
            }
            self.next_point += 1;
            self.log.push(FaultRecord {
                at_op: self.my_ops,
                kind: point.kind,
            });
            if P::ENABLED {
                self.probe.counter(Metric::FaultInjected, self.pid.get(), 1);
            }
            match point.kind {
                FaultKind::Crash => {
                    // Dropping the driver abandons the machine and its
                    // pending read value; the registers keep whatever was
                    // last written (§2: a crashed process "permanently
                    // refrains from writing").
                    self.driver = None;
                    self.crashed = true;
                    return FaultyStep::Crashed;
                }
                FaultKind::Stall { foreign_ops } => self.stall(foreign_ops),
                FaultKind::Restart => self.restart(),
            }
        }
        let driver = self
            .driver
            .as_mut()
            .expect("non-crashed faulty driver always holds a machine");
        let step = match driver.step() {
            DriverStep::Op => FaultyStep::Op,
            DriverStep::Event(event) => FaultyStep::Event(event),
            DriverStep::Halted => return FaultyStep::Halted,
        };
        self.my_ops += 1;
        self.cell.record_op();
        step
    }

    /// Runs until `pred` holds on the live machine, the machine halts,
    /// the process crashes, or `max_steps` machine steps elapse.
    pub fn run_until_bounded<F>(&mut self, mut pred: F, max_steps: u64) -> DriveOutcome
    where
        F: FnMut(&M) -> bool,
    {
        let mut remaining = max_steps;
        loop {
            match self.machine() {
                Some(machine) if pred(machine) => return DriveOutcome::Satisfied,
                None => return DriveOutcome::Crashed,
                Some(_) => {}
            }
            if self.is_halted() {
                return DriveOutcome::Halted;
            }
            if remaining == 0 {
                return DriveOutcome::OutOfBudget;
            }
            remaining -= 1;
            match self.advance() {
                FaultyStep::Crashed => return DriveOutcome::Crashed,
                FaultyStep::Halted => return DriveOutcome::Halted,
                FaultyStep::Op | FaultyStep::Event(_) => {}
            }
        }
    }

    /// Runs until the next event, or `None` if the machine halts, the
    /// process crashes, or the budget runs out first.
    pub fn next_event(&mut self, max_steps: u64) -> Option<M::Event> {
        let mut remaining = max_steps;
        while remaining > 0 {
            remaining -= 1;
            match self.advance() {
                FaultyStep::Event(event) => return Some(event),
                FaultyStep::Op => {}
                FaultyStep::Halted | FaultyStep::Crashed => return None,
            }
        }
        None
    }

    /// Runs to halt (or crash, or budget exhaustion), collecting every
    /// event along the way.
    pub fn run_to_halt(&mut self, max_steps: u64) -> (Vec<M::Event>, DriveOutcome) {
        let mut events = Vec::new();
        let mut remaining = max_steps;
        loop {
            if remaining == 0 {
                return (events, DriveOutcome::OutOfBudget);
            }
            remaining -= 1;
            match self.advance() {
                FaultyStep::Op => {}
                FaultyStep::Event(event) => events.push(event),
                FaultyStep::Halted => return (events, DriveOutcome::Halted),
                FaultyStep::Crashed => return (events, DriveOutcome::Crashed),
            }
        }
    }

    /// Waits until `foreign_ops` foreign machine steps have been recorded
    /// in the shared cell, with a spin-budget fallback so a stall cannot
    /// hang a run whose other participants are all crashed or finished.
    fn stall(&mut self, foreign_ops: u64) {
        let foreign_now = || self.cell.total_ops().saturating_sub(self.my_ops);
        let target = foreign_now().saturating_add(foreign_ops);
        let mut spins: u64 = 0;
        while foreign_now() < target && spins < STALL_SPIN_BUDGET {
            std::hint::spin_loop();
            spins += 1;
            if spins.is_multiple_of(1024) {
                std::thread::yield_now();
            }
        }
    }

    /// Crash-and-recover: abandons the current machine (registers stay as
    /// written) and starts the factory's next incarnation.
    fn restart(&mut self) {
        self.driver = None;
        let (machine, view) = (self.factory)(self.incarnations);
        assert_eq!(
            machine.pid(),
            self.pid,
            "factory must mint machines for pid"
        );
        self.incarnations += 1;
        let mut driver = Driver::new(machine, view);
        if let Some(backoff) = self.backoff {
            driver = driver.with_backoff(backoff);
        }
        self.driver = Some(driver.with_probe(self.probe.clone()));
        if P::ENABLED {
            self.probe
                .counter(Metric::FaultRecovered, self.pid.get(), 1);
        }
    }
}

impl<M: Machine, R, P: Probe> fmt::Debug for FaultyDriver<M, R, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultyDriver")
            .field("pid", &self.pid)
            .field("crashed", &self.crashed)
            .field("my_ops", &self.my_ops)
            .field("incarnations", &self.incarnations)
            .field("log", &self.log)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnonymousMemory, PackedAtomicRegister};
    use anonreg::mutex::{AnonMutex, MutexEvent};
    use anonreg_model::View;
    use anonreg_obs::MemProbe;

    type Mem = AnonymousMemory<PackedAtomicRegister<u64>>;

    fn pid(n: u64) -> Pid {
        Pid::new(n).unwrap()
    }

    fn mutex_factory(
        mem: &Mem,
        id: u64,
    ) -> impl FnMut(u64) -> (AnonMutex, MemoryView<PackedAtomicRegister<u64>>) + Send + 'static
    {
        let mem = mem.clone();
        move |_incarnation| {
            (
                AnonMutex::new(pid(id), 3).unwrap().with_cycles(1),
                mem.view(View::identity(3)),
            )
        }
    }

    #[test]
    fn empty_plan_behaves_like_plain_driver() {
        let mem_a: Mem = AnonymousMemory::new(3);
        let mut plain = Driver::new(
            AnonMutex::new(pid(1), 3).unwrap().with_cycles(1),
            mem_a.view(View::identity(3)),
        );
        let plain_events = plain.run_to_halt();

        let mem_b: Mem = AnonymousMemory::new(3);
        let plan = FaultPlan::new(7);
        let mut faulty = FaultyDriver::new(
            pid(1),
            mutex_factory(&mem_b, 1),
            &plan,
            Arc::new(FaultCell::new()),
        );
        let (events, outcome) = faulty.run_to_halt(10_000);
        assert_eq!(outcome, DriveOutcome::Halted);
        assert_eq!(events, plain_events);
        assert!(faulty.fault_log().is_empty());
        assert_eq!(faulty.incarnations(), 1);
    }

    #[test]
    fn crash_leaves_registers_exactly_as_a_plain_prefix() {
        // A crash after k steps must leave the shared memory identical to
        // a plain driver stopped after k steps: abandoned, not cleaned up.
        for k in [1, 3, 5, 9] {
            let mem_a: Mem = AnonymousMemory::new(3);
            let mut plain = Driver::new(
                AnonMutex::new(pid(1), 3).unwrap().with_cycles(1),
                mem_a.view(View::identity(3)),
            );
            for _ in 0..k {
                plain.step();
            }

            let mem_b: Mem = AnonymousMemory::new(3);
            let plan = FaultPlan::new(0).crash(pid(1), k);
            let mut faulty = FaultyDriver::new(
                pid(1),
                mutex_factory(&mem_b, 1),
                &plan,
                Arc::new(FaultCell::new()),
            );
            let (_, outcome) = faulty.run_to_halt(10_000);
            assert_eq!(outcome, DriveOutcome::Crashed);
            assert!(faulty.is_crashed());
            assert!(faulty.machine().is_none());
            let a = mem_a.view(View::identity(3));
            let b = mem_b.view(View::identity(3));
            for j in 0..3 {
                assert_eq!(a.read::<u64>(j), b.read::<u64>(j), "register {j} at k={k}");
            }
            assert_eq!(
                faulty.fault_log(),
                &[FaultRecord {
                    at_op: k,
                    kind: FaultKind::Crash
                }]
            );
        }
    }

    #[test]
    fn stall_falls_back_when_solo_and_is_logged() {
        let mem: Mem = AnonymousMemory::new(3);
        let plan = FaultPlan::new(0).stall(pid(1), 2, 8);
        let mut faulty = FaultyDriver::new(
            pid(1),
            mutex_factory(&mem, 1),
            &plan,
            Arc::new(FaultCell::new()),
        );
        // Solo: no foreign ops ever arrive; the spin budget bounds the
        // stall and the run still completes.
        let (events, outcome) = faulty.run_to_halt(10_000);
        assert_eq!(outcome, DriveOutcome::Halted);
        assert_eq!(events, vec![MutexEvent::Enter, MutexEvent::Exit]);
        assert_eq!(
            faulty.fault_log(),
            &[FaultRecord {
                at_op: 2,
                kind: FaultKind::Stall { foreign_ops: 8 }
            }]
        );
    }

    #[test]
    fn restart_runs_a_fresh_incarnation_to_completion() {
        let mem: Mem = AnonymousMemory::new(3);
        let plan = FaultPlan::new(0).restart(pid(1), 3);
        let probe = MemProbe::new();
        let mut faulty = FaultyDriver::new(
            pid(1),
            mutex_factory(&mem, 1),
            &plan,
            Arc::new(FaultCell::new()),
        )
        .with_probe(&probe);
        let (events, outcome) = faulty.run_to_halt(10_000);
        assert_eq!(outcome, DriveOutcome::Halted);
        // The fresh incarnation restarts the protocol from scratch and
        // still completes its full cycle.
        assert_eq!(events, vec![MutexEvent::Enter, MutexEvent::Exit]);
        assert_eq!(faulty.incarnations(), 2);
        assert!(!faulty.is_crashed());
        let snap = probe.into_snapshot();
        assert_eq!(snap.counter_total(Metric::FaultInjected), 1);
        assert_eq!(snap.counter_total(Metric::FaultRecovered), 1);
    }

    #[test]
    fn crash_is_sticky_and_later_points_never_fire() {
        let mem: Mem = AnonymousMemory::new(3);
        let plan = FaultPlan::new(0)
            .crash(pid(1), 2)
            .stall(pid(1), 4, 1)
            .restart(pid(1), 6);
        let mut faulty = FaultyDriver::new(
            pid(1),
            mutex_factory(&mem, 1),
            &plan,
            Arc::new(FaultCell::new()),
        );
        let (_, outcome) = faulty.run_to_halt(10_000);
        assert_eq!(outcome, DriveOutcome::Crashed);
        assert_eq!(faulty.fault_log().len(), 1);
        // Re-advancing a crashed process is a no-op.
        assert_eq!(faulty.advance(), FaultyStep::Crashed);
        assert_eq!(faulty.fault_log().len(), 1);
    }

    #[test]
    fn random_plans_are_deterministic_in_the_seed() {
        let pids = [pid(1), pid(2), pid(3)];
        let profile = FaultProfile {
            restarts: true,
            ..FaultProfile::default()
        };
        for seed in 0..50 {
            let a = FaultPlan::random(seed, &pids, &profile);
            let b = FaultPlan::random(seed, &pids, &profile);
            assert_eq!(a, b);
            assert_eq!(a.seed(), seed);
            // At least one pid is spared from crash/restart.
            let spared = pids.iter().any(|p| {
                a.for_pid(*p)
                    .iter()
                    .all(|pt| matches!(pt.kind, FaultKind::Stall { .. }))
            });
            assert!(spared, "seed {seed} crashed every pid");
        }
        assert_ne!(
            FaultPlan::random(1, &pids, &profile),
            FaultPlan::random(2, &pids, &profile),
        );
    }

    #[test]
    fn plan_builder_sorts_points_and_reports_len() {
        let plan = FaultPlan::new(9)
            .stall(pid(2), 10, 4)
            .crash(pid(2), 3)
            .restart(pid(2), 7);
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
        let points = plan.for_pid(pid(2));
        assert_eq!(
            points.iter().map(|p| p.at_op).collect::<Vec<_>>(),
            vec![3, 7, 10]
        );
        assert!(plan.for_pid(pid(5)).is_empty());
        assert!(FaultPlan::new(0).is_empty());
    }
}
