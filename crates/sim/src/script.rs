//! A compact textual language for adversary schedules.
//!
//! The paper's proofs are stories about very specific schedules ("let q run
//! alone until it enters, then release the block write…"). This module lets
//! tests and examples write those stories in one line:
//!
//! | token | meaning |
//! |-------|---------|
//! | `0`, `1`, … | one atomic step of that process |
//! | `0*25` | 25 steps of process 0 |
//! | `0!` | run process 0 until it **covers** a register (poised write) |
//! | `0+` | release process 0's poised write (the block-write move) |
//! | `0#` | crash process 0 |
//! | `0>` | run process 0 solo until it halts (capped at 1,000,000 ops) |
//!
//! Tokens are whitespace separated. Example — the covering skeleton:
//!
//! ```text
//! 1!  0>  1+  1>
//! ```
//! "cover with process 1, run the victim to completion, block write,
//! run the coverer."

use std::fmt;

use anonreg_model::Machine;

use crate::{SimError, Simulation};

/// Error from parsing or running a schedule script.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScriptError {
    /// A token could not be parsed.
    BadToken {
        /// The offending token.
        token: String,
    },
    /// The simulation rejected an action.
    Sim {
        /// The failing token (by index in the script).
        at: usize,
        /// The underlying error.
        error: SimError,
    },
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptError::BadToken { token } => write!(f, "bad schedule token `{token}`"),
            ScriptError::Sim { at, error } => write!(f, "token {at}: {error}"),
        }
    }
}

impl std::error::Error for ScriptError {}

/// Runs a schedule script against the simulation. Returns the number of
/// memory operations performed.
///
/// # Errors
///
/// [`ScriptError::BadToken`] on a malformed script;
/// [`ScriptError::Sim`] if an action is invalid (e.g. stepping a halted
/// process).
///
/// # Example
///
/// The Theorem 6.2 covering skeleton against a 2-process toy:
///
/// ```
/// use anonreg_model::{Machine, Pid, Step, View};
/// use anonreg_sim::{script, Simulation};
///
/// #[derive(Clone, Debug, PartialEq, Eq, Hash)]
/// struct Once(Pid, bool);
/// impl Machine for Once {
///     type Value = u64;
///     type Event = ();
///     fn pid(&self) -> Pid { self.0 }
///     fn register_count(&self) -> usize { 1 }
///     fn resume(&mut self, _r: Option<u64>) -> Step<u64, ()> {
///         if self.1 { Step::Halt } else { self.1 = true; Step::Write(0, self.0.get()) }
///     }
/// }
///
/// let mut sim = Simulation::builder()
///     .process(Once(Pid::new(1).unwrap(), false), View::identity(1))
///     .process(Once(Pid::new(2).unwrap(), false), View::identity(1))
///     .build()?;
/// // Cover with p1, run p0 to completion, release the block write.
/// script::run(&mut sim, "1! 0> 1+")?;
/// assert_eq!(sim.registers(), &[2]); // the block write erased p0's value
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run<M: Machine>(sim: &mut Simulation<M>, script: &str) -> Result<usize, ScriptError> {
    let mut ops = 0;
    for (at, token) in script.split_whitespace().enumerate() {
        let action = parse_token(token).ok_or_else(|| ScriptError::BadToken {
            token: token.to_string(),
        })?;
        let wrap = |error: SimError| ScriptError::Sim { at, error };
        match action {
            Action::Steps(proc, count) => {
                for _ in 0..count {
                    if sim.step(proc).map_err(wrap)?.is_memory_op() {
                        ops += 1;
                    }
                }
            }
            Action::Cover(proc) => {
                sim.step_to_cover(proc).map_err(wrap)?;
            }
            Action::Release(proc) => {
                sim.apply_poised(proc).map_err(wrap)?;
                ops += 1;
            }
            Action::Crash(proc) => {
                sim.crash(proc).map_err(wrap)?;
            }
            Action::Solo(proc) => {
                let (solo_ops, _) = sim.run_solo(proc, 1_000_000).map_err(wrap)?;
                ops += solo_ops;
            }
        }
    }
    Ok(ops)
}

enum Action {
    Steps(usize, usize),
    Cover(usize),
    Release(usize),
    Crash(usize),
    Solo(usize),
}

fn parse_token(token: &str) -> Option<Action> {
    if let Some((proc, count)) = token.split_once('*') {
        return Some(Action::Steps(proc.parse().ok()?, count.parse().ok()?));
    }
    if let Some(proc) = token.strip_suffix('!') {
        return Some(Action::Cover(proc.parse().ok()?));
    }
    if let Some(proc) = token.strip_suffix('+') {
        return Some(Action::Release(proc.parse().ok()?));
    }
    if let Some(proc) = token.strip_suffix('#') {
        return Some(Action::Crash(proc.parse().ok()?));
    }
    if let Some(proc) = token.strip_suffix('>') {
        return Some(Action::Solo(proc.parse().ok()?));
    }
    token.parse().ok().map(|proc| Action::Steps(proc, 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonreg_model::{Pid, Step, View};

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct Stamper {
        pid: Pid,
        k: usize,
    }

    impl Machine for Stamper {
        type Value = u64;
        type Event = ();

        fn pid(&self) -> Pid {
            self.pid
        }

        fn register_count(&self) -> usize {
            2
        }

        fn resume(&mut self, _read: Option<u64>) -> Step<u64, ()> {
            if self.k == 0 {
                Step::Halt
            } else {
                self.k -= 1;
                Step::Write(self.k % 2, self.pid.get())
            }
        }
    }

    fn sim() -> Simulation<Stamper> {
        Simulation::builder()
            .process(
                Stamper {
                    pid: Pid::new(1).unwrap(),
                    k: 4,
                },
                View::identity(2),
            )
            .process(
                Stamper {
                    pid: Pid::new(2).unwrap(),
                    k: 4,
                },
                View::identity(2),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn steps_and_repeats() {
        let mut s = sim();
        let ops = run(&mut s, "0 0 1*3").unwrap();
        assert_eq!(ops, 5);
    }

    #[test]
    fn cover_release_and_solo() {
        let mut s = sim();
        run(&mut s, "1! 0> 1+").unwrap();
        // p0 halted; p1's first (covered) write landed after p0 finished.
        assert!(s.is_halted(0));
        assert!(!s.is_halted(1));
    }

    #[test]
    fn crash_token() {
        let mut s = sim();
        run(&mut s, "0 0#").unwrap();
        assert!(s.is_halted(0));
        // Stepping a crashed process via script errors.
        let err = run(&mut s, "0").unwrap_err();
        assert!(matches!(err, ScriptError::Sim { .. }));
    }

    #[test]
    fn bad_tokens_are_rejected() {
        let mut s = sim();
        for bad in ["x", "0*z", "*4", "0!!", ""] {
            if bad.is_empty() {
                continue;
            }
            assert!(
                matches!(run(&mut s, bad), Err(ScriptError::BadToken { .. })),
                "token {bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn errors_display() {
        assert!(!ScriptError::BadToken { token: "x".into() }
            .to_string()
            .is_empty());
        assert!(!ScriptError::Sim {
            at: 3,
            error: SimError::NoProcesses
        }
        .to_string()
        .is_empty());
    }
}
