//! A hand-rolled JSON value, writer and parser.
//!
//! The workspace builds offline with **zero external dependencies**
//! (README, "Offline builds"), so it cannot use `serde`. Observability
//! needs exactly one wire format — JSON Lines — and this module implements
//! the small subset of JSON it requires: UTF-8 strings, `u64`/`i64`/`f64`
//! numbers, arrays and insertion-ordered objects. The parser is a strict
//! recursive-descent reader used by the schema validator and the trace
//! importer; round-tripping a [`Json`] through [`Json::render`] and
//! [`Json::parse`] is lossless for everything the schema emits.

use std::fmt;

/// A JSON value. Objects preserve insertion order (the schema's field
/// order is part of its golden file), and integers are kept apart from
/// floats so `u64` register values survive a round-trip bit-exactly.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (the common case: counters, ids, values).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A float (only produced for measured quantities, never for ids).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    #[must_use]
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up a field of an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            Json::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any kind of number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(n) => Some(*n as f64),
            Json::I64(n) => Some(*n as f64),
            Json::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact single-line JSON.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
            }
            Json::I64(n) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
            }
            Json::F64(x) => {
                // JSON has no NaN/Inf; clamp to null like every encoder does.
                if x.is_finite() {
                    let _ = fmt::Write::write_fmt(out, format_args!("{x}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a single JSON value from `input` (the whole string must be
    /// consumed, modulo surrounding whitespace).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] locating the first offending byte.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(JsonError {
                pos: parser.pos,
                reason: "trailing characters after the value",
            });
        }
        Ok(value)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse error with the byte offset of the offending input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub pos: usize,
    /// What went wrong.
    pub reason: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.reason, self.pos)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8, reason: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError {
                pos: self.pos,
                reason,
            })
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError {
                pos: self.pos,
                reason: "invalid literal",
            })
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(JsonError {
                pos: self.pos,
                reason: "expected a JSON value",
            }),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => {
                    return Err(JsonError {
                        pos: self.pos,
                        reason: "expected ',' or ']'",
                    })
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => {
                    return Err(JsonError {
                        pos: self.pos,
                        reason: "expected ',' or '}'",
                    })
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the plain run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| JsonError {
                    pos: start,
                    reason: "invalid UTF-8 in string",
                })?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or(JsonError {
                        pos: self.pos,
                        reason: "unterminated escape",
                    })?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs are not emitted by our writer;
                            // decode lone BMP escapes only.
                            out.push(char::from_u32(code).ok_or(JsonError {
                                pos: self.pos,
                                reason: "invalid \\u escape",
                            })?);
                        }
                        _ => {
                            return Err(JsonError {
                                pos: self.pos - 1,
                                reason: "unknown escape",
                            })
                        }
                    }
                }
                _ => {
                    return Err(JsonError {
                        pos: self.pos,
                        reason: "unterminated string",
                    })
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or(JsonError {
                pos: self.pos,
                reason: "truncated \\u escape",
            })?;
            let digit = (b as char).to_digit(16).ok_or(JsonError {
                pos: self.pos,
                reason: "non-hex digit in \\u escape",
            })?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::I64(n));
            }
        }
        text.parse::<f64>().map(Json::F64).map_err(|_| JsonError {
            pos: start,
            reason: "invalid number",
        })
    }
}

/// Types that can render themselves as a [`Json`] value (the encoder half
/// of the trace artifact format).
pub trait JsonEncode {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Types that can be reconstructed from a [`Json`] value (the decoder half
/// of the trace artifact format). Decoding must invert [`JsonEncode`]
/// exactly — the round-trip property tests in `crates/obs/tests` hold every
/// implementation to that.
pub trait JsonDecode: Sized {
    /// Reconstructs the value, or explains why the JSON does not encode one.
    fn from_json(json: &Json) -> Result<Self, JsonError>;
}

const NOT_A_U64: JsonError = JsonError {
    pos: 0,
    reason: "expected a non-negative integer",
};

impl JsonEncode for u64 {
    fn to_json(&self) -> Json {
        Json::U64(*self)
    }
}

impl JsonDecode for u64 {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_u64().ok_or(NOT_A_U64)
    }
}

impl JsonEncode for u32 {
    fn to_json(&self) -> Json {
        Json::U64(u64::from(*self))
    }
}

impl JsonDecode for u32 {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .ok_or(NOT_A_U64)
    }
}

impl JsonEncode for usize {
    fn to_json(&self) -> Json {
        Json::U64(*self as u64)
    }
}

impl JsonDecode for usize {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_u64()
            .and_then(|n| usize::try_from(n).ok())
            .ok_or(NOT_A_U64)
    }
}

impl JsonEncode for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl JsonDecode for bool {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_bool().ok_or(JsonError {
            pos: 0,
            reason: "expected a bool",
        })
    }
}

impl JsonEncode for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl JsonDecode for String {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_str().map(str::to_string).ok_or(JsonError {
            pos: 0,
            reason: "expected a string",
        })
    }
}

impl<T: JsonEncode> JsonEncode for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: JsonDecode> JsonDecode for Option<T> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: JsonEncode> JsonEncode for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(JsonEncode::to_json).collect())
    }
}

impl<T: JsonDecode> JsonDecode for Vec<T> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_arr()
            .ok_or(JsonError {
                pos: 0,
                reason: "expected an array",
            })?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<A: JsonEncode, B: JsonEncode> JsonEncode for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: JsonDecode, B: JsonDecode> JsonDecode for (A, B) {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let items = json.as_arr().ok_or(JsonError {
            pos: 0,
            reason: "expected a 2-element array",
        })?;
        if items.len() != 2 {
            return Err(JsonError {
                pos: 0,
                reason: "expected a 2-element array",
            });
        }
        Ok((A::from_json(&items[0])?, B::from_json(&items[1])?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_reparses_scalars() {
        for value in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::U64(0),
            Json::U64(u64::MAX),
            Json::I64(-42),
            Json::Str("plain".into()),
            Json::Str("esc \"q\" \\ \n \t \u{1} héllo".into()),
        ] {
            let text = value.render();
            assert_eq!(Json::parse(&text).unwrap(), value, "{text}");
        }
    }

    #[test]
    fn renders_and_reparses_composites() {
        let value = Json::obj(vec![
            ("v", Json::U64(1)),
            ("t", Json::Str("counter".into())),
            ("items", Json::Arr(vec![Json::U64(1), Json::Null])),
            ("nested", Json::obj(vec![("x", Json::Bool(false))])),
        ]);
        let text = value.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, value);
        assert_eq!(back.get("t").unwrap().as_str(), Some("counter"));
        assert_eq!(back.get("v").unwrap().as_u64(), Some(1));
        assert_eq!(back.get("items").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn floats_render_finitely() {
        assert_eq!(Json::F64(1.5).render(), "1.5");
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::parse("2.5e3").unwrap().as_f64(), Some(2500.0));
    }

    #[test]
    fn u64_values_survive_exactly() {
        let big = u64::MAX;
        let parsed = Json::parse(&big.to_string()).unwrap();
        assert_eq!(parsed.as_u64(), Some(big));
    }

    #[test]
    fn parse_errors_are_located() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{\"a\":1} trailing").is_err());
        assert!(Json::parse("nul").is_err());
        let err = Json::parse("[1, @]").unwrap_err();
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn codec_roundtrip_for_primitives() {
        fn roundtrip<T: JsonEncode + JsonDecode + PartialEq + std::fmt::Debug>(v: T) {
            assert_eq!(
                T::from_json(&Json::parse(&v.to_json().render()).unwrap()).unwrap(),
                v
            );
        }
        roundtrip(17u64);
        roundtrip(9u32);
        roundtrip(3usize);
        roundtrip(true);
        roundtrip("text".to_string());
        roundtrip(Some(4u64));
        roundtrip(Option::<u64>::None);
        roundtrip(vec![1u64, 2, 3]);
        roundtrip((7u64, "pair".to_string()));
    }
}
