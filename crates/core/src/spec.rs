//! Specification checkers: the paper's correctness properties as executable
//! predicates over recorded [`Trace`]s.
//!
//! Every experiment in the workspace funnels its runs — simulated, model-
//! checked or recorded from real threads — through these checkers:
//!
//! * [`check_mutual_exclusion`] — §3.1: no two processes in their critical
//!   sections at the same time, and well-formed enter/exit bracketing.
//! * [`check_consensus`] — §4: agreement (all deciders decide the same
//!   value), validity (the decision is some participant's input), and at
//!   most one decision per process.
//! * [`check_election`] — §4 note: all outputs name the same participant.
//! * [`check_renaming`] — §5: uniqueness and range (names within `{1..b}`
//!   for a caller-chosen bound `b` — `k` for the adaptivity check of
//!   Theorem 5.3, `n` for plain perfect renaming).
//!
//! Checkers return a [`SpecViolation`] describing the *first* violation in
//! trace order, which — together with the deterministic simulator — makes
//! every counterexample replayable.

use std::collections::BTreeMap;
use std::fmt;

use anonreg_model::trace::Trace;
use anonreg_model::Pid;

use crate::consensus::ConsensusEvent;
use crate::election::ElectionEvent;
use crate::mutex::MutexEvent;
use crate::renaming::RenamingEvent;

/// A violation of one of the paper's correctness properties, as found in a
/// trace. `proc` fields are process slots (`0..n`), not identifiers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecViolation {
    /// Two processes were inside their critical sections at the same time
    /// (§3.1 "Mutual exclusion").
    MutualExclusion {
        /// The process already in its critical section.
        holder: usize,
        /// The process that entered while `holder` was inside.
        intruder: usize,
        /// Index of the offending entry in the trace.
        at: usize,
    },
    /// A process exited a critical section it had not entered, or entered
    /// twice without exiting.
    MalformedCriticalSection {
        /// The offending process.
        proc: usize,
        /// Index of the offending entry in the trace.
        at: usize,
    },
    /// Two processes decided different values (§4 "Agreement").
    Disagreement {
        /// The first decided value.
        first: u64,
        /// The conflicting value.
        second: u64,
        /// Index of the offending entry in the trace.
        at: usize,
    },
    /// A decided value was not any participant's input (§4 "Validity").
    InvalidDecision {
        /// The decided value.
        value: u64,
        /// Index of the offending entry in the trace.
        at: usize,
    },
    /// A process decided (or acquired a name) more than once.
    DoubleOutput {
        /// The offending process.
        proc: usize,
        /// Index of the offending entry in the trace.
        at: usize,
    },
    /// Two processes acquired the same new name (§5 "Uniqueness").
    DuplicateName {
        /// The duplicated name.
        name: u32,
        /// The process that held the name first.
        holder: usize,
        /// The process that acquired it again.
        intruder: usize,
        /// Index of the offending entry in the trace.
        at: usize,
    },
    /// An acquired name fell outside the permitted range (§5 "Adaptivity" /
    /// perfect-renaming range).
    NameOutOfRange {
        /// The acquired name.
        name: u32,
        /// The permitted upper bound (names must be in `1..=bound`).
        bound: u32,
        /// Index of the offending entry in the trace.
        at: usize,
    },
    /// An elected leader was not a participant.
    NonParticipantLeader {
        /// The elected identifier.
        leader: Pid,
        /// Index of the offending entry in the trace.
        at: usize,
    },
}

impl fmt::Display for SpecViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecViolation::MutualExclusion { holder, intruder, at } => write!(
                f,
                "mutual exclusion violated at step {at}: p{intruder} entered while p{holder} was in its critical section"
            ),
            SpecViolation::MalformedCriticalSection { proc, at } => write!(
                f,
                "malformed critical section bracketing by p{proc} at step {at}"
            ),
            SpecViolation::Disagreement { first, second, at } => write!(
                f,
                "agreement violated at step {at}: {second} decided after {first}"
            ),
            SpecViolation::InvalidDecision { value, at } => write!(
                f,
                "validity violated at step {at}: {value} is no participant's input"
            ),
            SpecViolation::DoubleOutput { proc, at } => {
                write!(f, "p{proc} produced a second output at step {at}")
            }
            SpecViolation::DuplicateName { name, holder, intruder, at } => write!(
                f,
                "uniqueness violated at step {at}: p{intruder} acquired name {name} already held by p{holder}"
            ),
            SpecViolation::NameOutOfRange { name, bound, at } => write!(
                f,
                "range violated at step {at}: name {name} outside 1..={bound}"
            ),
            SpecViolation::NonParticipantLeader { leader, at } => write!(
                f,
                "election violated at step {at}: leader {leader} is not a participant"
            ),
        }
    }
}

impl std::error::Error for SpecViolation {}

/// Summary statistics of a mutual exclusion trace that passed the checker.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MutexStats {
    /// Completed critical sections per process slot.
    pub entries: BTreeMap<usize, usize>,
}

impl MutexStats {
    /// Total critical-section entries across all processes.
    #[must_use]
    pub fn total_entries(&self) -> usize {
        self.entries.values().sum()
    }
}

/// Checks mutual exclusion and well-formed enter/exit bracketing over a
/// trace of [`MutexEvent`]s.
///
/// # Errors
///
/// Returns the first [`SpecViolation`] in trace order.
///
/// # Example
///
/// ```
/// use anonreg::spec::check_mutual_exclusion;
/// use anonreg::mutex::MutexEvent;
/// use anonreg::trace::{Trace, TraceOp};
/// use anonreg::Pid;
///
/// let mut t: Trace<u64, MutexEvent> = Trace::new();
/// let p = Pid::new(1).unwrap();
/// t.record(0, p, TraceOp::Event(MutexEvent::Enter));
/// t.record(0, p, TraceOp::Event(MutexEvent::Exit));
/// let stats = check_mutual_exclusion(&t)?;
/// assert_eq!(stats.total_entries(), 1);
/// # Ok::<(), anonreg::spec::SpecViolation>(())
/// ```
pub fn check_mutual_exclusion<V>(
    trace: &Trace<V, MutexEvent>,
) -> Result<MutexStats, SpecViolation> {
    let mut holder: Option<usize> = None;
    let mut stats = MutexStats::default();
    for (at, entry) in trace.iter().enumerate() {
        let event = match &entry.op {
            anonreg_model::trace::TraceOp::Event(e) => *e,
            _ => continue,
        };
        match event {
            MutexEvent::Enter => match holder {
                Some(h) if h == entry.proc => {
                    return Err(SpecViolation::MalformedCriticalSection {
                        proc: entry.proc,
                        at,
                    })
                }
                Some(h) => {
                    return Err(SpecViolation::MutualExclusion {
                        holder: h,
                        intruder: entry.proc,
                        at,
                    })
                }
                None => holder = Some(entry.proc),
            },
            MutexEvent::Exit => match holder {
                Some(h) if h == entry.proc => {
                    holder = None;
                    *stats.entries.entry(entry.proc).or_insert(0) += 1;
                }
                _ => {
                    return Err(SpecViolation::MalformedCriticalSection {
                        proc: entry.proc,
                        at,
                    })
                }
            },
            // An aborted entry attempt never reached the critical section;
            // aborting while *holding* it is malformed.
            MutexEvent::Aborted => {
                if holder == Some(entry.proc) {
                    return Err(SpecViolation::MalformedCriticalSection {
                        proc: entry.proc,
                        at,
                    });
                }
            }
        }
    }
    Ok(stats)
}

/// Summary of a consensus trace that passed the checker.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConsensusStats {
    /// The agreed value, if anyone decided.
    pub decision: Option<u64>,
    /// Processes (by slot) that decided.
    pub deciders: Vec<usize>,
}

/// Checks agreement and validity over a trace of [`ConsensusEvent`]s.
///
/// `inputs[slot]` must be the input value of process slot `slot` (the
/// participants). Validity accepts a decision equal to any participant's
/// input.
///
/// # Errors
///
/// Returns the first [`SpecViolation`] in trace order.
pub fn check_consensus<V>(
    trace: &Trace<V, ConsensusEvent>,
    inputs: &[u64],
) -> Result<ConsensusStats, SpecViolation> {
    let mut stats = ConsensusStats::default();
    for (at, entry) in trace.iter().enumerate() {
        let ConsensusEvent::Decide(value) = match &entry.op {
            anonreg_model::trace::TraceOp::Event(e) => *e,
            _ => continue,
        };
        if stats.deciders.contains(&entry.proc) {
            return Err(SpecViolation::DoubleOutput {
                proc: entry.proc,
                at,
            });
        }
        if !inputs.contains(&value) {
            return Err(SpecViolation::InvalidDecision { value, at });
        }
        match stats.decision {
            Some(first) if first != value => {
                return Err(SpecViolation::Disagreement {
                    first,
                    second: value,
                    at,
                })
            }
            _ => stats.decision = Some(value),
        }
        stats.deciders.push(entry.proc);
    }
    Ok(stats)
}

/// Summary of an election trace that passed the checker.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ElectionStats {
    /// The agreed leader, if anyone produced an output.
    pub leader: Option<Pid>,
    /// Processes (by slot) that produced an output.
    pub outputs: Vec<usize>,
}

/// Checks that all election outputs agree and name a participant.
///
/// # Errors
///
/// Returns the first [`SpecViolation`] in trace order.
pub fn check_election<V>(
    trace: &Trace<V, ElectionEvent>,
    participants: &[Pid],
) -> Result<ElectionStats, SpecViolation> {
    let mut stats = ElectionStats::default();
    for (at, entry) in trace.iter().enumerate() {
        let ElectionEvent::Elected(leader) = match &entry.op {
            anonreg_model::trace::TraceOp::Event(e) => *e,
            _ => continue,
        };
        if stats.outputs.contains(&entry.proc) {
            return Err(SpecViolation::DoubleOutput {
                proc: entry.proc,
                at,
            });
        }
        if !participants.contains(&leader) {
            return Err(SpecViolation::NonParticipantLeader { leader, at });
        }
        match stats.leader {
            Some(first) if first != leader => {
                return Err(SpecViolation::Disagreement {
                    first: first.get(),
                    second: leader.get(),
                    at,
                })
            }
            _ => stats.leader = Some(leader),
        }
        stats.outputs.push(entry.proc);
    }
    Ok(stats)
}

/// Summary of a renaming trace that passed the checker.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RenamingStats {
    /// `(slot, acquired name)` pairs in acquisition order.
    pub names: Vec<(usize, u32)>,
}

impl RenamingStats {
    /// The largest acquired name, or 0 if none.
    #[must_use]
    pub fn max_name(&self) -> u32 {
        self.names.iter().map(|&(_, n)| n).max().unwrap_or(0)
    }
}

/// Checks uniqueness and range over a trace of [`RenamingEvent`]s.
///
/// `bound` is the permitted name range `1..=bound`: pass the number of
/// *participants* `k` to check adaptivity (Theorem 5.3), or the total `n`
/// for plain perfect renaming.
///
/// # Errors
///
/// Returns the first [`SpecViolation`] in trace order.
pub fn check_renaming<V>(
    trace: &Trace<V, RenamingEvent>,
    bound: u32,
) -> Result<RenamingStats, SpecViolation> {
    let mut stats = RenamingStats::default();
    for (at, entry) in trace.iter().enumerate() {
        let RenamingEvent::Named(name) = match &entry.op {
            anonreg_model::trace::TraceOp::Event(e) => *e,
            _ => continue,
        };
        if stats.names.iter().any(|&(p, _)| p == entry.proc) {
            return Err(SpecViolation::DoubleOutput {
                proc: entry.proc,
                at,
            });
        }
        if name == 0 || name > bound {
            return Err(SpecViolation::NameOutOfRange { name, bound, at });
        }
        if let Some(&(holder, _)) = stats.names.iter().find(|&&(_, n)| n == name) {
            return Err(SpecViolation::DuplicateName {
                name,
                holder,
                intruder: entry.proc,
                at,
            });
        }
        stats.names.push((entry.proc, name));
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonreg_model::trace::TraceOp;

    fn pid(n: u64) -> Pid {
        Pid::new(n).unwrap()
    }

    fn event_trace<E: Clone + Eq + std::hash::Hash + std::fmt::Debug>(
        events: &[(usize, E)],
    ) -> Trace<u64, E> {
        let mut t = Trace::new();
        for (proc, e) in events {
            t.record(*proc, pid(*proc as u64 + 1), TraceOp::Event(e.clone()));
        }
        t
    }

    mod mutex {
        use super::*;
        use MutexEvent::{Enter, Exit};

        #[test]
        fn accepts_alternating_sections() {
            let t = event_trace(&[
                (0, Enter),
                (0, Exit),
                (1, Enter),
                (1, Exit),
                (0, Enter),
                (0, Exit),
            ]);
            let stats = check_mutual_exclusion(&t).unwrap();
            assert_eq!(stats.total_entries(), 3);
            assert_eq!(stats.entries[&0], 2);
            assert_eq!(stats.entries[&1], 1);
        }

        #[test]
        fn rejects_overlap() {
            let t = event_trace(&[(0, Enter), (1, Enter)]);
            assert_eq!(
                check_mutual_exclusion(&t).unwrap_err(),
                SpecViolation::MutualExclusion {
                    holder: 0,
                    intruder: 1,
                    at: 1
                }
            );
        }

        #[test]
        fn rejects_double_enter() {
            let t = event_trace(&[(0, Enter), (0, Enter)]);
            assert!(matches!(
                check_mutual_exclusion(&t).unwrap_err(),
                SpecViolation::MalformedCriticalSection { proc: 0, at: 1 }
            ));
        }

        #[test]
        fn rejects_orphan_exit() {
            let t = event_trace(&[(0, Exit)]);
            assert!(matches!(
                check_mutual_exclusion(&t).unwrap_err(),
                SpecViolation::MalformedCriticalSection { proc: 0, at: 0 }
            ));
        }

        #[test]
        fn rejects_exit_by_non_holder() {
            let t = event_trace(&[(0, Enter), (1, Exit)]);
            assert!(matches!(
                check_mutual_exclusion(&t).unwrap_err(),
                SpecViolation::MalformedCriticalSection { proc: 1, at: 1 }
            ));
        }

        #[test]
        fn open_critical_section_at_end_is_fine() {
            let t = event_trace(&[(0, Enter)]);
            let stats = check_mutual_exclusion(&t).unwrap();
            assert_eq!(stats.total_entries(), 0);
        }
    }

    mod consensus {
        use super::*;
        use ConsensusEvent::Decide;

        #[test]
        fn accepts_agreement_on_an_input() {
            let t = event_trace(&[(0, Decide(7)), (1, Decide(7))]);
            let stats = check_consensus(&t, &[7, 9]).unwrap();
            assert_eq!(stats.decision, Some(7));
            assert_eq!(stats.deciders, vec![0, 1]);
        }

        #[test]
        fn rejects_disagreement() {
            let t = event_trace(&[(0, Decide(7)), (1, Decide(9))]);
            assert_eq!(
                check_consensus(&t, &[7, 9]).unwrap_err(),
                SpecViolation::Disagreement {
                    first: 7,
                    second: 9,
                    at: 1
                }
            );
        }

        #[test]
        fn rejects_invented_value() {
            let t = event_trace(&[(0, Decide(8))]);
            assert_eq!(
                check_consensus(&t, &[7, 9]).unwrap_err(),
                SpecViolation::InvalidDecision { value: 8, at: 0 }
            );
        }

        #[test]
        fn rejects_double_decide() {
            let t = event_trace(&[(0, Decide(7)), (0, Decide(7))]);
            assert!(matches!(
                check_consensus(&t, &[7]).unwrap_err(),
                SpecViolation::DoubleOutput { proc: 0, at: 1 }
            ));
        }

        #[test]
        fn empty_trace_passes() {
            let t: Trace<u64, ConsensusEvent> = Trace::new();
            let stats = check_consensus(&t, &[7]).unwrap();
            assert_eq!(stats.decision, None);
        }
    }

    mod election {
        use super::*;
        use ElectionEvent::Elected;

        #[test]
        fn accepts_unanimous_participant_leader() {
            let t = event_trace(&[(0, Elected(pid(5))), (1, Elected(pid(5)))]);
            let stats = check_election(&t, &[pid(5), pid(6)]).unwrap();
            assert_eq!(stats.leader, Some(pid(5)));
        }

        #[test]
        fn rejects_split_vote() {
            let t = event_trace(&[(0, Elected(pid(5))), (1, Elected(pid(6)))]);
            assert!(matches!(
                check_election(&t, &[pid(5), pid(6)]).unwrap_err(),
                SpecViolation::Disagreement { .. }
            ));
        }

        #[test]
        fn rejects_outsider() {
            let t = event_trace(&[(0, Elected(pid(9)))]);
            assert_eq!(
                check_election(&t, &[pid(5), pid(6)]).unwrap_err(),
                SpecViolation::NonParticipantLeader {
                    leader: pid(9),
                    at: 0
                }
            );
        }
    }

    mod renaming {
        use super::*;
        use RenamingEvent::Named;

        #[test]
        fn accepts_distinct_names_in_range() {
            let t = event_trace(&[(0, Named(2)), (1, Named(1)), (2, Named(3))]);
            let stats = check_renaming(&t, 3).unwrap();
            assert_eq!(stats.max_name(), 3);
            assert_eq!(stats.names.len(), 3);
        }

        #[test]
        fn rejects_duplicate_names() {
            let t = event_trace(&[(0, Named(1)), (1, Named(1))]);
            assert_eq!(
                check_renaming(&t, 3).unwrap_err(),
                SpecViolation::DuplicateName {
                    name: 1,
                    holder: 0,
                    intruder: 1,
                    at: 1
                }
            );
        }

        #[test]
        fn rejects_out_of_range_names() {
            let t = event_trace(&[(0, Named(4))]);
            assert_eq!(
                check_renaming(&t, 3).unwrap_err(),
                SpecViolation::NameOutOfRange {
                    name: 4,
                    bound: 3,
                    at: 0
                }
            );
            let t0 = event_trace(&[(0, Named(0))]);
            assert!(check_renaming(&t0, 3).is_err());
        }

        #[test]
        fn adaptivity_bound_is_stricter() {
            // Name 3 is fine for n = 3 but violates adaptivity with k = 2.
            let t = event_trace(&[(0, Named(3))]);
            assert!(check_renaming(&t, 3).is_ok());
            assert!(check_renaming(&t, 2).is_err());
        }

        #[test]
        fn rejects_double_naming() {
            let t = event_trace(&[(0, Named(1)), (0, Named(2))]);
            assert!(matches!(
                check_renaming(&t, 3).unwrap_err(),
                SpecViolation::DoubleOutput { proc: 0, at: 1 }
            ));
        }
    }

    #[test]
    fn violations_display_nonempty() {
        let samples: Vec<SpecViolation> = vec![
            SpecViolation::MutualExclusion {
                holder: 0,
                intruder: 1,
                at: 3,
            },
            SpecViolation::MalformedCriticalSection { proc: 1, at: 2 },
            SpecViolation::Disagreement {
                first: 1,
                second: 2,
                at: 9,
            },
            SpecViolation::InvalidDecision { value: 3, at: 1 },
            SpecViolation::DoubleOutput { proc: 0, at: 4 },
            SpecViolation::DuplicateName {
                name: 1,
                holder: 0,
                intruder: 2,
                at: 7,
            },
            SpecViolation::NameOutOfRange {
                name: 9,
                bound: 3,
                at: 2,
            },
            SpecViolation::NonParticipantLeader {
                leader: pid(4),
                at: 6,
            },
        ];
        for v in samples {
            assert!(!v.to_string().is_empty());
        }
    }
}
