//! Canonical state codes: the simulator half of symmetry reduction.
//!
//! A configuration's *state code* is a flat byte encoding of its registers
//! and process slots. With symmetry off it encodes the configuration as
//! is; under [`SymmetryMode::Registers`]/[`SymmetryMode::Full`] it encodes
//! the lexicographically least image of the configuration under the
//! view-compatible permutation group (plus, for `Full`, canonical
//! identifier renumbering) — the orbit's canonical representative. Two
//! configurations get the same code exactly when some group element maps
//! one to the other, so deduplicating explored states by code stores one
//! representative per orbit.
//!
//! # Soundness
//!
//! * The group only contains view-compatible pairs `(σ, π)` — slot
//!   re-assignments whose forced register permutation maps every view onto
//!   the view its target position actually carries (see
//!   [`anonreg_model::canon::view_symmetries`]). Such a pair is a pure
//!   relabeling of anonymous registers and slot indices: it commutes with
//!   every machine's transition function, no assumption needed.
//! * `Full` additionally renumbers identifiers by first occurrence. That
//!   commutes with transitions only for *symmetric* algorithms (Theorem
//!   3.4: identifiers admit only equality comparisons). For non-symmetric
//!   machines the embedded identifiers and literals pin each process to
//!   its slot, so spurious merges do not arise in practice — the
//!   cross-family parity suite checks this empirically.
//! * Candidate enumeration is exact while the group is small. When
//!   same-view slots with identical *invariant signatures* (identifier-
//!   blind local state × the register contents seen through the slot's
//!   view) would blow past [`CANDIDATE_CAP`] orderings, excess orderings
//!   are dropped. Dropping candidates can only *split* an orbit across
//!   two representatives — never merge two orbits — so the reduction
//!   degrades, soundly, toward no reduction.
//!
//! The encoding itself reuses the `Hash` impls of machines and values via
//! [`ByteSink`]; for `derive(Hash)` types that encoding is injective (enum
//! discriminants and slice length prefixes keep it prefix-free), and the
//! explorer compares full codes, never just their fingerprints.

use std::hash::{Hash, Hasher};

use anonreg_model::canon::{view_symmetries, ByteSink, PidCanon, ViewSymmetry};
use anonreg_model::{Machine, Pid, PidMap, SymmetryMode, View};

use crate::Simulation;

/// Hard ceiling on candidate images tried per state per register
/// permutation. Reached only when many same-view slots share an invariant
/// signature; beyond it the enumeration soundly under-approximates.
pub(crate) const CANDIDATE_CAP: usize = 1024;

/// The encoder entry point: produces a state code and whether
/// canonicalization *moved* the configuration off its literal encoding.
type EncodeFn<M> = fn(&Simulation<M>, &[ViewSymmetry], SymmetryMode) -> (Box<[u8]>, bool);

/// A state-code encoder fixed at [`Explorer`](crate::explore::Explorer)
/// build time.
///
/// Carries a plain function pointer instead of a trait object so the
/// engines can stay generic over machines *without* identifier-renaming
/// bounds: the pointer for a symmetric encoder is only minted inside
/// [`StateEncoder::for_mode`], where the `PidMap` bounds hold.
pub(crate) struct StateEncoder<M: Machine> {
    mode: SymmetryMode,
    syms: Vec<ViewSymmetry>,
    encode: EncodeFn<M>,
    skipped: bool,
}

impl<M: Machine + Eq + Hash> StateEncoder<M> {
    /// The identity encoder: state codes are plain encodings, no orbit
    /// search.
    pub(crate) fn plain() -> Self {
        StateEncoder {
            mode: SymmetryMode::Off,
            syms: Vec::new(),
            encode: plain_entry::<M>,
            skipped: false,
        }
    }

    /// The symmetry mode this encoder canonicalizes under.
    pub(crate) fn mode(&self) -> SymmetryMode {
        self.mode
    }

    /// Whether canonical encoding was short-circuited to the identity
    /// path because the admissible group is trivial (identity register
    /// permutation, no exchangeable slots). Engines report this via the
    /// `canon_skipped` counter so the fast path is observable.
    pub(crate) fn skips_trivial_orbits(&self) -> bool {
        self.skipped
    }

    /// Encodes `sim`, returning its state code and whether canonicalization
    /// *moved* the configuration (a non-identity image won).
    pub(crate) fn encode(&self, sim: &Simulation<M>) -> (Box<[u8]>, bool) {
        (self.encode)(sim, &self.syms, self.mode)
    }
}

impl<M> StateEncoder<M>
where
    M: Machine + Eq + Hash + PidMap,
    M::Value: PidMap,
{
    /// An encoder for `mode` over the fixed view assignment `views` of
    /// `initial` (views never change within one exploration — crashes
    /// halt a slot in place — so the admissible permutation group is
    /// computed once).
    ///
    /// # The trivial-orbit fast path
    ///
    /// Under `Registers` the orbit search is short-circuited to the
    /// plain identity encoding when it provably cannot merge two
    /// distinct states *of this exploration*:
    ///
    /// * **Trivial group** — only the identity symmetry is admissible.
    ///   With no renaming, the identity candidate's bytes equal the
    ///   plain encoding, so state codes are unchanged by construction.
    /// * **Pid-pinned slots** — the initial machines carry pairwise
    ///   distinct identifiers that are visible in their encodings (see
    ///   [`pids_pin_slots`]). A process's identifier is fixed for its
    ///   lifetime, so every reachable state keeps pid `p_j` at slot
    ///   `j`. Suppose two reachable states `X`, `Y` shared a canonical
    ///   code: some admissible `(π₁, σ₁)` image of `X` equals some
    ///   `(π₂, σ₂)` image of `Y` byte for byte. The encoding is
    ///   prefix-free, so the slot written at target `t` matches:
    ///   `X`'s slot `σ₁(t)` equals `Y`'s slot `σ₂(t)` — including the
    ///   embedded pid, forcing `σ₁ = σ₂` (pids are distinct). A
    ///   symmetry's register permutation is determined by where it
    ///   sends slot 0 (`π = v_{σ(0)} ∘ v₀⁻¹`), so `π₁ = π₂` too, and
    ///   the register sections then force `X = Y`. Canonicalization is
    ///   therefore injective on the reachable set — zero reduction at
    ///   full orbit-search cost, exactly what E16 measured on the ring
    ///   mutex and symmetric consensus. Substituting the (also
    ///   injective) plain encoding preserves state and edge counts.
    ///
    /// The fast path can only ever *skip* reduction, never introduce a
    /// spurious merge — in the worst case (a machine whose encoding
    /// hides its pid in later states, defeating the build-time probe)
    /// the explorer falls back to the unreduced graph, which is always
    /// a sound model. `Full` renames identifiers, which un-pins the
    /// slots, so it always keeps the canonical path.
    pub(crate) fn for_mode(mode: SymmetryMode, views: &[View], initial: &Simulation<M>) -> Self {
        match mode {
            SymmetryMode::Off => Self::plain(),
            SymmetryMode::Registers | SymmetryMode::Full => {
                let syms = view_symmetries(views);
                if mode == SymmetryMode::Registers
                    && (group_is_trivial(&syms) || pids_pin_slots(initial))
                {
                    return StateEncoder {
                        mode,
                        syms: Vec::new(),
                        encode: plain_entry::<M>,
                        skipped: true,
                    };
                }
                StateEncoder {
                    mode,
                    syms,
                    encode: symmetric_entry::<M>,
                    skipped: false,
                }
            }
        }
    }
}

/// Whether the admissible group contains only the identity: a single
/// symmetry whose register permutation is the identity and whose
/// classes admit no slot exchange (every class has at most one source).
fn group_is_trivial(syms: &[ViewSymmetry]) -> bool {
    match syms {
        [only] => {
            only.perm.iter().enumerate().all(|(i, &p)| i == p)
                && only.classes.iter().all(|c| c.sources.len() <= 1)
        }
        _ => false,
    }
}

/// Whether the initial machines carry pairwise distinct identifiers
/// *and* those identifiers are visible in the machines' encodings —
/// checked by renaming every pid in a machine to a fresh one and
/// requiring the encoding to change. A machine whose `Hash` ignores its
/// pid (a genuinely anonymous local state, where two slots can become
/// byte-identical and `Registers`-mode merging is real) fails the probe,
/// keeping the canonical path. The probe inspects initial states only;
/// identifiers are lifetime-constant per the [`Machine::pid`] contract,
/// and a machine that *stops* encoding its pid mid-run would at worst
/// re-enable a reduction this fast path skips — never unsoundness.
fn pids_pin_slots<M>(sim: &Simulation<M>) -> bool
where
    M: Machine + Eq + Hash + PidMap,
{
    let n = sim.process_count();
    let mut pids: Vec<u64> = (0..n).map(|j| sim.slot(j).machine.pid().get()).collect();
    let fresh =
        Pid::new(pids.iter().copied().max().unwrap_or(0) + 1).expect("max pid + 1 is nonzero");
    pids.sort_unstable();
    pids.dedup();
    if pids.len() != n {
        return false;
    }
    (0..n).all(|j| {
        let machine = &sim.slot(j).machine;
        let mut original = ByteSink::new();
        machine.hash(&mut original);
        let mut renamed = ByteSink::new();
        machine.map_pids(&mut |_| fresh).hash(&mut renamed);
        original.into_bytes() != renamed.into_bytes()
    })
}

fn plain_entry<M: Machine + Eq + Hash>(
    sim: &Simulation<M>,
    _syms: &[ViewSymmetry],
    _mode: SymmetryMode,
) -> (Box<[u8]>, bool) {
    (encode_plain(sim).into_boxed_slice(), false)
}

fn symmetric_entry<M>(
    sim: &Simulation<M>,
    syms: &[ViewSymmetry],
    mode: SymmetryMode,
) -> (Box<[u8]>, bool)
where
    M: Machine + Eq + Hash + PidMap,
    M::Value: PidMap,
{
    canonical_code(sim, syms, mode)
}

/// The public entry point behind [`Simulation::canonical_fingerprint`]:
/// canonicalizes under the group of `sim`'s own view assignment.
pub(crate) fn state_code<M>(sim: &Simulation<M>, mode: SymmetryMode) -> Box<[u8]>
where
    M: Machine + Eq + Hash + PidMap,
    M::Value: PidMap,
{
    match mode {
        SymmetryMode::Off => encode_plain(sim).into_boxed_slice(),
        SymmetryMode::Registers | SymmetryMode::Full => {
            let views: Vec<View> = (0..sim.process_count())
                .map(|i| sim.view(i).clone())
                .collect();
            canonical_code(sim, &view_symmetries(&views), mode).0
        }
    }
}

/// Plain (identity) encoding: registers in physical order, then slots in
/// index order. Views are omitted — they are fixed per slot for the whole
/// exploration, so they cannot distinguish states within one run (the
/// explorer's structural hash therefore folds the views in separately).
pub(crate) fn encode_plain<M: Machine + Eq + Hash>(sim: &Simulation<M>) -> Vec<u8> {
    let n = sim.process_count();
    let mut sink = ByteSink::new();
    sink.write_usize(sim.registers().len());
    for value in sim.registers() {
        value.hash(&mut sink);
    }
    sink.write_usize(n);
    for proc in 0..n {
        let slot = sim.slot(proc);
        slot.machine.hash(&mut sink);
        slot.pending_input.hash(&mut sink);
        slot.poised.hash(&mut sink);
        slot.halted.hash(&mut sink);
    }
    sink.into_bytes()
}

/// The canonical code: minimum encoding over all admissible images.
fn canonical_code<M>(
    sim: &Simulation<M>,
    syms: &[ViewSymmetry],
    mode: SymmetryMode,
) -> (Box<[u8]>, bool)
where
    M: Machine + Eq + Hash + PidMap,
    M::Value: PidMap,
{
    let rename = mode == SymmetryMode::Full;
    let n = sim.process_count();
    let m = sim.registers().len();
    let identity_src: Vec<usize> = (0..n).collect();
    let identity_inv: Vec<usize> = (0..m).collect();
    let id_code = encode_candidate(sim, &identity_inv, &identity_src, rename);

    // `best` must be the minimum over the *equivariant* candidate set
    // only. Seeding it with `id_code` would look harmless but breaks
    // orbit invariance: the identity arrangement is specific to this
    // member, so a member whose own encoding undercuts every shared
    // candidate would canonicalize differently from its orbit siblings.
    let mut best: Option<Vec<u8>> = None;
    let mut src_of_target = vec![0usize; n];
    for sym in syms {
        let mut perm_inv = vec![0usize; m];
        for (old, &new) in sym.perm.iter().enumerate() {
            perm_inv[new] = old;
        }
        // Per-class source orderings, refined by invariant signature.
        let orderings: Vec<Vec<Vec<usize>>> = sym
            .classes
            .iter()
            .map(|class| class_orderings(sim, &class.sources, rename))
            .collect();
        // Walk the cartesian product of class orderings, capped.
        let mut picks = vec![0usize; orderings.len()];
        let mut tried = 0usize;
        'product: loop {
            for (class, (&pick, ordering)) in sym.classes.iter().zip(picks.iter().zip(&orderings)) {
                for (&target, &source) in class.targets.iter().zip(&ordering[pick]) {
                    src_of_target[target] = source;
                }
            }
            let code = encode_candidate(sim, &perm_inv, &src_of_target, rename);
            if best.as_ref().is_none_or(|b| code < *b) {
                best = Some(code);
            }
            tried += 1;
            if tried >= CANDIDATE_CAP {
                break;
            }
            // Odometer increment over the per-class ordering indices.
            for (pick, ordering) in picks.iter_mut().zip(&orderings) {
                *pick += 1;
                if *pick < ordering.len() {
                    continue 'product;
                }
                *pick = 0;
            }
            break;
        }
    }
    // The identity symmetry is always admissible, so the enumeration
    // produced at least one candidate; the fallback is unreachable.
    let best = best.unwrap_or(id_code.clone());
    let moved = best != id_code;
    (best.into_boxed_slice(), moved)
}

/// All orderings of `sources` consistent with ascending invariant
/// signatures: slots with distinct signatures are ordered by signature
/// (they can never trade places in a minimal image), tied slots are
/// permuted exhaustively up to [`CANDIDATE_CAP`].
fn class_orderings<M>(sim: &Simulation<M>, sources: &[usize], rename: bool) -> Vec<Vec<usize>>
where
    M: Machine + Eq + Hash + PidMap,
    M::Value: PidMap,
{
    if sources.len() == 1 {
        return vec![sources.to_vec()];
    }
    let mut tagged: Vec<(Vec<u8>, usize)> = sources
        .iter()
        .map(|&j| (slot_signature(sim, j, rename), j))
        .collect();
    tagged.sort();
    // Tie groups of equal signature, in sorted order.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut last_sig: Option<Vec<u8>> = None;
    for (sig, j) in tagged {
        if last_sig.as_ref() == Some(&sig) {
            groups
                .last_mut()
                .expect("group exists for seen sig")
                .push(j);
        } else {
            groups.push(vec![j]);
            last_sig = Some(sig);
        }
    }
    let mut orderings: Vec<Vec<usize>> = vec![Vec::new()];
    for group in groups {
        let perms = permutations_capped(&group, CANDIDATE_CAP / orderings.len().max(1));
        let mut next = Vec::with_capacity(orderings.len() * perms.len());
        for prefix in &orderings {
            for perm in &perms {
                let mut ordering = prefix.clone();
                ordering.extend_from_slice(perm);
                next.push(ordering);
            }
        }
        orderings = next;
        if orderings.len() >= CANDIDATE_CAP {
            orderings.truncate(CANDIDATE_CAP);
        }
    }
    orderings
}

/// Permutations of `items` in a deterministic order, at most `cap` of them.
fn permutations_capped(items: &[usize], cap: usize) -> Vec<Vec<usize>> {
    let cap = cap.max(1);
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(items.len());
    let mut used = vec![false; items.len()];
    fn recurse(
        items: &[usize],
        used: &mut [bool],
        current: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
        cap: usize,
    ) {
        if out.len() >= cap {
            return;
        }
        if current.len() == items.len() {
            out.push(current.clone());
            return;
        }
        for i in 0..items.len() {
            if !used[i] {
                used[i] = true;
                current.push(items[i]);
                recurse(items, used, current, out, cap);
                current.pop();
                used[i] = false;
            }
        }
    }
    recurse(items, &mut used, &mut current, &mut out, cap);
    out
}

/// The invariant signature of slot `j`: its local state with identifiers
/// blinded (under `Full`) plus the register contents its view orders —
/// invariant under every group element, so sorting by it never separates
/// two slots a symmetry could exchange.
fn slot_signature<M>(sim: &Simulation<M>, j: usize, rename: bool) -> Vec<u8>
where
    M: Machine + Eq + Hash + PidMap,
    M::Value: PidMap,
{
    let blind = &mut |_: Pid| Pid::new(1).expect("1 is a valid pid");
    let slot = sim.slot(j);
    let mut sink = ByteSink::new();
    if rename {
        slot.machine.map_pids(blind).hash(&mut sink);
        slot.pending_input.map_pids(blind).hash(&mut sink);
        match &slot.poised {
            None => sink.write_u8(0),
            Some((local, value)) => {
                sink.write_u8(1);
                sink.write_usize(*local);
                value.map_pids(blind).hash(&mut sink);
            }
        }
    } else {
        slot.machine.hash(&mut sink);
        slot.pending_input.hash(&mut sink);
        slot.poised.hash(&mut sink);
    }
    slot.halted.hash(&mut sink);
    for local in 0..slot.view.len() {
        let value = &sim.registers()[slot.view.physical(local)];
        if rename {
            value.map_pids(blind).hash(&mut sink);
        } else {
            value.hash(&mut sink);
        }
    }
    sink.into_bytes()
}

/// Encodes the image of `sim` under register permutation `perm` (given as
/// its inverse) and slot re-assignment `src_of_target`, renumbering
/// identifiers by first occurrence when `rename` is set. The scan order
/// (registers in new physical order, then slots in target order) fixes the
/// renumbering deterministically.
fn encode_candidate<M>(
    sim: &Simulation<M>,
    perm_inv: &[usize],
    src_of_target: &[usize],
    rename: bool,
) -> Vec<u8>
where
    M: Machine + Eq + Hash + PidMap,
    M::Value: PidMap,
{
    let mut canon = PidCanon::new();
    let rename_pid = &mut move |p: Pid| canon.canon(p);
    let mut sink = ByteSink::new();
    sink.write_usize(perm_inv.len());
    for &old in perm_inv {
        let value = &sim.registers()[old];
        if rename {
            value.map_pids(rename_pid).hash(&mut sink);
        } else {
            value.hash(&mut sink);
        }
    }
    sink.write_usize(src_of_target.len());
    for &source in src_of_target {
        let slot = sim.slot(source);
        if rename {
            slot.machine.map_pids(rename_pid).hash(&mut sink);
            slot.pending_input.map_pids(rename_pid).hash(&mut sink);
            match &slot.poised {
                None => sink.write_u8(0),
                Some((local, value)) => {
                    sink.write_u8(1);
                    sink.write_usize(*local);
                    value.map_pids(rename_pid).hash(&mut sink);
                }
            }
        } else {
            slot.machine.hash(&mut sink);
            slot.pending_input.hash(&mut sink);
            slot.poised.hash(&mut sink);
        }
        slot.halted.hash(&mut sink);
    }
    sink.into_bytes()
}
