//! Deterministic simulator, adversarial schedulers and explicit-state model
//! checker for memory-anonymous algorithms.
//!
//! The paper's proofs all reason about *runs*: sequences of atomic register
//! operations chosen by a powerful adversary that "can determine
//! (essentially) the order in which processes access the registers" (§2).
//! This crate makes that adversary executable:
//!
//! * [`Simulation`] — steps any set of [`Machine`](anonreg_model::Machine)s
//!   one atomic operation at a time, each through its own register
//!   [`View`](anonreg_model::View), recording a full
//!   [`Trace`](anonreg_model::trace::Trace). Writes can be *poised* —
//!   returned by the machine but withheld — which is precisely the
//!   "process covers a register" move of the §6 covering arguments.
//! * [`sched`] — deterministic schedulers: solo, round-robin, lock-step
//!   (Theorem 3.4's adversary), and seeded-random sweeps.
//! * [`explore`] — exhaustive explicit-state model checking behind the
//!   [`explore::Explorer`] builder, with safety predicates, SCC-based
//!   fair-livelock detection (how experiment E1 proves the odd/even
//!   dichotomy of Theorem 3.1), and an optional breadth-parallel engine
//!   for large state spaces.
//! * [`obstruction`] — the obstruction-freedom checker: from every reachable
//!   state, every process running alone must terminate within a bound.
//! * [`symmetry`] — the rotation-symmetry invariant behind Theorem 3.4's
//!   lock-step ring adversary. The explorer turns the same invariance into
//!   a state-space cut: [`explore::Explorer::symmetry`] stores one
//!   representative per orbit of the view-compatible register/identifier
//!   permutation group (see [`Simulation::canonical_fingerprint`]).
//!
//! # Example
//!
//! Two tiny machines under a round-robin schedule, each with its own private
//! numbering of the registers:
//!
//! ```
//! use anonreg_model::{Machine, Pid, Step, View};
//! use anonreg_sim::{sched, Simulation};
//!
//! #[derive(Clone, Debug, PartialEq, Eq, Hash)]
//! struct WriteOnce(Pid, bool);
//! impl Machine for WriteOnce {
//!     type Value = u64;
//!     type Event = ();
//!     fn pid(&self) -> Pid { self.0 }
//!     fn register_count(&self) -> usize { 2 }
//!     fn resume(&mut self, _read: Option<u64>) -> Step<u64, ()> {
//!         if self.1 { Step::Halt } else { self.1 = true; Step::Write(0, self.0.get()) }
//!     }
//! }
//!
//! let a = WriteOnce(Pid::new(1).unwrap(), false);
//! let b = WriteOnce(Pid::new(2).unwrap(), false);
//! let mut sim = Simulation::builder()
//!     .process(a, View::identity(2))
//!     .process(b, View::rotated(2, 1))  // b's "register 0" is physical 1
//!     .build()?;
//! sched::round_robin(&mut sim, 100);
//! assert!(sim.all_halted());
//! assert_eq!(sim.registers(), &[1, 2]); // each wrote "its" register 0
//! # Ok::<(), anonreg_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod canon;
mod simulation;

pub mod explore;
pub mod obstruction;
pub mod sched;
pub mod script;
pub mod symmetry;
pub mod viz;

pub use simulation::{SimError, Simulation, SimulationBuilder, StepOutcome};

pub mod prelude {
    //! The one-line import for model checking:
    //! `use anonreg_sim::prelude::*;` brings in the [`Explorer`] builder,
    //! its [`ExploreConfig`]/[`ExploreError`] companions, the
    //! [`StateGraph`] it produces, and the [`Simulation`] it consumes.

    pub use crate::explore::cert::{run_cached, CachedOutcome, ReplayReport};
    pub use crate::explore::{
        Edge, ExploreConfig, ExploreError, ExploreStats, Explorer, ScheduleAction, StateGraph,
    };
    pub use crate::{SimError, Simulation, SimulationBuilder};
    pub use anonreg_cache::{cache_disabled, CacheStore, CertError};
    pub use anonreg_model::SymmetryMode;
}
