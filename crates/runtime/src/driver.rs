//! Driving a [`Machine`] on a real thread.

use std::fmt;
use std::sync::Arc;

use anonreg_model::rng::Rng64;
use anonreg_model::{Machine, Step};
use anonreg_obs::{Metric, NoopProbe, Phase, PhaseTimer, Probe, Profiler, Span};

use crate::{MemoryView, Register};

/// Maps a machine event to the wall-clock [`Phase`] the process enters
/// *after* announcing it, or `None` to stay in the current phase. For the
/// mutex families: `Enter` → [`Phase::Critical`], `Exit`/`Aborted` →
/// [`Phase::Doorway`].
pub type PhaseClassifier<E> = fn(&E) -> Option<Phase>;

/// Randomized exponential backoff inserted after writes.
///
/// The paper's obstruction-free algorithms guarantee progress only to a
/// process that runs alone "long enough". On real threads nobody schedules
/// such solo intervals, so symmetric contention can in principle livelock
/// forever. Randomized backoff is the standard engineering complement: it
/// breaks symmetry probabilistically, creating the solo windows
/// obstruction freedom needs. (The mutual exclusion algorithm does not
/// need it — its waiting is part of the algorithm — but consensus and
/// renaming drivers enable it by default.)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Backoff {
    /// Spin-loop iterations for the first backoff.
    pub min_spins: u32,
    /// Cap on spin-loop iterations.
    pub max_spins: u32,
}

impl Backoff {
    /// The default backoff window used by the facades.
    #[must_use]
    pub fn standard() -> Self {
        Backoff {
            min_spins: 32,
            max_spins: 1 << 14,
        }
    }
}

/// Outcome of a single [`Driver::step`].
///
/// One step is one `resume` call on the machine: either a memory
/// operation was performed on its behalf, an event surfaced, or the
/// machine halted. Fault injectors and other wrappers use this to
/// interleave their own logic between machine steps at the same
/// granularity the simulator's scheduler uses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DriverStep<E> {
    /// The machine performed an atomic read or write.
    Op,
    /// The machine emitted an event.
    Event(E),
    /// The machine halted (or had already halted).
    Halted,
}

/// Statistics from a completed drive.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DriverReport {
    /// Atomic reads performed.
    pub reads: u64,
    /// Atomic writes performed.
    pub writes: u64,
    /// Times the randomized backoff ran (0 unless backoff is enabled).
    pub backoff_invocations: u64,
    /// Total spin-loop iterations across all backoffs.
    pub spin_iterations: u64,
    /// Backoffs cut short because a relaxed peek saw the just-written
    /// register change under us (foreign progress: no point waiting out
    /// the rest of the window). Always 0 in a solo run.
    pub peek_breaks: u64,
    /// Events the machine emitted.
    pub events: u64,
}

impl DriverReport {
    /// Total atomic memory operations.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.reads + self.writes
    }
}

/// Runs a [`Machine`] against a [`MemoryView`] on the current thread.
///
/// The driver is the real-thread counterpart of the simulator's stepping
/// loop: it answers the machine's `Read`/`Write` steps with atomic register
/// operations (translated through the thread's private view), collects
/// events, and optionally backs off after writes.
///
/// Drivers are generic over a [`Probe`]; the default [`NoopProbe`] has
/// `ENABLED == false`, so all instrumentation — including the per-register
/// bookkeeping behind contention detection — compiles away. With a live
/// probe (see [`with_probe`](Driver::with_probe)) the driver emits, per
/// physical register, read/write/contention counters, plus backoff-spin
/// histograms and solo-window spans keyed by the process identifier. A
/// *contended read* observes a value different from the last value this
/// process itself read from or wrote to that register — unambiguous
/// evidence of interference, measurable without any global clock. A *solo
/// window* is a maximal run of memory operations without such evidence:
/// the empirical counterpart of the solo intervals obstruction freedom
/// (paper §2, §4) quantifies over.
pub struct Driver<M: Machine, R, P: Probe = NoopProbe> {
    machine: M,
    view: MemoryView<R>,
    pending: Option<M::Value>,
    backoff: Option<Backoff>,
    rng: Rng64,
    current_spins: u32,
    /// The local index and value of the last write, kept only while
    /// backoff is enabled: the spin loop peeks it to detect foreign
    /// progress early.
    last_write: Option<(usize, M::Value)>,
    report: DriverReport,
    halted: bool,
    probe: P,
    /// Per-physical-register last value this process saw; maintained only
    /// when the probe is enabled.
    last_seen: Vec<Option<M::Value>>,
    /// Memory ops in the current contention-free window.
    solo_window: u64,
    /// Wall-clock profiler sink, phase timer and event→phase map; all
    /// `None` (and cost nothing) unless
    /// [`with_profiler`](Driver::with_profiler) was called.
    profiler: Option<Arc<Profiler>>,
    timer: Option<PhaseTimer>,
    classify: Option<PhaseClassifier<M::Event>>,
}

impl<M, R> Driver<M, R, NoopProbe>
where
    M: Machine,
    R: Register<M::Value>,
{
    /// Creates a driver for `machine` over `view`, with the zero-cost
    /// no-op probe.
    ///
    /// # Panics
    ///
    /// Panics if the machine's register count differs from the view's.
    #[must_use]
    pub fn new(machine: M, view: MemoryView<R>) -> Self {
        assert_eq!(
            machine.register_count(),
            view.permutation().len(),
            "machine and view must agree on the register count"
        );
        let seed = machine.pid().get() ^ 0x9e37_79b9_7f4a_7c15;
        Driver {
            machine,
            view,
            pending: None,
            backoff: None,
            rng: Rng64::seed_from_u64(seed),
            current_spins: 0,
            last_write: None,
            report: DriverReport::default(),
            halted: false,
            probe: NoopProbe,
            last_seen: Vec::new(),
            solo_window: 0,
            profiler: None,
            timer: None,
            classify: None,
        }
    }
}

impl<M, R, P> Driver<M, R, P>
where
    M: Machine,
    R: Register<M::Value>,
    P: Probe,
{
    /// Replaces the driver's probe, enabling (or re-disabling)
    /// instrumentation. Typically called immediately after
    /// [`new`](Driver::new) with a `&MemProbe` shared across threads.
    #[must_use]
    pub fn with_probe<P2: Probe>(self, probe: P2) -> Driver<M, R, P2> {
        let registers = if P2::ENABLED {
            self.view.permutation().len()
        } else {
            0
        };
        if P2::ENABLED {
            probe.span_open(Span::SoloWindow, self.machine.pid().get());
        }
        Driver {
            machine: self.machine,
            view: self.view,
            pending: self.pending,
            backoff: self.backoff,
            rng: self.rng,
            current_spins: self.current_spins,
            last_write: self.last_write,
            report: self.report,
            halted: self.halted,
            probe,
            last_seen: vec![None; registers],
            solo_window: 0,
            profiler: self.profiler,
            timer: self.timer,
            classify: self.classify,
        }
    }

    /// Attaches a wall-clock [`Profiler`]: the driver keeps a per-process
    /// [`PhaseTimer`] (keyed by pid), starting in [`Phase::Doorway`],
    /// switching on announced events as `classify` directs, and pushing
    /// [`Phase::Waiting`] around each randomized-backoff window (so
    /// flamegraph stacks show e.g. `doorway;waiting`). The profile is
    /// recorded when the machine halts, or at
    /// [`into_parts`](Driver::into_parts) for drives stopped early.
    /// Profiling never touches the driver's RNG or memory operations, so
    /// runs are bit-identical with and without it.
    #[must_use]
    pub fn with_profiler(
        mut self,
        profiler: Arc<Profiler>,
        classify: PhaseClassifier<M::Event>,
    ) -> Self {
        let mut timer = profiler.timer(self.machine.pid().get());
        timer.switch(Phase::Doorway);
        self.timer = Some(timer);
        self.profiler = Some(profiler);
        self.classify = Some(classify);
        self
    }

    /// Enables randomized backoff after writes.
    #[must_use]
    pub fn with_backoff(mut self, backoff: Backoff) -> Self {
        self.backoff = Some(backoff);
        self.current_spins = backoff.min_spins;
        self
    }

    /// The machine being driven.
    #[must_use]
    pub fn machine(&self) -> &M {
        &self.machine
    }

    /// Mutable access to the machine, for out-of-band control knobs such as
    /// [`AnonMutex::request_abort`](anonreg::mutex::AnonMutex::request_abort).
    /// Mutating algorithm-internal state directly voids the correctness
    /// guarantees; use only the methods the algorithm documents as safe.
    pub fn machine_mut(&mut self) -> &mut M {
        &mut self.machine
    }

    /// Statistics so far.
    #[must_use]
    pub fn report(&self) -> &DriverReport {
        &self.report
    }

    /// Has the machine halted?
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// The next randomized-backoff window cap in spin iterations, or
    /// `None` if backoff is disabled. Exposed so tests (and fault
    /// schedules) can observe the reset-on-event behavior
    /// deterministically.
    #[must_use]
    pub fn backoff_window(&self) -> Option<u32> {
        self.backoff.map(|_| self.current_spins)
    }

    /// Performs exactly one machine step (`resume` call), answering reads
    /// and writes through the view. Wrappers such as the fault injector
    /// build their drive loops on this.
    pub fn step(&mut self) -> DriverStep<M::Event> {
        if self.halted {
            return DriverStep::Halted;
        }
        match self.machine.resume(self.pending.take()) {
            Step::Read(local) => {
                self.do_read(local);
                DriverStep::Op
            }
            Step::Write(local, value) => {
                self.do_write(local, value);
                DriverStep::Op
            }
            Step::Event(event) => {
                self.note_event();
                if let (Some(timer), Some(classify)) = (self.timer.as_mut(), self.classify) {
                    if let Some(phase) = classify(&event) {
                        timer.switch(phase);
                    }
                }
                DriverStep::Event(event)
            }
            Step::Halt => {
                self.do_halt();
                DriverStep::Halted
            }
        }
    }

    /// Runs until the machine emits an event (returned) or halts (`None`).
    pub fn run_until_event(&mut self) -> Option<M::Event> {
        loop {
            match self.step() {
                DriverStep::Op => {}
                DriverStep::Event(event) => return Some(event),
                DriverStep::Halted => return None,
            }
        }
    }

    /// Runs until `pred` holds on the machine state (checked after every
    /// step) or the machine halts. Returns whether the predicate held.
    pub fn run_until<F>(&mut self, mut pred: F) -> bool
    where
        F: FnMut(&M) -> bool,
    {
        loop {
            if pred(&self.machine) {
                return true;
            }
            if self.halted {
                return false;
            }
            self.step();
        }
    }

    /// Like [`run_until`](Driver::run_until), but gives up after `max_ops`
    /// further machine steps. Returns whether the predicate held before
    /// the budget ran out.
    ///
    /// Every `resume` call counts against the budget — not just atomic
    /// memory operations — so a machine spinning through `Step::Event`
    /// without touching memory still exhausts it instead of hanging the
    /// caller.
    pub fn run_until_bounded<F>(&mut self, mut pred: F, max_ops: u64) -> bool
    where
        F: FnMut(&M) -> bool,
    {
        let mut remaining = max_ops;
        loop {
            if pred(&self.machine) {
                return true;
            }
            if self.halted || remaining == 0 {
                return false;
            }
            remaining -= 1;
            self.step();
        }
    }

    /// Runs to halt, collecting every event.
    pub fn run_to_halt(&mut self) -> Vec<M::Event> {
        let mut events = Vec::new();
        while let Some(event) = self.run_until_event() {
            events.push(event);
        }
        events
    }

    /// Consumes the driver, returning the machine and its report. If a
    /// profiler is attached and the machine never halted, the phase
    /// profile accumulated so far is recorded here instead.
    #[must_use]
    pub fn into_parts(mut self) -> (M, DriverReport) {
        self.flush_profile();
        (self.machine, self.report)
    }

    /// Hands the finished phase timer to the profiler, once.
    fn flush_profile(&mut self) {
        if let (Some(profiler), Some(timer)) = (self.profiler.as_ref(), self.timer.take()) {
            profiler.record(timer.finish());
        }
    }

    fn do_read(&mut self, local: usize) {
        self.report.reads += 1;
        let value = self.view.read(local);
        if P::ENABLED {
            let physical = self.view.permutation().physical(local);
            self.probe.counter(Metric::RegRead, physical as u64, 1);
            self.solo_window += 1;
            if let Some(prev) = &self.last_seen[physical] {
                if *prev != value {
                    // Someone else wrote since we last touched this
                    // register: contention, and the end of a solo window.
                    self.probe
                        .counter(Metric::RegContention, physical as u64, 1);
                    let pid = self.machine.pid().get();
                    self.probe
                        .span_close(Span::SoloWindow, pid, self.solo_window);
                    self.probe.span_open(Span::SoloWindow, pid);
                    self.solo_window = 0;
                }
            }
            self.last_seen[physical] = Some(value.clone());
        }
        self.pending = Some(value);
    }

    fn do_write(&mut self, local: usize, value: M::Value) {
        self.report.writes += 1;
        if P::ENABLED {
            let physical = self.view.permutation().physical(local);
            self.probe.counter(Metric::RegWrite, physical as u64, 1);
            self.solo_window += 1;
            self.last_seen[physical] = Some(value.clone());
        }
        if self.backoff.is_some() {
            self.last_write = Some((local, value.clone()));
        }
        self.view.write(local, value);
        self.spin_backoff();
    }

    fn note_event(&mut self) {
        self.report.events += 1;
        // An event marks a completed high-level operation (entered the CS,
        // decided, acquired a name): whatever contention the backoff was
        // escalating against has been survived, so the window resets.
        // Without this, a long-lived handle pays near-`max_spins` on every
        // write forever even after contention vanishes.
        if let Some(backoff) = self.backoff {
            self.current_spins = backoff.min_spins;
        }
    }

    fn do_halt(&mut self) {
        self.halted = true;
        self.flush_profile();
        if P::ENABLED {
            // Close the trailing (possibly never-contended) solo window.
            self.probe
                .span_close(Span::SoloWindow, self.machine.pid().get(), self.solo_window);
            self.solo_window = 0;
        }
    }

    /// Spin iterations between relaxed peeks of the just-written register
    /// during a backoff window.
    const PEEK_STRIDE: u32 = 32;

    fn spin_backoff(&mut self) {
        let Some(backoff) = self.backoff else { return };
        let drawn = self.rng.gen_range_inclusive(0, self.current_spins as usize) as u32;
        self.report.backoff_invocations += 1;
        // Nest the backoff window under the current phase (flamegraph
        // stacks read e.g. `doorway;waiting`). The timer only brackets the
        // loop — the RNG draw above and the iteration count below are
        // untouched, keeping profiled runs bit-identical to unprofiled.
        if let Some(timer) = self.timer.as_mut() {
            timer.push(Phase::Waiting);
        }
        // Spin out the drawn window, but every PEEK_STRIDE iterations
        // hint-read the register we just wrote (Relaxed, certificate
        // ORD-RT-PEEK-001): if a rival has already overwritten it, the
        // contention this window was yielding to has moved on, and the
        // useful thing is to get back to the protocol, not to keep
        // sleeping. The peeked value is compared and discarded — it never
        // reaches the machine — so staleness only costs at most one extra
        // stride of spinning. In a solo run no peek ever fires, so the
        // iteration count (and thus `spin_iterations`) is exactly the
        // drawn value, unchanged from the blind loop this replaces.
        let mut spun: u32 = 0;
        while spun < drawn {
            std::hint::spin_loop();
            spun += 1;
            if spun.is_multiple_of(Self::PEEK_STRIDE) {
                if let Some((local, value)) = &self.last_write {
                    if self.view.peek(*local) != *value {
                        self.report.peek_breaks += 1;
                        break;
                    }
                }
            }
        }
        self.report.spin_iterations += u64::from(spun);
        if let Some(timer) = self.timer.as_mut() {
            timer.pop();
        }
        if P::ENABLED {
            self.probe.counter(Metric::BackoffInvoked, 0, 1);
            self.probe
                .histogram(Metric::BackoffSpins, 0, u64::from(spun));
        }
        self.current_spins = (self.current_spins.saturating_mul(2)).min(backoff.max_spins);
    }
}

impl<M: Machine, R, P: Probe> fmt::Debug for Driver<M, R, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Driver")
            .field("machine", &self.machine)
            .field("halted", &self.halted)
            .field("report", &self.report)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnonymousMemory, PackedAtomicRegister};
    use anonreg::mutex::{AnonMutex, MutexEvent};
    use anonreg_model::{Pid, View};
    use anonreg_obs::MemProbe;
    use std::sync::atomic::Ordering;

    type Mem = AnonymousMemory<PackedAtomicRegister<u64>>;

    fn pid(n: u64) -> Pid {
        Pid::new(n).unwrap()
    }

    #[test]
    fn drives_solo_mutex_to_completion() {
        let mem: Mem = AnonymousMemory::new(3);
        let machine = AnonMutex::new(pid(1), 3).unwrap().with_cycles(2);
        let mut driver = Driver::new(machine, mem.view(View::identity(3)));
        let events = driver.run_to_halt();
        assert_eq!(
            events,
            vec![
                MutexEvent::Enter,
                MutexEvent::Exit,
                MutexEvent::Enter,
                MutexEvent::Exit
            ]
        );
        assert!(driver.is_halted());
        assert_eq!(driver.report().ops(), 2 * 4 * 3);
    }

    #[test]
    fn run_until_event_pauses_in_the_critical_section() {
        let mem: Mem = AnonymousMemory::new(3);
        let machine = AnonMutex::new(pid(1), 3).unwrap().with_cycles(1);
        let mut driver = Driver::new(machine, mem.view(View::rotated(3, 2)));
        assert_eq!(driver.run_until_event(), Some(MutexEvent::Enter));
        // Paused inside the CS: every register holds our id.
        let probe = mem.view(View::identity(3));
        for j in 0..3 {
            assert_eq!(probe.read::<u64>(j), 1);
        }
        assert_eq!(driver.run_until_event(), Some(MutexEvent::Exit));
        assert_eq!(driver.run_until_event(), None);
        // Exit code restored zeros.
        for j in 0..3 {
            assert_eq!(probe.read::<u64>(j), 0);
        }
    }

    #[test]
    fn run_until_predicate() {
        let mem: Mem = AnonymousMemory::new(3);
        let machine = AnonMutex::new(pid(1), 3).unwrap().with_cycles(1);
        let mut driver = Driver::new(machine, mem.view(View::identity(3)));
        use anonreg::mutex::Section;
        assert!(driver.run_until(|m| m.section() == Section::Critical));
        assert!(driver.run_until(|m| m.section() == Section::Remainder));
        // After the cycle, the machine halts; an unreachable predicate
        // returns false.
        assert!(!driver.run_until(|m| m.section() == Section::Critical));
    }

    #[test]
    fn backoff_does_not_change_results() {
        let mem: Mem = AnonymousMemory::new(3);
        let machine = AnonMutex::new(pid(1), 3).unwrap().with_cycles(1);
        let mut driver = Driver::new(machine, mem.view(View::identity(3))).with_backoff(Backoff {
            min_spins: 1,
            max_spins: 8,
        });
        let events = driver.run_to_halt();
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn report_counts_events_and_backoff() {
        let mem: Mem = AnonymousMemory::new(3);
        let machine = AnonMutex::new(pid(1), 3).unwrap().with_cycles(2);
        let mut driver = Driver::new(machine, mem.view(View::identity(3))).with_backoff(Backoff {
            min_spins: 2,
            max_spins: 4,
        });
        let events = driver.run_to_halt();
        let report = driver.report();
        assert_eq!(report.events, events.len() as u64);
        assert_eq!(report.events, 4); // Enter/Exit × 2 cycles
                                      // One backoff per write, all accounted for.
        assert_eq!(report.backoff_invocations, report.writes);
        assert!(report.backoff_invocations > 0);
        // Spins are random in [0, current]; the total must stay below the
        // per-invocation cap times the invocation count.
        assert!(report.spin_iterations <= report.backoff_invocations * 4);
    }

    #[test]
    fn report_without_backoff_stays_zeroed() {
        let mem: Mem = AnonymousMemory::new(3);
        let machine = AnonMutex::new(pid(1), 3).unwrap().with_cycles(1);
        let mut driver = Driver::new(machine, mem.view(View::identity(3)));
        driver.run_to_halt();
        assert_eq!(driver.report().backoff_invocations, 0);
        assert_eq!(driver.report().spin_iterations, 0);
        assert_eq!(driver.report().events, 2);
    }

    #[test]
    fn probed_solo_run_counts_per_register_ops_without_contention() {
        let mem: Mem = AnonymousMemory::new(3);
        let machine = AnonMutex::new(pid(1), 3).unwrap().with_cycles(1);
        let probe = MemProbe::new();
        let mut driver = Driver::new(machine, mem.view(View::identity(3))).with_probe(&probe);
        driver.run_to_halt();
        let report = driver.report().clone();
        let snap = probe.into_snapshot();
        // Probe counters agree exactly with the report.
        assert_eq!(snap.counter_total(Metric::RegRead), report.reads);
        assert_eq!(snap.counter_total(Metric::RegWrite), report.writes);
        // A solo run never observes foreign writes.
        assert_eq!(snap.counter_total(Metric::RegContention), 0);
        // One solo window spanning the entire run, keyed by pid.
        let windows: Vec<_> = snap
            .spans
            .iter()
            .filter(|s| s.span == Span::SoloWindow)
            .collect();
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].key, 1);
        assert_eq!(windows[0].length, report.ops());
    }

    /// Reads local register 0, announces the value, reads it again, halts.
    /// Deterministic scaffolding for the contention-detection tests.
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct ReadTwice {
        pid: Pid,
        phase: u8,
    }

    impl Machine for ReadTwice {
        type Value = u64;
        type Event = u64;

        fn pid(&self) -> Pid {
            self.pid
        }

        fn register_count(&self) -> usize {
            1
        }

        fn resume(&mut self, read: Option<u64>) -> Step<u64, u64> {
            self.phase += 1;
            match self.phase {
                1 | 3 => Step::Read(0),
                2 => Step::Event(read.unwrap()),
                4 => Step::Event(read.unwrap()),
                _ => Step::Halt,
            }
        }
    }

    #[test]
    fn probed_driver_detects_foreign_writes_as_contention() {
        let mem: Mem = AnonymousMemory::new(1);
        let machine = ReadTwice {
            pid: pid(5),
            phase: 0,
        };
        let probe = MemProbe::new();
        let mut driver = Driver::new(machine, mem.view(View::identity(1))).with_probe(&probe);
        assert_eq!(driver.run_until_event(), Some(0));
        // A foreign hand scribbles on the register between our two reads.
        mem.view(View::identity(1)).write::<u64>(0, 42);
        assert_eq!(driver.run_until_event(), Some(42));
        driver.run_to_halt();
        let snap = probe.into_snapshot();
        assert_eq!(snap.counter_total(Metric::RegContention), 1);
        // The contended read ends the first solo window; halting closes
        // the trailing one: lengths 2 (read, read-that-noticed) and 0.
        let windows: Vec<_> = snap
            .spans
            .iter()
            .filter(|s| s.span == Span::SoloWindow)
            .collect();
        assert_eq!(windows.len(), 2);
        assert!(windows.iter().all(|w| w.key == 5));
        assert_eq!(windows[0].length + windows[1].length, 2);
    }

    #[test]
    fn unprobed_driver_sees_the_same_run() {
        // The same interleaving without a probe: identical events and
        // report, proving instrumentation never changes semantics.
        let mem: Mem = AnonymousMemory::new(1);
        let machine = ReadTwice {
            pid: pid(5),
            phase: 0,
        };
        let mut driver = Driver::new(machine, mem.view(View::identity(1)));
        assert_eq!(driver.run_until_event(), Some(0));
        mem.view(View::identity(1)).write::<u64>(0, 42);
        assert_eq!(driver.run_until_event(), Some(42));
        driver.run_to_halt();
        assert_eq!(driver.report().reads, 2);
        assert_eq!(driver.report().events, 2);
    }

    #[test]
    #[should_panic(expected = "register count")]
    fn mismatched_view_panics() {
        let mem: Mem = AnonymousMemory::new(4);
        let machine = AnonMutex::new(pid(1), 3).unwrap();
        let _ = Driver::new(machine, mem.view(View::identity(4)));
    }

    /// Emits events forever without ever touching memory. Regression
    /// scaffolding for the `run_until_bounded` budget fix.
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct EventSpinner {
        pid: Pid,
    }

    impl Machine for EventSpinner {
        type Value = u64;
        type Event = u64;

        fn pid(&self) -> Pid {
            self.pid
        }

        fn register_count(&self) -> usize {
            1
        }

        fn resume(&mut self, _read: Option<u64>) -> Step<u64, u64> {
            Step::Event(0)
        }
    }

    #[test]
    fn bounded_run_counts_event_only_steps() {
        let mem: Mem = AnonymousMemory::new(1);
        let machine = EventSpinner { pid: pid(7) };
        let mut driver = Driver::new(machine, mem.view(View::identity(1)));
        // This used to hang: the budget counted only reads + writes, and
        // an event-spinning machine performs neither.
        assert!(!driver.run_until_bounded(|_| false, 1_000));
        assert_eq!(driver.report().events, 1_000);
        assert_eq!(driver.report().ops(), 0);
    }

    /// Two bursts of ten writes separated by an event, then halt.
    /// Regression scaffolding for the backoff-reset fix.
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct WriteBurst {
        pid: Pid,
        step: u32,
    }

    impl Machine for WriteBurst {
        type Value = u64;
        type Event = u64;

        fn pid(&self) -> Pid {
            self.pid
        }

        fn register_count(&self) -> usize {
            1
        }

        fn resume(&mut self, _read: Option<u64>) -> Step<u64, u64> {
            let step = self.step;
            self.step += 1;
            match step {
                0..=9 | 11..=20 => Step::Write(0, u64::from(step)),
                10 => Step::Event(0),
                _ => Step::Halt,
            }
        }
    }

    /// Pure write burst with no events — deterministic scaffolding for the
    /// peek-backoff regression test.
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct SoloWriter {
        pid: Pid,
        writes_left: u32,
    }

    impl Machine for SoloWriter {
        type Value = u64;
        type Event = u64;

        fn pid(&self) -> Pid {
            self.pid
        }

        fn register_count(&self) -> usize {
            1
        }

        fn resume(&mut self, _read: Option<u64>) -> Step<u64, u64> {
            if self.writes_left == 0 {
                return Step::Halt;
            }
            self.writes_left -= 1;
            Step::Write(0, u64::from(self.writes_left) + 1)
        }
    }

    #[test]
    fn solo_spin_iterations_match_the_blind_loop_exactly() {
        // The peek early-break must be invisible when nobody interferes:
        // a solo run's spin total equals the drawn values bit for bit
        // (replayed here from the driver's seeded RNG), and no peek break
        // fires. This pins the certified-relaxed peek path to "hint only".
        let backoff = Backoff {
            min_spins: 3,
            max_spins: 1 << 10,
        };
        let writes = 25u32;
        let mem: Mem = AnonymousMemory::new(1);
        let machine = SoloWriter {
            pid: pid(9),
            writes_left: writes,
        };
        let mut driver = Driver::new(machine, mem.view(View::identity(1))).with_backoff(backoff);
        driver.run_to_halt();
        let report = driver.report();
        assert_eq!(report.writes, u64::from(writes));

        // Replay the identical draw sequence the blind loop performed.
        let mut rng = Rng64::seed_from_u64(9 ^ 0x9e37_79b9_7f4a_7c15);
        let mut cap = backoff.min_spins;
        let mut expected = 0u64;
        for _ in 0..writes {
            expected += rng.gen_range_inclusive(0, cap as usize) as u64;
            cap = (cap.saturating_mul(2)).min(backoff.max_spins);
        }
        assert_eq!(report.spin_iterations, expected);
        assert_eq!(report.peek_breaks, 0);
    }

    #[test]
    fn contended_backoff_can_break_early_via_peek() {
        // A rival overwriting the register mid-window lets the spin loop
        // exit before the drawn count and records a peek break.
        let mem: Mem = AnonymousMemory::new(1);
        let rival = mem.view(View::identity(1));
        let machine = SoloWriter {
            pid: pid(4),
            writes_left: 200,
        };
        let mut driver = Driver::new(machine, mem.view(View::identity(1))).with_backoff(Backoff {
            min_spins: 1 << 12,
            max_spins: 1 << 12,
        });
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut i = 1_000u64;
                while !stop.load(Ordering::Relaxed) {
                    rival.write::<u64>(0, i);
                    i += 1;
                }
            });
            driver.run_to_halt();
            stop.store(true, Ordering::Relaxed);
        });
        let report = driver.report();
        assert!(
            report.peek_breaks > 0,
            "a constantly scribbling rival must trip at least one peek break"
        );
        assert!(report.peek_breaks <= report.backoff_invocations);
    }

    #[test]
    fn backoff_resets_to_min_after_event() {
        let mem: Mem = AnonymousMemory::new(1);
        let machine = WriteBurst {
            pid: pid(3),
            step: 0,
        };
        let mut driver = Driver::new(machine, mem.view(View::identity(1))).with_backoff(Backoff {
            min_spins: 1,
            max_spins: 1 << 20,
        });
        assert_eq!(driver.backoff_window(), Some(1));
        assert_eq!(driver.run_until_event(), Some(0));
        // The event completed an operation: the window is back at
        // min_spins instead of the 1024 the first burst escalated to.
        assert_eq!(driver.backoff_window(), Some(1));
        driver.run_to_halt();
        // Each ten-write burst draws from caps 1, 2, ..., 512, so the
        // spin total is bounded by 2 · (2^10 − 1) = 2046. Without the
        // reset the second burst's caps continue at 1024..524288 and the
        // (seeded, deterministic) total blows far past this bound.
        let report = driver.report();
        assert_eq!(report.writes, 20);
        assert!(
            report.spin_iterations <= 2 * 1023,
            "spin total {} exceeds the two-cycle reset bound",
            report.spin_iterations
        );
    }

    fn mutex_phase(event: &MutexEvent) -> Option<Phase> {
        match event {
            MutexEvent::Enter => Some(Phase::Critical),
            MutexEvent::Exit | MutexEvent::Aborted => Some(Phase::Doorway),
        }
    }

    #[test]
    fn profiler_records_doorway_waiting_and_critical_phases() {
        let mem: Mem = AnonymousMemory::new(3);
        let profiler = Arc::new(Profiler::new());
        let machine = AnonMutex::new(pid(7), 3).unwrap().with_cycles(2);
        let mut driver = Driver::new(machine, mem.view(View::identity(3)))
            .with_backoff(Backoff {
                min_spins: 4,
                max_spins: 64,
            })
            .with_profiler(Arc::clone(&profiler), mutex_phase);
        driver.run_to_halt();

        let profiles = profiler.profiles();
        assert_eq!(profiles.len(), 1, "halt must flush exactly one profile");
        let profile = &profiles[0];
        assert_eq!(profile.worker, 7, "timer is keyed by pid");
        let stacks: Vec<&str> = profile.frames.iter().map(|(s, _)| s.as_str()).collect();
        assert!(stacks.contains(&"doorway"), "missing doorway in {stacks:?}");
        assert!(
            stacks.contains(&"critical"),
            "missing critical in {stacks:?}"
        );
        assert!(
            stacks.iter().any(|s| s.ends_with(";waiting")),
            "backoff windows must nest as `<phase>;waiting`, got {stacks:?}"
        );
        assert!(profile.total_self_ns() > 0);
    }

    #[test]
    fn profiling_does_not_perturb_the_drive() {
        // Same seeded RNG, same machine, with and without a profiler
        // attached: every report field must be bit-identical.
        let run = |profiled: bool| {
            let mem: Mem = AnonymousMemory::new(3);
            let machine = AnonMutex::new(pid(3), 3).unwrap().with_cycles(3);
            let mut driver =
                Driver::new(machine, mem.view(View::identity(3))).with_backoff(Backoff {
                    min_spins: 8,
                    max_spins: 1 << 10,
                });
            if profiled {
                driver = driver.with_profiler(Arc::new(Profiler::new()), mutex_phase);
            }
            let events = driver.run_to_halt();
            let (_, report) = driver.into_parts();
            (events, report)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn into_parts_flushes_an_unhalted_profile() {
        let mem: Mem = AnonymousMemory::new(3);
        let profiler = Arc::new(Profiler::new());
        let machine = AnonMutex::new(pid(2), 3).unwrap().with_cycles(2);
        let mut driver = Driver::new(machine, mem.view(View::identity(3)))
            .with_profiler(Arc::clone(&profiler), mutex_phase);
        assert_eq!(driver.run_until_event(), Some(MutexEvent::Enter));
        let (_, _) = driver.into_parts();
        let profiles = profiler.profiles();
        assert_eq!(profiles.len(), 1, "into_parts must flush the live timer");
        let stacks: Vec<&str> = profiles[0].frames.iter().map(|(s, _)| s.as_str()).collect();
        assert!(
            stacks.contains(&"critical"),
            "stopped inside the CS: {stacks:?}"
        );
    }
}
