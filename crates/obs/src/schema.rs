//! The versioned JSONL wire schema and its validator.
//!
//! Every line an anonreg tool emits is a single JSON object carrying the
//! schema version in `"v"` and a line type in `"t"`. Schema v1 defines:
//!
//! | `t`          | required fields                                          |
//! |--------------|----------------------------------------------------------|
//! | `meta`       | `tool` (str); free extra fields                          |
//! | `counter`    | `name` (str), `key` (u64), `value` (u64)                 |
//! | `gauge`      | `name` (str), `key`, `last`, `max`, `samples` (u64)      |
//! | `hist`       | `name` (str), `key`, `count`, `sum`, `min`, `max` (u64), `buckets` (arr of u64) |
//! | `span`       | `name` (str), `key` (u64), `length` (u64)                |
//! | `event`      | `name` (str), `fields` (obj of u64)                      |
//! | `bench`      | `experiment` (str), `family` (str), `name` (str), `value` (num), `unit` (str) |
//! | `trace_meta` | `procs` (u64), `registers` (u64), `ops` (u64)            |
//! | `op`         | `proc` (u64), `pid` (u64), `kind` (str: `read`/`write`/`event`/`halt`) |
//!
//! [`validate_line`] and [`validate_jsonl`] enforce exactly this table;
//! the golden-file test in `crates/obs/tests` pins concrete encodings so
//! the format cannot drift without a deliberate version bump.

use crate::json::{Json, JsonError};

/// The current wire schema version. Bump when any line shape changes
/// incompatibly.
pub const SCHEMA_VERSION: u64 = 1;

/// A schema violation found by [`validate_line`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchemaError {
    /// 1-based line number within the validated document (1 for a single
    /// line).
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for SchemaError {}

fn err(line: usize, reason: impl Into<String>) -> SchemaError {
    SchemaError {
        line,
        reason: reason.into(),
    }
}

fn parse_err(line: usize, e: &JsonError) -> SchemaError {
    err(
        line,
        format!("invalid JSON at byte {}: {}", e.pos, e.reason),
    )
}

fn require_u64(obj: &Json, field: &str, line: usize) -> Result<u64, SchemaError> {
    obj.get(field)
        .and_then(Json::as_u64)
        .ok_or_else(|| err(line, format!("missing or non-u64 field `{field}`")))
}

fn require_str<'a>(obj: &'a Json, field: &str, line: usize) -> Result<&'a str, SchemaError> {
    obj.get(field)
        .and_then(Json::as_str)
        .ok_or_else(|| err(line, format!("missing or non-string field `{field}`")))
}

fn require_num(obj: &Json, field: &str, line: usize) -> Result<f64, SchemaError> {
    obj.get(field)
        .and_then(Json::as_f64)
        .ok_or_else(|| err(line, format!("missing or non-numeric field `{field}`")))
}

/// Validates one already-parsed JSONL object against schema v1.
///
/// # Errors
///
/// Returns the first violation found, tagged with `line` (1-based).
pub fn validate_value(value: &Json, line: usize) -> Result<(), SchemaError> {
    if !matches!(value, Json::Obj(_)) {
        return Err(err(line, "line is not a JSON object"));
    }
    let v = require_u64(value, "v", line)?;
    if v != SCHEMA_VERSION {
        return Err(err(
            line,
            format!("unsupported schema version {v} (expected {SCHEMA_VERSION})"),
        ));
    }
    let t = require_str(value, "t", line)?;
    match t {
        "meta" => {
            require_str(value, "tool", line)?;
        }
        "counter" => {
            require_str(value, "name", line)?;
            require_u64(value, "key", line)?;
            require_u64(value, "value", line)?;
        }
        "gauge" => {
            require_str(value, "name", line)?;
            for field in ["key", "last", "max", "samples"] {
                require_u64(value, field, line)?;
            }
        }
        "hist" => {
            require_str(value, "name", line)?;
            for field in ["key", "count", "sum", "min", "max"] {
                require_u64(value, field, line)?;
            }
            let buckets = value
                .get("buckets")
                .and_then(Json::as_arr)
                .ok_or_else(|| err(line, "missing or non-array field `buckets`"))?;
            if buckets.iter().any(|b| b.as_u64().is_none()) {
                return Err(err(line, "non-u64 entry in `buckets`"));
            }
        }
        "span" => {
            require_str(value, "name", line)?;
            require_u64(value, "key", line)?;
            require_u64(value, "length", line)?;
        }
        "event" => {
            require_str(value, "name", line)?;
            let fields = value
                .get("fields")
                .ok_or_else(|| err(line, "missing field `fields`"))?;
            match fields {
                Json::Obj(entries) => {
                    if entries.iter().any(|(_, v)| v.as_u64().is_none()) {
                        return Err(err(line, "non-u64 value in `fields`"));
                    }
                }
                _ => return Err(err(line, "field `fields` is not an object")),
            }
        }
        "bench" => {
            require_str(value, "experiment", line)?;
            require_str(value, "family", line)?;
            require_str(value, "name", line)?;
            require_num(value, "value", line)?;
            require_str(value, "unit", line)?;
        }
        "trace_meta" => {
            for field in ["procs", "registers", "ops"] {
                require_u64(value, field, line)?;
            }
        }
        "op" => {
            require_u64(value, "proc", line)?;
            require_u64(value, "pid", line)?;
            let kind = require_str(value, "kind", line)?;
            match kind {
                "read" | "write" => {
                    require_u64(value, "local", line)?;
                    require_u64(value, "physical", line)?;
                    if value.get("value").is_none() {
                        return Err(err(line, "missing field `value`"));
                    }
                }
                "event" => {
                    if value.get("payload").is_none() {
                        return Err(err(line, "missing field `payload`"));
                    }
                }
                "halt" => {}
                other => return Err(err(line, format!("unknown op kind `{other}`"))),
            }
        }
        other => return Err(err(line, format!("unknown line type `{other}`"))),
    }
    Ok(())
}

/// Parses and validates one JSONL line against schema v1.
///
/// # Errors
///
/// Returns a [`SchemaError`] (with `line == 1`) if the line is not valid
/// JSON or violates the schema.
pub fn validate_line(line: &str) -> Result<(), SchemaError> {
    let value = Json::parse(line).map_err(|e| parse_err(1, &e))?;
    validate_value(&value, 1)
}

/// Validates a whole JSONL document (one object per non-empty line).
///
/// Returns the number of validated lines.
///
/// # Errors
///
/// Returns the first violation, tagged with its 1-based line number.
pub fn validate_jsonl(text: &str) -> Result<usize, SchemaError> {
    let mut validated = 0;
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let value = Json::parse(raw).map_err(|e| parse_err(line, &e))?;
        validate_value(&value, line)?;
        validated += 1;
    }
    Ok(validated)
}

/// Builds the `meta` header line every emitted document should start
/// with. `extra` fields ride along verbatim.
#[must_use]
pub fn meta_line(tool: &str, extra: &[(&str, Json)]) -> Json {
    let mut fields = vec![
        ("v".to_string(), Json::U64(SCHEMA_VERSION)),
        ("t".to_string(), Json::Str("meta".to_string())),
        ("tool".to_string(), Json::Str(tool.to_string())),
    ];
    for (k, v) in extra {
        fields.push(((*k).to_string(), v.clone()));
    }
    Json::Obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_every_line_type() {
        let lines = [
            r#"{"v":1,"t":"meta","tool":"repro","quick":true}"#,
            r#"{"v":1,"t":"counter","name":"reg_read","key":0,"value":42}"#,
            r#"{"v":1,"t":"gauge","name":"explore_frontier","key":0,"last":3,"max":17,"samples":9}"#,
            r#"{"v":1,"t":"hist","name":"backoff_spins","key":0,"count":2,"sum":10,"min":3,"max":7,"buckets":[0,0,1,1]}"#,
            r#"{"v":1,"t":"span","name":"solo_run","key":2,"length":14}"#,
            r#"{"v":1,"t":"event","name":"explore_done","fields":{"states":5}}"#,
            r#"{"v":1,"t":"bench","experiment":"E1","family":"mutex","name":"states","value":1234,"unit":"states"}"#,
            r#"{"v":1,"t":"trace_meta","procs":2,"registers":3,"ops":10}"#,
            r#"{"v":1,"t":"op","proc":0,"pid":7,"kind":"read","local":1,"physical":2,"value":0}"#,
            r#"{"v":1,"t":"op","proc":0,"pid":7,"kind":"write","local":1,"physical":2,"value":9}"#,
            r#"{"v":1,"t":"op","proc":1,"pid":9,"kind":"event","payload":"Enter"}"#,
            r#"{"v":1,"t":"op","proc":1,"pid":9,"kind":"halt"}"#,
        ];
        for line in lines {
            validate_line(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        let doc = lines.join("\n");
        assert_eq!(validate_jsonl(&doc).unwrap(), lines.len());
    }

    #[test]
    fn rejects_bad_lines() {
        let cases = [
            ("not json at all", "invalid JSON"),
            (r#"[1,2,3]"#, "not a JSON object"),
            (r#"{"t":"counter","name":"x","key":0,"value":1}"#, "`v`"),
            (
                r#"{"v":2,"t":"meta","tool":"x"}"#,
                "unsupported schema version",
            ),
            (r#"{"v":1,"t":"mystery"}"#, "unknown line type"),
            (r#"{"v":1,"t":"counter","name":"x","key":0}"#, "`value`"),
            (
                r#"{"v":1,"t":"hist","name":"x","key":0,"count":1,"sum":1,"min":1,"max":1,"buckets":[1,"no"]}"#,
                "non-u64 entry",
            ),
            (
                r#"{"v":1,"t":"op","proc":0,"pid":1,"kind":"jump"}"#,
                "unknown op kind",
            ),
            (
                r#"{"v":1,"t":"bench","experiment":"E1","family":"mutex","name":"x","value":"high","unit":"u"}"#,
                "non-numeric field `value`",
            ),
        ];
        for (line, needle) in cases {
            let e = validate_line(line).unwrap_err();
            assert!(
                e.reason.contains(needle),
                "{line}: expected `{needle}` in `{}`",
                e.reason
            );
        }
    }

    #[test]
    fn validate_jsonl_reports_line_numbers() {
        let doc = "{\"v\":1,\"t\":\"meta\",\"tool\":\"x\"}\n\n{\"v\":1,\"t\":\"nope\"}\n";
        let e = validate_jsonl(doc).unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn meta_line_is_valid() {
        let line = meta_line("check", &[("mode", Json::Str("obs".into()))]);
        validate_value(&line, 1).unwrap();
        assert_eq!(line.get("mode").and_then(Json::as_str), Some("obs"));
    }
}
