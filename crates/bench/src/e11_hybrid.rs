//! E11 — the hybrid-model table (§8 exploration).
//!
//! One named register added to `m` anonymous ones changes the Theorem 3.1
//! landscape: the tie that forces the odd-`m` requirement can now be broken
//! by a Peterson-style announcement. This table mirrors E1 for the hybrid
//! algorithm: exhaustive model checking per `m`, every anonymous-view
//! rotation — and the expected result column is "safe+live" for **every**
//! `m ≥ 2`, even ones included.

use anonreg::hybrid::{named_view, HybridMutex};
use anonreg::mutex::{MutexEvent, Section};
use anonreg::Pid;
use anonreg_sim::prelude::*;
use anonreg_sim::Simulation;

use crate::benchjson::{flag, BenchMetric};
use crate::table::Table;

/// One row of the hybrid table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Anonymous register count (total registers = `m + 1`).
    pub m: usize,
    /// Rotation views checked (exhaustive per view).
    pub views_checked: usize,
    /// Largest reachable state count among the checked views.
    pub max_states: usize,
    /// Mutual exclusion held in every reachable state of every view.
    pub safe: bool,
    /// No fair livelock exists in any checked view.
    pub live: bool,
}

impl Row {
    /// The hybrid claim: safe and live for every `m ≥ 2`.
    #[must_use]
    pub fn verified(&self) -> bool {
        self.safe && self.live
    }
}

/// Runs the hybrid experiment for `m` in `2..=max_m` (state spaces grow
/// quickly; `max_m = 4` is exhaustive within seconds, `5` within minutes).
#[must_use]
pub fn rows(max_m: usize) -> Vec<Row> {
    (2..=max_m)
        .map(|m| {
            let mut safe = true;
            let mut live = true;
            let mut max_states = 0;
            for shift in 0..m {
                let anon_identity: Vec<usize> = (0..m).collect();
                let anon_rotated: Vec<usize> = (0..m).map(|j| (j + shift) % m).collect();
                let sim = Simulation::builder()
                    .process(
                        HybridMutex::new(Pid::new(1).unwrap(), m).expect("m >= 2"),
                        named_view(m, anon_identity).expect("valid permutation"),
                    )
                    .process(
                        HybridMutex::new(Pid::new(2).unwrap(), m).expect("m >= 2"),
                        named_view(m, anon_rotated).expect("valid permutation"),
                    )
                    .build()
                    .expect("uniform configuration");
                let graph = Explorer::new(sim)
                    .max_states(8_000_000)
                    .crashes(false)
                    .run()
                    .expect("hybrid state spaces fit the limit");
                max_states = max_states.max(graph.state_count());
                if graph
                    .find_state(|s| {
                        s.machines()
                            .filter(|mach| mach.section() == Section::Critical)
                            .count()
                            >= 2
                    })
                    .is_some()
                {
                    safe = false;
                }
                if graph
                    .find_fair_livelock(
                        |mach| mach.section() == Section::Entry,
                        |event| *event == MutexEvent::Enter,
                    )
                    .is_some()
                {
                    live = false;
                }
            }
            Row {
                m,
                views_checked: m,
                max_states,
                safe,
                live,
            }
        })
        .collect()
}

/// Renders the table for the given rows.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(vec![
        "m (anon) + 1 named",
        "views",
        "max states",
        "mutual excl",
        "deadlock-free",
        "Fig.1 alone",
    ]);
    for r in rows {
        t.row(vec![
            format!("{} + 1", r.m),
            r.views_checked.to_string(),
            r.max_states.to_string(),
            if r.safe { "HOLDS" } else { "VIOLATED" }.into(),
            if r.live { "HOLDS" } else { "LIVELOCK" }.into(),
            if r.m % 2 == 0 { "livelocks" } else { "works" }.into(),
        ]);
    }
    t.render()
}

/// Machine-readable metrics for the given rows.
#[must_use]
pub fn metrics(rows: &[Row]) -> Vec<BenchMetric> {
    let mut out = Vec::new();
    for r in rows {
        let m = r.m;
        out.push(BenchMetric::new(
            "E11",
            "hybrid",
            format!("m{m}_max_states"),
            r.max_states as f64,
            "states",
        ));
        out.push(BenchMetric::new(
            "E11",
            "hybrid",
            format!("m{m}_verified"),
            flag(r.verified()),
            "bool",
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_and_odd_m_both_verify() {
        for row in rows(3) {
            assert!(row.verified(), "m={}: {row:?}", row.m);
        }
    }
}
