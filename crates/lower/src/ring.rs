//! Theorem 3.4, executably: the lock-step ring adversary.
//!
//! "There is a memory-anonymous symmetric deadlock-free mutual exclusion
//! algorithm for n processes using m ≥ 2 registers **only if** for every
//! `1 < ℓ ≤ n`, `m` and `ℓ` are relatively prime." The proof gives `ℓ | m`
//! symmetric processes the same ring ordering, spaces their initial
//! registers `m/ℓ` apart and runs them in lock step: symmetry can never
//! break, so either all enter the critical section together or none ever
//! does.
//!
//! [`ring_starvation`] runs exactly that adversary against Figure 1 and
//! reports what happened; experiment E2 tabulates the outcome over a grid
//! of `(m, ℓ)` pairs. Note the contrapositive reading of the table: where
//! `gcd(m, ℓ) > 1` the adversary exists and starves the ring; where
//! `gcd(m, ℓ) = 1` no such ring fits, consistent with the odd-`m`
//! two-process algorithm being correct.

use std::fmt;

use anonreg::mutex::{AnonMutex, MutexEvent, Section};
use anonreg::Pid;
use anonreg_sim::symmetry::{ring_views, run_lockstep_symmetric, RingError};
use anonreg_sim::Simulation;

/// Outcome of the Theorem 3.4 ring adversary against Figure 1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RingOutcome {
    /// Registers on the ring.
    pub m: usize,
    /// Processes on the ring (`ℓ | m`).
    pub l: usize,
    /// Lock-step rounds executed.
    pub rounds: usize,
    /// Whether rotation symmetry held after every round (the theorem
    /// predicts: always).
    pub symmetric_throughout: bool,
    /// Critical-section entries observed (the theorem predicts: 0, or a
    /// simultaneous mass entry breaking mutual exclusion).
    pub cs_entries: usize,
    /// Processes still stuck in their entry sections at the end.
    pub stuck_in_entry: usize,
}

impl RingOutcome {
    /// Did the adversary demonstrate a violation of deadlock-freedom (no
    /// entries, everyone stuck, symmetry intact)?
    #[must_use]
    pub fn starved(&self) -> bool {
        self.symmetric_throughout && self.cs_entries == 0 && self.stuck_in_entry == self.l
    }
}

impl fmt::Display for RingOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "m = {}, l = {}: {} rounds, symmetric = {}, CS entries = {}, stuck = {}",
            self.m,
            self.l,
            self.rounds,
            self.symmetric_throughout,
            self.cs_entries,
            self.stuck_in_entry
        )
    }
}

/// Runs the Theorem 3.4 adversary: `ℓ` Figure 1 processes (`ℓ | m`) on a
/// ring of `m` registers, in lock step for `rounds` rounds.
///
/// # Errors
///
/// Returns [`RingError`] unless `ℓ ≥ 2` and `ℓ` divides `m`.
pub fn ring_starvation(m: usize, l: usize, rounds: usize) -> Result<RingOutcome, RingError> {
    let views = ring_views(m, l)?;
    let mut builder = Simulation::builder();
    for (k, view) in views.into_iter().enumerate() {
        builder = builder.process(
            AnonMutex::new(Pid::new(k as u64 + 1).unwrap(), m).expect("m >= 1"),
            view,
        );
    }
    let mut sim = builder.build().expect("ring configuration is valid");

    let report = run_lockstep_symmetric(&mut sim, l, rounds);
    let cs_entries = sim
        .trace()
        .events()
        .filter(|(_, _, e)| **e == MutexEvent::Enter)
        .count();
    let stuck_in_entry = sim
        .machines()
        .filter(|mach| mach.section() == Section::Entry)
        .count();
    Ok(RingOutcome {
        m,
        l,
        rounds: report.rounds,
        symmetric_throughout: report.symmetric_throughout(),
        cs_entries,
        stuck_in_entry,
    })
}

/// Greatest common divisor, for tabulating which `(m, ℓ)` pairs admit the
/// ring adversary (`gcd > 1` ⇔ some divisor `ℓ' | m` with `ℓ' ≤ ℓ` exists).
#[must_use]
pub fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divisible_rings_starve() {
        for (m, l) in [(2, 2), (4, 2), (6, 2), (3, 3), (6, 3), (9, 3), (8, 4)] {
            let outcome = ring_starvation(m, l, 500).unwrap();
            assert!(
                outcome.starved(),
                "expected starvation for m={m}, l={l}: {outcome}"
            );
        }
    }

    #[test]
    fn indivisible_rings_are_rejected() {
        assert!(ring_starvation(3, 2, 10).is_err());
        assert!(ring_starvation(5, 2, 10).is_err());
        assert!(ring_starvation(7, 3, 10).is_err());
    }

    #[test]
    fn gcd_matches_the_theorem_statement() {
        assert_eq!(gcd(6, 4), 2);
        assert_eq!(gcd(9, 3), 3);
        assert_eq!(gcd(7, 2), 1);
        assert_eq!(gcd(5, 3), 1);
        // Theorem 3.1 as a special case: for n = 2, "m relatively prime to
        // 2" means m odd.
        for m in 2..20 {
            assert_eq!(gcd(m, 2) == 1, m % 2 == 1);
        }
    }

    #[test]
    fn outcome_display_nonempty() {
        let outcome = ring_starvation(4, 2, 50).unwrap();
        assert!(!outcome.to_string().is_empty());
    }
}
