//! The breadth-parallel exploration engine.
//!
//! `run_parallel` explores the same reachable graph as the sequential
//! engine, split across worker threads:
//!
//! * **Lock-free dedup table** — state identity lives in a fixed-capacity
//!   open-addressing fingerprint table ([`FpTable`]): one CAS claims a
//!   slot, one release store publishes the id, and readers acquire
//!   through the same word before touching the canonical code (the
//!   Arc-style publication idiom; orderings are certified in
//!   `explore/dedup.rs` and `anonreg_sanitizer::explorer_site_notes`).
//!   A blocked atomic bloom filter ([`Bloom`]) is fed before every claim
//!   and screens the sequential engine's probes; here it doubles as a
//!   dedup statistic. Canonical codes live in an id-indexed `OnceLock`
//!   arena, or — with [`ExploreConfig::spill`] — in per-worker temp
//!   files behind a sharded LRU tier ([`SpillStore`]), so code bytes no
//!   longer bound the state count by RAM.
//! * **States travel with the work items** — a discovered state's
//!   `Simulation` is moved into its frontier entry and, in graph mode,
//!   into the striped state store only after its expansion, eliminating
//!   the store-then-reclone round trip per state the mutex-sharded
//!   design paid.
//! * **Per-worker frontier deques with work stealing** — each worker pops
//!   depth-first from the back of its own deque (keeps the hot end of the
//!   frontier in cache) and steals breadth-first from the front of a
//!   neighbour's when it runs dry.
//!
//! Termination uses a `pending` counter of discovered-but-unexpanded
//! states: a child is counted *before* it is enqueued and its parent is
//! uncounted only *after* every child has been enqueued — by a drop
//! guard, so a worker that panics mid-expansion still releases its item
//! and trips the abort flag instead of hanging the run
//! (`pending == 0` with an empty local scan really means the frontier is
//! globally drained; see `ORD-EXP-PENDING-005` for why Relaxed suffices).
//!
//! State ids are assigned in race order, so two parallel runs (or a
//! parallel and a sequential run) number states differently. The *graph*
//! is identical up to that renumbering — the property tests in
//! `crates/core/tests/parallel_modelcheck.rs` check graph isomorphism
//! against the sequential engine family by family, and
//! `por_modelcheck.rs` does the same for the partial-order-reduced
//! graphs. Under a symmetry mode the stored representative of an orbit
//! is the first *concrete* state to reach the dedup table, so which
//! member represents an orbit (and hence edge event labels) is racy, but
//! the orbit set — state and edge counts, and every verdict — is
//! deterministic.

use std::collections::VecDeque;
use std::hash::Hash;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use anonreg_model::fingerprint::{fp128, Fp128};
use anonreg_model::{Machine, SymmetryMode};
use anonreg_obs::{Metric, Phase, Probe, Profiler, Span};

use super::dedup::{Bloom, FpTable, Probe as TableProbe, SpillStore};
use super::{
    expand_into, record_timer, report_symmetry, Edge, ExploreConfig, ExploreError, ExploreStats,
    FlushedCounters, PorTally, StateGraph, Successor, GAUGE_SAMPLE_EVERY,
};
use crate::canon::StateEncoder;
use crate::Simulation;

/// Number of state-store stripes (graph mode only; a state's stripe is
/// chosen by id).
const STRIPES: usize = 64;

/// How many consecutive empty steal sweeps before an idle worker sleeps
/// instead of spinning. Keeps idle workers cheap when the frontier is
/// momentarily narrower than the worker count (and on single-CPU hosts).
const IDLE_SPINS: u32 = 64;

/// In-memory budget for the spill tier's LRU code cache.
const SPILL_LRU_BUDGET: usize = 64 << 20;

/// How many successors a worker encodes and fingerprints before probing
/// the shared table. Batching keeps the encode+hash loop hot in the
/// worker's own cache lines instead of interleaving every fingerprint
/// with a (possibly contended) table probe; the batch is drained through
/// the table in expansion order, so intern order — and therefore every
/// count — is bit-identical to the unbatched loop.
const FP_BATCH: usize = 8;

/// A discovered-but-unexpanded state. The frontier owns the only
/// `Simulation` clone of the state until it is expanded (the old design
/// stored it at discovery and recloned it at expansion — one full state
/// copy per state, for nothing).
struct WorkItem<M: Machine> {
    id: u32,
    depth: u32,
    sim: Simulation<M>,
}

/// The interned states, striped by `id % STRIPES`. Only graph mode keeps
/// one; stats mode drops every expanded state on the floor.
struct StateStore<M: Machine> {
    stripes: Vec<Mutex<Vec<Option<Simulation<M>>>>>,
}

impl<M: Machine + Eq> StateStore<M> {
    fn new() -> Self {
        StateStore {
            stripes: (0..STRIPES).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    fn insert(&self, id: usize, state: Simulation<M>) {
        let mut stripe = self.stripes[id % STRIPES].lock().expect("store lock");
        let slot = id / STRIPES;
        if stripe.len() <= slot {
            stripe.resize_with(slot + 1, || None);
        }
        stripe[slot] = Some(state);
    }

    /// Drains the store into an id-ordered state vector.
    fn into_states(self, total: usize) -> Vec<Simulation<M>> {
        let mut stripes: Vec<Vec<Option<Simulation<M>>>> = self
            .stripes
            .into_iter()
            .map(|m| m.into_inner().expect("store lock"))
            .collect();
        (0..total)
            .map(|id| {
                stripes[id % STRIPES][id / STRIPES]
                    .take()
                    .expect("every expanded id was stored")
            })
            .collect()
    }
}

/// Canonical code arena: one write-once slot per interned id.
type CodeArena = Box<[OnceLock<Box<[u8]>>]>;

/// Everything the workers share.
struct Ctx<M: Machine> {
    table: FpTable,
    bloom: Bloom,
    /// Canonical code arena, indexed by id (`None` when spilling).
    /// A code is set before its id's table slot is published, so a
    /// reader that found the id always finds the code
    /// (ORD-DEDUP-META-002).
    codes: Option<CodeArena>,
    /// On-disk code store (`Some` exactly when `codes` is `None`).
    spill: Option<SpillStore>,
    /// Graph mode: the authoritative `Simulation` per expanded id.
    store: Option<StateStore<M>>,
    /// One frontier deque per worker.
    queues: Vec<Mutex<VecDeque<WorkItem<M>>>>,
    /// Discovered-but-unexpanded states (see module docs).
    /// ORD-EXP-PENDING-005: Relaxed — on this single counter, every
    /// child's increment precedes its parent's decrement in the
    /// incrementing thread's program order, so coherence alone
    /// guarantees a zero is only ever observed once the frontier is
    /// truly drained.
    pending: AtomicUsize,
    /// Advisory stop flag (state limit hit or a sibling panicked).
    /// ORD-EXP-ABORT-007: Relaxed — no data rides on it; the authoritative
    /// error is decided on the main thread after the joins.
    aborted: AtomicBool,
    /// Maximum discovery depth seen.
    max_depth: AtomicU64,
    crashes: bool,
    por: bool,
}

impl<M: Machine + Eq + Hash> Ctx<M> {
    /// Offers `code` (fingerprinted as `fp`) to the dedup table on
    /// behalf of worker `me`. The bloom bits are set before any claim,
    /// preserving the filter's never-false-negative contract.
    fn intern(&self, me: usize, fp: Fp128, code: &[u8]) -> TableProbe {
        self.bloom.insert(fp);
        let should_abort = || self.aborted.load(Ordering::Relaxed);
        if let Some(spill) = &self.spill {
            self.table.intern(
                fp,
                |id| match spill.matches(id, code) {
                    Some(equal) => equal,
                    None => {
                        // Still buffered by another worker: trust the
                        // 128-bit fingerprint, count the leap of faith.
                        spill.counters.unverified.fetch_add(1, Ordering::Relaxed);
                        true
                    }
                },
                |id| spill.publish(me, id, code),
                should_abort,
            )
        } else {
            let codes = self.codes.as_ref().expect("no-spill mode has a code arena");
            self.table.intern(
                fp,
                |id| codes[id as usize].get().is_some_and(|c| &**c == code),
                |id| {
                    let stored = codes[id as usize].set(code.into());
                    debug_assert!(stored.is_ok(), "each id is published exactly once");
                },
                should_abort,
            )
        }
    }
}

/// Releases one unit of `pending` when an expansion ends — normally or
/// by unwinding. A panicking worker additionally trips the abort flag so
/// its siblings drain and exit instead of waiting for work that will
/// never come; the main thread turns the panicked join into
/// [`ExploreError::WorkerPanicked`].
struct PendingGuard<'a> {
    pending: &'a AtomicUsize,
    aborted: &'a AtomicBool,
}

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.aborted.store(true, Ordering::Relaxed);
        }
        // ORD-EXP-PENDING-005.
        self.pending.fetch_sub(1, Ordering::Relaxed);
    }
}

/// What one worker brings home: its slice of the graph plus its tallies.
struct WorkerOut<M: Machine> {
    /// Outgoing edges of every state this worker expanded (graph mode).
    edges: Vec<(u32, Vec<Edge<M::Event>>)>,
    /// Discovery parents of every state this worker discovered:
    /// `(child, parent, proc, crash)` (graph mode).
    parents: Vec<(u32, u32, u32, bool)>,
    /// States expanded.
    expanded: u64,
    /// States this worker discovered (interned as `Fresh`).
    fresh: u64,
    /// Dedup hits this worker observed (interned as `Known`).
    dedup: u64,
    /// Work items stolen from other workers.
    steals: u64,
    /// Transitions recorded.
    edge_total: u64,
    /// Definite bloom misses among this worker's interns.
    bloom_neg: u64,
    /// Ample-set reduction tallies.
    por: PorTally,
}

/// Pops the next work item: own deque from the back, else a sweep of the
/// other workers' deques from the front.
fn pop_work<M: Machine>(me: usize, ctx: &Ctx<M>, steals: &mut u64) -> Option<WorkItem<M>> {
    if let Some(item) = ctx.queues[me].lock().expect("queue lock").pop_back() {
        return Some(item);
    }
    let n = ctx.queues.len();
    for offset in 1..n {
        let victim = (me + offset) % n;
        if let Some(item) = ctx.queues[victim].lock().expect("queue lock").pop_front() {
            *steals += 1;
            return Some(item);
        }
    }
    None
}

/// One worker's main loop.
fn worker<M, P>(
    me: usize,
    ctx: &Ctx<M>,
    probe: &P,
    encoder: &StateEncoder<M>,
    profiler: Option<&Profiler>,
) -> WorkerOut<M>
where
    M: Machine + Eq + Hash,
    P: Probe,
{
    if P::ENABLED {
        probe.span_open(Span::ExploreWorker, me as u64);
    }
    let mut timer = profiler.map(|p| p.timer(me as u64));
    let mut out = WorkerOut {
        edges: Vec::new(),
        parents: Vec::new(),
        expanded: 0,
        fresh: 0,
        dedup: 0,
        steals: 0,
        edge_total: 0,
        bloom_neg: 0,
        por: PorTally::default(),
    };
    // See `run_sequential`: the trivial-orbit fast path is plain
    // encoding, so count it as skipped rather than timing it as
    // canonicalization.
    let track_canon =
        P::ENABLED && encoder.mode() != SymmetryMode::Off && !encoder.skips_trivial_orbits();
    let track_skipped = P::ENABLED && encoder.skips_trivial_orbits();
    // In spill mode the intern probe includes the LRU/file tier; charge
    // it to the spill phase so profiles separate table time from IO.
    let intern_phase = if ctx.spill.is_some() {
        Phase::Spill
    } else {
        Phase::Dedup
    };
    let collect_graph = ctx.store.is_some();
    let mut canon_nanos = 0u64;
    let mut symmetry_hits = 0u64;
    let mut canon_skipped = 0u64;
    let mut flushed = FlushedCounters::default();
    let mut successors: Vec<Successor<M>> = Vec::new();
    let mut batch: Vec<(Successor<M>, Box<[u8]>, Fp128)> = Vec::with_capacity(FP_BATCH);
    let mut idle = 0u32;
    'outer: while !ctx.aborted.load(Ordering::Relaxed) {
        if let Some(t) = timer.as_mut() {
            t.switch(Phase::Steal);
        }
        let Some(item) = pop_work(me, ctx, &mut out.steals) else {
            if ctx.pending.load(Ordering::Relaxed) == 0 {
                break;
            }
            if let Some(t) = timer.as_mut() {
                t.switch(Phase::Idle);
            }
            idle += 1;
            if idle >= IDLE_SPINS {
                std::thread::sleep(std::time::Duration::from_micros(50));
            } else {
                std::thread::yield_now();
            }
            continue;
        };
        idle = 0;
        let WorkItem {
            id,
            depth,
            sim: state,
        } = item;
        // From here the popped item is accounted for even if a machine
        // panics mid-step.
        let _guard = PendingGuard {
            pending: &ctx.pending,
            aborted: &ctx.aborted,
        };
        if let Some(t) = timer.as_mut() {
            t.switch(Phase::Step);
        }
        out.por
            .absorb(expand_into(&state, ctx.crashes, ctx.por, &mut successors));
        let mut edges_out = Vec::with_capacity(if collect_graph { successors.len() } else { 0 });
        // Batched fingerprinting: encode + hash up to FP_BATCH successors
        // back-to-back, then drain them through the shared table in the
        // same order the unbatched loop would have used.
        let mut pending_succs = successors.drain(..);
        loop {
            if let Some(t) = timer.as_mut() {
                t.switch(Phase::Canon);
            }
            batch.clear();
            while batch.len() < FP_BATCH {
                let Some(succ) = pending_succs.next() else {
                    break;
                };
                let code = if track_canon {
                    let start = Instant::now();
                    let (code, moved) = encoder.encode(&succ.sim);
                    canon_nanos += start.elapsed().as_nanos() as u64;
                    symmetry_hits += u64::from(moved);
                    code
                } else {
                    canon_skipped += u64::from(track_skipped);
                    encoder.encode(&succ.sim).0
                };
                let fp = fp128(&code);
                batch.push((succ, code, fp));
            }
            if batch.is_empty() {
                break;
            }
            if let Some(t) = timer.as_mut() {
                t.switch(intern_phase);
            }
            for (succ, code, fp) in batch.drain(..) {
                if P::ENABLED && !ctx.bloom.query(fp) {
                    out.bloom_neg += 1;
                }
                let target = match ctx.intern(me, fp, &code) {
                    TableProbe::Known(t) => {
                        out.dedup += 1;
                        t
                    }
                    TableProbe::Fresh(t) => {
                        out.fresh += 1;
                        if collect_graph {
                            out.parents.push((t, id, succ.proc as u32, succ.crash));
                        }
                        // Count the child before enqueueing it so `pending`
                        // never under-reports outstanding work.
                        ctx.pending.fetch_add(1, Ordering::Relaxed);
                        ctx.queues[me]
                            .lock()
                            .expect("queue lock")
                            .push_back(WorkItem {
                                id: t,
                                depth: depth + 1,
                                sim: succ.sim,
                            });
                        ctx.max_depth
                            .fetch_max(u64::from(depth) + 1, Ordering::Relaxed);
                        t
                    }
                    TableProbe::Limit | TableProbe::Aborted => {
                        ctx.aborted.store(true, Ordering::Relaxed);
                        break 'outer;
                    }
                };
                out.edge_total += 1;
                if collect_graph {
                    edges_out.push(Edge {
                        proc: succ.proc,
                        target: target as usize,
                        events: succ.event.into_iter().collect(),
                        crash: succ.crash,
                    });
                }
            }
        }
        if let Some(store) = &ctx.store {
            out.edges.push((id, edges_out));
            store.insert(id as usize, state);
        }
        out.expanded += 1;
        if P::ENABLED && out.expanded % GAUGE_SAMPLE_EVERY as u64 == 0 {
            probe.gauge(
                Metric::ExploreFrontier,
                0,
                ctx.pending.load(Ordering::Relaxed) as u64,
            );
            probe.gauge(
                Metric::ExploreDepth,
                0,
                ctx.max_depth.load(Ordering::Relaxed),
            );
            flushed.flush(probe, me as u64, out.fresh, out.edge_total, out.dedup);
        }
    }
    if P::ENABLED {
        flushed.finish(probe, me as u64, out.fresh, out.edge_total, out.dedup);
        probe.counter(Metric::ExploreSteals, me as u64, out.steals);
        report_symmetry(probe, me as u64, symmetry_hits, canon_nanos, canon_skipped);
        out.por.report(probe, me as u64);
        if out.bloom_neg > 0 {
            probe.counter(Metric::BloomNeg, me as u64, out.bloom_neg);
        }
        probe.span_close(Span::ExploreWorker, me as u64, out.expanded);
    }
    record_timer(profiler, timer);
    out
}

/// Explores the reachable graph of `initial` with `threads` workers.
pub(super) fn run_parallel<M, P>(
    initial: Simulation<M>,
    config: &ExploreConfig,
    probe: &P,
    threads: usize,
    encoder: &StateEncoder<M>,
    profiler: Option<&Profiler>,
) -> Result<StateGraph<M>, ExploreError>
where
    M: Machine + Eq + Hash,
    P: Probe,
{
    let (graph, _) = run_impl(initial, config, probe, threads, encoder, profiler, true)?;
    Ok(graph.expect("graph mode materialises a graph"))
}

/// Count-only sibling of [`run_parallel`]: same exploration, no
/// [`StateGraph`].
pub(super) fn run_parallel_stats<M, P>(
    initial: Simulation<M>,
    config: &ExploreConfig,
    probe: &P,
    threads: usize,
    encoder: &StateEncoder<M>,
    profiler: Option<&Profiler>,
) -> Result<ExploreStats, ExploreError>
where
    M: Machine + Eq + Hash,
    P: Probe,
{
    let (_, stats) = run_impl(initial, config, probe, threads, encoder, profiler, false)?;
    Ok(stats)
}

#[allow(clippy::too_many_lines)]
fn run_impl<M, P>(
    initial: Simulation<M>,
    config: &ExploreConfig,
    probe: &P,
    threads: usize,
    encoder: &StateEncoder<M>,
    profiler: Option<&Profiler>,
    collect_graph: bool,
) -> Result<(Option<StateGraph<M>>, ExploreStats), ExploreError>
where
    M: Machine + Eq + Hash,
    P: Probe,
{
    let mut initial = initial;
    initial.clear_trace();

    // The spill location packs a 5-bit worker index.
    let threads = if config.spill {
        threads.min(32)
    } else {
        threads
    };

    if P::ENABLED {
        probe.span_open(Span::Explore, 0);
    }

    let table = FpTable::new(config.max_states);
    let arena_len = table.limit();
    let spill = if config.spill {
        Some(
            SpillStore::new(threads, arena_len, SPILL_LRU_BUDGET)
                .expect("spill temp files must be creatable"),
        )
    } else {
        None
    };
    let codes = if config.spill {
        None
    } else {
        let mut arena = Vec::with_capacity(arena_len);
        arena.resize_with(arena_len, OnceLock::new);
        Some(arena.into_boxed_slice())
    };
    let ctx = Ctx {
        bloom: Bloom::new(table.limit()),
        table,
        codes,
        spill,
        store: collect_graph.then(StateStore::new),
        queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
        pending: AtomicUsize::new(0),
        aborted: AtomicBool::new(false),
        max_depth: AtomicU64::new(0),
        crashes: config.crashes,
        por: config.por,
    };

    let (code, _) = encoder.encode(&initial);
    let fp = fp128(&code);
    match ctx.intern(0, fp, &code) {
        TableProbe::Fresh(id) => debug_assert_eq!(id, 0, "first interned state is state 0"),
        TableProbe::Known(_) | TableProbe::Aborted => {
            unreachable!("the dedup table starts empty and nothing can abort yet")
        }
        TableProbe::Limit => {
            if P::ENABLED {
                report_totals::<M, P>(probe, 0, 0, &[]);
                probe.span_close(Span::Explore, 0, 0);
            }
            return Err(ExploreError::StateLimitExceeded {
                limit: config.max_states,
            });
        }
    }
    ctx.pending.store(1, Ordering::Relaxed);
    ctx.queues[0]
        .lock()
        .expect("queue lock")
        .push_back(WorkItem {
            id: 0,
            depth: 0,
            sim: initial,
        });

    let joins: Vec<std::thread::Result<WorkerOut<M>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let ctx = &ctx;
                s.spawn(move || worker(i, ctx, probe, encoder, profiler))
            })
            .collect();
        handles
            .into_iter()
            .map(std::thread::ScopedJoinHandle::join)
            .collect()
    });
    let panicked = joins.iter().any(std::thread::Result::is_err);
    let outs: Vec<WorkerOut<M>> = joins.into_iter().filter_map(Result::ok).collect();

    let total = ctx.table.len();
    let edge_total: u64 = outs.iter().map(|o| o.edge_total).sum();
    let stats = ExploreStats {
        states: total as u64,
        edges: edge_total,
        dedup: outs.iter().map(|o| o.dedup).sum(),
        max_depth: u32::try_from(ctx.max_depth.load(Ordering::Relaxed)).unwrap_or(u32::MAX),
    };

    if P::ENABLED {
        report_totals(probe, total as u64, edge_total, &outs);
        if let Some(spill) = &ctx.spill {
            probe.counter(
                Metric::SpillBytes,
                0,
                spill.counters.bytes_spilled.load(Ordering::Relaxed),
            );
            probe.counter(
                Metric::SpillReads,
                0,
                spill.counters.disk_reads.load(Ordering::Relaxed),
            );
            probe.counter(
                Metric::DedupUnverified,
                0,
                spill.counters.unverified.load(Ordering::Relaxed),
            );
        }
        probe.gauge(Metric::ExploreFrontier, 0, 0);
        probe.gauge(
            Metric::ExploreDepth,
            0,
            ctx.max_depth.load(Ordering::Relaxed),
        );
        probe.span_close(Span::Explore, 0, total as u64);
    }

    if panicked {
        return Err(ExploreError::WorkerPanicked);
    }
    if ctx.aborted.load(Ordering::Relaxed) {
        return Err(ExploreError::StateLimitExceeded {
            limit: config.max_states,
        });
    }

    if !collect_graph {
        return Ok((None, stats));
    }

    let mut edges: Vec<Vec<Edge<M::Event>>> = Vec::new();
    edges.resize_with(total, Vec::new);
    let mut parents: Vec<Option<(usize, usize, bool)>> = vec![None; total];
    for out in outs {
        for (id, e) in out.edges {
            edges[id as usize] = e;
        }
        for (child, parent, proc, crash) in out.parents {
            parents[child as usize] = Some((parent as usize, proc as usize, crash));
        }
    }
    let states = ctx.store.expect("graph mode").into_states(total);

    Ok((
        Some(StateGraph {
            states,
            edges,
            parents,
        }),
        stats,
    ))
}

/// Emits the counter remainders the workers did not flush themselves:
/// the initial interned state (discovered by `run_impl`, not by any
/// worker) and, on an aborted run, ids assigned past the flushed counts.
/// Dedup hits are fully flushed per worker (keyed by worker index), so
/// only states and edges can have a remainder.
fn report_totals<M: Machine, P: Probe>(probe: &P, states: u64, edges: u64, outs: &[WorkerOut<M>]) {
    let flushed_states: u64 = outs.iter().map(|o| o.fresh).sum();
    let flushed_edges: u64 = outs.iter().map(|o| o.edge_total).sum();
    probe.counter(
        Metric::ExploreStates,
        0,
        states.saturating_sub(flushed_states),
    );
    probe.counter(Metric::ExploreEdges, 0, edges.saturating_sub(flushed_edges));
}
