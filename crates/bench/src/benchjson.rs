//! Machine-readable benchmark output: the `BENCH_*.json`-compatible
//! metric rows behind `repro --json`.
//!
//! Each experiment module exposes a `metrics(&[Row]) -> Vec<BenchMetric>`
//! alongside its `render`, so the same computed rows feed both the human
//! table and the JSONL artifact. A [`BenchMetric`] maps 1:1 onto one
//! schema-v1 `bench` line (see `anonreg_obs::schema`).

use anonreg_obs::emit::bench_line;

/// One numeric observation of one experiment.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchMetric {
    /// Experiment id (`"E1"` … `"E13"`).
    pub experiment: &'static str,
    /// Algorithm family the observation is about (`mutex`, `hybrid`,
    /// `ordered`, `consensus`, `election`, `renaming`, `baselines`).
    pub family: &'static str,
    /// Metric name, unique within the experiment (encodes the row
    /// coordinates, e.g. `m3_states`).
    pub name: String,
    /// The observed value. Booleans are `0.0`/`1.0`.
    pub value: f64,
    /// The unit (`states`, `runs`, `ops`, `ops_per_s`, `bool`, …).
    pub unit: &'static str,
}

impl BenchMetric {
    /// Creates a metric row.
    #[must_use]
    pub fn new(
        experiment: &'static str,
        family: &'static str,
        name: impl Into<String>,
        value: f64,
        unit: &'static str,
    ) -> Self {
        BenchMetric {
            experiment,
            family,
            name: name.into(),
            value,
            unit,
        }
    }

    /// Renders the schema-v1 `bench` JSONL line (no trailing newline).
    #[must_use]
    pub fn to_jsonl_line(&self) -> String {
        bench_line(
            self.experiment,
            self.family,
            &self.name,
            self.value,
            self.unit,
        )
    }
}

/// `1.0` / `0.0` for metric values that are really booleans.
#[must_use]
pub fn flag(b: bool) -> f64 {
    if b {
        1.0
    } else {
        0.0
    }
}

/// Compresses a human label (`"anonymous (Fig.1, m=4)"`) into a metric
/// name fragment (`"anonymous-fig.1-m=4"`): lowercase, runs of
/// non-alphanumerics (except `.`, `=`, `§`) collapse to single dashes.
#[must_use]
pub fn slug(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    let mut dash_pending = false;
    for c in label.to_lowercase().chars() {
        if c.is_alphanumeric() || c == '.' || c == '=' {
            if dash_pending && !out.is_empty() {
                out.push('-');
            }
            dash_pending = false;
            out.push(c);
        } else {
            dash_pending = true;
        }
    }
    out
}

/// Renders metrics as newline-terminated JSONL lines.
#[must_use]
pub fn to_jsonl(metrics: &[BenchMetric]) -> String {
    let mut out = String::new();
    for metric in metrics {
        out.push_str(&metric.to_jsonl_line());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonreg_obs::schema::validate_jsonl;

    #[test]
    fn metric_lines_validate() {
        let metrics = vec![
            BenchMetric::new("E1", "mutex", "m3_states", 1234.0, "states"),
            BenchMetric::new("E9", "baselines", "peterson_throughput", 1.5e6, "ops_per_s"),
        ];
        let jsonl = to_jsonl(&metrics);
        assert_eq!(validate_jsonl(&jsonl).unwrap(), 2);
    }

    #[test]
    fn slug_compresses_labels() {
        assert_eq!(slug("anonymous (Fig.1, m=4)"), "anonymous-fig.1-m=4");
        assert_eq!(slug("Peterson (named, 3 regs)"), "peterson-named-3-regs");
        assert_eq!(slug("Hybrid (§8)"), "hybrid-8");
        assert_eq!(slug("  weird   spacing "), "weird-spacing");
    }

    #[test]
    fn flag_maps_bools() {
        assert_eq!(flag(true), 1.0);
        assert_eq!(flag(false), 0.0);
    }
}
