//! Linearizable shared registers.

use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use crate::Pack64;

/// A linearizable atomic multi-writer multi-reader register — the paper's
/// communication primitive. "With an atomic register, it is assumed that
/// operations on the register occur in some definite order" (§2).
///
/// Both provided implementations are linearizable; they differ in progress
/// guarantee and value width:
///
/// | | values | progress |
/// |---|---|---|
/// | [`PackedAtomicRegister`] | [`Pack64`] (64-bit encodable) | wait-free (hardware atomic) |
/// | [`LockRegister`] | any `Clone` | lock-based (blocking) |
pub trait Register<V>: Send + Sync {
    /// Creates a register holding the initial value.
    fn new_register(initial: V) -> Self;

    /// Atomically reads the register.
    fn read(&self) -> V;

    /// Atomically writes the register.
    fn write(&self, value: V);

    /// A *hint* read: may return a stale value and establishes no
    /// happens-before edge. Only valid for change-detection (spin-loop
    /// backoff peeks at a register until it moves, then re-reads through
    /// [`read`](Register::read)); the peeked value must never feed
    /// algorithm state. Certificate `ORD-RT-PEEK-001` (see
    /// `check sanitize`) justifies the relaxed implementations; the
    /// default is the full atomic read, which is always safe.
    fn peek(&self) -> V {
        self.read()
    }
}

/// A wait-free register for [`Pack64`] values, backed by one `AtomicU64`
/// with sequentially consistent operations.
///
/// Sequential consistency is deliberate: the paper's model gives processes
/// a single serial order of all register operations, and the algorithms'
/// proofs rely on it (e.g. Figure 1's "there is a single point in time
/// where the value of each one of the m registers equals i"). The
/// `anonreg-sanitizer` ordering-inference pass certifies per-family
/// minima (`check sanitize`), but those certificates are bound to the
/// sanitizer's observation model, so the general-purpose `read`/`write`
/// here stay `SeqCst`; only the hint-read [`peek`](Register::peek) path,
/// whose value never feeds algorithm state, runs relaxed (certificate
/// `ORD-RT-PEEK-001`).
pub struct PackedAtomicRegister<V> {
    cell: AtomicU64,
    _marker: PhantomData<fn(V) -> V>,
}

impl<V: Pack64> Register<V> for PackedAtomicRegister<V> {
    fn new_register(initial: V) -> Self {
        PackedAtomicRegister {
            cell: AtomicU64::new(initial.pack()),
            _marker: PhantomData,
        }
    }

    fn read(&self) -> V {
        V::unpack(self.cell.load(Ordering::SeqCst))
    }

    fn write(&self, value: V) {
        self.cell.store(value.pack(), Ordering::SeqCst);
    }

    /// Relaxed load — certificate `ORD-RT-PEEK-001`: the backoff spin
    /// loop only compares the peeked value against the last written one
    /// to decide *when* to re-read; every value a machine consumes still
    /// goes through the `SeqCst` [`read`](Register::read).
    fn peek(&self) -> V {
        V::unpack(self.cell.load(Ordering::Relaxed))
    }
}

impl<V> fmt::Debug for PackedAtomicRegister<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PackedAtomicRegister({:#x})",
            self.cell.load(Ordering::Relaxed)
        )
    }
}

/// A linearizable register for values of any width, backed by a
/// `std::sync::RwLock`.
///
/// This is the documented substitution for the paper's unbounded atomic
/// registers (Figure 3's records carry a set-valued `history` field that no
/// hardware atomic can hold): linearizability — the only property the
/// algorithms need — is preserved; lock-freedom is not. `anonreg-bench`
/// reports which register type each experiment uses.
pub struct LockRegister<V> {
    cell: RwLock<V>,
}

impl<V: Clone + Send + Sync> Register<V> for LockRegister<V> {
    fn new_register(initial: V) -> Self {
        LockRegister {
            cell: RwLock::new(initial),
        }
    }

    fn read(&self) -> V {
        self.cell.read().expect("register lock poisoned").clone()
    }

    fn write(&self, value: V) {
        *self.cell.write().expect("register lock poisoned") = value;
    }
}

impl<V: fmt::Debug> fmt::Debug for LockRegister<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.cell.try_read() {
            Ok(guard) => write!(f, "LockRegister({:?})", *guard),
            Err(_) => write!(f, "LockRegister(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonreg::consensus::ConsRecord;
    use std::sync::Arc;

    #[test]
    fn packed_register_round_trips() {
        let reg: PackedAtomicRegister<u64> = Register::new_register(0);
        assert_eq!(reg.read(), 0);
        reg.write(42);
        assert_eq!(reg.read(), 42);
        assert_eq!(reg.peek(), 42);
    }

    #[test]
    fn default_peek_delegates_to_read() {
        let reg: LockRegister<u64> = Register::new_register(3);
        assert_eq!(reg.peek(), 3);
        reg.write(9);
        assert_eq!(reg.peek(), 9);
    }

    #[test]
    fn packed_register_holds_records() {
        let reg: PackedAtomicRegister<ConsRecord> = Register::new_register(ConsRecord::default());
        let r = ConsRecord { id: 7, val: 9 };
        reg.write(r);
        assert_eq!(reg.read(), r);
    }

    #[test]
    fn lock_register_holds_wide_values() {
        let reg: LockRegister<Vec<u64>> = Register::new_register(vec![]);
        reg.write(vec![1, 2, 3]);
        assert_eq!(reg.read(), vec![1, 2, 3]);
    }

    #[test]
    fn registers_are_shareable_across_threads() {
        let reg: Arc<PackedAtomicRegister<u64>> = Arc::new(Register::new_register(0));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let reg = Arc::clone(&reg);
                s.spawn(move || {
                    for i in 0..1000 {
                        reg.write(t * 1000 + i);
                        let _ = reg.read();
                    }
                });
            }
        });
        // The final value is whatever write landed last; it must be one of
        // the written values.
        let last = reg.read();
        assert!(last < 4000);
    }

    #[test]
    fn debug_impls_are_nonempty() {
        let packed: PackedAtomicRegister<u64> = Register::new_register(7);
        assert!(format!("{packed:?}").contains("PackedAtomicRegister"));
        let locked: LockRegister<u64> = Register::new_register(7);
        assert!(format!("{locked:?}").contains("LockRegister"));
    }
}
