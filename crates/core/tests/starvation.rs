//! Starvation analysis: the paper claims deadlock-freedom for Figure 1 and
//! leaves starvation-free memory-anonymous mutual exclusion open (§8).
//! These tests pin both sides mechanically:
//!
//! * Figure 1 (and the hybrid variant) admit **fair starvation**: schedules
//!   under which one process enters its critical section again and again
//!   while the other — taking infinitely many steps of its own — never
//!   does. Deadlock-freedom permits exactly this.
//! * Peterson and Bakery are starvation-free (bounded bypass), so the same
//!   checker finds nothing — evidence the checker isn't trivially firing.

use anonreg::baseline::{Bakery, Peterson};
use anonreg::hybrid::{named_view, HybridMutex};
use anonreg::mutex::{AnonMutex, MutexEvent, Section};
use anonreg::{Pid, View};
use anonreg_sim::prelude::*;
use anonreg_sim::Simulation;

fn pid(n: u64) -> Pid {
    Pid::new(n).unwrap()
}

#[test]
fn figure_1_is_not_starvation_free() {
    // m = 3, both views identity: the winner can release and immediately
    // reclaim all registers before the loser's wait-loop scan ever observes
    // the all-zero window.
    let sim = Simulation::builder()
        .process(AnonMutex::new(pid(1), 3).unwrap(), View::identity(3))
        .process(AnonMutex::new(pid(2), 3).unwrap(), View::identity(3))
        .build()
        .unwrap();
    let graph = Explorer::new(sim).run().unwrap();
    let starvation = graph.find_fair_starvation(
        1,
        |mach| mach.section() == Section::Entry,
        |event| *event == MutexEvent::Enter,
    );
    assert!(
        starvation.is_some(),
        "Figure 1 is only deadlock-free; a starvation schedule must exist"
    );
    // And symmetrically for the other victim.
    let starvation0 = graph.find_fair_starvation(
        0,
        |mach| mach.section() == Section::Entry,
        |event| *event == MutexEvent::Enter,
    );
    assert!(starvation0.is_some());
}

#[test]
fn hybrid_mutex_is_not_starvation_free_either() {
    let m = 2;
    let sim = Simulation::builder()
        .process(
            HybridMutex::new(pid(1), m).unwrap(),
            named_view(m, (0..m).collect()).unwrap(),
        )
        .process(
            HybridMutex::new(pid(2), m).unwrap(),
            named_view(m, (0..m).collect()).unwrap(),
        )
        .build()
        .unwrap();
    let graph = Explorer::new(sim).run().unwrap();
    let starvation = graph.find_fair_starvation(
        1,
        |mach| mach.section() == Section::Entry,
        |event| *event == MutexEvent::Enter,
    );
    assert!(
        starvation.is_some(),
        "one named register buys deadlock-freedom for even m, not fairness"
    );
}

#[test]
fn peterson_is_starvation_free() {
    let sim = Simulation::builder()
        .process_identity(Peterson::new(pid(1), 0).unwrap())
        .process_identity(Peterson::new(pid(2), 1).unwrap())
        .build()
        .unwrap();
    let graph = Explorer::new(sim).run().unwrap();
    for victim in 0..2 {
        let starvation = graph.find_fair_starvation(
            victim,
            |mach| mach.section() == Section::Entry,
            |event| *event == MutexEvent::Enter,
        );
        assert!(
            starvation.is_none(),
            "Peterson has bounded bypass; victim {victim} cannot starve"
        );
    }
}

#[test]
fn bakery_is_starvation_free() {
    // Bakery is first-come-first-served; with cycles bounded the state
    // space is finite and the checker must find no fair starvation.
    let sim = Simulation::builder()
        .process_identity(Bakery::new(pid(1), 0, 2).unwrap().with_cycles(3))
        .process_identity(Bakery::new(pid(2), 1, 2).unwrap().with_cycles(3))
        .build()
        .unwrap();
    let graph = Explorer::new(sim)
        .max_states(4_000_000)
        .crashes(false)
        .run()
        .unwrap();
    for victim in 0..2 {
        let starvation = graph.find_fair_starvation(
            victim,
            |mach| mach.section() == Section::Entry,
            |event| *event == MutexEvent::Enter,
        );
        assert!(
            starvation.is_none(),
            "Bakery is FCFS; victim {victim} cannot starve"
        );
    }
}
