//! Structured sanitizer findings: ordering violations with replayable
//! witnesses, and minimal-ordering certificates.
//!
//! The rendering deliberately mirrors the static analyzer's
//! `Finding`/witness idiom (`crates/lint/src/report.rs`): one message line,
//! then the numbered operation trace that exhibits the problem, so a
//! violation from `check sanitize` reads exactly like a lint L1–L6 witness
//! and replays from the printed seed.

use std::fmt;
use std::sync::atomic::Ordering;

use crate::plan::Site;

/// What kind of ordering defect was observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ViolationKind {
    /// A read consumed another participant's store without any
    /// happens-before edge from the store to the read — the store lacked
    /// `Release`, the load lacked `Acquire`, or both. Under the paper's §2
    /// atomic-register model this is exactly the assumption the algorithm
    /// silently relied on and the weakened ordering no longer provides.
    MissingEdge,
}

impl ViolationKind {
    /// Stable short name (used in tables and JSONL).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ViolationKind::MissingEdge => "missing-hb-edge",
        }
    }
}

/// One flagged operation, with enough context to explain and replay it.
#[derive(Clone, Debug)]
pub struct OrderingViolation {
    /// The defect class.
    pub kind: ViolationKind,
    /// Physical register index the racy read hit.
    pub register: usize,
    /// Slot (participant index) that performed the read.
    pub reader: usize,
    /// Slot that performed the store the read consumed.
    pub writer: usize,
    /// Ordering the load used.
    pub read_ordering: Ordering,
    /// Ordering the store used.
    pub write_ordering: Ordering,
    /// Per-register sequence number of the consumed store.
    pub store_seq: u64,
    /// Global operation index at which the read happened.
    pub op_index: u64,
    /// `Debug` rendering of the consumed value.
    pub value: String,
    /// The trailing operation log up to and including the flagged read —
    /// re-running the same seed reproduces it verbatim.
    pub witness: Vec<String>,
}

impl fmt::Display for OrderingViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: p{} read r{}@{:?} consumed p{}'s {:?} store of {} (seq {}) with no \
             happens-before edge — the store needs Release and the load needs Acquire \
             (or both SeqCst)",
            self.kind.name(),
            self.reader,
            self.register,
            self.read_ordering,
            self.writer,
            self.write_ordering,
            self.value,
            self.store_seq,
        )?;
        writeln!(f, "  witness ({} ops):", self.witness.len())?;
        for line in &self.witness {
            writeln!(f, "    {line}")?;
        }
        Ok(())
    }
}

/// A machine-produced justification for running one site of one family at
/// a given (possibly relaxed) memory ordering.
///
/// A certificate is *empirical and model-bound*: it says the sanitizer
/// re-executed the family over `schedules` seeded schedules (half of them
/// under seeded [`FaultPlan`](anonreg_runtime::FaultPlan) crash/stall/
/// restart schedules) with this site at this ordering — every weaker
/// rung of the ladder having been rejected with a concrete witness — and
/// observed neither a missing happens-before edge nor a safety violation.
/// It is not a proof over all executions; `check sanitize` re-derives it
/// deterministically from the same base seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// Stable identifier, e.g. `ORD-MUTEX-READ` — the string relaxed code
    /// sites cite in comments and `ci/seqcst_allowlist.txt` refers to.
    pub id: String,
    /// Algorithm family the certificate covers.
    pub family: &'static str,
    /// The site class within the family.
    pub site: Site,
    /// The certified minimal ordering.
    pub ordering: Ordering,
    /// Seeded schedules the certification sweep ran.
    pub schedules: u64,
    /// Base seed of the sweep (`check sanitize --seed` replays it).
    pub base_seed: u64,
}

impl Certificate {
    /// Builds the stable identifier for a family/site pair.
    #[must_use]
    pub fn id_for(family: &str, site: Site) -> String {
        format!(
            "ORD-{}-{}",
            family.to_uppercase(),
            site.as_str().to_uppercase()
        )
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} {} = {:?} ({} schedules, base seed {})",
            self.id, self.family, self.site, self.ordering, self.schedules, self.base_seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_renders_message_and_witness() {
        let v = OrderingViolation {
            kind: ViolationKind::MissingEdge,
            register: 2,
            reader: 1,
            writer: 0,
            read_ordering: Ordering::Relaxed,
            write_ordering: Ordering::Release,
            store_seq: 5,
            op_index: 11,
            value: "7".into(),
            witness: vec!["10. p0 write r2@Release := 7 (seq 5)".into()],
        };
        let text = v.to_string();
        assert!(text.contains("missing-hb-edge"));
        assert!(text.contains("witness (1 ops):"));
        assert!(text.contains("p0 write r2@Release"));
    }

    #[test]
    fn certificate_ids_are_stable() {
        assert_eq!(Certificate::id_for("mutex", Site::Read), "ORD-MUTEX-READ");
        assert_eq!(
            Certificate::id_for("consensus", Site::Claim),
            "ORD-CONSENSUS-CLAIM"
        );
    }
}
