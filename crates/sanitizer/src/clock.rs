//! Vector clocks — the partial order the sanitizer tracks happens-before
//! with.
//!
//! One clock entry per *slot* (a participant index assigned by the
//! executor, or per thread in drop-in mode). Clocks grow on demand, and a
//! missing entry reads as `0`, so clocks of different lengths compare
//! without padding. The laws the property suite pins
//! (`crates/sanitizer/tests/properties.rs`):
//!
//! * join is a least upper bound: `a ≤ a ⊔ b` and `b ≤ a ⊔ b`, and join is
//!   monotone in both arguments;
//! * `≤` is a partial order, so strict happens-before is transitive and
//!   irreflexive;
//! * two clocks are *concurrent* iff neither `≤` holds.

use std::fmt;

/// A grow-on-demand vector clock over participant slots.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VectorClock {
    ticks: Vec<u64>,
}

impl VectorClock {
    /// The zero clock (happens-before everything, equal only to itself).
    #[must_use]
    pub fn new() -> Self {
        VectorClock::default()
    }

    /// This clock's entry for `slot` (0 if never ticked).
    #[must_use]
    pub fn get(&self, slot: usize) -> u64 {
        self.ticks.get(slot).copied().unwrap_or(0)
    }

    /// Advances `slot`'s local component by one — the clock event every
    /// memory operation performs before anything else.
    pub fn tick(&mut self, slot: usize) {
        if self.ticks.len() <= slot {
            self.ticks.resize(slot + 1, 0);
        }
        self.ticks[slot] += 1;
    }

    /// Joins `other` into `self`: the component-wise maximum. This is how
    /// a synchronizes-with edge transfers the writer's history to the
    /// reader.
    pub fn join(&mut self, other: &VectorClock) {
        if self.ticks.len() < other.ticks.len() {
            self.ticks.resize(other.ticks.len(), 0);
        }
        for (mine, theirs) in self.ticks.iter_mut().zip(&other.ticks) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Component-wise `self ≤ other` — "everything I know, they know".
    #[must_use]
    pub fn le(&self, other: &VectorClock) -> bool {
        (0..self.ticks.len().max(other.ticks.len())).all(|s| self.get(s) <= other.get(s))
    }

    /// Strict happens-before: `self ≤ other` and the clocks differ.
    #[must_use]
    pub fn happens_before(&self, other: &VectorClock) -> bool {
        self.le(other) && self != other
    }

    /// Neither clock happens-before the other: the classic data-race
    /// precondition.
    #[must_use]
    pub fn concurrent(&self, other: &VectorClock) -> bool {
        !self.le(other) && !other.le(self)
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, t) in self.ticks.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_clock_precedes_everything() {
        let zero = VectorClock::new();
        let mut other = VectorClock::new();
        other.tick(3);
        assert!(zero.le(&other));
        assert!(zero.happens_before(&other));
        assert!(!other.le(&zero));
        assert!(zero.le(&zero));
        assert!(!zero.happens_before(&zero));
    }

    #[test]
    fn join_is_component_wise_max() {
        let mut a = VectorClock::new();
        a.tick(0);
        a.tick(0);
        let mut b = VectorClock::new();
        b.tick(2);
        a.join(&b);
        assert_eq!(a.get(0), 2);
        assert_eq!(a.get(1), 0);
        assert_eq!(a.get(2), 1);
        assert!(b.le(&a));
    }

    #[test]
    fn concurrent_clocks_detected() {
        let mut a = VectorClock::new();
        a.tick(0);
        let mut b = VectorClock::new();
        b.tick(1);
        assert!(a.concurrent(&b));
        a.join(&b);
        assert!(!a.concurrent(&b));
        assert!(b.happens_before(&a));
    }

    #[test]
    fn display_renders_components() {
        let mut a = VectorClock::new();
        a.tick(1);
        assert_eq!(a.to_string(), "⟨0,1⟩");
    }
}
