//! The rotation-symmetry invariant behind Theorem 3.4.
//!
//! The proof of Theorem 3.4 arranges the `m` registers "as a unidirectional
//! ring", gives `ℓ | m` symmetric processes the same ring ordering with
//! initial registers spaced `m/ℓ` apart, and runs them in lock step. Because
//! the algorithm is symmetric and identifiers admit only equality
//! comparisons, the global configuration then stays invariant under the ring
//! automorphism — rotate the registers by `m/ℓ` while renaming each
//! process's identifier to its successor's — **forever**. Symmetry is never
//! broken, so either everyone enters the critical section together (safety
//! violation) or no one ever does (liveness violation).
//!
//! This module makes the argument executable:
//!
//! * [`ring_views`] builds the `ℓ` rotated views;
//! * [`check_rotation_symmetry`] tests the invariant on a configuration;
//! * [`run_lockstep_symmetric`] runs the lock-step adversary and verifies
//!   the invariant after every round, reporting how long symmetry survives
//!   (for a correct symmetric algorithm under this adversary: forever —
//!   experiment E2 tabulates this across `(m, ℓ)` pairs).

use std::fmt;
use std::hash::Hash;

use anonreg_model::{Machine, Pid, PidMap, View};

use crate::{Simulation, StepOutcome};

/// Error returned when a ring configuration is invalid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RingError {
    /// The ring spacing requires `ℓ` to divide `m`.
    NotDivisible {
        /// Registers on the ring.
        m: usize,
        /// Processes on the ring.
        l: usize,
    },
    /// At least two processes are needed for a symmetry argument.
    TooFewProcesses,
}

impl fmt::Display for RingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RingError::NotDivisible { m, l } => {
                write!(f, "ring spacing needs l | m, got m = {m}, l = {l}")
            }
            RingError::TooFewProcesses => write!(f, "a symmetry ring needs at least 2 processes"),
        }
    }
}

impl std::error::Error for RingError {}

/// The `ℓ` ring views over `m` registers: view `k` is the identity ordering
/// rotated by `k · m/ℓ`, so all processes walk the ring in the same
/// direction with initial registers spaced `m/ℓ` apart — the construction
/// from the proof of Theorem 3.4.
///
/// # Errors
///
/// Returns [`RingError`] unless `ℓ ≥ 2` and `ℓ` divides `m`.
pub fn ring_views(m: usize, l: usize) -> Result<Vec<View>, RingError> {
    if l < 2 {
        return Err(RingError::TooFewProcesses);
    }
    if m == 0 || !m.is_multiple_of(l) {
        return Err(RingError::NotDivisible { m, l });
    }
    let spacing = m / l;
    Ok((0..l).map(|k| View::rotated(m, k * spacing)).collect())
}

/// Where the rotation-symmetry invariant broke.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SymmetryBreak {
    /// Register `physical` does not equal the renamed content of its ring
    /// predecessor.
    Register {
        /// The physical register index at which the mismatch was detected.
        physical: usize,
    },
    /// The machine (or its pending read / poised write) of `slot` is not
    /// the renamed image of its ring predecessor's.
    Machine {
        /// The slot at which the mismatch was detected.
        slot: usize,
    },
}

impl fmt::Display for SymmetryBreak {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymmetryBreak::Register { physical } => {
                write!(f, "register {physical} breaks rotation symmetry")
            }
            SymmetryBreak::Machine { slot } => {
                write!(f, "process state {slot} breaks rotation symmetry")
            }
        }
    }
}

/// Checks that the configuration is invariant under the ring automorphism:
/// rotating the registers by `m/ℓ` while renaming each process's identifier
/// to its ring successor's maps the configuration to itself.
///
/// Precisely, with `σ` the pid renaming `pid(k) ↦ pid((k+1) mod ℓ)` and
/// `shift = m/ℓ`:
///
/// * `registers[(p + shift) mod m] == σ(registers[p])` for every physical
///   register `p`, and
/// * `slot[(k+1) mod ℓ] == σ(slot[k])` for every process `k` (machine
///   state, pending read result and poised write alike).
///
/// # Errors
///
/// Returns the first [`SymmetryBreak`] found.
///
/// # Panics
///
/// Panics if `ℓ` does not divide the register count or does not equal the
/// process count — use [`ring_views`] to construct valid configurations.
pub fn check_rotation_symmetry<M>(sim: &Simulation<M>, l: usize) -> Result<(), SymmetryBreak>
where
    M: Machine + PidMap + Eq + Hash,
    M::Value: PidMap,
{
    let m = sim.register_count();
    assert!(
        l >= 2 && m.is_multiple_of(l),
        "ring requires l >= 2 and l | m"
    );
    assert_eq!(sim.process_count(), l, "ring requires exactly l processes");
    let shift = m / l;

    let pids: Vec<Pid> = (0..l).map(|k| sim.machine(k).pid()).collect();
    let mut sigma = |p: Pid| -> Pid {
        match pids.iter().position(|&q| q == p) {
            Some(k) => pids[(k + 1) % l],
            None => p,
        }
    };

    for p in 0..m {
        let image = sim.registers()[p].map_pids(&mut sigma);
        if sim.registers()[(p + shift) % m] != image {
            return Err(SymmetryBreak::Register {
                physical: (p + shift) % m,
            });
        }
    }

    for k in 0..l {
        let this = sim.slot(k);
        let succ = sim.slot((k + 1) % l);
        let machine_image = this.machine.map_pids(&mut sigma);
        let input_image = this.pending_input.as_ref().map(|v| v.map_pids(&mut sigma));
        let poised_image = this
            .poised
            .as_ref()
            .map(|(j, v)| (*j, v.map_pids(&mut sigma)));
        if succ.machine != machine_image
            || succ.pending_input != input_image
            || succ.poised != poised_image
            || succ.halted != this.halted
        {
            return Err(SymmetryBreak::Machine { slot: (k + 1) % l });
        }
    }
    Ok(())
}

/// Outcome of a lock-step symmetric run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LockstepReport {
    /// Rounds actually executed (each round = one atomic step per process).
    pub rounds: usize,
    /// `None` if the rotation-symmetry invariant held after every round —
    /// the Theorem 3.4 situation; otherwise the first break and its round.
    pub first_break: Option<(usize, SymmetryBreak)>,
    /// Total memory operations performed.
    pub ops: usize,
}

impl LockstepReport {
    /// Did symmetry survive the whole run (the theorem's prediction for
    /// symmetric algorithms)?
    #[must_use]
    pub fn symmetric_throughout(&self) -> bool {
        self.first_break.is_none()
    }
}

/// Runs the Theorem 3.4 adversary: `rounds` lock-step rounds (one atomic
/// step per process per round, in ring order), verifying
/// [`check_rotation_symmetry`] after every round. Stops early if every
/// process halts or symmetry breaks.
///
/// # Panics
///
/// Panics under the same conditions as [`check_rotation_symmetry`].
pub fn run_lockstep_symmetric<M>(sim: &mut Simulation<M>, l: usize, rounds: usize) -> LockstepReport
where
    M: Machine + PidMap + Eq + Hash,
    M::Value: PidMap,
{
    let mut report = LockstepReport {
        rounds: 0,
        first_break: None,
        ops: 0,
    };
    for round in 0..rounds {
        if sim.all_halted() {
            break;
        }
        for proc in 0..sim.process_count() {
            if !sim.is_halted(proc) {
                match sim.step(proc).expect("slot is valid and not halted") {
                    StepOutcome::Halted | StepOutcome::Event => {}
                    _ => report.ops += 1,
                }
            }
        }
        report.rounds = round + 1;
        if let Err(brk) = check_rotation_symmetry(sim, l) {
            report.first_break = Some((round + 1, brk));
            break;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonreg_model::Step;

    /// A symmetric machine: claims zero registers with its pid, scanning in
    /// local order, forever (a stripped-down Figure 1 scan loop).
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct Claimer {
        pid: Pid,
        m: usize,
        j: usize,
        awaiting: bool,
    }

    impl Machine for Claimer {
        type Value = u64;
        type Event = ();

        fn pid(&self) -> Pid {
            self.pid
        }

        fn register_count(&self) -> usize {
            self.m
        }

        fn resume(&mut self, read: Option<u64>) -> Step<u64, ()> {
            if self.awaiting {
                self.awaiting = false;
                let v = read.expect("read result");
                if v == 0 {
                    return Step::Write(self.j, self.pid.get());
                }
                self.j = (self.j + 1) % self.m;
            } else if read.is_none() {
                // After a write, advance.
                self.j = (self.j + 1) % self.m;
            }
            self.awaiting = true;
            Step::Read(self.j)
        }
    }

    impl PidMap for Claimer {
        fn map_pids(&self, f: &mut dyn FnMut(Pid) -> Pid) -> Self {
            Claimer {
                pid: f(self.pid),
                ..self.clone()
            }
        }
    }

    fn pid(n: u64) -> Pid {
        Pid::new(n).unwrap()
    }

    fn ring_sim(m: usize, l: usize) -> Simulation<Claimer> {
        let views = ring_views(m, l).unwrap();
        let mut b = Simulation::builder();
        for (k, view) in views.into_iter().enumerate() {
            b = b.process(
                Claimer {
                    pid: pid(k as u64 + 1),
                    m,
                    j: 0,
                    awaiting: false,
                },
                view,
            );
        }
        b.build().unwrap()
    }

    #[test]
    fn ring_views_validation() {
        assert!(ring_views(6, 2).is_ok());
        assert!(ring_views(6, 3).is_ok());
        assert_eq!(
            ring_views(5, 2).unwrap_err(),
            RingError::NotDivisible { m: 5, l: 2 }
        );
        assert_eq!(ring_views(4, 1).unwrap_err(), RingError::TooFewProcesses);
        assert!(ring_views(0, 2).is_err());
    }

    #[test]
    fn ring_views_are_equally_spaced() {
        let views = ring_views(6, 3).unwrap();
        assert_eq!(views[0].physical(0), 0);
        assert_eq!(views[1].physical(0), 2);
        assert_eq!(views[2].physical(0), 4);
        // Same ring direction: each walks +1 mod m.
        for v in &views {
            let start = v.physical(0);
            assert_eq!(v.physical(1), (start + 1) % 6);
        }
    }

    #[test]
    fn initial_configuration_is_symmetric() {
        let sim = ring_sim(4, 2);
        assert!(check_rotation_symmetry(&sim, 2).is_ok());
    }

    #[test]
    fn lockstep_preserves_symmetry_forever() {
        // A symmetric algorithm on a divisible ring can never break
        // symmetry under the lock-step adversary (Theorem 3.4's engine).
        for (m, l) in [(4, 2), (6, 2), (6, 3), (8, 4)] {
            let mut sim = ring_sim(m, l);
            let report = run_lockstep_symmetric(&mut sim, l, 500);
            assert!(
                report.symmetric_throughout(),
                "m={m} l={l}: {:?}",
                report.first_break
            );
            assert_eq!(report.rounds, 500);
        }
    }

    #[test]
    fn asymmetric_schedule_breaks_symmetry() {
        // If one process runs ahead (not lock-step), the configuration is
        // no longer rotation-symmetric — the check must detect it.
        let mut sim = ring_sim(4, 2);
        sim.step(0).unwrap(); // read
        sim.step(0).unwrap(); // write pid 1 into physical 0
        let result = check_rotation_symmetry(&sim, 2);
        assert!(result.is_err());
    }

    #[test]
    fn symmetry_break_display() {
        assert!(!SymmetryBreak::Register { physical: 1 }
            .to_string()
            .is_empty());
        assert!(!SymmetryBreak::Machine { slot: 0 }.to_string().is_empty());
        assert!(!RingError::NotDivisible { m: 5, l: 2 }
            .to_string()
            .is_empty());
    }
}
