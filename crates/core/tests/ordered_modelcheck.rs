//! Exhaustive verification of the §2 arbitrary-comparisons mutex
//! (`anonreg::ordered`): the odd-m requirement of Theorem 3.1 belongs to
//! the equality-only model — with an identifier total order, every m ≥ 2
//! verifies safe and live.

use anonreg::mutex::{MutexEvent, Section};
use anonreg::ordered::OrderedMutex;
use anonreg::{Pid, View};
use anonreg_sim::prelude::*;
use anonreg_sim::Simulation;

fn pid(n: u64) -> Pid {
    Pid::new(n).unwrap()
}

fn sim_for(m: usize, shift: usize) -> Simulation<OrderedMutex> {
    Simulation::builder()
        .process(OrderedMutex::new(pid(1), m).unwrap(), View::identity(m))
        .process(
            OrderedMutex::new(pid(2), m).unwrap(),
            View::rotated(m, shift),
        )
        .build()
        .unwrap()
}

#[test]
fn ordered_mutex_is_safe_for_all_small_m_and_rotations() {
    for m in [2usize, 3, 4] {
        for shift in 0..m {
            let graph = Explorer::new(sim_for(m, shift))
                .max_states(4_000_000)
                .crashes(false)
                .run()
                .unwrap_or_else(|e| panic!("m={m} shift={shift}: {e}"));
            let both_in_cs = graph.find_state(|s| {
                s.machines()
                    .filter(|mach| mach.section() == Section::Critical)
                    .count()
                    >= 2
            });
            assert!(
                both_in_cs.is_none(),
                "mutual exclusion violated for m={m}, shift={shift}: schedule {:?}",
                both_in_cs.map(|id| graph.schedule_to(id))
            );
        }
    }
}

#[test]
fn ordered_mutex_is_livelock_free_for_all_small_m_and_rotations() {
    for m in [2usize, 3, 4] {
        for shift in 0..m {
            let graph = Explorer::new(sim_for(m, shift))
                .max_states(4_000_000)
                .crashes(false)
                .run()
                .unwrap_or_else(|e| panic!("m={m} shift={shift}: {e}"));
            let livelock = graph.find_fair_livelock(
                |mach| mach.section() == Section::Entry,
                |event| *event == MutexEvent::Enter,
            );
            assert!(livelock.is_none(), "fair livelock for m={m}, shift={shift}");
        }
    }
}
