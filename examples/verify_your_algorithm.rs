//! Bring your own algorithm: the model checker as a design tool.
//!
//! ```text
//! cargo run --release --example verify_your_algorithm
//! ```
//!
//! This workspace is not only a reproduction — the simulator and checker
//! work for *any* algorithm expressed as a [`Machine`]. Here we implement
//! the classic **broken** flag mutex (read the flag; if clear, set it and
//! enter) and let the exhaustive checker produce the interleaving every
//! concurrency course warns about. Then we run the same verdict suite over
//! Figure 1 to see what a correct algorithm looks like.
//!
//! Both extensions in this workspace (`anonreg::hybrid`, `anonreg::ordered`)
//! were designed exactly this way — their first drafts were wrong, and the
//! checker handed back the counterexample schedules.

use anonreg::mutex::{AnonMutex, MutexEvent, Section};
use anonreg::{Machine, Pid, Step, View};
use anonreg_sim::explore::{explore, ExploreLimits};
use anonreg_sim::Simulation;

/// The classic broken lock: `if flag == 0 { flag = 1; /* enter */ }`.
/// The read and the write are separate atomic steps, so two processes can
/// both read 0 before either writes.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct NaiveFlagMutex {
    pid: Pid,
    pc: NaivePc,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum NaivePc {
    Remainder,
    ReadFlag,
    WroteFlag,
    Critical,
    ExitWrite,
}

impl NaiveFlagMutex {
    fn new(pid: Pid) -> Self {
        NaiveFlagMutex {
            pid,
            pc: NaivePc::Remainder,
        }
    }

    fn section(&self) -> Section {
        match self.pc {
            NaivePc::Remainder => Section::Remainder,
            NaivePc::ReadFlag | NaivePc::WroteFlag => Section::Entry,
            NaivePc::Critical => Section::Critical,
            NaivePc::ExitWrite => Section::Exit,
        }
    }
}

impl Machine for NaiveFlagMutex {
    type Value = u64;
    type Event = MutexEvent;

    fn pid(&self) -> Pid {
        self.pid
    }

    fn register_count(&self) -> usize {
        1
    }

    fn resume(&mut self, read: Option<u64>) -> Step<u64, MutexEvent> {
        match self.pc {
            NaivePc::Remainder => {
                self.pc = NaivePc::ReadFlag;
                Step::Read(0)
            }
            NaivePc::ReadFlag => {
                let flag = read.expect("flag value");
                if flag == 0 {
                    self.pc = NaivePc::WroteFlag;
                    Step::Write(0, 1)
                } else {
                    // Spin.
                    Step::Read(0)
                }
            }
            NaivePc::WroteFlag => {
                self.pc = NaivePc::Critical;
                Step::Event(MutexEvent::Enter)
            }
            NaivePc::Critical => {
                self.pc = NaivePc::ExitWrite;
                Step::Event(MutexEvent::Exit)
            }
            NaivePc::ExitWrite => {
                self.pc = NaivePc::Remainder;
                Step::Write(0, 0)
            }
        }
    }
}

fn main() {
    println!("== your algorithm: the naive flag mutex ==");
    let sim = Simulation::builder()
        .process(NaiveFlagMutex::new(Pid::new(1).unwrap()), View::identity(1))
        .process(NaiveFlagMutex::new(Pid::new(2).unwrap()), View::identity(1))
        .build()
        .expect("uniform configuration");
    let graph = explore(sim, &ExploreLimits::default()).expect("tiny state space");
    println!("reachable states: {}", graph.state_count());

    let bad = graph
        .find_state(|s| {
            s.machines()
                .filter(|m| m.section() == Section::Critical)
                .count()
                >= 2
        })
        .expect("the naive lock is broken");
    println!("VERDICT: mutual exclusion VIOLATED (state {bad})");
    println!(
        "the schedule every textbook warns about: {:?}",
        graph.schedule_to(bad)
    );
    println!("(both processes read flag = 0 before either write landed)\n");

    println!("== the paper's algorithm: Figure 1, m = 3 ==");
    let sim = Simulation::builder()
        .process(
            AnonMutex::new(Pid::new(1).unwrap(), 3).unwrap(),
            View::identity(3),
        )
        .process(
            AnonMutex::new(Pid::new(2).unwrap(), 3).unwrap(),
            View::rotated(3, 1),
        )
        .build()
        .expect("uniform configuration");
    let graph = explore(sim, &ExploreLimits::default()).expect("fits the limit");
    println!("reachable states: {}", graph.state_count());
    let bad = graph.find_state(|s| {
        s.machines()
            .filter(|m| m.section() == Section::Critical)
            .count()
            >= 2
    });
    assert!(bad.is_none());
    println!("VERDICT: mutual exclusion holds in every reachable state");
    let livelock = graph.find_fair_livelock(
        |m| m.section() == Section::Entry,
        |e| *e == MutexEvent::Enter,
    );
    assert!(livelock.is_none());
    println!("VERDICT: no fair livelock — deadlock-freedom holds");
    println!("\nexpress your algorithm as a Machine and the adversary is yours.");
}
