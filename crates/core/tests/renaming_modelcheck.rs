//! Exhaustive model checking of the Figure 3 adaptive perfect renaming
//! algorithm — experiment E5's foundation (Theorems 5.1–5.3).

use anonreg::renaming::AnonRenaming;
use anonreg::{Pid, View};
use anonreg_sim::obstruction::check_obstruction_freedom;
use anonreg_sim::prelude::*;
use anonreg_sim::{sched, Simulation};

fn pid(n: u64) -> Pid {
    Pid::new(n).unwrap()
}

/// Reads the acquired names out of a state's trace-free machines: a named
/// machine has halted with its name announced, which we reconstruct by
/// running it one more step is impossible — instead experiments track names
/// via events. For state-predicate checks we use `has_name` only.
fn two_proc_sim(n: usize, view_b: View) -> Simulation<AnonRenaming> {
    let m = 2 * n - 1;
    Simulation::builder()
        .process(AnonRenaming::new(pid(1), n).unwrap(), View::identity(m))
        .process(AnonRenaming::new(pid(2), n).unwrap(), view_b)
        .build()
        .unwrap()
}

#[test]
fn n2_names_are_unique_and_in_range_under_all_interleavings() {
    // Explore every interleaving; in every state where both processes have
    // acquired names, replaying the schedule must produce distinct names in
    // {1, 2}. Names travel via events, so check along edges: we collect
    // Named events per edge and verify per complete path by replay of
    // terminal states.
    for shift in 0..3 {
        let build = || two_proc_sim(2, View::rotated(3, shift));
        let graph = Explorer::new(build()).run().unwrap();
        // Terminal states: both halted.
        for (id, state) in graph.states() {
            if !state.all_halted() {
                continue;
            }
            let schedule = graph.schedule_to(id);
            let mut sim = build();
            for &p in &schedule {
                sim.step(p).unwrap();
            }
            let trace = sim.into_trace();
            let stats = anonreg::spec::check_renaming(&trace, 2)
                .unwrap_or_else(|v| panic!("shift {shift}: {v}\n{trace}"));
            assert_eq!(stats.names.len(), 2);
        }
    }
}

#[test]
fn n2_is_obstruction_free_from_every_reachable_state() {
    let sim = two_proc_sim(2, View::rotated(3, 1));
    let graph = Explorer::new(sim).run().unwrap();
    // Solo completion: per round at most m catch-up-scan iterations of
    // (m+1) ops, across up to n rounds, plus slack for a partial scan.
    let report = check_obstruction_freedom(&graph, 256).unwrap();
    assert!(report.solo_runs > 0);
    assert!(
        report.max_solo_ops <= 2 * (3 * 4 + 2 * 3),
        "solo cost {} looks unreasonably high",
        report.max_solo_ops
    );
}

#[test]
fn adaptivity_k1_takes_name_one_for_every_view() {
    // One participant among n = 3 potential ones must take name 1 whatever
    // its view of the 5 registers — adaptivity, Theorem 5.3.
    for shift in 0..5 {
        let mut sim = Simulation::builder()
            .process(
                AnonRenaming::new(pid(9), 3).unwrap(),
                View::rotated(5, shift),
            )
            .build()
            .unwrap();
        sched::round_robin(&mut sim, 10_000);
        assert!(sim.all_halted());
        let trace = sim.into_trace();
        let stats = anonreg::spec::check_renaming(&trace, 1).unwrap();
        assert_eq!(stats.names, vec![(0, 1)], "shift {shift}");
    }
}

#[test]
fn adaptivity_k2_of_n3_names_within_two() {
    // Two participants among n = 3 potential ones: names ⊆ {1, 2} in every
    // interleaving (checked exhaustively on terminal states by replay).
    let build = || {
        let m = 5;
        Simulation::builder()
            .process(AnonRenaming::new(pid(1), 3).unwrap(), View::identity(m))
            .process(AnonRenaming::new(pid(2), 3).unwrap(), View::rotated(m, 2))
            .build()
            .unwrap()
    };
    let graph = Explorer::new(build()).max_states(3_000_000).run().unwrap();
    let mut terminals = 0;
    for (id, state) in graph.states() {
        if !state.all_halted() {
            continue;
        }
        terminals += 1;
        let schedule = graph.schedule_to(id);
        let mut sim = build();
        for &p in &schedule {
            sim.step(p).unwrap();
        }
        let trace = sim.into_trace();
        let stats =
            anonreg::spec::check_renaming(&trace, 2).unwrap_or_else(|v| panic!("{v}\n{trace}"));
        assert_eq!(stats.names.len(), 2);
    }
    assert!(terminals > 0);
}
