//! The `ANONREG_NO_CACHE` escape hatch, in its own test binary: the
//! variable is process-global, so it cannot be toggled inside the
//! shared `incremental_modelcheck` binary without racing its tests.
//!
//! With the variable set, [`run_cached`] must never answer from a
//! stored certificate — every run explores cold — while still
//! refreshing the store so that dropping the variable warms back up.

use anonreg::mutex::{AnonMutex, Section};
use anonreg::{Pid, View};
use anonreg_sim::prelude::*;
use anonreg_sim::Simulation;

fn pid(n: u64) -> Pid {
    Pid::new(n).unwrap()
}

#[test]
fn no_cache_env_forces_cold_runs_but_keeps_certifying() {
    std::env::set_var("ANONREG_NO_CACHE", "1");
    assert!(cache_disabled(), "escape hatch not visible");

    let dir = std::env::temp_dir().join(format!("anonreg-escape-hatch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = CacheStore::new(&dir).unwrap();
    let make = || {
        Explorer::new(
            Simulation::builder()
                .process(AnonMutex::new(pid(1), 3).unwrap(), View::identity(3))
                .process(AnonMutex::new(pid(2), 3).unwrap(), View::rotated(3, 1))
                .build()
                .unwrap(),
        )
        .verdict("safety", |g: &StateGraph<AnonMutex>| {
            g.find_state(|s| {
                s.machines()
                    .filter(|m| m.section() == Section::Critical)
                    .count()
                    >= 2
            })
            .is_some()
        })
    };

    let first = run_cached(&store, make).unwrap();
    let second = run_cached(&store, make).unwrap();
    assert!(!first.warm, "escape hatch did not disable replay");
    assert!(!second.warm, "escape hatch stopped applying on rerun");
    assert_eq!((first.states, first.edges), (second.states, second.edges));
    assert_eq!(first.verdicts, second.verdicts);
    // The store is still refreshed: the certificate exists for the day
    // the variable is dropped.
    assert!(
        store.contains(make().structural_hash()),
        "cold runs stopped certifying"
    );

    // An empty value does not count as set.
    std::env::set_var("ANONREG_NO_CACHE", "");
    assert!(!cache_disabled(), "empty value should re-enable the cache");
    let third = run_cached(&store, make).unwrap();
    assert!(third.warm, "cache did not warm back up");
    assert_eq!((first.states, first.edges), (third.states, third.edges));

    let _ = std::fs::remove_dir_all(&dir);
}
