//! Lamport's Bakery algorithm — the canonical *named-register* n-process
//! mutual exclusion baseline.
//!
//! Bakery needs `2n` named registers (`choosing[0..n]` and `number[0..n]`)
//! and breaks ties by **ordering** `(ticket, slot)` pairs. Both ingredients
//! — agreed register names and an agreed total order on process slots — are
//! unavailable in the paper's memory-anonymous symmetric-with-equality
//! model, which is why no Bakery-style n-process algorithm appears there
//! (the existence of an anonymous mutex for `n > 2` is the paper's headline
//! open problem).

use std::fmt;

use anonreg_model::{Machine, Pid, Step};

use crate::mutex::{MutexConfigError, MutexEvent, Section};

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Pc {
    Remainder,
    /// `choosing[s] := 1` just issued.
    SetChoosing,
    /// Read of `number[j]` issued while computing the maximum ticket.
    ScanNumber,
    /// `number[s] := max + 1` just issued.
    SetNumber,
    /// `choosing[s] := 0` just issued.
    ClearChoosing,
    /// Read of `choosing[j]` issued (first wait loop for process `j`).
    WaitChoosing,
    /// Read of `number[j]` issued (second wait loop for process `j`).
    WaitNumber,
    /// In the critical section.
    Critical,
    /// `Event(Exit)` emitted; `number[s] := 0` follows.
    ExitWrite,
}

/// Lamport's Bakery: deadlock-free (in fact first-come-first-served)
/// mutual exclusion for `n` processes over `2n` *named* registers.
///
/// Register layout: `choosing[j]` at index `j`, `number[j]` at index
/// `n + j`. Each process must know its own `slot` in `0..n` — prior
/// agreement that the memory-anonymous model forbids.
///
/// Tickets grow without bound over a long run; they are `u64`, which
/// overflows only after ~10¹⁹ critical sections.
///
/// # Example
///
/// ```
/// use anonreg::baseline::Bakery;
/// use anonreg::Machine;
/// use anonreg::Pid;
///
/// let machine = Bakery::new(Pid::new(3).unwrap(), 1, 4)?;
/// assert_eq!(machine.register_count(), 8);
/// # Ok::<(), anonreg::mutex::MutexConfigError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bakery {
    pid: Pid,
    slot: usize,
    n: usize,
    cycles_remaining: Option<u64>,
    /// Maximum ticket seen during the scan.
    maxnum: u64,
    /// Our ticket (`number[s]` value).
    mynum: u64,
    /// Loop index over processes.
    j: usize,
    pc: Pc,
}

impl Bakery {
    /// Creates the Bakery machine for process `pid` playing `slot` among
    /// `n` agreed-upon slots.
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0` or `slot >= n`.
    pub fn new(pid: Pid, slot: usize, n: usize) -> Result<Self, MutexConfigError> {
        if n == 0 {
            return Err(MutexConfigError::ZeroRegisters);
        }
        if slot >= n {
            return Err(MutexConfigError::slot(slot));
        }
        Ok(Bakery {
            pid,
            slot,
            n,
            cycles_remaining: None,
            maxnum: 0,
            mynum: 0,
            j: 0,
            pc: Pc::Remainder,
        })
    }

    /// Bounds the machine to `cycles` critical-section entries.
    #[must_use]
    pub fn with_cycles(mut self, cycles: u64) -> Self {
        self.cycles_remaining = Some(cycles);
        self
    }

    /// The code section the process is currently in.
    #[must_use]
    pub fn section(&self) -> Section {
        match self.pc {
            Pc::Remainder => Section::Remainder,
            Pc::SetChoosing
            | Pc::ScanNumber
            | Pc::SetNumber
            | Pc::ClearChoosing
            | Pc::WaitChoosing
            | Pc::WaitNumber => Section::Entry,
            Pc::Critical => Section::Critical,
            Pc::ExitWrite => Section::Exit,
        }
    }

    fn choosing_reg(&self, j: usize) -> usize {
        j
    }

    fn number_reg(&self, j: usize) -> usize {
        self.n + j
    }

    /// Moves the wait loop to the next process (skipping ourselves), or
    /// enters the critical section when all have been passed.
    fn next_wait_target(&mut self) -> Step<u64, MutexEvent> {
        self.j += 1;
        if self.j == self.slot {
            self.j += 1;
        }
        if self.j < self.n {
            self.pc = Pc::WaitChoosing;
            Step::Read(self.choosing_reg(self.j))
        } else {
            self.pc = Pc::Critical;
            Step::Event(MutexEvent::Enter)
        }
    }

    /// `(number[j], j) < (number[s], s)` — the Bakery tie-break order.
    fn other_goes_first(&self, other_num: u64) -> bool {
        (other_num, self.j) < (self.mynum, self.slot)
    }
}

impl Machine for Bakery {
    type Value = u64;
    type Event = MutexEvent;

    fn pid(&self) -> Pid {
        self.pid
    }

    fn register_count(&self) -> usize {
        2 * self.n
    }

    fn resume(&mut self, read: Option<u64>) -> Step<u64, MutexEvent> {
        match self.pc {
            Pc::Remainder => {
                debug_assert!(read.is_none());
                match self.cycles_remaining {
                    Some(0) => Step::Halt,
                    other => {
                        if let Some(c) = other {
                            self.cycles_remaining = Some(c - 1);
                        }
                        self.pc = Pc::SetChoosing;
                        Step::Write(self.choosing_reg(self.slot), 1)
                    }
                }
            }
            Pc::SetChoosing => {
                debug_assert!(read.is_none());
                self.maxnum = 0;
                self.j = 0;
                self.pc = Pc::ScanNumber;
                Step::Read(self.number_reg(0))
            }
            Pc::ScanNumber => {
                let num = read.expect("number read result expected");
                self.maxnum = self.maxnum.max(num);
                self.j += 1;
                if self.j < self.n {
                    Step::Read(self.number_reg(self.j))
                } else {
                    self.mynum = self.maxnum + 1;
                    self.pc = Pc::SetNumber;
                    Step::Write(self.number_reg(self.slot), self.mynum)
                }
            }
            Pc::SetNumber => {
                debug_assert!(read.is_none());
                self.pc = Pc::ClearChoosing;
                Step::Write(self.choosing_reg(self.slot), 0)
            }
            Pc::ClearChoosing => {
                debug_assert!(read.is_none());
                // Start the wait loop at process 0 (or 1 if we are slot 0).
                self.j = if self.slot == 0 { 1 } else { 0 };
                if self.n == 1 {
                    self.pc = Pc::Critical;
                    return Step::Event(MutexEvent::Enter);
                }
                self.pc = Pc::WaitChoosing;
                Step::Read(self.choosing_reg(self.j))
            }
            Pc::WaitChoosing => {
                let choosing = read.expect("choosing read result expected");
                if choosing != 0 {
                    // Process j is still picking a ticket: spin here.
                    Step::Read(self.choosing_reg(self.j))
                } else {
                    self.pc = Pc::WaitNumber;
                    Step::Read(self.number_reg(self.j))
                }
            }
            Pc::WaitNumber => {
                let num = read.expect("number read result expected");
                if num != 0 && self.other_goes_first(num) {
                    // Process j holds an earlier ticket: spin here.
                    Step::Read(self.number_reg(self.j))
                } else {
                    self.next_wait_target()
                }
            }
            Pc::Critical => {
                debug_assert!(read.is_none());
                self.pc = Pc::ExitWrite;
                Step::Event(MutexEvent::Exit)
            }
            Pc::ExitWrite => {
                debug_assert!(read.is_none());
                self.pc = Pc::Remainder;
                Step::Write(self.number_reg(self.slot), 0)
            }
        }
    }
}

impl fmt::Debug for Bakery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Bakery")
            .field("pid", &self.pid)
            .field("slot", &self.slot)
            .field("n", &self.n)
            .field("pc", &self.pc)
            .field("mynum", &self.mynum)
            .field("j", &self.j)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u64) -> Pid {
        Pid::new(n).unwrap()
    }

    fn run_solo(mut machine: Bakery) -> (Vec<MutexEvent>, Vec<u64>) {
        let mut regs = vec![0u64; machine.register_count()];
        let mut read = None;
        let mut events = Vec::new();
        for _ in 0..100_000 {
            match machine.resume(read.take()) {
                Step::Read(j) => read = Some(regs[j]),
                Step::Write(j, v) => regs[j] = v,
                Step::Event(e) => events.push(e),
                Step::Halt => return (events, regs),
            }
        }
        panic!("machine did not halt");
    }

    #[test]
    fn config_validation() {
        assert!(Bakery::new(pid(1), 0, 0).is_err());
        assert!(Bakery::new(pid(1), 3, 3).is_err());
        assert!(Bakery::new(pid(1), 2, 3).is_ok());
    }

    #[test]
    fn solo_enters_and_exits_any_slot() {
        for n in [1, 2, 4, 7] {
            for slot in 0..n {
                let (events, regs) = run_solo(Bakery::new(pid(5), slot, n).unwrap().with_cycles(1));
                assert_eq!(
                    events,
                    vec![MutexEvent::Enter, MutexEvent::Exit],
                    "n={n} slot={slot}"
                );
                assert!(regs.iter().all(|&v| v == 0), "n={n} slot={slot}");
            }
        }
    }

    #[test]
    fn tickets_increase_across_cycles() {
        let mut machine = Bakery::new(pid(5), 0, 2).unwrap().with_cycles(3);
        let mut regs = [0u64; 4];
        let mut read = None;
        let mut tickets = Vec::new();
        loop {
            match machine.resume(read.take()) {
                Step::Read(j) => read = Some(regs[j]),
                Step::Write(j, v) => {
                    regs[j] = v;
                    if j == 2 && v != 0 {
                        tickets.push(v);
                    }
                }
                Step::Event(_) => {}
                Step::Halt => break,
            }
        }
        // Registers reset to 0 between cycles, so solo tickets are all 1.
        assert_eq!(tickets, vec![1, 1, 1]);
    }

    #[test]
    fn waits_for_choosing_process() {
        // Slot 1's choosing flag is up: slot 0 must spin on it.
        let mut machine = Bakery::new(pid(5), 0, 2).unwrap();
        let mut regs = [0u64, 1, 0, 0];
        let mut read = None;
        for _ in 0..50 {
            match machine.resume(read.take()) {
                Step::Read(j) => read = Some(regs[j]),
                Step::Write(j, v) => regs[j] = v,
                Step::Event(MutexEvent::Enter) => panic!("must not enter while other chooses"),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(machine.section(), Section::Entry);
    }

    #[test]
    fn waits_for_earlier_ticket() {
        // Slot 1 holds ticket 1; slot 0 will draw ticket 2 and must wait.
        let mut machine = Bakery::new(pid(5), 0, 2).unwrap();
        let mut regs = [0u64, 0, 0, 1];
        let mut read = None;
        for _ in 0..50 {
            match machine.resume(read.take()) {
                Step::Read(j) => read = Some(regs[j]),
                Step::Write(j, v) => regs[j] = v,
                Step::Event(MutexEvent::Enter) => panic!("must not pass an earlier ticket"),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(machine.section(), Section::Entry);
    }

    #[test]
    fn ties_break_by_slot() {
        // Both hold ticket 1: slot 0 wins the (ticket, slot) order, slot 1
        // must wait. Simulate slot 1 against a frozen slot 0 with ticket 1.
        let mut machine = Bakery::new(pid(5), 1, 2).unwrap();
        // regs: choosing0, choosing1, number0, number1
        let mut regs = [0u64, 0, 1, 0];
        let mut read = None;
        let mut entered = false;
        for _ in 0..50 {
            match machine.resume(read.take()) {
                Step::Read(j) => read = Some(regs[j]),
                Step::Write(j, v) => regs[j] = v,
                Step::Event(MutexEvent::Enter) => {
                    entered = true;
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        // Slot 1 drew ticket 2 (max was 1), so slot 0's ticket 1 is earlier:
        // no entry.
        assert!(!entered);

        // Mirror image: slot 0 against frozen slot 1 with an equal ticket.
        // Force equality by presetting number1 = 1 *after* the scan; easier:
        // slot 0 with other's ticket equal to what it will draw (scan sees 0
        // then we bump). Instead verify the pure comparator:
        let m0 = Bakery::new(pid(5), 0, 2).unwrap();
        let mut m0 = m0;
        m0.mynum = 1;
        m0.j = 1;
        assert!(!m0.other_goes_first(1), "(1,1) is not before (1,0)");
        let mut m1 = Bakery::new(pid(6), 1, 2).unwrap();
        m1.mynum = 1;
        m1.j = 0;
        assert!(m1.other_goes_first(1), "(1,0) is before (1,1)");
    }
}
