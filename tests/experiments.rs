//! End-to-end experiment assertions: every table in `EXPERIMENTS.md` must
//! come out paper-shaped at test scale. (The full-scale sweeps run via
//! `cargo run --release -p anonreg-bench --bin repro`.)

use anonreg_bench::{
    e10_solo_steps, e12_starvation, e15_faults, e1_parity, e2_ring, e3_consensus,
    e4_consensus_space, e5_renaming, e6_renaming_space, e7_unknown_n, e8_election,
};
use anonreg_lower::mutex_cover::MutexFailure;

#[test]
fn e1_parity_table_matches_theorem_3_1() {
    let rows = e1_parity::rows(4);
    assert_eq!(rows.len(), 4);
    for row in &rows {
        assert!(row.matches_paper(), "m={}: {row:?}", row.m);
    }
    // Spot-check the dichotomy explicitly.
    assert!(!rows[0].safe, "m=1 is unsafe");
    assert!(rows[1].safe && !rows[1].live, "m=2 livelocks");
    assert!(rows[2].safe && rows[2].live, "m=3 works");
    assert!(rows[3].safe && !rows[3].live, "m=4 livelocks");
}

#[test]
fn e2_ring_table_matches_theorem_3_4() {
    for row in e2_ring::rows(8, 4, 200) {
        match row.starved {
            Some(starved) => {
                assert!(starved, "divisible ring must starve: {row:?}");
                assert!(row.gcd > 1);
            }
            None => assert_ne!(row.m % row.l, 0),
        }
    }
}

#[test]
fn e3_consensus_sweeps_are_clean() {
    for row in e3_consensus::rows(4, 20) {
        assert_eq!(row.violations, 0, "{row:?}");
    }
}

#[test]
fn e4_consensus_space_bound_attacks_all_succeed() {
    for row in e4_consensus_space::rows(5) {
        assert!(row.violated, "{row:?}");
    }
}

#[test]
fn e5_renaming_sweeps_are_adaptive() {
    for row in e5_renaming::rows(4, 10) {
        assert_eq!(row.violations, 0, "{row:?}");
        assert!(row.max_name <= row.k as u32, "{row:?}");
    }
}

#[test]
fn e6_renaming_space_bound_attacks_all_succeed() {
    for row in e6_renaming_space::rows(5) {
        assert!(row.violated, "{row:?}");
        assert_eq!(row.name, 1);
    }
}

#[test]
fn e7_unknown_n_attacks_all_fail_somehow() {
    let rows = e7_unknown_n::rows(5);
    assert!(rows.iter().all(|r| r.indistinguishable));
    assert!(matches!(
        rows[0].failure,
        MutexFailure::MutualExclusionViolated { .. }
    ));
    for row in &rows[1..] {
        assert!(matches!(row.failure, MutexFailure::Starvation { .. }));
    }
}

#[test]
fn e8_election_sweeps_are_clean() {
    for row in e8_election::rows(4, 15) {
        assert_eq!(row.violations, 0, "{row:?}");
    }
}

#[test]
fn e10_solo_costs_respect_bounds() {
    for row in e10_solo_steps::rows(8) {
        assert!(row.within_bound(), "{row:?}");
    }
}

#[test]
fn e12_starvation_verdicts_match_theory() {
    for row in e12_starvation::rows() {
        assert!(row.matches(), "{row:?}");
    }
}

#[test]
fn e15_fault_sweeps_are_safe_and_the_fixture_is_not() {
    for row in e15_faults::rows(42, 3) {
        assert_eq!(row.violations, 0, "{row:?}");
        assert!(
            row.crashes + row.stalls + row.restarts > 0 || row.schedules < 3,
            "{row:?}"
        );
    }
    // The deliberately broken doorway must trip the same detector.
    let broken = e15_faults::sweep(e15_faults::BROKEN, 42, 8);
    assert!(broken.violations > 0, "{broken:?}");
    assert!(broken.first_violation_seed.is_some());
}

#[test]
fn all_tables_render() {
    assert!(!e1_parity::render(&e1_parity::rows(2)).is_empty());
    assert!(!e2_ring::render(&e2_ring::rows(4, 2, 10)).is_empty());
    assert!(!e3_consensus::render(&e3_consensus::rows(2, 2)).is_empty());
    assert!(!e4_consensus_space::render(&e4_consensus_space::rows(3)).is_empty());
    assert!(!e5_renaming::render(&e5_renaming::rows(2, 2)).is_empty());
    assert!(!e6_renaming_space::render(&e6_renaming_space::rows(3)).is_empty());
    assert!(!e7_unknown_n::render(&e7_unknown_n::rows(2)).is_empty());
    assert!(!e8_election::render(&e8_election::rows(2, 2)).is_empty());
    assert!(!e10_solo_steps::render(&e10_solo_steps::rows(2)).is_empty());
}
