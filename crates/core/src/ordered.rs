//! A §2-variant exploration: mutual exclusion under *symmetric with
//! arbitrary comparisons*.
//!
//! The paper defines two symmetric models (§2): *symmetric with equality*
//! (identifiers can only be compared for equality — everything else in this
//! crate lives there) and *symmetric with arbitrary comparisons* (
//! "comparisons can be defined that depend on a total order"). Theorem 3.1's
//! odd-`m` requirement is proved **for the equality model**; its engine is
//! that a tie between two processes holding `m/2` registers each cannot be
//! broken by any symmetric, equality-only rule.
//!
//! With a total order on identifiers the tie breaks immediately: *the
//! smaller identifier yields*. [`OrderedMutex`] is Figure 1 with the lose
//! condition changed from "fewer than ⌈m/2⌉" to "fewer than ⌈m/2⌉, **or
//! exactly m/2 while a larger identifier is visible**" — no named register,
//! no extra space, works for **every** `m ≥ 2` including even values.
//!
//! The first design of this module let the tie *winner* forcibly overwrite
//! the loser's claims. The model checker rejected it with a concrete
//! two-in-the-critical-section schedule: forced overwriting breaks the
//! invariant Theorem 3.2's proof rests on (after an all-mine point the
//! opponent writes **at most once** before losing), and two non-atomic
//! scans could each observe all-mine. The shipped rule keeps Figure 1's
//! claim discipline — processes only ever claim zero registers — and
//! resolves ties purely by who backs off, which preserves the proof's
//! invariant verbatim.
//!
//! Together with `hybrid` (one named register) this triangulates Theorem
//! 3.1: the odd-`m` wall stands or falls with the *equality-only*
//! assumption, whichever way you relax it.
//!
//! **Correctness status.** Not a paper algorithm; the claims are
//! established by exhaustive model checking for `m ∈ {2, 3, 4}` under every
//! rotation view (`ordered_modelcheck.rs`). The implementation compares raw
//! identifier values — deliberately stepping outside the equality-only
//! discipline the rest of the crate observes, as the arbitrary-comparisons
//! model permits.

use std::fmt;

use anonreg_model::{Machine, Pid, PidMap, Step};

use crate::mutex::{MutexConfigError, MutexEvent, Section};

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Pc {
    Remainder,
    /// Scan read issued for register `j` (claim zeros).
    ScanRead,
    /// Scan write just issued.
    ScanWrote,
    /// View read issued for register `j`.
    ViewRead,
    /// Cleanup read issued (lose path).
    CleanupRead,
    /// Cleanup write just issued.
    CleanupWrote,
    /// Waiting-for-release read issued (lose path).
    WaitRead,
    /// In the critical section.
    Critical,
    /// Exit writes in progress.
    ExitWrite,
}

/// Figure 1 plus an identifier-order tie-break (the smaller id yields):
/// symmetric mutual exclusion for two processes over **any** `m ≥ 2`
/// anonymous registers, in the paper's "symmetric with arbitrary
/// comparisons" model (§2).
///
/// # Example
///
/// ```
/// use anonreg::ordered::OrderedMutex;
/// use anonreg::{Machine, Pid};
///
/// let machine = OrderedMutex::new(Pid::new(7).unwrap(), 4)?; // even m!
/// assert_eq!(machine.register_count(), 4);
/// # Ok::<(), anonreg::mutex::MutexConfigError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct OrderedMutex {
    pid: Pid,
    m: usize,
    cycles_remaining: Option<u64>,
    myview: Vec<u64>,
    j: usize,
    pc: Pc,
}

impl OrderedMutex {
    /// Creates the machine for process `pid` with `m ≥ 2` anonymous
    /// registers.
    ///
    /// # Errors
    ///
    /// Returns [`MutexConfigError::ZeroRegisters`] if `m < 2` (`m = 1`
    /// cannot exclude two processes — see experiment E1).
    pub fn new(pid: Pid, m: usize) -> Result<Self, MutexConfigError> {
        if m < 2 {
            return Err(MutexConfigError::ZeroRegisters);
        }
        Ok(OrderedMutex {
            pid,
            m,
            cycles_remaining: None,
            myview: vec![0; m],
            j: 0,
            pc: Pc::Remainder,
        })
    }

    /// Bounds the machine to `cycles` critical-section entries.
    #[must_use]
    pub fn with_cycles(mut self, cycles: u64) -> Self {
        self.cycles_remaining = Some(cycles);
        self
    }

    /// The code section the process is currently in.
    #[must_use]
    pub fn section(&self) -> Section {
        match self.pc {
            Pc::Remainder => Section::Remainder,
            Pc::Critical => Section::Critical,
            Pc::ExitWrite => Section::Exit,
            _ => Section::Entry,
        }
    }

    fn continue_scan(&mut self) -> Step<u64, MutexEvent> {
        if self.j < self.m {
            self.pc = Pc::ScanRead;
            Step::Read(self.j)
        } else {
            self.j = 0;
            self.pc = Pc::ViewRead;
            Step::Read(0)
        }
    }

    fn continue_cleanup(&mut self) -> Step<u64, MutexEvent> {
        if self.j < self.m {
            self.pc = Pc::CleanupRead;
            Step::Read(self.j)
        } else {
            self.j = 0;
            self.pc = Pc::WaitRead;
            Step::Read(0)
        }
    }

    fn lose(&mut self) -> Step<u64, MutexEvent> {
        self.j = 0;
        self.continue_cleanup()
    }

    fn after_view(&mut self) -> Step<u64, MutexEvent> {
        let me = self.pid.get();
        let mine = self.myview.iter().filter(|&&v| v == me).count();
        if mine == self.m {
            self.pc = Pc::Critical;
            return Step::Event(MutexEvent::Enter);
        }
        if 2 * mine < self.m {
            return self.lose();
        }
        if 2 * mine == self.m {
            // The equality-only wall, broken with the total order: if a
            // larger identifier is visible, yield exactly as Figure 1's
            // losers do; the larger id keeps retrying and inherits the
            // freed registers. No overwriting — the claim discipline (and
            // hence Theorem 3.2's at-most-one-overwrite invariant) is
            // untouched.
            match self.myview.iter().find(|&&v| v != 0 && v != me) {
                Some(&other) if me < other => return self.lose(),
                _ => {
                    // Larger id (or no opponent visible): retry the scan.
                }
            }
        }
        self.j = 0;
        self.continue_scan()
    }
}

impl Machine for OrderedMutex {
    type Value = u64;
    type Event = MutexEvent;

    fn pid(&self) -> Pid {
        self.pid
    }

    fn register_count(&self) -> usize {
        self.m
    }

    fn resume(&mut self, read: Option<u64>) -> Step<u64, MutexEvent> {
        let me = self.pid.get();
        match self.pc {
            Pc::Remainder => {
                debug_assert!(read.is_none());
                match self.cycles_remaining {
                    Some(0) => Step::Halt,
                    other => {
                        if let Some(c) = other {
                            self.cycles_remaining = Some(c - 1);
                        }
                        self.j = 0;
                        self.continue_scan()
                    }
                }
            }
            Pc::ScanRead => {
                let value = read.expect("scan read result expected");
                if value == 0 {
                    self.pc = Pc::ScanWrote;
                    Step::Write(self.j, me)
                } else {
                    self.j += 1;
                    self.continue_scan()
                }
            }
            Pc::ScanWrote => {
                debug_assert!(read.is_none());
                self.j += 1;
                self.continue_scan()
            }
            Pc::ViewRead => {
                let value = read.expect("view read result expected");
                self.myview[self.j] = value;
                self.j += 1;
                if self.j < self.m {
                    Step::Read(self.j)
                } else {
                    self.after_view()
                }
            }
            Pc::CleanupRead => {
                let value = read.expect("cleanup read result expected");
                if value == me {
                    self.pc = Pc::CleanupWrote;
                    Step::Write(self.j, 0)
                } else {
                    self.j += 1;
                    self.continue_cleanup()
                }
            }
            Pc::CleanupWrote => {
                debug_assert!(read.is_none());
                self.j += 1;
                self.continue_cleanup()
            }
            Pc::WaitRead => {
                let value = read.expect("wait read result expected");
                self.myview[self.j] = value;
                self.j += 1;
                if self.j < self.m {
                    Step::Read(self.j)
                } else if self.myview.iter().all(|&v| v == 0) {
                    self.j = 0;
                    self.continue_scan()
                } else {
                    self.j = 0;
                    Step::Read(0)
                }
            }
            Pc::Critical => {
                debug_assert!(read.is_none());
                self.j = 0;
                self.pc = Pc::ExitWrite;
                Step::Event(MutexEvent::Exit)
            }
            Pc::ExitWrite => {
                debug_assert!(read.is_none());
                let j = self.j;
                self.j += 1;
                if self.j == self.m {
                    self.pc = Pc::Remainder;
                }
                Step::Write(j, 0)
            }
        }
    }
}

impl PidMap for OrderedMutex {
    /// Renames the identifier and the pid-valued view snapshot. Note that
    /// this machine *orders* identifiers, so a renaming is a true symmetry
    /// only when it is monotone on the identifiers present — the symmetry
    /// parity suite checks the shipped configurations empirically.
    fn map_pids(&self, f: &mut dyn FnMut(Pid) -> Pid) -> Self {
        OrderedMutex {
            pid: f(self.pid),
            myview: self.myview.iter().map(|v| v.map_pids(f)).collect(),
            ..self.clone()
        }
    }
}

impl fmt::Debug for OrderedMutex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedMutex")
            .field("pid", &self.pid)
            .field("m", &self.m)
            .field("pc", &self.pc)
            .field("j", &self.j)
            .field("myview", &self.myview)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u64) -> Pid {
        Pid::new(n).unwrap()
    }

    fn run_solo(mut machine: OrderedMutex) -> Vec<MutexEvent> {
        let mut regs = vec![0u64; machine.register_count()];
        let mut read = None;
        let mut events = Vec::new();
        for _ in 0..100_000 {
            match machine.resume(read.take()) {
                Step::Read(j) => read = Some(regs[j]),
                Step::Write(j, v) => regs[j] = v,
                Step::Event(e) => events.push(e),
                Step::Halt => return events,
            }
        }
        panic!("machine did not halt");
    }

    #[test]
    fn config_validation() {
        assert!(OrderedMutex::new(pid(1), 0).is_err());
        assert!(OrderedMutex::new(pid(1), 1).is_err());
        assert!(OrderedMutex::new(pid(1), 2).is_ok());
    }

    #[test]
    fn solo_cycles_for_even_and_odd_m() {
        for m in [2usize, 3, 4, 6] {
            let events = run_solo(OrderedMutex::new(pid(5), m).unwrap().with_cycles(2));
            assert_eq!(events.len(), 4, "m={m}");
        }
    }

    #[test]
    fn larger_id_keeps_retrying_and_wins_after_the_yield() {
        // m = 2 tie: we (id 9) hold r0, opponent (id 3) holds r1. We keep
        // scanning without overwriting; when the opponent (being smaller)
        // erases its mark, we claim the freed register and enter.
        let mut machine = OrderedMutex::new(pid(9), 2).unwrap();
        let mut regs = vec![9u64, 3];
        let mut read = None;
        let mut entered = false;
        let mut steps = 0;
        for _ in 0..200 {
            steps += 1;
            if steps == 30 {
                // The smaller opponent yields, as its own rule demands.
                regs[1] = 0;
            }
            match machine.resume(read.take()) {
                Step::Read(j) => read = Some(regs[j]),
                Step::Write(j, v) => {
                    assert_ne!(regs[j], 3, "must never overwrite the opponent");
                    regs[j] = v;
                }
                Step::Event(MutexEvent::Enter) => {
                    entered = true;
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(entered);
        assert_eq!(regs, vec![9, 9]);
    }

    #[test]
    fn smaller_id_yields_on_a_tie() {
        // Mirror image: we (id 3) must lose the comparison, clean up and
        // wait.
        let mut machine = OrderedMutex::new(pid(3), 2).unwrap();
        let mut regs = vec![3u64, 9];
        let mut read = None;
        for _ in 0..60 {
            match machine.resume(read.take()) {
                Step::Read(j) => read = Some(regs[j]),
                Step::Write(j, v) => {
                    assert_eq!(v, 0, "the smaller id only erases its own mark");
                    regs[j] = v;
                }
                Step::Event(MutexEvent::Enter) => panic!("smaller id must not enter"),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(machine.section(), Section::Entry);
        assert_eq!(regs, vec![0, 9]);
    }

    #[test]
    fn sections_and_debug() {
        let machine = OrderedMutex::new(pid(1), 2).unwrap();
        assert_eq!(machine.section(), Section::Remainder);
        assert!(format!("{machine:?}").contains("OrderedMutex"));
    }
}
