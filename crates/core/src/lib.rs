//! Memory-anonymous coordination algorithms — **coordination without prior
//! agreement** on the names of shared memory locations.
//!
//! This crate is a faithful, production-quality implementation of the
//! algorithms in Gadi Taubenfeld's PODC 2017 paper *"Coordination Without
//! Prior Agreement"*. In the paper's model, processes communicate through
//! atomic multi-writer multi-reader registers that have **no globally agreed
//! names**: each process enumerates the registers through its own private
//! permutation, so no two processes need to agree which register is "first".
//!
//! # The algorithms
//!
//! | Module | Paper artifact | Guarantee |
//! |--------|----------------|-----------|
//! | [`mutex`] | Figure 1 | symmetric deadlock-free mutual exclusion for 2 processes with any odd `m ≥ 3` registers (Theorems 3.1–3.3) |
//! | [`consensus`] | Figure 2 | symmetric obstruction-free multi-valued consensus for `n` processes with `2n − 1` registers (Theorems 4.1, 4.2) |
//! | [`election`] | §4 remark | symmetric obstruction-free leader election (consensus on identifiers) |
//! | [`renaming`] | Figure 3 | symmetric obstruction-free **adaptive perfect renaming**: `k` participants acquire distinct names from `{1..k}` (Theorems 5.1–5.3) |
//! | [`hybrid`] | §8 exploration | mutual exclusion over `m` anonymous registers **plus one named register** — works for even `m` too; verified by exhaustive model checking |
//! | [`ordered`] | §2 variant | mutual exclusion under *symmetric with arbitrary comparisons*: identifier order breaks the even-`m` tie with zero extra registers; verified by exhaustive model checking |
//! | [`baseline`] | — | classic *named-register* algorithms (Peterson, Bakery, lock-based consensus, Moir–Anderson splitters) used as comparison baselines |
//! | [`spec`] | §3–§5 definitions | trace checkers for every correctness property above |
//!
//! Every algorithm is expressed as an [`anonreg_model::Machine`]: a
//! deterministic state machine performing one atomic register operation per
//! step. The same implementation is exhaustively model-checked by
//! `anonreg-sim`, attacked by the covering adversaries of `anonreg-lower`,
//! and run at full speed on real threads by `anonreg-runtime`.
//!
//! # Quickstart
//!
//! Run the Figure 1 mutex solo (the machine enters its critical section and
//! exits once):
//!
//! ```
//! use anonreg::mutex::{AnonMutex, MutexEvent};
//! use anonreg::{Machine, Pid, Step};
//!
//! let mut machine = AnonMutex::new(Pid::new(42).unwrap(), 3)?.with_cycles(1);
//! let mut registers = vec![0u64; 3];
//! let mut read = None;
//! let mut events = Vec::new();
//! loop {
//!     match machine.resume(read.take()) {
//!         Step::Read(j) => read = Some(registers[j]),
//!         Step::Write(j, v) => registers[j] = v,
//!         Step::Event(e) => events.push(e),
//!         Step::Halt => break,
//!     }
//! }
//! assert_eq!(events, vec![MutexEvent::Enter, MutexEvent::Exit]);
//! assert_eq!(registers, vec![0, 0, 0]); // exit code restored the initial state
//! # Ok::<(), anonreg::mutex::MutexConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod codec;
pub mod consensus;
pub mod election;
pub mod hybrid;
pub mod mutex;
pub mod ordered;
pub mod renaming;
pub mod spec;

pub use anonreg_model::{
    trace, Machine, ParsePidError, Pid, PidMap, RegisterValue, Step, View, ViewError,
};
