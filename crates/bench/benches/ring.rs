//! E2 machinery benchmark: lock-step ring rounds with the per-round
//! rotation-symmetry verification.

use anonreg_bench::timing::{criterion_group, criterion_main, BenchmarkId, Criterion};

use anonreg_lower::ring::ring_starvation;

fn bench_ring(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_ring");
    for (m, l) in [(4usize, 2usize), (6, 3), (8, 4), (12, 4)] {
        group.bench_with_input(
            BenchmarkId::new("lockstep_500_rounds", format!("m{m}_l{l}")),
            &(m, l),
            |b, &(m, l)| {
                b.iter(|| {
                    let outcome = ring_starvation(m, l, 500).unwrap();
                    assert!(outcome.starved());
                    outcome
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ring);
criterion_main!(benches);
