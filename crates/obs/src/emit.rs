//! Rendering recorded observations as schema-v1 JSONL lines.

use crate::json::Json;
use crate::probe::MetricsSnapshot;
use crate::schema::SCHEMA_VERSION;

fn line(fields: Vec<(&str, Json)>) -> String {
    let mut all = vec![("v".to_string(), Json::U64(SCHEMA_VERSION))];
    all.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
    Json::Obj(all).render()
}

/// Renders a snapshot as JSONL: counters, then gauges, then histograms,
/// then spans, then events, each newline-terminated — all in the
/// snapshot's deterministic order.
#[must_use]
pub fn snapshot_to_jsonl(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (metric, key, value) in &snapshot.counters {
        out.push_str(&line(vec![
            ("t", Json::Str("counter".into())),
            ("name", Json::Str(metric.name().into())),
            ("key", Json::U64(*key)),
            ("value", Json::U64(*value)),
        ]));
        out.push('\n');
    }
    for (metric, key, stat) in &snapshot.gauges {
        out.push_str(&line(vec![
            ("t", Json::Str("gauge".into())),
            ("name", Json::Str(metric.name().into())),
            ("key", Json::U64(*key)),
            ("last", Json::U64(stat.last)),
            ("max", Json::U64(stat.max)),
            ("samples", Json::U64(stat.samples)),
        ]));
        out.push('\n');
    }
    for (metric, key, stat) in &snapshot.histograms {
        // Trailing empty buckets carry no information; trim them.
        let filled = stat
            .buckets
            .iter()
            .rposition(|&b| b != 0)
            .map_or(0, |i| i + 1);
        out.push_str(&line(vec![
            ("t", Json::Str("hist".into())),
            ("name", Json::Str(metric.name().into())),
            ("key", Json::U64(*key)),
            ("count", Json::U64(stat.count)),
            ("sum", Json::U64(stat.sum)),
            ("min", Json::U64(stat.min)),
            ("max", Json::U64(stat.max)),
            (
                "buckets",
                Json::Arr(
                    stat.buckets[..filled]
                        .iter()
                        .map(|&b| Json::U64(b))
                        .collect(),
                ),
            ),
        ]));
        out.push('\n');
    }
    for span in &snapshot.spans {
        out.push_str(&line(vec![
            ("t", Json::Str("span".into())),
            ("name", Json::Str(span.span.name().into())),
            ("key", Json::U64(span.key)),
            ("length", Json::U64(span.length)),
        ]));
        out.push('\n');
    }
    for event in &snapshot.events {
        out.push_str(&line(vec![
            ("t", Json::Str("event".into())),
            ("name", Json::Str(event.name.into())),
            (
                "fields",
                Json::Obj(
                    event
                        .fields
                        .iter()
                        .map(|(k, v)| ((*k).to_string(), Json::U64(*v)))
                        .collect(),
                ),
            ),
        ]));
        out.push('\n');
    }
    if snapshot.dropped_spans > 0 || snapshot.dropped_events > 0 {
        out.push_str(&line(vec![
            ("t", Json::Str("event".into())),
            ("name", Json::Str("records_dropped".into())),
            (
                "fields",
                Json::Obj(vec![
                    ("spans".to_string(), Json::U64(snapshot.dropped_spans)),
                    ("events".to_string(), Json::U64(snapshot.dropped_events)),
                ]),
            ),
        ]));
        out.push('\n');
    }
    out
}

/// Builds one `bench` line — the `BENCH_*.json`-compatible shape the
/// `repro --json` mode emits per experiment metric.
#[must_use]
pub fn bench_line(experiment: &str, family: &str, name: &str, value: f64, unit: &str) -> String {
    line(vec![
        ("t", Json::Str("bench".into())),
        ("experiment", Json::Str(experiment.into())),
        ("family", Json::Str(family.into())),
        ("name", Json::Str(name.into())),
        ("value", Json::F64(value)),
        ("unit", Json::Str(unit.into())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{MemProbe, Metric, Probe, Span};
    use crate::schema::validate_jsonl;

    #[test]
    fn snapshot_jsonl_is_schema_valid() {
        let probe = MemProbe::new();
        probe.counter(Metric::RegRead, 0, 3);
        probe.counter(Metric::RegWrite, 1, 2);
        probe.gauge(Metric::ExploreFrontier, 0, 8);
        probe.histogram(Metric::BackoffSpins, 0, 17);
        probe.span_open(Span::SoloRun, 1);
        probe.span_close(Span::SoloRun, 1, 5);
        probe.event("explore_done", &[("states", 9)]);
        let jsonl = snapshot_to_jsonl(&probe.into_snapshot());
        let validated = validate_jsonl(&jsonl).unwrap();
        assert_eq!(validated, 6);
    }

    #[test]
    fn bench_line_is_schema_valid() {
        let l = bench_line("E1", "mutex", "states_visited", 1234.0, "states");
        crate::schema::validate_line(&l).unwrap();
        assert!(l.contains("\"experiment\":\"E1\""));
    }

    #[test]
    fn empty_snapshot_renders_nothing() {
        let jsonl = snapshot_to_jsonl(&MemProbe::new().into_snapshot());
        assert!(jsonl.is_empty());
    }
}
