//! Structured lint verdicts with replayable witnesses.

use std::fmt;

/// The lints this crate ships, numbered as in the analyzer documentation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LintId {
    /// L1: every `Read(j)` / `Write(j, _)` has `j < register_count()`.
    IndexBounds,
    /// L2: the machine honors the [`Machine`](anonreg_model::Machine)
    /// protocol — deterministic replay, no panic on protocol-correct
    /// input, no further steps after `Halt`.
    Protocol,
    /// L3: two processes' CFGs are isomorphic under identifier
    /// substitution — the paper's symmetry restriction (§2).
    Symmetry,
    /// L4: a solo run returns every register to its initial value — the
    /// Figure 1 exit-code obligation that makes runs composable.
    ExitRestoresMemory,
    /// L5: a solo run halts within a stated operation bound —
    /// obstruction-free solo termination.
    SoloTermination,
    /// L6: every written value fits the deployment's packed register
    /// width (e.g. `Pack64`'s 32-bit fields).
    PackWidth,
}

impl LintId {
    /// The short code used in reports, `L1`..`L6`.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            LintId::IndexBounds => "L1",
            LintId::Protocol => "L2",
            LintId::Symmetry => "L3",
            LintId::ExitRestoresMemory => "L4",
            LintId::SoloTermination => "L5",
            LintId::PackWidth => "L6",
        }
    }

    /// A one-line description of the property checked.
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            LintId::IndexBounds => "register indices stay within register_count()",
            LintId::Protocol => "resume() is a deterministic, panic-free coroutine",
            LintId::Symmetry => "process CFGs are isomorphic under pid substitution",
            LintId::ExitRestoresMemory => "solo runs restore registers to their initial values",
            LintId::SoloTermination => "solo runs halt within the operation bound",
            LintId::PackWidth => "written values fit the packed register width",
        }
    }
}

impl fmt::Display for LintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.code(), self.summary())
    }
}

/// One violation found by a lint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Which lint fired.
    pub lint: LintId,
    /// What went wrong, in one sentence.
    pub message: String,
    /// The replayable path that exhibits the violation: the rendered
    /// `resume(input) => step` transitions from the initial state, in
    /// order. Feeding exactly these inputs to a fresh machine reproduces
    /// the failure.
    pub witness: Vec<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}: {}", self.lint.code(), self.message)?;
        if self.witness.is_empty() {
            writeln!(f, "  (violated at the initial state)")?;
        } else {
            writeln!(f, "  witness ({} steps):", self.witness.len())?;
            for (i, step) in self.witness.iter().enumerate() {
                writeln!(f, "    {i:>3}. {step}")?;
            }
        }
        Ok(())
    }
}

/// The outcome of one lint on one subject.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The property holds over the analyzed domain.
    Pass,
    /// Violations were found.
    Fail(Vec<Finding>),
    /// The lint could not run (state-space blowup, missing
    /// configuration); the string says why. Skips are not passes: the
    /// aggregate report surfaces them.
    Skipped(String),
}

impl Verdict {
    /// `true` only for [`Verdict::Pass`].
    #[must_use]
    pub fn passed(&self) -> bool {
        matches!(self, Verdict::Pass)
    }

    /// `true` for [`Verdict::Fail`].
    #[must_use]
    pub fn failed(&self) -> bool {
        matches!(self, Verdict::Fail(_))
    }
}

/// All lint outcomes for one analysis subject (one algorithm
/// configuration).
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// Human-readable name of what was analyzed.
    pub subject: String,
    /// `(lint, verdict)` pairs in the order the lints ran.
    pub results: Vec<(LintId, Verdict)>,
}

impl LintReport {
    /// A new empty report for `subject`.
    #[must_use]
    pub fn new(subject: impl Into<String>) -> Self {
        LintReport {
            subject: subject.into(),
            results: Vec::new(),
        }
    }

    /// Records one lint outcome.
    pub fn record(&mut self, lint: LintId, verdict: Verdict) {
        self.results.push((lint, verdict));
    }

    /// `true` when no lint failed (skips do not fail the report, but see
    /// [`LintReport::skipped`]).
    #[must_use]
    pub fn passed(&self) -> bool {
        !self.results.iter().any(|(_, v)| v.failed())
    }

    /// All findings across all failed lints.
    #[must_use]
    pub fn findings(&self) -> Vec<&Finding> {
        self.results
            .iter()
            .filter_map(|(_, v)| match v {
                Verdict::Fail(f) => Some(f.iter()),
                _ => None,
            })
            .flatten()
            .collect()
    }

    /// The lints that were skipped, with reasons.
    #[must_use]
    pub fn skipped(&self) -> Vec<(LintId, &str)> {
        self.results
            .iter()
            .filter_map(|(l, v)| match v {
                Verdict::Skipped(why) => Some((*l, why.as_str())),
                _ => None,
            })
            .collect()
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:", self.subject)?;
        for (lint, verdict) in &self.results {
            match verdict {
                Verdict::Pass => writeln!(f, "  {:<4} pass  {}", lint.code(), lint.summary())?,
                Verdict::Skipped(why) => {
                    writeln!(f, "  {:<4} skip  {}", lint.code(), why)?;
                }
                Verdict::Fail(findings) => {
                    writeln!(f, "  {:<4} FAIL", lint.code())?;
                    for finding in findings {
                        for line in finding.to_string().lines() {
                            writeln!(f, "    {line}")?;
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_and_summaries_are_distinct() {
        let all = [
            LintId::IndexBounds,
            LintId::Protocol,
            LintId::Symmetry,
            LintId::ExitRestoresMemory,
            LintId::SoloTermination,
            LintId::PackWidth,
        ];
        let codes: std::collections::HashSet<_> = all.iter().map(|l| l.code()).collect();
        assert_eq!(codes.len(), all.len());
        for lint in all {
            assert!(lint.to_string().starts_with(lint.code()));
        }
    }

    #[test]
    fn report_aggregates_verdicts() {
        let mut report = LintReport::new("demo");
        report.record(LintId::IndexBounds, Verdict::Pass);
        assert!(report.passed());
        report.record(
            LintId::Symmetry,
            Verdict::Skipped("asymmetric by design".into()),
        );
        assert!(report.passed());
        assert_eq!(report.skipped().len(), 1);
        report.record(
            LintId::Protocol,
            Verdict::Fail(vec![Finding {
                lint: LintId::Protocol,
                message: "stepped after Halt".into(),
                witness: vec!["resume(None) => Halt".into()],
            }]),
        );
        assert!(!report.passed());
        assert_eq!(report.findings().len(), 1);
        let rendered = report.to_string();
        assert!(rendered.contains("FAIL"));
        assert!(rendered.contains("witness"));
    }

    #[test]
    fn empty_witness_renders_initial_state_note() {
        let finding = Finding {
            lint: LintId::IndexBounds,
            message: "first step writes out of range".into(),
            witness: vec![],
        };
        assert!(finding.to_string().contains("initial state"));
    }
}
