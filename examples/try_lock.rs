//! Try-lock over anonymous registers: bounded entry attempts that abort
//! through the algorithm's own giving-up path.
//!
//! ```text
//! cargo run --release --example try_lock
//! ```
//!
//! `try_enter(max_ops)` drives the Figure 1 machine for at most `max_ops`
//! atomic operations; on timeout it *aborts* — erasing its claims exactly
//! the way a losing process does in the paper's line 5, so the holder is
//! never blocked by a departed contender. The abortable configurations are
//! exhaustively model-checked in the test suite; this example shows the
//! API under real contention.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use anonreg_model::Pid;
use anonreg_runtime::{AnonymousMutex, RuntimeError};

fn main() -> Result<(), RuntimeError> {
    let lock = AnonymousMutex::new(5)?;
    let mut holder = lock.handle(Pid::new(1).unwrap())?;
    let mut poller = lock.handle(Pid::new(2).unwrap())?;

    let attempts = AtomicU64::new(0);
    let timeouts = AtomicU64::new(0);
    let successes = AtomicU64::new(0);

    std::thread::scope(|s| {
        // The holder grabs the lock and sits on it for a while, twice.
        s.spawn(|| {
            for _ in 0..2 {
                let guard = holder.enter();
                std::thread::sleep(Duration::from_millis(30));
                drop(guard);
                std::thread::sleep(Duration::from_millis(5));
            }
        });

        // The poller uses bounded attempts and keeps count.
        s.spawn(|| {
            loop {
                attempts.fetch_add(1, Ordering::Relaxed);
                match poller.try_enter(2_000) {
                    Some(guard) => {
                        successes.fetch_add(1, Ordering::Relaxed);
                        drop(guard);
                        if successes.load(Ordering::Relaxed) >= 3 {
                            break;
                        }
                    }
                    None => {
                        timeouts.fetch_add(1, Ordering::Relaxed);
                        // Do something useful instead of blocking…
                        std::hint::spin_loop();
                    }
                }
            }
        });
    });

    println!(
        "poller: {} attempts, {} timed out (aborted cleanly), {} succeeded",
        attempts.load(Ordering::Relaxed),
        timeouts.load(Ordering::Relaxed),
        successes.load(Ordering::Relaxed),
    );
    assert!(successes.load(Ordering::Relaxed) >= 3);
    println!("no thread was ever wedged by an abandoned attempt ✓");
    Ok(())
}
