//! The versioned JSONL wire schema and its validator.
//!
//! Every line an anonreg tool emits is a single JSON object carrying the
//! schema version in `"v"` and a line type in `"t"`. Schema v1 defines:
//!
//! | `t`          | required fields                                          |
//! |--------------|----------------------------------------------------------|
//! | `meta`       | `tool` (str); free extra fields                          |
//! | `counter`    | `name` (str), `key` (u64), `value` (u64)                 |
//! | `gauge`      | `name` (str), `key`, `last`, `max`, `samples` (u64)      |
//! | `hist`       | `name` (str), `key`, `count`, `sum`, `min`, `max` (u64), `buckets` (arr of u64) |
//! | `span`       | `name` (str), `key` (u64), `length` (u64)                |
//! | `event`      | `name` (str), `fields` (obj of u64)                      |
//! | `bench`      | `experiment` (str), `family` (str), `name` (str), `value` (num), `unit` (str) |
//! | `trace_meta` | `procs` (u64), `registers` (u64), `ops` (u64)            |
//! | `op`         | `proc` (u64), `pid` (u64), `kind` (str: `read`/`write`/`event`/`halt`) |
//!
//! Schema v2 adds the *live stream* record types. Every v2 line carries
//! a monotonic sequence number `seq` (u64), the run id `run` (str), and
//! `elapsed_ms` (u64) since the stream opened:
//!
//! | `t`        | additional required fields                                 |
//! |------------|------------------------------------------------------------|
//! | `delta`    | `counters` (arr of `{name,key,delta}`), `gauges`/`hists` (arr of full v1-shaped stats, overwrite semantics), `spans`/`events` (arr, new records only) |
//! | `progress` | `states`, `frontier`, `depth`, `eta_ms` (u64), `states_per_sec`, `dedup_rate` (num) |
//! | `profile`  | `worker` (u64), `frames` (arr of `{stack` (str)`, self_ns` (u64)`}`) |
//! | `snapshot` | none — end-of-stream marker; plain v1 snapshot lines follow |
//!
//! Counters stream as *deltas* (replaying every `delta` record in order
//! reconstructs the final totals exactly); gauge and histogram stats
//! are full overwrites; spans and events appear once, in the delta that
//! first observed them. A v1 consumer must skip any line whose `v` is
//! `2` without error and read the trailing v1 snapshot —
//! [`validate_jsonl_v1`] models exactly that behavior.
//!
//! [`validate_line`] and [`validate_jsonl`] enforce exactly these
//! tables (both versions); the golden-file tests in `crates/obs/tests`
//! pin concrete encodings so the format cannot drift without a
//! deliberate version bump.

use crate::json::{Json, JsonError};

/// The current wire schema version. Bump when any line shape changes
/// incompatibly.
pub const SCHEMA_VERSION: u64 = 1;

/// The live-stream schema version: `delta`, `progress`, `profile` and
/// `snapshot` records emitted while a run is in flight. Streams end
/// with a plain v1 snapshot so v1 consumers stay compatible.
pub const STREAM_SCHEMA_VERSION: u64 = 2;

/// A schema violation found by [`validate_line`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchemaError {
    /// 1-based line number within the validated document (1 for a single
    /// line).
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for SchemaError {}

fn err(line: usize, reason: impl Into<String>) -> SchemaError {
    SchemaError {
        line,
        reason: reason.into(),
    }
}

fn parse_err(line: usize, e: &JsonError) -> SchemaError {
    err(
        line,
        format!("invalid JSON at byte {}: {}", e.pos, e.reason),
    )
}

fn require_u64(obj: &Json, field: &str, line: usize) -> Result<u64, SchemaError> {
    obj.get(field)
        .and_then(Json::as_u64)
        .ok_or_else(|| err(line, format!("missing or non-u64 field `{field}`")))
}

fn require_str<'a>(obj: &'a Json, field: &str, line: usize) -> Result<&'a str, SchemaError> {
    obj.get(field)
        .and_then(Json::as_str)
        .ok_or_else(|| err(line, format!("missing or non-string field `{field}`")))
}

fn require_num(obj: &Json, field: &str, line: usize) -> Result<f64, SchemaError> {
    obj.get(field)
        .and_then(Json::as_f64)
        .ok_or_else(|| err(line, format!("missing or non-numeric field `{field}`")))
}

/// Validates one already-parsed JSONL object against the schema (v1 or
/// v2 — the version is read from the line's own `v` field).
///
/// # Errors
///
/// Returns the first violation found, tagged with `line` (1-based).
pub fn validate_value(value: &Json, line: usize) -> Result<(), SchemaError> {
    if !matches!(value, Json::Obj(_)) {
        return Err(err(line, "line is not a JSON object"));
    }
    let v = require_u64(value, "v", line)?;
    match v {
        SCHEMA_VERSION => validate_v1(value, line),
        STREAM_SCHEMA_VERSION => validate_v2(value, line),
        other => Err(err(
            line,
            format!(
                "unsupported schema version {other} (expected {SCHEMA_VERSION} or {STREAM_SCHEMA_VERSION})"
            ),
        )),
    }
}

fn validate_v1(value: &Json, line: usize) -> Result<(), SchemaError> {
    let t = require_str(value, "t", line)?;
    match t {
        "meta" => {
            require_str(value, "tool", line)?;
        }
        "counter" => {
            require_str(value, "name", line)?;
            require_u64(value, "key", line)?;
            require_u64(value, "value", line)?;
        }
        "gauge" => {
            require_str(value, "name", line)?;
            for field in ["key", "last", "max", "samples"] {
                require_u64(value, field, line)?;
            }
        }
        "hist" => {
            require_str(value, "name", line)?;
            for field in ["key", "count", "sum", "min", "max"] {
                require_u64(value, field, line)?;
            }
            let buckets = value
                .get("buckets")
                .and_then(Json::as_arr)
                .ok_or_else(|| err(line, "missing or non-array field `buckets`"))?;
            if buckets.iter().any(|b| b.as_u64().is_none()) {
                return Err(err(line, "non-u64 entry in `buckets`"));
            }
        }
        "span" => {
            require_str(value, "name", line)?;
            require_u64(value, "key", line)?;
            require_u64(value, "length", line)?;
        }
        "event" => {
            require_str(value, "name", line)?;
            let fields = value
                .get("fields")
                .ok_or_else(|| err(line, "missing field `fields`"))?;
            match fields {
                Json::Obj(entries) => {
                    if entries.iter().any(|(_, v)| v.as_u64().is_none()) {
                        return Err(err(line, "non-u64 value in `fields`"));
                    }
                }
                _ => return Err(err(line, "field `fields` is not an object")),
            }
        }
        "bench" => {
            require_str(value, "experiment", line)?;
            require_str(value, "family", line)?;
            require_str(value, "name", line)?;
            require_num(value, "value", line)?;
            require_str(value, "unit", line)?;
        }
        "trace_meta" => {
            for field in ["procs", "registers", "ops"] {
                require_u64(value, field, line)?;
            }
        }
        "op" => {
            require_u64(value, "proc", line)?;
            require_u64(value, "pid", line)?;
            let kind = require_str(value, "kind", line)?;
            match kind {
                "read" | "write" => {
                    require_u64(value, "local", line)?;
                    require_u64(value, "physical", line)?;
                    if value.get("value").is_none() {
                        return Err(err(line, "missing field `value`"));
                    }
                }
                "event" => {
                    if value.get("payload").is_none() {
                        return Err(err(line, "missing field `payload`"));
                    }
                }
                "halt" => {}
                other => return Err(err(line, format!("unknown op kind `{other}`"))),
            }
        }
        other => return Err(err(line, format!("unknown line type `{other}`"))),
    }
    Ok(())
}

/// A required array field whose entries are validated one by one.
fn require_arr<'a>(obj: &'a Json, field: &str, line: usize) -> Result<&'a [Json], SchemaError> {
    obj.get(field)
        .and_then(Json::as_arr)
        .ok_or_else(|| err(line, format!("missing or non-array field `{field}`")))
}

fn validate_v2(value: &Json, line: usize) -> Result<(), SchemaError> {
    // Every stream record carries the envelope: a monotonic sequence
    // number, the run id, and elapsed wall-clock.
    require_u64(value, "seq", line)?;
    require_str(value, "run", line)?;
    require_u64(value, "elapsed_ms", line)?;
    let t = require_str(value, "t", line)?;
    match t {
        "delta" => {
            for entry in require_arr(value, "counters", line)? {
                require_str(entry, "name", line)?;
                require_u64(entry, "key", line)?;
                require_u64(entry, "delta", line)?;
            }
            for entry in require_arr(value, "gauges", line)? {
                require_str(entry, "name", line)?;
                for field in ["key", "last", "max", "samples"] {
                    require_u64(entry, field, line)?;
                }
            }
            for entry in require_arr(value, "hists", line)? {
                require_str(entry, "name", line)?;
                for field in ["key", "count", "sum", "min", "max"] {
                    require_u64(entry, field, line)?;
                }
                let buckets = require_arr(entry, "buckets", line)?;
                if buckets.iter().any(|b| b.as_u64().is_none()) {
                    return Err(err(line, "non-u64 entry in `buckets`"));
                }
            }
            for entry in require_arr(value, "spans", line)? {
                require_str(entry, "name", line)?;
                require_u64(entry, "key", line)?;
                require_u64(entry, "length", line)?;
            }
            for entry in require_arr(value, "events", line)? {
                require_str(entry, "name", line)?;
                match entry.get("fields") {
                    Some(Json::Obj(fields)) => {
                        if fields.iter().any(|(_, v)| v.as_u64().is_none()) {
                            return Err(err(line, "non-u64 value in `fields`"));
                        }
                    }
                    _ => return Err(err(line, "missing or non-object field `fields`")),
                }
            }
        }
        "progress" => {
            for field in ["states", "frontier", "depth", "eta_ms"] {
                require_u64(value, field, line)?;
            }
            require_num(value, "states_per_sec", line)?;
            require_num(value, "dedup_rate", line)?;
        }
        "profile" => {
            require_u64(value, "worker", line)?;
            for entry in require_arr(value, "frames", line)? {
                require_str(entry, "stack", line)?;
                require_u64(entry, "self_ns", line)?;
            }
        }
        "snapshot" => {}
        other => return Err(err(line, format!("unknown v2 line type `{other}`"))),
    }
    Ok(())
}

/// Parses and validates one JSONL line against schema v1.
///
/// # Errors
///
/// Returns a [`SchemaError`] (with `line == 1`) if the line is not valid
/// JSON or violates the schema.
pub fn validate_line(line: &str) -> Result<(), SchemaError> {
    let value = Json::parse(line).map_err(|e| parse_err(1, &e))?;
    validate_value(&value, 1)
}

/// Validates a whole JSONL document (one object per non-empty line).
///
/// Returns the number of validated lines.
///
/// # Errors
///
/// Returns the first violation, tagged with its 1-based line number.
pub fn validate_jsonl(text: &str) -> Result<usize, SchemaError> {
    let mut validated = 0;
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let value = Json::parse(raw).map_err(|e| parse_err(line, &e))?;
        validate_value(&value, line)?;
        validated += 1;
    }
    Ok(validated)
}

/// Validates a JSONL document the way a *v1-only consumer* reads it:
/// lines whose `v` field is anything other than [`SCHEMA_VERSION`] are
/// skipped without error (they must still be well-formed JSON objects
/// carrying a u64 `v`), and every v1 line must satisfy the v1 table.
///
/// Returns `(validated_v1_lines, skipped_other_version_lines)`. This is
/// the compatibility contract for stream files: old tooling reads the
/// trailing v1 snapshot and ignores the live-stream records.
///
/// # Errors
///
/// Returns the first violation among v1 lines (or any malformed line),
/// tagged with its 1-based line number.
pub fn validate_jsonl_v1(text: &str) -> Result<(usize, usize), SchemaError> {
    let mut validated = 0;
    let mut skipped = 0;
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let value = Json::parse(raw).map_err(|e| parse_err(line, &e))?;
        if !matches!(value, Json::Obj(_)) {
            return Err(err(line, "line is not a JSON object"));
        }
        if require_u64(&value, "v", line)? != SCHEMA_VERSION {
            skipped += 1;
            continue;
        }
        validate_v1(&value, line)?;
        validated += 1;
    }
    Ok((validated, skipped))
}

/// Builds the `meta` header line every emitted document should start
/// with. `extra` fields ride along verbatim.
#[must_use]
pub fn meta_line(tool: &str, extra: &[(&str, Json)]) -> Json {
    let mut fields = vec![
        ("v".to_string(), Json::U64(SCHEMA_VERSION)),
        ("t".to_string(), Json::Str("meta".to_string())),
        ("tool".to_string(), Json::Str(tool.to_string())),
    ];
    for (k, v) in extra {
        fields.push(((*k).to_string(), v.clone()));
    }
    Json::Obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_every_line_type() {
        let lines = [
            r#"{"v":1,"t":"meta","tool":"repro","quick":true}"#,
            r#"{"v":1,"t":"counter","name":"reg_read","key":0,"value":42}"#,
            r#"{"v":1,"t":"gauge","name":"explore_frontier","key":0,"last":3,"max":17,"samples":9}"#,
            r#"{"v":1,"t":"hist","name":"backoff_spins","key":0,"count":2,"sum":10,"min":3,"max":7,"buckets":[0,0,1,1]}"#,
            r#"{"v":1,"t":"span","name":"solo_run","key":2,"length":14}"#,
            r#"{"v":1,"t":"event","name":"explore_done","fields":{"states":5}}"#,
            r#"{"v":1,"t":"bench","experiment":"E1","family":"mutex","name":"states","value":1234,"unit":"states"}"#,
            r#"{"v":1,"t":"trace_meta","procs":2,"registers":3,"ops":10}"#,
            r#"{"v":1,"t":"op","proc":0,"pid":7,"kind":"read","local":1,"physical":2,"value":0}"#,
            r#"{"v":1,"t":"op","proc":0,"pid":7,"kind":"write","local":1,"physical":2,"value":9}"#,
            r#"{"v":1,"t":"op","proc":1,"pid":9,"kind":"event","payload":"Enter"}"#,
            r#"{"v":1,"t":"op","proc":1,"pid":9,"kind":"halt"}"#,
        ];
        for line in lines {
            validate_line(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        let doc = lines.join("\n");
        assert_eq!(validate_jsonl(&doc).unwrap(), lines.len());
    }

    #[test]
    fn rejects_bad_lines() {
        let cases = [
            ("not json at all", "invalid JSON"),
            (r#"[1,2,3]"#, "not a JSON object"),
            (r#"{"t":"counter","name":"x","key":0,"value":1}"#, "`v`"),
            (
                r#"{"v":3,"t":"meta","tool":"x"}"#,
                "unsupported schema version",
            ),
            (
                r#"{"v":2,"t":"meta","seq":0,"run":"r","elapsed_ms":0,"tool":"x"}"#,
                "unknown v2 line type",
            ),
            (
                r#"{"v":2,"t":"delta","run":"r","elapsed_ms":0,"counters":[],"gauges":[],"hists":[],"spans":[],"events":[]}"#,
                "`seq`",
            ),
            (
                r#"{"v":2,"t":"delta","seq":1,"run":"r","elapsed_ms":5,"counters":[{"name":"x","key":0}],"gauges":[],"hists":[],"spans":[],"events":[]}"#,
                "`delta`",
            ),
            (
                r#"{"v":2,"t":"progress","seq":1,"run":"r","elapsed_ms":5,"states":10,"frontier":2,"depth":3,"eta_ms":0,"states_per_sec":5.0}"#,
                "`dedup_rate`",
            ),
            (
                r#"{"v":2,"t":"profile","seq":1,"run":"r","elapsed_ms":5,"worker":0,"frames":[{"stack":"w0;step"}]}"#,
                "`self_ns`",
            ),
            (r#"{"v":1,"t":"mystery"}"#, "unknown line type"),
            (r#"{"v":1,"t":"counter","name":"x","key":0}"#, "`value`"),
            (
                r#"{"v":1,"t":"hist","name":"x","key":0,"count":1,"sum":1,"min":1,"max":1,"buckets":[1,"no"]}"#,
                "non-u64 entry",
            ),
            (
                r#"{"v":1,"t":"op","proc":0,"pid":1,"kind":"jump"}"#,
                "unknown op kind",
            ),
            (
                r#"{"v":1,"t":"bench","experiment":"E1","family":"mutex","name":"x","value":"high","unit":"u"}"#,
                "non-numeric field `value`",
            ),
        ];
        for (line, needle) in cases {
            let e = validate_line(line).unwrap_err();
            assert!(
                e.reason.contains(needle),
                "{line}: expected `{needle}` in `{}`",
                e.reason
            );
        }
    }

    #[test]
    fn accepts_every_v2_line_type() {
        let lines = [
            r#"{"v":2,"t":"delta","seq":0,"run":"r1","elapsed_ms":50,"counters":[{"name":"explore_states","key":0,"delta":120}],"gauges":[{"name":"explore_frontier","key":0,"last":3,"max":17,"samples":9}],"hists":[{"name":"backoff_spins","key":0,"count":2,"sum":10,"min":3,"max":7,"buckets":[0,1,1]}],"spans":[{"name":"explore","key":0,"length":5}],"events":[{"name":"explore_done","fields":{"states":5}}]}"#,
            r#"{"v":2,"t":"delta","seq":1,"run":"r1","elapsed_ms":100,"counters":[],"gauges":[],"hists":[],"spans":[],"events":[]}"#,
            r#"{"v":2,"t":"progress","seq":2,"run":"r1","elapsed_ms":100,"states":500,"frontier":40,"depth":9,"eta_ms":1200,"states_per_sec":5000.0,"dedup_rate":0.35}"#,
            r#"{"v":2,"t":"profile","seq":3,"run":"r1","elapsed_ms":150,"worker":1,"frames":[{"stack":"worker1;step","self_ns":12345}]}"#,
            r#"{"v":2,"t":"snapshot","seq":4,"run":"r1","elapsed_ms":150}"#,
        ];
        for line in lines {
            validate_line(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        assert_eq!(validate_jsonl(&lines.join("\n")).unwrap(), lines.len());
    }

    #[test]
    fn v1_consumers_skip_v2_lines() {
        let doc = concat!(
            "{\"v\":1,\"t\":\"meta\",\"tool\":\"check\"}\n",
            "{\"v\":2,\"t\":\"delta\",\"seq\":0,\"run\":\"r\",\"elapsed_ms\":1,",
            "\"counters\":[],\"gauges\":[],\"hists\":[],\"spans\":[],\"events\":[]}\n",
            "{\"v\":2,\"t\":\"snapshot\",\"seq\":1,\"run\":\"r\",\"elapsed_ms\":2}\n",
            "{\"v\":1,\"t\":\"counter\",\"name\":\"reg_read\",\"key\":0,\"value\":42}\n",
        );
        assert_eq!(validate_jsonl_v1(doc).unwrap(), (2, 2));
        // Garbage inside a v2 line does not bother a v1 consumer either:
        // only the version tag is inspected before skipping.
        let with_junk = "{\"v\":2,\"t\":\"delta\",\"seq\":\"not-a-number\"}\n";
        assert_eq!(validate_jsonl_v1(with_junk).unwrap(), (0, 1));
        // But a broken v1 line is still an error.
        let bad_v1 = "{\"v\":1,\"t\":\"mystery\"}\n";
        assert!(validate_jsonl_v1(bad_v1).is_err());
    }

    #[test]
    fn validate_jsonl_reports_line_numbers() {
        let doc = "{\"v\":1,\"t\":\"meta\",\"tool\":\"x\"}\n\n{\"v\":1,\"t\":\"nope\"}\n";
        let e = validate_jsonl(doc).unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn meta_line_is_valid() {
        let line = meta_line("check", &[("mode", Json::Str("obs".into()))]);
        validate_value(&line, 1).unwrap();
        assert_eq!(line.get("mode").and_then(Json::as_str), Some("obs"));
    }
}
