//! Probe-overhead timing check: the `NoopProbe` instrumentation hooks in
//! `anonreg_runtime::Driver` must compile away.
//!
//! Three variants drive the same solo Figure 1 mutex over the same atomic
//! memory:
//!
//! * `handrolled` — a bare `match machine.resume(..)` loop over the view,
//!   no `Driver` at all (the floor);
//! * `driver_noop` — `Driver::new` with the default [`NoopProbe`];
//! * `driver_mem` — the same driver with a live [`MemProbe`], showing what
//!   enabling instrumentation actually costs.
//!
//! Besides reporting the three medians, the harness *guards* the zero-cost
//! claim: the no-op driver must stay within a generous constant factor of
//! the hand-rolled loop (best-of-5 to ride out scheduler noise), and the
//! process aborts if it does not.

use std::time::Instant;

use anonreg_bench::timing::{criterion_group, Criterion};

use anonreg::mutex::AnonMutex;
use anonreg_model::{Machine, Pid, Step, View};
use anonreg_obs::{MemProbe, Metric};
use anonreg_runtime::{AnonymousMemory, Driver, PackedAtomicRegister};

const M: usize = 3;
const CYCLES: u64 = 2_000;

fn machine() -> AnonMutex {
    AnonMutex::new(Pid::new(1).unwrap(), M)
        .unwrap()
        .with_cycles(CYCLES)
}

fn memory() -> AnonymousMemory<PackedAtomicRegister<u64>> {
    AnonymousMemory::new(M)
}

/// The floor: no driver, no probe, just the machine over the view.
fn handrolled() -> u64 {
    let mem = memory();
    let view = mem.view(View::identity(M));
    let mut machine = machine();
    let mut pending = None;
    let mut events = 0u64;
    loop {
        match machine.resume(pending.take()) {
            Step::Read(local) => pending = Some(view.read(local)),
            Step::Write(local, value) => view.write(local, value),
            Step::Event(_) => events += 1,
            Step::Halt => return events,
        }
    }
}

fn driver_noop() -> u64 {
    let mem = memory();
    let mut driver = Driver::new(machine(), mem.view(View::identity(M)));
    driver.run_to_halt().len() as u64
}

fn driver_mem(probe: &MemProbe) -> u64 {
    let mem = memory();
    let mut driver = Driver::new(machine(), mem.view(View::identity(M))).with_probe(probe);
    driver.run_to_halt().len() as u64
}

fn bench_probe_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_probe_overhead");
    group.sample_size(30);
    group.bench_function("handrolled", |b| b.iter(handrolled));
    group.bench_function("driver_noop", |b| b.iter(driver_noop));
    let probe = MemProbe::new();
    group.bench_function("driver_mem", |b| b.iter(|| driver_mem(&probe)));
    group.finish();
}

fn median_nanos(f: impl Fn() -> u64, samples: usize) -> u128 {
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            let events = f();
            assert_eq!(events, 2 * CYCLES);
            start.elapsed().as_nanos().max(1)
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Aborts unless the no-op driver stays within `MAX_RATIO`× of the
/// hand-rolled loop on at least one of five attempts.
fn guard_noop_is_free() {
    // Generous: the claim is "compiles away", but shared CI boxes jitter.
    const MAX_RATIO: f64 = 2.0;
    const ATTEMPTS: usize = 5;
    let mut best = f64::INFINITY;
    for _ in 0..ATTEMPTS {
        let floor = median_nanos(handrolled, 15);
        let noop = median_nanos(driver_noop, 15);
        let ratio = noop as f64 / floor as f64;
        best = best.min(ratio);
        if best <= MAX_RATIO {
            break;
        }
    }
    println!("\nguard: driver_noop / handrolled = {best:.2}x (limit {MAX_RATIO}x)");
    assert!(
        best <= MAX_RATIO,
        "NoopProbe instrumentation is not free: {best:.2}x > {MAX_RATIO}x"
    );
    // Sanity-check the enabled path actually records: same run, live probe.
    let probe = MemProbe::new();
    assert_eq!(driver_mem(&probe), 2 * CYCLES);
    // One solo cycle costs 4m ops: m claim reads + m claim writes + m exit
    // view reads + m exit restore writes.
    let snap = probe.snapshot();
    let m = u64::try_from(M).unwrap();
    assert_eq!(snap.counter_total(Metric::RegRead), 2 * CYCLES * m);
    assert_eq!(snap.counter_total(Metric::RegWrite), 2 * CYCLES * m);
}

criterion_group!(benches, bench_probe_overhead);

fn main() {
    benches();
    guard_noop_is_free();
}
