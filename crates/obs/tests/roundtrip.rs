//! JSONL round-trip property test and the golden-file schema pin.
//!
//! The property test drives `Trace` → JSONL → `Trace` over pseudo-random
//! traces; the golden file pins the exact byte encoding of schema v1 so
//! the format cannot drift without someone editing `golden_v1.jsonl`
//! deliberately (which is the intended signal for a schema bump).

use anonreg_model::rng::Rng64;
use anonreg_model::trace::{Trace, TraceOp};
use anonreg_model::Pid;
use anonreg_obs::schema::{validate_jsonl, SCHEMA_VERSION};
use anonreg_obs::{trace_from_jsonl, trace_to_jsonl};

fn random_trace(rng: &mut Rng64, procs: usize, registers: usize, ops: usize) -> Trace<u64, u32> {
    let mut trace = Trace::new();
    for _ in 0..ops {
        let proc = rng.gen_index(procs);
        let pid = Pid::new(proc as u64 * 17 + 3).unwrap();
        let op = match rng.gen_index(10) {
            0 => TraceOp::Event(rng.next_u64() as u32),
            1 => TraceOp::Halt,
            k => {
                let local = rng.gen_index(registers);
                let physical = rng.gen_index(registers);
                let value = rng.next_u64();
                if k % 2 == 0 {
                    TraceOp::Read {
                        local,
                        physical,
                        value,
                    }
                } else {
                    TraceOp::Write {
                        local,
                        physical,
                        value,
                    }
                }
            }
        };
        trace.record(proc, pid, op);
    }
    trace
}

#[test]
fn random_traces_round_trip_losslessly() {
    let mut rng = Rng64::seed_from_u64(0x0b5e_41ab);
    for case in 0..64 {
        let procs = 1 + case % 5;
        let registers = 1 + case % 7;
        let ops = case * 3;
        let trace = random_trace(&mut rng, procs, registers, ops);
        let jsonl = trace_to_jsonl(&trace);
        // Every emitted line must also pass the public schema validator.
        assert_eq!(validate_jsonl(&jsonl).unwrap(), trace.len() + 1);
        let back: Trace<u64, u32> = trace_from_jsonl(&jsonl).unwrap();
        assert_eq!(back, trace, "case {case} did not round-trip");
    }
}

#[test]
fn extreme_values_round_trip() {
    let mut trace: Trace<u64, u32> = Trace::new();
    trace.record(
        0,
        Pid::new(u64::MAX).unwrap(),
        TraceOp::Write {
            local: 0,
            physical: 0,
            value: u64::MAX,
        },
    );
    trace.record(0, Pid::new(u64::MAX).unwrap(), TraceOp::Event(u32::MAX));
    let back: Trace<u64, u32> = trace_from_jsonl(&trace_to_jsonl(&trace)).unwrap();
    assert_eq!(back, trace);
}

/// The golden encoding of a small fixed trace. If this test fails, the
/// wire format changed: either revert the change or bump
/// `SCHEMA_VERSION` and regenerate the golden file.
#[test]
fn golden_file_pins_schema_v1() {
    assert_eq!(SCHEMA_VERSION, 1, "golden file is for schema v1");
    let mut trace: Trace<u64, u32> = Trace::new();
    let p0 = Pid::new(10).unwrap();
    let p1 = Pid::new(20).unwrap();
    trace.record(
        0,
        p0,
        TraceOp::Write {
            local: 0,
            physical: 2,
            value: 7,
        },
    );
    trace.record(
        1,
        p1,
        TraceOp::Read {
            local: 1,
            physical: 2,
            value: 7,
        },
    );
    trace.record(0, p0, TraceOp::Event(99));
    trace.record(1, p1, TraceOp::Halt);

    let emitted = trace_to_jsonl(&trace);
    let golden = include_str!("golden_v1.jsonl");
    assert_eq!(
        emitted, golden,
        "JSONL wire format drifted from tests/golden_v1.jsonl"
    );
    // And the golden bytes themselves decode and validate.
    let back: Trace<u64, u32> = trace_from_jsonl(golden).unwrap();
    assert_eq!(back, trace);
    validate_jsonl(golden).unwrap();
}
