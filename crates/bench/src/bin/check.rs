//! `check` — exhaustively verify a configuration of the paper's algorithms
//! from the command line.
//!
//! ```text
//! check mutex     --m 4 --shift 2           # Figure 1, 2 procs, rotated view
//! check hybrid    --m 4 --shift 1           # §8 hybrid (m anonymous + 1 named)
//! check consensus --n 2 --registers 1       # Figure 2, possibly under-provisioned
//! check renaming  --n 2
//! check mutex     --m 4 --dot livelock.dot  # export the livelock component
//! ```
//!
//! Every verdict is decided by exhaustive state-space exploration; the tool
//! prints reachable-state counts, safety, deadlock-freedom and
//! starvation-freedom (for mutual exclusion), or agreement/validity and
//! obstruction freedom (for the one-shot algorithms).

use std::collections::HashMap;
use std::process::ExitCode;

use anonreg::consensus::AnonConsensus;
use anonreg::hybrid::{named_view, HybridMutex};
use anonreg::mutex::{AnonMutex, MutexEvent, Section};
use anonreg::ordered::OrderedMutex;
use anonreg::renaming::AnonRenaming;
use anonreg::{Pid, View};
use anonreg_sim::obstruction::check_obstruction_freedom;
use anonreg_sim::prelude::*;
use anonreg_sim::viz::{to_dot, DotOptions};

fn usage() -> ExitCode {
    eprintln!(
        "usage: check <mutex|hybrid|ordered|consensus|renaming> [--m N] [--n N] \
         [--registers N] [--shift N] [--max-states N] [--threads N] [--crashes] [--por] \
         [--spill] [--dot FILE]\n\
         \x20      check explore [--n N] [--registers N] [--threads N] [--max-states N] \
         [--json FILE] [--min-speedup X] [--stream FILE] [--stream-interval-ms N]   \
         parallel-explorer scaling benchmark (E14); --stream tails live schema-v2 \
         deltas + progress to FILE\n\
         \x20      check explore --symmetry <off|registers|full> [--n N] [--registers N] \
         [--threads N] [--max-states N] [--json FILE] [--min-reduction X] [--stream FILE]   \
         symmetry-reduction benchmark (E16) with verdict parity\n\
         \x20      check explore --scale [--quick] [--threads N] [--max-states N] \
         [--json FILE] [--min-throughput X] [--stream FILE]   stats-mode scale run (E19) \
         with POR + disk spill; --quick runs the CI-sized space with the exact-count anchor\n\
         \x20      check profile [--full] [--threads N] [--max-states N] [--entries N] \
         [--flamegraph FILE] [--json FILE] [--min-coverage X]   wall-clock phase profiles \
         (E18): explorer workers + runtime driver, collapsed-stack flamegraph export, \
         self-time coverage gate (default 0.7)\n\
         \x20      check verify-cache [--threads N] [--max-states N] [--cache-dir DIR] \
         [--invalidate] [--json FILE] [--min-speedup X]   proof-carrying reachability cache \
         (E20): cold explore + certify vs warm certificate replay across the seven families, \
         parity hard-asserted; --invalidate clears the store first (the cold leg)\n\
         \x20      check bench-diff BEFORE AFTER [--max-time-ratio X] [--max-drop-ratio X] \
         [--allow-missing] [--require NAME=FLOOR] [--exact-counts] [--reduced-marker SEG]   \
         compare two bench JSONL files (reduction-mode runs compare states/edges \
         lower-better; parity runs exact); exits non-zero on regression\n\
         \x20      check lint <--all|ALGO|fixtures>   static analysis (L1-L6); \
         ALGO in {{mutex,hybrid,ordered,consensus,election,renaming,baselines}}\n\
         \x20      check stress [--schedules N] [--seed N] [--family F] [--replay SEED] \
         [--quick] [--json FILE] [--broken] [--stream FILE] [--stream-interval-ms N]   \
         fault-injection stress sweeps (E15); violations print the seed and exit \
         non-zero; --stream tails per-schedule heartbeats to FILE\n\
         \x20      check sanitize [--schedules N] [--seed N] [--family F] [--quick] \
         [--json FILE]   memory-ordering inference: certify per-site minimal orderings (E17)\n\
         \x20      check sanitize --broken [--quick]   negative controls: the broken fixtures \
         must be flagged (exits non-zero when they are; CI asserts the failure)\n\
         \x20      check sanitize --family F --replay SEED [--read ORD] [--claim ORD] \
         [--clear ORD]   rerun one sanitized schedule (F may be a fixture name); \
         ORD in {{relaxed,acquire,release,seqcst}}\n\
         \x20      check obs [--m N] [--shift N] [--entries N] [--max-states N] \
         [--json FILE] [--trace FILE]   probed run + contention heatmap\n\
         \x20      check obs validate FILE            schema-validate a JSONL file\n\
         \x20      check obs replay FILE              replay an exported trace"
    );
    ExitCode::FAILURE
}

/// Runs the static analyzer: `check lint --all`, `check lint <algo>`, or
/// `check lint fixtures`. The exit code always reflects the verdicts, so
/// the fixtures run — every lint firing on its negative fixture, witness
/// attached — exits non-zero by design (CI asserts the failure).
fn lint_main(selector: Option<&str>) -> ExitCode {
    use anonreg_bench::lintsuite;

    let reports = match selector {
        Some("--all") | None => lintsuite::lint_all(),
        Some("fixtures") => lintsuite::lint_fixtures(),
        Some(name) => match lintsuite::lint_algorithm(name) {
            Some(reports) => reports,
            None => {
                eprintln!(
                    "unknown algorithm {name:?}; expected one of {:?}, fixtures, or --all",
                    lintsuite::ALGORITHMS
                );
                return ExitCode::FAILURE;
            }
        },
    };

    let mut clean = true;
    for report in &reports {
        print!("{report}");
        clean &= report.passed();
    }
    let failed = reports.iter().filter(|r| !r.passed()).count();
    println!(
        "\n{} subjects linted; {}",
        reports.len(),
        if clean {
            "all clean".to_string()
        } else {
            format!("{failed} FAILED")
        }
    );
    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `check obs` — drive the Figure 1 mutex on real threads and under the
/// model checker with a live [`MemProbe`], print the per-register
/// contention heatmap, and optionally export the metrics (`--json`) or a
/// replayable trace (`--trace`). `validate FILE` and `replay FILE` consume
/// files produced this way.
fn obs_main(raw: &[String]) -> ExitCode {
    use anonreg_bench::workload::run_randomized;
    use anonreg_obs::emit::snapshot_to_jsonl;
    use anonreg_obs::schema::{meta_line, validate_jsonl};
    use anonreg_obs::{
        register_stats, schedule_of, trace_from_jsonl, trace_to_jsonl, Heatmap, Json, MemProbe,
        Metric, Span,
    };
    use anonreg_runtime::{AnonymousMemory, Backoff, Driver, PackedAtomicRegister};

    match raw.first().map(String::as_str) {
        Some("validate") => {
            let Some(path) = raw.get(1) else {
                return usage();
            };
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            return match validate_jsonl(&text) {
                Ok(lines) => {
                    let (v1, skipped) =
                        anonreg_obs::schema::validate_jsonl_v1(&text).unwrap_or((lines, 0));
                    println!(
                        "{path}: {lines} schema-valid lines ({v1} v1, {skipped} v2 stream \
                         records a v1 consumer would skip)"
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{path}: INVALID at line {}: {}", e.line, e.reason);
                    ExitCode::FAILURE
                }
            };
        }
        Some("replay") => {
            let Some(path) = raw.get(1) else {
                return usage();
            };
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let trace: anonreg_model::trace::Trace<u64, MutexEvent> = match trace_from_jsonl(&text)
            {
                Ok(trace) => trace,
                Err(e) => {
                    eprintln!("{path}: not a valid trace: {}", e.reason);
                    return ExitCode::FAILURE;
                }
            };
            let stats = register_stats(&trace);
            println!(
                "replayed {} ops across {} processes",
                trace.len(),
                schedule_of(&trace).iter().max().map_or(0, |&p| p + 1)
            );
            println!("{}", Heatmap::from_register_stats(&stats).render());
            return ExitCode::SUCCESS;
        }
        _ => {}
    }

    let Some(args) = parse(raw) else {
        return usage();
    };
    let mut json_path = None;
    let mut trace_path = None;
    let mut entries: u64 = 200;
    let mut it = raw.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--json" => json_path = it.next().cloned(),
            "--trace" => trace_path = it.next().cloned(),
            "--entries" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => entries = n,
                None => return usage(),
            },
            _ => {}
        }
    }
    let m = args.m;
    let probe = MemProbe::new();

    // 1. Real threads: two probed drivers race for the Figure 1 lock.
    println!(
        "probed run: Figure 1 mutex, m = {m}, 2 threads x {entries} critical sections, \
         second view rotated by {}",
        args.shift % m
    );
    let mem: AnonymousMemory<PackedAtomicRegister<u64>> = AnonymousMemory::new(m);
    std::thread::scope(|s| {
        for (id, shift) in [(1u64, 0usize), (2, args.shift % m)] {
            let view = mem.view(View::rotated(m, shift));
            let probe = &probe;
            s.spawn(move || {
                let machine = AnonMutex::new(pid(id), m).unwrap().with_cycles(entries);
                let mut driver = Driver::new(machine, view)
                    .with_backoff(Backoff {
                        min_spins: 1,
                        max_spins: 64,
                    })
                    .with_probe(probe);
                driver.run_to_halt();
            });
        }
    });

    // 2. The model checker over the same configuration, same probe.
    let sim = Simulation::builder()
        .process(AnonMutex::new(pid(1), m).unwrap(), View::identity(m))
        .process(
            AnonMutex::new(pid(2), m).unwrap(),
            View::rotated(m, args.shift % m),
        )
        .build()
        .unwrap();
    let limits = ExploreConfig {
        max_states: args.max_states,
        crashes: args.crashes,
        parallelism: args.threads,
        ..ExploreConfig::default()
    };
    if let Err(e) = Explorer::new(sim).limits(limits).probe(&probe).run() {
        eprintln!("exploration failed: {e}");
        return ExitCode::FAILURE;
    }

    let snapshot = probe.snapshot();
    println!(
        "registers        : {} reads, {} writes, {} contended reads",
        snapshot.counter_total(Metric::RegRead),
        snapshot.counter_total(Metric::RegWrite),
        snapshot.counter_total(Metric::RegContention),
    );
    if let Some(hist) = snapshot.histogram_stat(Metric::BackoffSpins) {
        println!(
            "backoff          : {} invocations, {} spins total (max {})",
            hist.count, hist.sum, hist.max
        );
    }
    let windows = snapshot
        .spans
        .iter()
        .filter(|s| s.span == Span::SoloWindow)
        .count();
    println!("solo windows     : {windows} (maximal uncontended op runs)");
    println!(
        "exploration      : {} states, {} edges, {} dedup hits",
        snapshot.counter_total(Metric::ExploreStates),
        snapshot.counter_total(Metric::ExploreEdges),
        snapshot.counter_total(Metric::ExploreDedup),
    );

    let per_register = |metric: Metric| -> Vec<u64> {
        let by_key = snapshot.counter_by_key(metric);
        let mut counts = vec![0u64; m];
        for (key, value) in by_key {
            if let Some(slot) = counts.get_mut(usize::try_from(key).unwrap_or(usize::MAX)) {
                *slot = value;
            }
        }
        counts
    };
    let mut heatmap = Heatmap::new();
    heatmap
        .row("reads", per_register(Metric::RegRead))
        .row("writes", per_register(Metric::RegWrite))
        .row("contention", per_register(Metric::RegContention));
    println!(
        "\nper-register heatmap (threaded run):\n{}",
        heatmap.render()
    );

    // 3. A fully symmetric sibling space (both processes behind the
    //    *same* identity view, so the slot swap is a genuine S₂
    //    symmetry for any m) under full reduction, on a fresh probe:
    //    orbit-dedup hits and canonicalization time are keyed per
    //    engine worker (key 0 = the sequential engine).
    let sym_probe = MemProbe::new();
    let sym_sim = Simulation::builder()
        .process(AnonMutex::new(pid(1), m).unwrap(), View::identity(m))
        .process(AnonMutex::new(pid(2), m).unwrap(), View::identity(m))
        .build()
        .unwrap();
    if let Err(e) = Explorer::new(sym_sim)
        .limits(limits)
        .probe(&sym_probe)
        .symmetry(SymmetryMode::Full)
        .run()
    {
        eprintln!("symmetry-reduced exploration failed: {e}");
        return ExitCode::FAILURE;
    }
    let sym = sym_probe.snapshot();
    println!(
        "symmetry (full)  : {} states, {} orbit hits, {:.2} ms canonicalizing \
         (identity-view sibling space)",
        sym.counter_total(Metric::ExploreStates),
        sym.counter_total(Metric::SymmetryHits),
        sym.counter_total(Metric::CanonTime) as f64 / 1e6,
    );
    let workers = args.threads.max(1);
    let per_worker = |metric: Metric| -> Vec<u64> {
        let by_key = sym.counter_by_key(metric);
        let mut counts = vec![0u64; workers];
        for (key, value) in by_key {
            if let Some(slot) = counts.get_mut(usize::try_from(key).unwrap_or(usize::MAX)) {
                *slot = value;
            }
        }
        counts
    };
    let mut sym_heatmap = Heatmap::new();
    sym_heatmap
        .axis("worker")
        .row("orbit hits", per_worker(Metric::SymmetryHits))
        .row(
            "canon us",
            per_worker(Metric::CanonTime)
                .into_iter()
                .map(|ns| ns / 1_000)
                .collect(),
        );
    println!(
        "\nper-worker symmetry heatmap (full mode):\n{}",
        sym_heatmap.render()
    );

    if let Some(path) = &trace_path {
        let machines: Vec<AnonMutex> = (1..=2)
            .map(|id| AnonMutex::new(pid(id), m).unwrap().with_cycles(2))
            .collect();
        let sim = run_randomized(machines, 1, 4 * m, 100_000 * m);
        let jsonl = trace_to_jsonl(sim.trace());
        if let Err(e) = std::fs::write(path, &jsonl) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "trace written to {path} ({} ops; replay with `check obs replay {path}`)",
            sim.trace().len()
        );
    }
    if let Some(path) = &json_path {
        let mut out = meta_line(
            "check-obs",
            &[("m", Json::U64(m as u64)), ("entries", Json::U64(entries))],
        )
        .render();
        out.push('\n');
        out.push_str(&snapshot_to_jsonl(&snapshot));
        if let Err(e) = std::fs::write(path, &out) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("metrics written to {path} (validate with `check obs validate {path}`)");
    }
    ExitCode::SUCCESS
}

/// `check explore --symmetry MODE` — the symmetry-reduction benchmark
/// (experiment E16): explore the symmetric Figure 2 consensus space
/// under all three symmetry modes at `threads` threads (verdict parity
/// is hard-asserted inside [`e16_symmetry::rows`]), print the reduction
/// table, and enforce the stored-state reduction floor of the selected
/// mode (`--min-reduction`).
/// Live-stream plumbing shared by `check explore` and `check stress`:
/// a probe + profiler pair with a background [`StreamExporter`] tailing
/// schema-v2 deltas and progress lines to the requested file.
struct LiveStream {
    probe: std::sync::Arc<anonreg_obs::MemProbe>,
    profiler: std::sync::Arc<anonreg_obs::Profiler>,
    exporter: anonreg_obs::StreamExporter,
    path: String,
}

impl LiveStream {
    /// Opens the stream file and spawns the exporter thread; returns
    /// `Err` with a printed message if the file cannot be created.
    fn start(tool: &str, path: &str, interval_ms: u64) -> Result<LiveStream, ExitCode> {
        use anonreg_obs::{MemProbe, Profiler, StreamExporter, StreamOptions};
        use std::sync::Arc;

        let probe = Arc::new(MemProbe::new());
        let profiler = Arc::new(Profiler::new());
        let mut opts = StreamOptions::new(tool, &format!("{tool}-{}", std::process::id()));
        opts.interval = std::time::Duration::from_millis(interval_ms.max(1));
        opts.echo = true;
        match StreamExporter::start(path, opts, Arc::clone(&probe), Some(Arc::clone(&profiler))) {
            Ok(exporter) => Ok(LiveStream {
                probe,
                profiler,
                exporter,
                path: path.to_string(),
            }),
            Err(e) => {
                eprintln!("failed to open stream file {path}: {e}");
                Err(ExitCode::FAILURE)
            }
        }
    }

    /// The instrumentation view the experiment modules accept.
    fn instruments(&self) -> anonreg_bench::live::Instruments<'_> {
        anonreg_bench::live::Instruments {
            probe: Some(&self.probe),
            profiler: Some(std::sync::Arc::clone(&self.profiler)),
        }
    }

    /// Flushes the final delta/profile/snapshot records and reports.
    fn finish(self) -> Result<(), ExitCode> {
        match self.exporter.finish() {
            Ok(summary) => {
                println!(
                    "live stream: {} delta(s), {} v2 record(s) over {} ms -> {} \
                     (validate with `check obs validate {}`)",
                    summary.deltas, summary.records, summary.elapsed_ms, self.path, self.path
                );
                Ok(())
            }
            Err(e) => {
                eprintln!("stream export to {} failed: {e}", self.path);
                Err(ExitCode::FAILURE)
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn explore_symmetry_main(
    mode: SymmetryMode,
    n: usize,
    registers: usize,
    threads: usize,
    max_states: usize,
    json_path: Option<&String>,
    min_reduction: Option<f64>,
    stream: Option<(&str, u64)>,
) -> ExitCode {
    use anonreg_bench::live::Instruments;
    use anonreg_bench::{benchjson, e16_symmetry};
    use anonreg_obs::schema::meta_line;
    use anonreg_obs::Json;

    let workload = e16_symmetry::Workload::SymmetricConsensus { n, registers };
    println!(
        "symmetry-reduced exploration: symmetric Figure 2 consensus, n = {n}, \
         {registers} registers, {threads} threads, off vs registers vs full"
    );
    let live = match stream {
        Some((path, interval_ms)) => {
            match LiveStream::start("check-explore-symmetry", path, interval_ms) {
                Ok(live) => Some(live),
                Err(code) => return code,
            }
        }
        None => None,
    };
    let ins = match &live {
        Some(l) => l.instruments(),
        None => Instruments::none(),
    };
    let rows = match e16_symmetry::rows_with(workload, threads, max_states, &ins) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("exploration failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    drop(ins);
    if let Some(live) = live {
        if let Err(code) = live.finish() {
            return code;
        }
    }
    println!("{}", e16_symmetry::render(&rows));
    println!("verdict parity across off/registers/full: ok");
    let reduction = rows
        .iter()
        .find(|r| r.mode == mode)
        .map_or(1.0, |r| r.reduction_over(&rows[0]));

    if let Some(path) = json_path {
        let mut out = meta_line(
            "check-explore-symmetry",
            &[
                ("n", Json::U64(n as u64)),
                ("registers", Json::U64(registers as u64)),
                ("threads", Json::U64(threads as u64)),
                ("mode", Json::Str(mode.to_string())),
            ],
        )
        .render();
        out.push('\n');
        out.push_str(&benchjson::to_jsonl(&e16_symmetry::metrics(&rows)));
        if let Err(e) = std::fs::write(path, &out) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("metrics written to {path} (validate with `check obs validate {path}`)");
    }
    if let Some(floor) = min_reduction {
        if reduction < floor {
            eprintln!("{mode} reduction {reduction:.2}x is below the required {floor:.2}x");
            return ExitCode::FAILURE;
        }
        println!("{mode} reduction {reduction:.2}x meets the required {floor:.2}x");
    }
    ExitCode::SUCCESS
}

/// `check explore --scale` — experiment E19: stats-mode exploration at
/// scale with ample-set POR and disk spill. Runs the full-scale trio
/// (fully loaded m = 3 ring, m = 4 ring, consensus n = 4) under `por`
/// and `por_spill` configurations, or with `--quick` the CI-sized
/// consensus space with the exact-count `off` anchor included; prints
/// the throughput table, optionally exports JSONL (`--json`) and
/// enforces a states/s floor (`--min-throughput`).
fn explore_scale_main(
    quick: bool,
    threads: usize,
    max_states: usize,
    json_path: Option<&String>,
    min_throughput: Option<f64>,
    stream: Option<(&str, u64)>,
) -> ExitCode {
    use anonreg_bench::e16_symmetry::Workload;
    use anonreg_bench::live::Instruments;
    use anonreg_bench::{benchjson, e19_scale};
    use anonreg_obs::schema::meta_line;
    use anonreg_obs::Json;

    let workloads: Vec<_> = if quick {
        e19_scale::quick().to_vec()
    } else {
        e19_scale::full_scale().to_vec()
    };
    let slugs: Vec<String> = workloads.iter().map(Workload::slug).collect();
    println!(
        "model checking at scale (E19): {} at {threads} threads, stats mode, \
         max {max_states} states{}",
        slugs.join(" + "),
        if quick {
            " [quick: off anchor + por + por_spill]"
        } else {
            " [por + por_spill]"
        }
    );
    let live = match stream {
        Some((path, interval_ms)) => {
            match LiveStream::start("check-explore-scale", path, interval_ms) {
                Ok(live) => Some(live),
                Err(code) => return code,
            }
        }
        None => None,
    };
    let ins = match &live {
        Some(l) => l.instruments(),
        None => Instruments::none(),
    };
    let rows = match e19_scale::rows_with(&workloads, quick, threads, max_states, &ins) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("exploration failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    drop(ins);
    if let Some(live) = live {
        if let Err(code) = live.finish() {
            return code;
        }
    }
    println!("{}", e19_scale::render(&rows));
    println!("spill count-invariance and POR monotonicity: ok");

    if let Some(path) = json_path {
        let mut out = meta_line(
            "check-explore-scale",
            &[
                ("threads", Json::U64(threads as u64)),
                ("max_states", Json::U64(max_states as u64)),
                ("quick", Json::Bool(quick)),
            ],
        )
        .render();
        out.push('\n');
        out.push_str(&benchjson::to_jsonl(&e19_scale::metrics(&rows)));
        if let Err(e) = std::fs::write(path, &out) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("metrics written to {path} (validate with `check obs validate {path}`)");
    }
    if let Some(floor) = min_throughput {
        let slowest = rows
            .iter()
            .map(e19_scale::Row::throughput)
            .fold(f64::INFINITY, f64::min);
        if slowest < floor {
            eprintln!("throughput {slowest:.0} states/s is below the required {floor:.0}");
            return ExitCode::FAILURE;
        }
        println!("throughput {slowest:.0} states/s meets the required {floor:.0}");
    }
    ExitCode::SUCCESS
}

/// `check explore` — the parallel-explorer scaling benchmark (experiment
/// E14): explore the Figure 2 consensus space once at 1 thread and once at
/// `--threads`, refuse to report a speedup unless both runs produce the
/// exact same state and edge counts, print the scaling table, and
/// optionally export schema-v1 JSONL (`--json`) or enforce a wall-clock
/// speedup floor (`--min-speedup`, meant for CI on multi-core hardware).
/// With `--symmetry`, runs the E16 symmetry-reduction flow instead.
fn explore_main(raw: &[String]) -> ExitCode {
    use anonreg_bench::{benchjson, e14_scaling};
    use anonreg_obs::schema::meta_line;
    use anonreg_obs::Json;

    let mut n = 3usize;
    let mut registers = 2usize;
    let mut threads = 4usize;
    let mut max_states: Option<usize> = None;
    let mut json_path: Option<String> = None;
    let mut min_speedup: Option<f64> = None;
    let mut symmetry: Option<SymmetryMode> = None;
    let mut min_reduction: Option<f64> = None;
    let mut min_throughput: Option<f64> = None;
    let mut scale = false;
    let mut quick = false;
    let mut stream_path: Option<String> = None;
    let mut stream_interval_ms = 50u64;
    let mut it = raw.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scale" => {
                scale = true;
                continue;
            }
            "--quick" => {
                quick = true;
                continue;
            }
            _ => {}
        }
        let Some(value) = it.next() else {
            return usage();
        };
        match flag.as_str() {
            "--json" => json_path = Some(value.clone()),
            "--stream" => stream_path = Some(value.clone()),
            "--stream-interval-ms" => {
                let Ok(v) = value.parse::<u64>() else {
                    return usage();
                };
                stream_interval_ms = v;
            }
            "--min-speedup" => {
                let Ok(v) = value.parse::<f64>() else {
                    return usage();
                };
                min_speedup = Some(v);
            }
            "--min-reduction" => {
                let Ok(v) = value.parse::<f64>() else {
                    return usage();
                };
                min_reduction = Some(v);
            }
            "--min-throughput" => {
                let Ok(v) = value.parse::<f64>() else {
                    return usage();
                };
                min_throughput = Some(v);
            }
            "--symmetry" => {
                symmetry = Some(match value.as_str() {
                    "off" => SymmetryMode::Off,
                    "registers" => SymmetryMode::Registers,
                    "full" => SymmetryMode::Full,
                    _ => return usage(),
                });
            }
            "--n" | "--registers" | "--threads" | "--max-states" => {
                let Ok(v) = value.parse::<usize>() else {
                    return usage();
                };
                match flag.as_str() {
                    "--n" => n = v,
                    "--registers" => registers = v,
                    "--threads" => threads = v,
                    _ => max_states = Some(v),
                }
            }
            _ => return usage(),
        }
    }
    if scale {
        return explore_scale_main(
            quick,
            threads,
            // Stats mode stores fingerprints, not states: the scale
            // default is an order of magnitude past the E14/E16 cap.
            max_states.unwrap_or(100_000_000),
            json_path.as_ref(),
            min_throughput,
            stream_path.as_deref().map(|p| (p, stream_interval_ms)),
        );
    }
    let max_states = max_states.unwrap_or(4_000_000);
    if let Some(mode) = symmetry {
        return explore_symmetry_main(
            mode,
            n,
            registers,
            threads,
            max_states,
            json_path.as_ref(),
            min_reduction,
            stream_path.as_deref().map(|p| (p, stream_interval_ms)),
        );
    }
    if min_reduction.is_some() {
        eprintln!("--min-reduction requires --symmetry");
        return usage();
    }
    if min_throughput.is_some() || quick {
        eprintln!("--min-throughput/--quick require --scale");
        return usage();
    }

    println!(
        "parallel explorer scaling: Figure 2 consensus, n = {n}, {registers} registers, \
         1 vs {threads} threads"
    );
    let live = match &stream_path {
        Some(path) => match LiveStream::start("check-explore", path, stream_interval_ms) {
            Ok(live) => Some(live),
            Err(code) => return code,
        },
        None => None,
    };
    let ins = match &live {
        Some(l) => l.instruments(),
        None => anonreg_bench::live::Instruments::none(),
    };
    let rows = match e14_scaling::rows_with(n, registers, &[1, threads], max_states, &ins) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("exploration failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    drop(ins);
    if let Some(live) = live {
        if let Err(code) = live.finish() {
            return code;
        }
    }
    println!("{}", e14_scaling::render(&rows));
    let speedup = rows.last().map_or(1.0, |r| r.speedup_over(&rows[0]));

    if let Some(path) = &json_path {
        let mut out = meta_line(
            "check-explore",
            &[
                ("n", Json::U64(n as u64)),
                ("registers", Json::U64(registers as u64)),
                ("threads", Json::U64(threads as u64)),
            ],
        )
        .render();
        out.push('\n');
        out.push_str(&benchjson::to_jsonl(&e14_scaling::metrics(&rows)));
        if let Err(e) = std::fs::write(path, &out) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("metrics written to {path} (validate with `check obs validate {path}`)");
    }
    if let Some(floor) = min_speedup {
        if speedup < floor {
            eprintln!("speedup {speedup:.2}x is below the required {floor:.2}x");
            return ExitCode::FAILURE;
        }
        println!("speedup {speedup:.2}x meets the required {floor:.2}x");
    }
    ExitCode::SUCCESS
}

/// `check stress` — experiment E15's seeded fault-injection stress
/// sweeps. The default run draws `--schedules` random fault plans per
/// family (crashes, stalls, restarts), drives every algorithm family on
/// real threads under them, and asserts the family's safety invariant;
/// any violation prints a replay command carrying the exact seed and the
/// exit code goes non-zero. `--broken` swaps in the deliberately
/// unprotected doorway fixture, which *must* violate — CI asserts that
/// run fails.
fn stress_main(raw: &[String]) -> ExitCode {
    use anonreg_bench::{benchjson, e15_faults};
    use anonreg_obs::schema::meta_line;
    use anonreg_obs::Json;

    let mut schedules: Option<u64> = None;
    let mut seed: u64 = 1;
    let mut family_arg: Option<String> = None;
    let mut replay: Option<u64> = None;
    let mut quick = false;
    let mut broken = false;
    let mut json_path: Option<String> = None;
    let mut stream_path: Option<String> = None;
    let mut stream_interval_ms = 50u64;
    let mut it = raw.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--broken" => broken = true,
            "--stream" => {
                let Some(v) = it.next() else {
                    return usage();
                };
                stream_path = Some(v.clone());
            }
            "--stream-interval-ms" => {
                let Some(v) = it.next().and_then(|v| v.parse::<u64>().ok()) else {
                    return usage();
                };
                stream_interval_ms = v;
            }
            "--schedules" | "--seed" | "--replay" => {
                let Some(v) = it.next().and_then(|v| v.parse::<u64>().ok()) else {
                    return usage();
                };
                match flag.as_str() {
                    "--schedules" => schedules = Some(v),
                    "--seed" => seed = v,
                    _ => replay = Some(v),
                }
            }
            "--family" => {
                let Some(v) = it.next() else {
                    return usage();
                };
                family_arg = Some(v.clone());
            }
            "--json" => {
                let Some(v) = it.next() else {
                    return usage();
                };
                json_path = Some(v.clone());
            }
            _ => return usage(),
        }
    }

    let selected: Vec<&'static str> = if broken {
        vec![e15_faults::BROKEN]
    } else if let Some(name) = &family_arg {
        let known = e15_faults::FAMILIES
            .iter()
            .find(|f| **f == *name)
            .copied()
            .or_else(|| (name == e15_faults::BROKEN).then_some(e15_faults::BROKEN));
        match known {
            Some(f) => vec![f],
            None => {
                eprintln!(
                    "unknown family {name:?}; expected one of {:?} or {:?}",
                    e15_faults::FAMILIES,
                    e15_faults::BROKEN
                );
                return ExitCode::FAILURE;
            }
        }
    } else {
        e15_faults::FAMILIES.to_vec()
    };

    if let Some(replay_seed) = replay {
        let mut bad = false;
        for fam in &selected {
            let report = e15_faults::run_one(fam, replay_seed);
            println!(
                "{fam}: seed {replay_seed}: {} crash(es), {} stall(s), {} restart(s) scheduled{}",
                report.crashes,
                report.stalls,
                report.restarts,
                if report.timed_out { ", timed out" } else { "" }
            );
            match &report.violation {
                Some(v) => {
                    println!("  VIOLATION: {v}");
                    bad = true;
                }
                None => println!("  safety invariant held"),
            }
        }
        return if bad {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    let per_family = schedules.unwrap_or(if quick { 25 } else { 150 });
    println!(
        "fault-injection stress (E15): {per_family} seeded schedule(s) x {} family(ies), \
         base seed {seed}",
        selected.len()
    );
    let live = match &stream_path {
        Some(path) => match LiveStream::start("check-stress", path, stream_interval_ms) {
            Ok(live) => Some(live),
            Err(code) => return code,
        },
        None => None,
    };
    let rows: Vec<e15_faults::Row> = selected
        .iter()
        .enumerate()
        .map(|(i, f)| {
            e15_faults::sweep_with(
                f,
                seed,
                per_family,
                live.as_ref().map(|l| &*l.probe),
                i as u64,
            )
        })
        .collect();
    if let Some(live) = live {
        if let Err(code) = live.finish() {
            return code;
        }
    }
    println!("{}", e15_faults::render(&rows));

    if let Some(path) = &json_path {
        let mut out = meta_line(
            "check-stress",
            &[
                ("schedules", Json::U64(per_family)),
                ("seed", Json::U64(seed)),
                ("families", Json::U64(selected.len() as u64)),
            ],
        )
        .render();
        out.push('\n');
        out.push_str(&benchjson::to_jsonl(&e15_faults::metrics(&rows)));
        if let Err(e) = std::fs::write(path, &out) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("metrics written to {path} (validate with `check obs validate {path}`)");
    }

    let mut bad = false;
    for row in &rows {
        if let Some(s) = row.first_violation_seed {
            bad = true;
            eprintln!(
                "{}: {} violation(s); replay deterministically with \
                 `check stress --family {} --replay {s}`",
                row.family, row.violations, row.family
            );
        }
    }
    if bad {
        return ExitCode::FAILURE;
    }
    if broken {
        eprintln!(
            "broken fixture did NOT violate — the harness failed to detect an \
             unprotected doorway"
        );
    } else {
        println!(
            "no safety violations across {} schedule(s)",
            per_family * selected.len() as u64
        );
    }
    ExitCode::SUCCESS
}

/// `check profile` — experiment E18's wall-clock phase profiles: every
/// E16 workload explored under `off` and `full` symmetry with per-worker
/// phase timers (`step`/`canon`/`dedup`/`steal`/`idle`), plus the
/// Figure 1 mutex raced on real threads with the driver's protocol
/// phases (`doorway`/`waiting`/`critical`). Prints the per-run phase
/// breakdown, optionally writes a collapsed-stack flamegraph
/// (`--flamegraph`, speedscope/inferno format) and bench JSONL
/// (`--json`), and enforces that the explorer runs' self-times account
/// for the measured wall-clock (`--min-coverage`, default 0.7, applied
/// to runs long enough for setup cost to be noise — the wall includes
/// final graph assembly, which is not worker self-time, so full-scale
/// symmetry-off runs land around 0.75–0.86 and full-symmetry runs
/// around 0.91).
fn profile_main(raw: &[String]) -> ExitCode {
    use anonreg_bench::{benchjson, e18_profile};
    use anonreg_obs::schema::meta_line;
    use anonreg_obs::Json;

    let mut full = false;
    let mut threads = 4usize;
    let mut max_states = 8_000_000usize;
    let mut entries = 200u64;
    let mut min_coverage = 0.7f64;
    let mut flamegraph: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut it = raw.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--full" => full = true,
            "--threads" | "--max-states" | "--entries" => {
                let Some(v) = it.next().and_then(|v| v.parse::<u64>().ok()) else {
                    return usage();
                };
                match flag.as_str() {
                    "--threads" => threads = v as usize,
                    "--max-states" => max_states = v as usize,
                    _ => entries = v,
                }
            }
            "--min-coverage" => {
                let Some(v) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                    return usage();
                };
                min_coverage = v;
            }
            "--flamegraph" => {
                let Some(v) = it.next() else {
                    return usage();
                };
                flamegraph = Some(v.clone());
            }
            "--json" => {
                let Some(v) = it.next() else {
                    return usage();
                };
                json_path = Some(v.clone());
            }
            _ => return usage(),
        }
    }

    println!(
        "wall-clock phase profiles (E18): {} workloads x {{off, full}} at {threads} thread(s), \
         + Figure 1 driver x2 threads ({entries} entries)",
        if full { "full-scale" } else { "quick" }
    );
    let mut runs = match e18_profile::rows(full, threads, max_states) {
        Ok(runs) => runs,
        Err(e) => {
            eprintln!("exploration failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let explorer_runs = runs.len();
    runs.push(e18_profile::profile_runtime(3, entries));
    println!("{}", e18_profile::render(&runs));

    if let Some(path) = &flamegraph {
        let collapsed: String = runs
            .iter()
            .map(e18_profile::ProfiledRun::collapsed)
            .collect();
        if let Err(e) = std::fs::write(path, &collapsed) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "collapsed-stack flamegraph ({} frames) written to {path} \
             (render with inferno/speedscope)",
            collapsed.lines().count()
        );
    }
    if let Some(path) = &json_path {
        let mut out = meta_line(
            "check-profile",
            &[
                ("threads", Json::U64(threads as u64)),
                ("full", Json::Bool(full)),
            ],
        )
        .render();
        out.push('\n');
        out.push_str(&benchjson::to_jsonl(&e18_profile::metrics(&runs)));
        if let Err(e) = std::fs::write(path, &out) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("metrics written to {path} (validate with `check obs validate {path}`)");
    }

    // Coverage gate: on runs too short, thread spawn/graph assembly
    // dominate and coverage is meaningless, so only gate explorer runs
    // whose wall-clock clears a floor.
    let mut bad = false;
    for run in &runs[..explorer_runs] {
        let gated = run.wall.as_millis() >= 20;
        let verdict = if !gated {
            "skipped (run too short)"
        } else if run.coverage() >= min_coverage {
            "ok"
        } else {
            bad = true;
            "BELOW FLOOR"
        };
        println!(
            "coverage {}: {:.1}% of {} worker(s) x {:?} wall — {verdict}",
            run.slug,
            run.coverage() * 100.0,
            run.profiles.len(),
            run.wall
        );
    }
    if bad {
        eprintln!("phase self-times fail to account for the wall-clock (floor {min_coverage})");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `check bench-diff` — compare two bench JSONL files (a committed
/// baseline and a fresh run) and exit non-zero on regression: `ms`
/// metrics may grow by at most `--max-time-ratio`, `x`/`ops_per_s`
/// metrics may shrink by at most `--max-drop-ratio`, and counting units
/// (states/edges/bool) must match exactly. `--require NAME=FLOOR` adds
/// absolute floors on fresh metrics (suffix-matched), replacing
/// bespoke per-experiment gates in CI.
fn bench_diff_main(raw: &[String]) -> ExitCode {
    use anonreg_bench::benchdiff;

    let mut files: Vec<&String> = Vec::new();
    let mut thresholds = benchdiff::Thresholds::default();
    let mut it = raw.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--allow-missing" => thresholds.allow_missing = true,
            "--exact-counts" => thresholds.reduced_markers.clear(),
            "--reduced-marker" => {
                let Some(v) = it.next() else {
                    return usage();
                };
                thresholds.reduced_markers.push(v.clone());
            }
            "--max-time-ratio" | "--max-drop-ratio" => {
                let Some(v) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                    return usage();
                };
                if arg == "--max-time-ratio" {
                    thresholds.max_time_ratio = v;
                } else {
                    thresholds.max_drop_ratio = v;
                }
            }
            "--require" => {
                let Some(v) = it.next() else {
                    return usage();
                };
                let Some((name, floor)) = v.split_once('=') else {
                    eprintln!("--require wants NAME=FLOOR, got {v:?}");
                    return usage();
                };
                let Ok(floor) = floor.parse::<f64>() else {
                    return usage();
                };
                thresholds.require.push((name.to_string(), floor));
            }
            _ if arg.starts_with("--") => return usage(),
            _ => files.push(arg),
        }
    }
    let [before_path, after_path] = files.as_slice() else {
        eprintln!("bench-diff wants exactly two files (BEFORE AFTER)");
        return usage();
    };

    let read = |path: &str| -> Result<Vec<benchdiff::ParsedMetric>, ExitCode> {
        let text = std::fs::read_to_string(path).map_err(|e| {
            eprintln!("failed to read {path}: {e}");
            ExitCode::FAILURE
        })?;
        benchdiff::parse_bench_jsonl(&text).map_err(|e| {
            eprintln!("{path}: {e}");
            ExitCode::FAILURE
        })
    };
    let before = match read(before_path) {
        Ok(m) => m,
        Err(code) => return code,
    };
    let after = match read(after_path) {
        Ok(m) => m,
        Err(code) => return code,
    };

    println!(
        "bench-diff: {before_path} ({} metric(s)) vs {after_path} ({} metric(s)); \
         time limit {:.2}x, drop limit {:.2}x",
        before.len(),
        after.len(),
        thresholds.max_time_ratio,
        thresholds.max_drop_ratio
    );
    let diff = benchdiff::diff(&before, &after, &thresholds);
    println!("{}", benchdiff::render(&diff));
    if diff.regressed() {
        eprintln!("{} regression(s) against {before_path}", diff.regressions());
        return ExitCode::FAILURE;
    }
    println!("no regressions against {before_path}");
    ExitCode::SUCCESS
}

/// `check sanitize` — experiment E17's memory-ordering inference over the
/// vector-clock sanitizer substrate. The default run certifies per-site
/// minimal orderings for every family (greedy ladders, seeded sweeps, half
/// the schedules under injected faults), prints the certificates the
/// runtime's relaxed sites cite, and exits non-zero if any family fails to
/// verify clean at its certified plan. `--broken` runs the deliberately
/// defective fixtures instead, which *must* be flagged — that run exits
/// non-zero by design and CI asserts the failure. `--family F --replay
/// SEED` reruns exactly one sanitized schedule (`F` may be a fixture
/// name), optionally under explicit per-site orderings.
fn sanitize_main(raw: &[String]) -> ExitCode {
    use anonreg_bench::{benchjson, e17_ordering};
    use anonreg_obs::schema::meta_line;
    use anonreg_obs::Json;
    use anonreg_sanitizer::{
        certify_family, explorer_site_notes, fixtures, run_family, runtime_site_notes,
        OrderingPlan, FAMILIES,
    };
    use std::sync::atomic::Ordering as MemOrdering;

    fn parse_ordering(value: &str) -> Option<MemOrdering> {
        Some(match value {
            "relaxed" => MemOrdering::Relaxed,
            "acquire" => MemOrdering::Acquire,
            "release" => MemOrdering::Release,
            "seqcst" => MemOrdering::SeqCst,
            _ => return None,
        })
    }

    let mut schedules: Option<u64> = None;
    let mut seed: u64 = 1;
    let mut family_arg: Option<String> = None;
    let mut replay: Option<u64> = None;
    let mut quick = false;
    let mut broken = false;
    let mut with_faults = false;
    let mut json_path: Option<String> = None;
    let mut plan = OrderingPlan::seq_cst();
    let mut it = raw.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--broken" => broken = true,
            "--faults" => with_faults = true,
            "--schedules" | "--seed" | "--replay" => {
                let Some(v) = it.next().and_then(|v| v.parse::<u64>().ok()) else {
                    return usage();
                };
                match flag.as_str() {
                    "--schedules" => schedules = Some(v),
                    "--seed" => seed = v,
                    _ => replay = Some(v),
                }
            }
            "--family" => {
                let Some(v) = it.next() else {
                    return usage();
                };
                family_arg = Some(v.clone());
            }
            "--json" => {
                let Some(v) = it.next() else {
                    return usage();
                };
                json_path = Some(v.clone());
            }
            "--read" | "--claim" | "--clear" => {
                let Some(ordering) = it.next().and_then(|v| parse_ordering(v)) else {
                    return usage();
                };
                match flag.as_str() {
                    "--read" => plan.read = ordering,
                    "--claim" => plan.claim = ordering,
                    _ => plan.clear = ordering,
                }
            }
            _ => return usage(),
        }
    }

    if let Some(replay_seed) = replay {
        let Some(name) = &family_arg else {
            eprintln!("--replay requires --family (an algorithm family or a fixture name)");
            return ExitCode::FAILURE;
        };
        // A fixture name replays the fixture's own defective plan.
        let (family, replay_plan) = match fixtures::fixture(name) {
            Some(f) => (f.family, f.plan),
            None => match FAMILIES.iter().find(|f| **f == *name) {
                Some(&f) => (f, plan),
                None => {
                    eprintln!(
                        "unknown family {name:?}; expected one of {FAMILIES:?} or a fixture name"
                    );
                    return ExitCode::FAILURE;
                }
            },
        };
        let outcome = run_family(family, replay_plan, replay_seed, with_faults);
        println!(
            "{family}: seed {replay_seed}: plan {}, {} violation(s), {} hb edge(s), \
             {} stale read(s), {} steps{}",
            replay_plan.label(),
            outcome.ordering_violations,
            outcome.hb_edges,
            outcome.stale_reads,
            outcome.steps,
            if outcome.timed_out { ", timed out" } else { "" },
        );
        let mut bad = false;
        if let Some(v) = &outcome.first_violation {
            print!("  VIOLATION: {v}");
            bad = true;
        }
        if let Some(s) = &outcome.safety {
            println!("  SAFETY: {s}");
            bad = true;
        }
        if !bad {
            println!("  no ordering or safety violations");
        }
        return if bad {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    if broken {
        let outcomes = e17_ordering::fixture_outcomes(seed);
        println!(
            "negative controls: {} broken fixture(s), base seed {seed}",
            outcomes.len()
        );
        println!("{}", e17_ordering::render_fixtures(&outcomes));
        for o in &outcomes {
            if let (Some(firing_seed), Some(v)) = (o.seed, &o.violation) {
                println!(
                    "{}: flagged at seed {firing_seed}; replay with \
                     `check sanitize --family {} --replay {firing_seed}`",
                    o.name, o.name
                );
                print!("{v}");
            }
        }
        return if outcomes
            .iter()
            .all(anonreg_sanitizer::FixtureOutcome::flagged)
        {
            // Expected: the sanitizer fired on every defective fixture.
            // Exit non-zero so CI can assert `! check sanitize --broken`.
            ExitCode::FAILURE
        } else {
            eprintln!(
                "some broken fixture was NOT flagged — the sanitizer failed to \
                 detect a missing happens-before edge"
            );
            ExitCode::SUCCESS
        };
    }

    let selected: Vec<&'static str> = if let Some(name) = &family_arg {
        match FAMILIES.iter().find(|f| **f == *name) {
            Some(&f) => vec![f],
            None => {
                eprintln!(
                    "unknown family {name:?}; expected one of {FAMILIES:?} \
                     (fixtures run under --broken)"
                );
                return ExitCode::FAILURE;
            }
        }
    } else {
        FAMILIES.to_vec()
    };

    let per_family = schedules.unwrap_or(if quick {
        e17_ordering::QUICK_SCHEDULES
    } else {
        e17_ordering::DEFAULT_SCHEDULES
    });
    println!(
        "memory-ordering inference (E17): {per_family} schedule(s) per sweep x {} \
         family(ies), base seed {seed}",
        selected.len()
    );
    let certs: Vec<_> = selected
        .iter()
        .map(|&f| certify_family(f, seed, per_family))
        .collect();
    println!("{}", e17_ordering::render(&certs));

    println!("certificates:");
    for c in &certs {
        for cert in &c.certificates {
            println!("  {cert}");
        }
        for r in &c.rejected {
            println!("    rejected {:?} at {}: {}", r.ordering, r.site, r.reason);
        }
    }
    println!("structural runtime certificates:");
    for (id, why) in runtime_site_notes() {
        println!("  {id}: {why}");
    }
    println!("structural explorer certificates:");
    for (id, why) in explorer_site_notes() {
        println!("  {id}: {why}");
    }

    if let Some(path) = &json_path {
        let mut out = meta_line(
            "check-sanitize",
            &[
                ("schedules", Json::U64(per_family)),
                ("seed", Json::U64(seed)),
                ("families", Json::U64(selected.len() as u64)),
            ],
        )
        .render();
        out.push('\n');
        out.push_str(&benchjson::to_jsonl(&e17_ordering::metrics(&certs, &[])));
        if let Err(e) = std::fs::write(path, &out) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("metrics written to {path} (validate with `check obs validate {path}`)");
    }

    let mut bad = false;
    for c in &certs {
        if !c.clean {
            bad = true;
            eprintln!(
                "{}: {} violation(s) at the certified plan {} — the inference pass \
                 failed to converge",
                c.family,
                c.violations_at_plan,
                c.plan.label()
            );
        }
    }
    if bad {
        return ExitCode::FAILURE;
    }
    println!(
        "all {} family(ies) verified clean at their certified plans",
        certs.len()
    );
    ExitCode::SUCCESS
}

struct Args {
    m: usize,
    n: usize,
    registers: Option<usize>,
    shift: usize,
    max_states: usize,
    threads: usize,
    crashes: bool,
    por: bool,
    spill: bool,
    dot: Option<String>,
}

fn parse(raw: &[String]) -> Option<Args> {
    let mut args = Args {
        m: 3,
        n: 2,
        registers: None,
        shift: 1,
        max_states: 4_000_000,
        threads: 1,
        crashes: false,
        por: false,
        spill: false,
        dot: None,
    };
    let mut map: HashMap<String, String> = HashMap::new();
    let mut it = raw.iter();
    while let Some(flag) = it.next() {
        if flag == "--crashes" {
            args.crashes = true;
            continue;
        }
        if flag == "--por" {
            args.por = true;
            continue;
        }
        if flag == "--spill" {
            args.spill = true;
            continue;
        }
        let value = it.next()?;
        map.insert(flag.clone(), value.clone());
    }
    if let Some(v) = map.get("--m") {
        args.m = v.parse().ok()?;
    }
    if let Some(v) = map.get("--n") {
        args.n = v.parse().ok()?;
    }
    if let Some(v) = map.get("--registers") {
        args.registers = Some(v.parse().ok()?);
    }
    if let Some(v) = map.get("--shift") {
        args.shift = v.parse().ok()?;
    }
    if let Some(v) = map.get("--max-states") {
        args.max_states = v.parse().ok()?;
    }
    if let Some(v) = map.get("--threads") {
        args.threads = v.parse().ok()?;
    }
    if let Some(v) = map.get("--dot") {
        args.dot = Some(v.clone());
    }
    Some(args)
}

fn pid(n: u64) -> Pid {
    Pid::new(n).unwrap()
}

fn mutex_report<M>(graph: &StateGraph<M>, section: impl Fn(&M) -> Section + Copy, dot: Option<&str>)
where
    M: anonreg::Machine<Event = MutexEvent> + Eq + std::hash::Hash,
{
    println!(
        "reachable states: {}  transitions: {}",
        graph.state_count(),
        graph.edge_count()
    );
    let unsafe_state = graph.find_state(|s| {
        s.machines()
            .filter(|m| section(m) == Section::Critical)
            .count()
            >= 2
    });
    match unsafe_state {
        Some(id) => {
            println!("mutual exclusion : VIOLATED (state {id})");
            println!("  adversary schedule: {:?}", graph.schedule_to(id));
        }
        None => println!("mutual exclusion : holds in every reachable state"),
    }
    let livelock = graph.find_fair_livelock(
        |m| section(m) == Section::Entry,
        |e| *e == MutexEvent::Enter,
    );
    match &livelock {
        Some(scc) => println!(
            "deadlock-freedom : VIOLATED (fair livelock, {} states)",
            scc.len()
        ),
        None => println!("deadlock-freedom : holds (no fair livelock)"),
    }
    for victim in 0..2 {
        let starvation = graph.find_fair_starvation(
            victim,
            |m| section(m) == Section::Entry,
            |e| *e == MutexEvent::Enter,
        );
        match starvation {
            Some(scc) => println!(
                "starvation (p{victim})  : possible (fair component of {} states)",
                scc.len()
            ),
            None => {
                println!("starvation (p{victim})  : impossible (starvation-free for p{victim})");
            }
        }
    }
    if let Some(path) = dot {
        let highlight = livelock.unwrap_or_default();
        let rendered = to_dot(
            graph,
            &DotOptions {
                name: "check".into(),
                max_states: 400,
                highlight,
            },
            |s| format!("{:?}", s.registers()),
        );
        std::fs::write(path, rendered).expect("write dot file");
        println!("state graph written to {path} (first 400 states)");
    }
}

/// `check verify-cache` — experiment E20: run the seven verified
/// families through the proof-carrying cache, cold-explore-and-certify
/// vs warm-replay, with cold/warm parity hard-asserted. `--invalidate`
/// clears the store first (the cold leg); without it a previously
/// populated store answers every family by replay (the warm leg — the
/// summary line reports how many families were warm on their *first*
/// run). `--json` exports schema-v1 JSONL including a `warm_first_runs`
/// summary metric, and `--min-speedup` enforces a floor on the `mutex`
/// row's cold/warm ratio (meaningful with `--invalidate`).
fn verify_cache_main(raw: &[String]) -> ExitCode {
    use anonreg_bench::{benchjson, e20_incremental};
    use anonreg_obs::schema::meta_line;
    use anonreg_obs::Json;

    let mut threads = 1usize;
    let mut max_states = 2_000_000usize;
    let mut cache_dir: Option<String> = None;
    let mut invalidate = false;
    let mut json_path: Option<String> = None;
    let mut min_speedup: Option<f64> = None;
    let mut it = raw.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => threads = n,
                None => return usage(),
            },
            "--max-states" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => max_states = n,
                None => return usage(),
            },
            "--cache-dir" => match it.next() {
                Some(dir) => cache_dir = Some(dir.clone()),
                None => return usage(),
            },
            "--invalidate" => invalidate = true,
            "--json" => match it.next() {
                Some(path) => json_path = Some(path.clone()),
                None => return usage(),
            },
            "--min-speedup" => match it.next().and_then(|v| v.parse().ok()) {
                Some(x) => min_speedup = Some(x),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let store = match cache_dir {
        Some(dir) => match CacheStore::new(&dir) {
            Ok(store) => store,
            Err(e) => {
                eprintln!("cannot open cache dir {dir}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => CacheStore::from_env(),
    };
    println!(
        "incremental verification (E20): seven families through {}, {threads} thread(s), \
         max {max_states} states{}",
        store.dir().display(),
        if cache_disabled() {
            " [ANONREG_NO_CACHE set: replay disabled]"
        } else {
            ""
        }
    );
    if invalidate {
        let removed = store.clear();
        println!("invalidated {removed} stored certificate(s)");
    }
    let rows = match e20_incremental::rows(&store, threads, max_states) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("exploration failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", e20_incremental::render(&rows));
    println!("cold/warm count + verdict parity across all seven families: ok");
    let warm_first = rows.iter().filter(|r| r.cold_hit).count();
    println!(
        "{warm_first}/{} families answered from the cache on their first run",
        rows.len()
    );

    if let Some(path) = &json_path {
        let mut out = meta_line(
            "check-verify-cache",
            &[
                ("threads", Json::U64(threads as u64)),
                ("max_states", Json::U64(max_states as u64)),
                ("invalidate", Json::Bool(invalidate)),
                ("cache_dir", Json::Str(store.dir().display().to_string())),
            ],
        )
        .render();
        out.push('\n');
        let mut metrics = e20_incremental::metrics(&rows);
        metrics.push(benchjson::BenchMetric::new(
            "E20",
            "all",
            "warm_first_runs".to_string(),
            warm_first as f64,
            "runs",
        ));
        out.push_str(&benchjson::to_jsonl(&metrics));
        if let Err(e) = std::fs::write(path, &out) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("metrics written to {path} (validate with `check obs validate {path}`)");
    }
    if let Some(floor) = min_speedup {
        let mutex = rows
            .iter()
            .find(|r| r.family == "mutex")
            .map_or(0.0, e20_incremental::Row::speedup);
        if mutex < floor {
            eprintln!("mutex warm-replay speedup {mutex:.2}x is below the required {floor:.2}x");
            return ExitCode::FAILURE;
        }
        println!("mutex warm-replay speedup {mutex:.2}x meets the required {floor:.2}x");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(kind) = raw.first().cloned() else {
        return usage();
    };
    if kind == "lint" {
        return lint_main(raw.get(1).map(String::as_str));
    }
    if kind == "obs" {
        return obs_main(&raw[1..]);
    }
    if kind == "explore" {
        return explore_main(&raw[1..]);
    }
    if kind == "stress" {
        return stress_main(&raw[1..]);
    }
    if kind == "sanitize" {
        return sanitize_main(&raw[1..]);
    }
    if kind == "profile" {
        return profile_main(&raw[1..]);
    }
    if kind == "bench-diff" {
        return bench_diff_main(&raw[1..]);
    }
    if kind == "verify-cache" {
        return verify_cache_main(&raw[1..]);
    }
    let Some(args) = parse(&raw[1..]) else {
        return usage();
    };
    let limits = ExploreConfig {
        max_states: args.max_states,
        crashes: args.crashes,
        parallelism: args.threads,
        por: args.por,
        spill: args.spill,
    };

    match kind.as_str() {
        "mutex" => {
            println!(
                "Figure 1 mutex: m = {}, 2 processes, second view rotated by {}",
                args.m, args.shift
            );
            let sim = Simulation::builder()
                .process(
                    AnonMutex::new(pid(1), args.m).unwrap(),
                    View::identity(args.m),
                )
                .process(
                    AnonMutex::new(pid(2), args.m).unwrap(),
                    View::rotated(args.m, args.shift % args.m),
                )
                .build()
                .unwrap();
            match Explorer::new(sim).limits(limits).run() {
                Ok(graph) => mutex_report(&graph, AnonMutex::section, args.dot.as_deref()),
                Err(e) => {
                    eprintln!("exploration failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "ordered" => {
            println!(
                "Ordered mutex (§2 arbitrary comparisons): m = {}, 2 processes, shift {}",
                args.m, args.shift
            );
            let sim = Simulation::builder()
                .process(
                    OrderedMutex::new(pid(1), args.m).unwrap(),
                    View::identity(args.m),
                )
                .process(
                    OrderedMutex::new(pid(2), args.m).unwrap(),
                    View::rotated(args.m, args.shift % args.m),
                )
                .build()
                .unwrap();
            match Explorer::new(sim).limits(limits).run() {
                Ok(graph) => mutex_report(&graph, OrderedMutex::section, args.dot.as_deref()),
                Err(e) => {
                    eprintln!("exploration failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "hybrid" => {
            println!(
                "Hybrid mutex: {} anonymous + 1 named, 2 processes, shift {}",
                args.m, args.shift
            );
            let anon: Vec<usize> = (0..args.m).map(|j| (j + args.shift) % args.m).collect();
            let sim = Simulation::builder()
                .process(
                    HybridMutex::new(pid(1), args.m).unwrap(),
                    named_view(args.m, (0..args.m).collect()).unwrap(),
                )
                .process(
                    HybridMutex::new(pid(2), args.m).unwrap(),
                    named_view(args.m, anon).unwrap(),
                )
                .build()
                .unwrap();
            match Explorer::new(sim).limits(limits).run() {
                Ok(graph) => mutex_report(&graph, HybridMutex::section, args.dot.as_deref()),
                Err(e) => {
                    eprintln!("exploration failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "consensus" => {
            let registers = args.registers.unwrap_or(2 * args.n - 1);
            println!(
                "Figure 2 consensus: n = {}, {} registers{}",
                args.n,
                registers,
                if registers < 2 * args.n - 1 {
                    " (UNDER-PROVISIONED)"
                } else {
                    ""
                }
            );
            let mut builder = Simulation::builder();
            for i in 0..args.n {
                builder = builder.process(
                    AnonConsensus::new(pid(i as u64 + 1), args.n, i as u64 + 1)
                        .unwrap()
                        .with_registers(registers),
                    View::rotated(registers, (i * args.shift) % registers),
                );
            }
            let sim = builder.build().unwrap();
            match Explorer::new(sim).limits(limits).run() {
                Ok(graph) => {
                    println!(
                        "reachable states: {}  transitions: {}",
                        graph.state_count(),
                        graph.edge_count()
                    );
                    let disagreement = graph.find_state(|s| {
                        let d: Vec<u64> = s
                            .machines()
                            .filter(|m| m.has_decided())
                            .map(anonreg::consensus::AnonConsensus::preference)
                            .collect();
                        d.windows(2).any(|w| w[0] != w[1])
                    });
                    match disagreement {
                        Some(id) => {
                            println!("agreement        : VIOLATED (state {id})");
                            println!("  adversary schedule: {:?}", graph.schedule_to(id));
                        }
                        None => println!("agreement        : holds in every reachable state"),
                    }
                    match check_obstruction_freedom(&graph, 4 * registers * (registers + 2) + 64) {
                        Ok(report) => println!(
                            "obstruction-free : holds (worst solo cost {} ops over {} runs)",
                            report.max_solo_ops, report.solo_runs
                        ),
                        Err(v) => println!("obstruction-free : VIOLATED ({v})"),
                    }
                }
                Err(e) => {
                    eprintln!("exploration failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "renaming" => {
            let registers = args.registers.unwrap_or(2 * args.n - 1);
            println!("Figure 3 renaming: n = {}, {} registers", args.n, registers);
            let mut builder = Simulation::builder();
            for i in 0..args.n {
                builder = builder.process(
                    AnonRenaming::new(pid(i as u64 + 1), args.n)
                        .unwrap()
                        .with_registers(registers),
                    View::rotated(registers, (i * args.shift) % registers),
                );
            }
            let sim = builder.build().unwrap();
            match Explorer::new(sim).limits(limits).run() {
                Ok(graph) => {
                    println!(
                        "reachable states: {}  transitions: {}",
                        graph.state_count(),
                        graph.edge_count()
                    );
                    // Replay every terminal state and spec-check names.
                    let mut violations = 0;
                    let mut terminals = 0;
                    for (id, state) in graph.states() {
                        if !state.all_halted() {
                            continue;
                        }
                        terminals += 1;
                        let schedule = graph.schedule_to(id);
                        let mut replay_builder = Simulation::builder();
                        for i in 0..args.n {
                            replay_builder = replay_builder.process(
                                AnonRenaming::new(pid(i as u64 + 1), args.n)
                                    .unwrap()
                                    .with_registers(registers),
                                View::rotated(registers, (i * args.shift) % registers),
                            );
                        }
                        let mut sim = replay_builder.build().unwrap();
                        for &p in &schedule {
                            sim.step(p).unwrap();
                        }
                        if anonreg::spec::check_renaming(sim.trace(), args.n as u32).is_err() {
                            violations += 1;
                        }
                    }
                    println!(
                        "uniqueness+range : {} ({} terminal states checked)",
                        if violations == 0 { "hold" } else { "VIOLATED" },
                        terminals
                    );
                }
                Err(e) => {
                    eprintln!("exploration failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        _ => return usage(),
    }
    ExitCode::SUCCESS
}
