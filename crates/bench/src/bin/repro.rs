//! `repro` — regenerates every experiment table of the reproduction.
//!
//! ```text
//! cargo run --release -p anonreg-bench --bin repro                    # everything
//! cargo run --release -p anonreg-bench --bin repro -- --quick        # smaller sweeps
//! cargo run --release -p anonreg-bench --bin repro -- e1 e4          # selected experiments
//! cargo run --release -p anonreg-bench --bin repro -- --json out.jsonl
//!                                        # also write schema-v1 bench metrics
//! ```
//!
//! The full-text output of a complete run is not checked in (it embeds
//! machine-dependent timings); regenerate it with
//! `cargo run --release -p anonreg-bench --bin repro > repro_full.txt`.

use std::env;
use std::time::Instant;

use anonreg_bench::benchjson::BenchMetric;
use anonreg_bench::{
    e10_solo_steps, e11_hybrid, e12_starvation, e13_ordered, e14_scaling, e15_faults, e16_symmetry,
    e17_ordering, e18_profile, e19_scale, e1_parity, e20_incremental, e2_ring, e3_consensus,
    e4_consensus_space, e5_renaming, e6_renaming_space, e7_unknown_n, e8_election, e9_threads,
};
use anonreg_obs::schema::meta_line;
use anonreg_obs::Json;

struct Config {
    quick: bool,
    json: Option<String>,
    selected: Vec<String>,
}

impl Config {
    fn wants(&self, id: &str) -> bool {
        self.selected.is_empty() || self.selected.iter().any(|s| s == id)
    }
}

fn main() {
    let mut config = Config {
        quick: false,
        json: None,
        selected: Vec::new(),
    };
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => config.quick = true,
            "--json" => {
                let Some(path) = args.next() else {
                    eprintln!("--json requires a file path");
                    std::process::exit(2);
                };
                config.json = Some(path);
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--quick] [--json FILE] [e1 .. e20]\n\
                     Regenerates the experiment tables of the PODC'17\n\
                     'Coordination Without Prior Agreement' reproduction.\n\
                     --json FILE also writes every metric as schema-v1\n\
                     JSONL bench lines (validate with `check obs validate`)."
                );
                return;
            }
            other => config
                .selected
                .push(other.trim_start_matches("--").to_string()),
        }
    }

    let mut metrics: Vec<BenchMetric> = Vec::new();
    let mut section = |id: &str, title: &str, body: &dyn Fn() -> (String, Vec<BenchMetric>)| {
        if !config.wants(id) {
            return;
        }
        let start = Instant::now();
        let (rendered, section_metrics) = body();
        println!("== {} — {title}", id.to_uppercase());
        println!("{rendered}");
        println!("({id} took {:?})\n", start.elapsed());
        metrics.extend(section_metrics);
    };

    let q = config.quick;

    section(
        "e1",
        "mutex register parity (Theorem 3.1), exhaustive model checking",
        &|| {
            let rows = e1_parity::rows(if q { 4 } else { 6 });
            (e1_parity::render(&rows), e1_parity::metrics(&rows))
        },
    );
    section("e2", "lock-step ring starvation (Theorem 3.4)", &|| {
        let rows = e2_ring::rows(if q { 8 } else { 12 }, 4, if q { 300 } else { 2_000 });
        (e2_ring::render(&rows), e2_ring::metrics(&rows))
    });
    section(
        "e3",
        "consensus agreement/validity sweeps (Theorems 4.1, 4.2)",
        &|| {
            let rows = e3_consensus::rows(if q { 4 } else { 6 }, if q { 50 } else { 400 });
            (e3_consensus::render(&rows), e3_consensus::metrics(&rows))
        },
    );
    section(
        "e4",
        "consensus space lower bound via covering (Theorem 6.3)",
        &|| {
            let rows = e4_consensus_space::rows(if q { 5 } else { 8 });
            (
                e4_consensus_space::render(&rows),
                e4_consensus_space::metrics(&rows),
            )
        },
    );
    section(
        "e5",
        "renaming uniqueness + adaptivity (Theorems 5.1–5.3)",
        &|| {
            let rows = e5_renaming::rows(if q { 4 } else { 6 }, if q { 30 } else { 200 });
            (e5_renaming::render(&rows), e5_renaming::metrics(&rows))
        },
    );
    section(
        "e6",
        "renaming space lower bound via covering (Theorem 6.5)",
        &|| {
            let rows = e6_renaming_space::rows(if q { 5 } else { 8 });
            (
                e6_renaming_space::render(&rows),
                e6_renaming_space::metrics(&rows),
            )
        },
    );
    section("e7", "unknown process count attacks (Theorem 6.2)", &|| {
        let rows = e7_unknown_n::rows(if q { 4 } else { 7 });
        (e7_unknown_n::render(&rows), e7_unknown_n::metrics(&rows))
    });
    section("e8", "election sweeps (§4 note)", &|| {
        let rows = e8_election::rows(if q { 4 } else { 6 }, if q { 30 } else { 200 });
        (e8_election::render(&rows), e8_election::metrics(&rows))
    });
    section(
        "e9",
        "real-thread throughput vs named baselines (§1 plasticity)",
        &|| {
            let (entries, reps) = if q { (2_000, 20) } else { (20_000, 200) };
            let rows = e9_threads::rows(entries, reps, reps);
            (e9_threads::render(&rows), e9_threads::metrics(&rows))
        },
    );
    section("e10", "solo step complexity vs proof bounds", &|| {
        let rows = e10_solo_steps::rows(if q { 6 } else { 10 });
        (
            e10_solo_steps::render(&rows),
            e10_solo_steps::metrics(&rows),
        )
    });
    section(
        "e11",
        "hybrid model: m anonymous + 1 named register (§8)",
        &|| {
            let rows = e11_hybrid::rows(if q { 3 } else { 4 });
            (e11_hybrid::render(&rows), e11_hybrid::metrics(&rows))
        },
    );
    section(
        "e12",
        "fair starvation across mutual exclusion algorithms (§8)",
        &|| {
            let rows = e12_starvation::rows();
            (
                e12_starvation::render(&rows),
                e12_starvation::metrics(&rows),
            )
        },
    );
    section(
        "e13",
        "arbitrary-comparisons model: id order breaks ties (§2)",
        &|| {
            let rows = e13_ordered::rows(if q { 3 } else { 4 });
            (e13_ordered::render(&rows), e13_ordered::metrics(&rows))
        },
    );
    section(
        "e14",
        "parallel explorer thread scaling on Figure 2 consensus",
        &|| {
            let rows = if q {
                e14_scaling::rows(2, 3, &[1, 2], 200_000)
            } else {
                e14_scaling::rows(3, 2, &[1, 2, 4], 4_000_000)
            }
            .expect("scaling workload exceeded its state limit");
            (e14_scaling::render(&rows), e14_scaling::metrics(&rows))
        },
    );

    section(
        "e15",
        "fault-injection stress sweeps under the §2 failure model",
        &|| {
            let rows = e15_faults::rows(1, if q { 10 } else { 50 });
            (e15_faults::render(&rows), e15_faults::metrics(&rows))
        },
    );

    section(
        "e16",
        "symmetry-reduced exploration (§2 anonymity, Theorem 3.4)",
        &|| {
            let workloads = if q {
                vec![
                    e16_symmetry::Workload::MutexRing { m: 2, procs: 2 },
                    e16_symmetry::Workload::SymmetricConsensus { n: 2, registers: 2 },
                ]
            } else {
                e16_symmetry::Workload::full_scale().to_vec()
            };
            let mut rows = Vec::new();
            for w in workloads {
                rows.extend(
                    e16_symmetry::rows(w, 4, 8_000_000)
                        .expect("symmetry workload exceeded its state limit"),
                );
            }
            (e16_symmetry::render(&rows), e16_symmetry::metrics(&rows))
        },
    );

    section(
        "e17",
        "memory-ordering inference over the vector-clock sanitizer (§2 model)",
        &|| {
            let schedules = if q {
                e17_ordering::QUICK_SCHEDULES
            } else {
                e17_ordering::DEFAULT_SCHEDULES
            };
            let certs = e17_ordering::certifications(1, schedules);
            let fixtures = e17_ordering::fixture_outcomes(1);
            let rendered = format!(
                "{}\nnegative controls (must be flagged):\n{}",
                e17_ordering::render(&certs),
                e17_ordering::render_fixtures(&fixtures)
            );
            (rendered, e17_ordering::metrics(&certs, &fixtures))
        },
    );

    section(
        "e18",
        "wall-clock phase profiles: explorer workers + runtime driver (§2 on the clock)",
        &|| {
            let mut runs = e18_profile::rows(!q, if q { 2 } else { 4 }, 8_000_000)
                .expect("profiled workloads fit the state budget");
            runs.push(e18_profile::profile_runtime(3, if q { 50 } else { 200 }));
            (e18_profile::render(&runs), e18_profile::metrics(&runs))
        },
    );

    section(
        "e19",
        "model checking at scale: stats mode + POR + disk spill",
        &|| {
            let (workloads, with_baseline) = if q {
                (e19_scale::quick().to_vec(), true)
            } else {
                (e19_scale::full_scale().to_vec(), false)
            };
            let rows = e19_scale::rows(&workloads, with_baseline, 4, 100_000_000)
                .expect("scale workload exceeded its state limit");
            (e19_scale::render(&rows), e19_scale::metrics(&rows))
        },
    );

    section(
        "e20",
        "incremental verification: cold explore vs warm certificate replay",
        &|| {
            let dir =
                std::env::temp_dir().join(format!("anonreg-repro-e20-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let store =
                anonreg_sim::prelude::CacheStore::new(&dir).expect("cache dir is creatable");
            let rows = e20_incremental::rows(&store, 1, 8_000_000)
                .expect("cache workload exceeded its state limit");
            let _ = std::fs::remove_dir_all(&dir);
            (
                e20_incremental::render(&rows),
                e20_incremental::metrics(&rows),
            )
        },
    );

    if let Some(path) = &config.json {
        let mut out = meta_line(
            "repro",
            &[
                ("mode", Json::Str(if q { "quick" } else { "full" }.into())),
                ("metrics", Json::U64(metrics.len() as u64)),
            ],
        )
        .render();
        out.push('\n');
        for metric in &metrics {
            out.push_str(&metric.to_jsonl_line());
            out.push('\n');
        }
        if let Err(e) = std::fs::write(path, &out) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {} metric lines to {path}", metrics.len());
    }
}
