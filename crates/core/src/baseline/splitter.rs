//! Moir–Anderson splitter-grid renaming — the classic *named-register*
//! renaming baseline.
//!
//! A *splitter* is a two-register (X, Y) gadget with the property that of
//! the processes entering it, at most one *stops*, and not all of them can
//! leave in the same direction. Arranged in a triangular `n × n` grid, the
//! splitters give each of `k ≤ n` participants a distinct grid position
//! within the first `k` diagonals, i.e. a distinct name in
//! `{1 .. k(k+1)/2}` — wait-free, but **not perfect** renaming (the paper's
//! Figure 3 achieves names `{1..k}`, at the cost of obstruction-free
//! progress) and entirely dependent on agreed register names: every process
//! must find splitter (0,0) first.

use std::fmt;

use anonreg_model::{Machine, Pid, Step};

use crate::renaming::{RenamingConfigError, RenamingEvent};

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Pc {
    /// About to write X at the current splitter.
    WriteX,
    /// X written; read of Y issued next.
    ReadY,
    /// Y was clear; we set Y and will re-read X.
    WriteY,
    /// Y set; read of X issued next.
    ReadX,
    /// Name announced; next step halts.
    Named,
}

/// Moir–Anderson grid renaming: `k ≤ n` participants wait-free acquire
/// distinct names from `{1 .. k(k+1)/2}` using `n(n+1)` *named* registers
/// (an X and a Y register per splitter in a triangular grid).
///
/// Splitters are numbered along diagonals — splitter `(row, col)` has index
/// `d(d+1)/2 + row` with `d = row + col` — so that the names reachable by
/// `k` processes (which never leave the first `k` diagonals) are exactly
/// `{1 .. k(k+1)/2}`, making the algorithm adaptive in the weaker,
/// quadratic sense.
///
/// # Example
///
/// ```
/// use anonreg::baseline::SplitterRenaming;
/// use anonreg::Machine;
/// use anonreg::Pid;
///
/// let machine = SplitterRenaming::new(Pid::new(4).unwrap(), 3)?;
/// assert_eq!(machine.register_count(), 12); // 6 splitters × 2 registers
/// # Ok::<(), anonreg::renaming::RenamingConfigError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SplitterRenaming {
    pid: Pid,
    n: usize,
    row: usize,
    col: usize,
    pc: Pc,
}

impl SplitterRenaming {
    /// Creates the machine for process `pid`, one of at most `n`
    /// participants.
    ///
    /// # Errors
    ///
    /// Returns [`RenamingConfigError`] if `n == 0`.
    pub fn new(pid: Pid, n: usize) -> Result<Self, RenamingConfigError> {
        // Reuse the renaming config error for a uniform API surface.
        let _probe = crate::renaming::AnonRenaming::new(pid, n)?;
        Ok(SplitterRenaming {
            pid,
            n,
            row: 0,
            col: 0,
            pc: Pc::WriteX,
        })
    }

    /// The number of splitters in the triangular grid.
    #[must_use]
    pub fn splitters(n: usize) -> usize {
        n * (n + 1) / 2
    }

    /// Diagonal-major index of the current splitter.
    fn splitter_index(&self) -> usize {
        let d = self.row + self.col;
        d * (d + 1) / 2 + self.row
    }

    fn x_reg(&self) -> usize {
        2 * self.splitter_index()
    }

    fn y_reg(&self) -> usize {
        2 * self.splitter_index() + 1
    }

    /// Moves to the next splitter, panicking if the grid is exhausted
    /// (which requires more than `n` participants — a contract violation).
    fn advance(&mut self, down: bool) -> Step<u64, RenamingEvent> {
        if down {
            self.row += 1;
        } else {
            self.col += 1;
        }
        assert!(
            self.row + self.col < self.n,
            "splitter grid exhausted: more than n = {} participants",
            self.n
        );
        self.pc = Pc::ReadY;
        Step::Write(self.x_reg(), self.pid.get())
    }
}

impl Machine for SplitterRenaming {
    type Value = u64;
    type Event = RenamingEvent;

    fn pid(&self) -> Pid {
        self.pid
    }

    fn register_count(&self) -> usize {
        2 * Self::splitters(self.n)
    }

    fn resume(&mut self, read: Option<u64>) -> Step<u64, RenamingEvent> {
        match self.pc {
            Pc::WriteX => {
                debug_assert!(read.is_none());
                self.pc = Pc::ReadY;
                Step::Write(self.x_reg(), self.pid.get())
            }
            Pc::ReadY => match read {
                None => Step::Read(self.y_reg()),
                Some(y) => {
                    if y != 0 {
                        // Someone already passed through: go right.
                        self.advance(false)
                    } else {
                        self.pc = Pc::WriteY;
                        Step::Write(self.y_reg(), 1)
                    }
                }
            },
            Pc::WriteY => {
                debug_assert!(read.is_none());
                self.pc = Pc::ReadX;
                Step::Read(self.x_reg())
            }
            Pc::ReadX => {
                let x = read.expect("X read result expected");
                if x == self.pid.get() {
                    // Stopped: our name is this splitter's index + 1.
                    let name = (self.splitter_index() + 1) as u32;
                    self.pc = Pc::Named;
                    Step::Event(RenamingEvent::Named(name))
                } else {
                    // Someone overwrote X: go down.
                    self.advance(true)
                }
            }
            Pc::Named => Step::Halt,
        }
    }
}

impl fmt::Debug for SplitterRenaming {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SplitterRenaming")
            .field("pid", &self.pid)
            .field("n", &self.n)
            .field("row", &self.row)
            .field("col", &self.col)
            .field("pc", &self.pc)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u64) -> Pid {
        Pid::new(n).unwrap()
    }

    fn run_solo(mut machine: SplitterRenaming, regs: &mut [u64]) -> u32 {
        let mut read = None;
        for _ in 0..100_000 {
            match machine.resume(read.take()) {
                Step::Read(j) => read = Some(regs[j]),
                Step::Write(j, v) => regs[j] = v,
                Step::Event(RenamingEvent::Named(name)) => return name,
                Step::Halt => panic!("halt before naming"),
            }
        }
        panic!("machine did not acquire a name");
    }

    #[test]
    fn grid_sizes() {
        assert_eq!(SplitterRenaming::splitters(1), 1);
        assert_eq!(SplitterRenaming::splitters(3), 6);
        assert_eq!(SplitterRenaming::splitters(4), 10);
        let m = SplitterRenaming::new(pid(1), 4).unwrap();
        assert_eq!(m.register_count(), 20);
    }

    #[test]
    fn solo_process_stops_at_first_splitter() {
        let machine = SplitterRenaming::new(pid(9), 3).unwrap();
        let mut regs = vec![0u64; machine.register_count()];
        assert_eq!(run_solo(machine, &mut regs), 1);
    }

    #[test]
    fn sequential_processes_get_distinct_names_within_bound() {
        // Sequential runs: each later process sees the earlier trails and
        // moves right along the top row.
        let n = 4;
        let mut regs = vec![0u64; 2 * SplitterRenaming::splitters(n)];
        let mut names = Vec::new();
        for id in 1..=4u64 {
            let machine = SplitterRenaming::new(pid(id), n).unwrap();
            names.push(run_solo(machine, &mut regs));
        }
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            names.len(),
            "names must be distinct: {names:?}"
        );
        let k = 4;
        assert!(names.iter().all(|&nm| nm as usize <= k * (k + 1) / 2));
    }

    #[test]
    fn diagonal_indexing_matches_adaptivity() {
        // Splitter (0,0) → 1; diagonal 1 → names 2,3; diagonal 2 → 4,5,6.
        let mut m = SplitterRenaming::new(pid(1), 3).unwrap();
        assert_eq!(m.splitter_index(), 0);
        m.row = 0;
        m.col = 1;
        assert_eq!(m.splitter_index(), 1);
        m.row = 1;
        m.col = 0;
        assert_eq!(m.splitter_index(), 2);
        m.row = 2;
        m.col = 0;
        assert_eq!(m.splitter_index(), 5);
    }

    #[test]
    fn contender_in_x_pushes_us_down() {
        // Pre-set X of splitter 0 to another pid; Y clear. We write X, read
        // Y (0), write Y, read X — but the other process overwrites X in
        // between. We must go down to splitter (1,0), index 2, name 3.
        let mut machine = SplitterRenaming::new(pid(5), 3).unwrap();
        let mut regs = vec![0u64; machine.register_count()];
        let mut read = None;
        let mut step_count = 0;
        loop {
            match machine.resume(read.take()) {
                Step::Read(j) => {
                    if j == 0 && step_count >= 2 {
                        // Simulate the overwrite of X at splitter 0.
                        regs[0] = 7;
                    }
                    read = Some(regs[j]);
                }
                Step::Write(j, v) => regs[j] = v,
                Step::Event(RenamingEvent::Named(name)) => {
                    assert_eq!(name, 3); // splitter (1,0) in diagonal order
                    return;
                }
                Step::Halt => panic!("halt before naming"),
            }
            step_count += 1;
        }
    }

    #[test]
    #[should_panic(expected = "splitter grid exhausted")]
    fn too_many_participants_panics() {
        // n = 1: a single splitter. Force a right move by pre-setting Y.
        let mut machine = SplitterRenaming::new(pid(5), 1).unwrap();
        let regs = [0u64, 1]; // Y already set
        let mut read = None;
        for _ in 0..10 {
            match machine.resume(read.take()) {
                Step::Read(j) => read = Some(regs[j]),
                Step::Write(..) => {}
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
