//! The on-disk certificate store: one file per structural key.
//!
//! A [`CacheStore`] is just a directory whose entries are named by the
//! 32-hex-digit structural key they certify (`<hi><lo>.cert`). Because
//! the key *is* the identity of the verification problem, there is no
//! index to maintain and no locking to get wrong: writers land files
//! atomically (see [`crate::cert::CertWriter`]), lookups are a single
//! `exists`, and invalidation is `remove_file`.

use std::io;
use std::path::{Path, PathBuf};

use anonreg_model::fingerprint::Fp128;

/// Environment variable overriding the default store directory.
pub const CACHE_DIR_ENV: &str = "ANONREG_CACHE_DIR";

/// Escape-hatch environment variable: when set (and non-empty), cached
/// certificates are never *served* — explorations run cold. Emission
/// still happens, so the cache stays fresh for the next run that wants
/// it.
pub const NO_CACHE_ENV: &str = "ANONREG_NO_CACHE";

/// Returns whether the `ANONREG_NO_CACHE` escape hatch is engaged.
#[must_use]
pub fn cache_disabled() -> bool {
    std::env::var_os(NO_CACHE_ENV).is_some_and(|v| !v.is_empty())
}

/// A directory of reachability certificates keyed by structural hash.
#[derive(Clone, Debug)]
pub struct CacheStore {
    dir: PathBuf,
}

impl CacheStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(CacheStore { dir })
    }

    /// Opens the store named by `ANONREG_CACHE_DIR`, defaulting to
    /// `anonreg-cache` under the system temp directory. Creation
    /// failures fall back to the (possibly uncreatable) path itself —
    /// lookups against it simply miss, which degrades to cold runs
    /// rather than errors.
    #[must_use]
    pub fn from_env() -> Self {
        let dir = std::env::var_os(CACHE_DIR_ENV)
            .map(PathBuf::from)
            .unwrap_or_else(|| std::env::temp_dir().join("anonreg-cache"));
        let _ = std::fs::create_dir_all(&dir);
        CacheStore { dir }
    }

    /// The store's root directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The certificate path for `key` — `<hi:016x><lo:016x>.cert`.
    #[must_use]
    pub fn path(&self, key: Fp128) -> PathBuf {
        self.dir
            .join(format!("{:016x}{:016x}.cert", key.hi, key.lo))
    }

    /// Whether a certificate for `key` is present.
    #[must_use]
    pub fn contains(&self, key: Fp128) -> bool {
        self.path(key).exists()
    }

    /// Removes the certificate for `key`, reporting whether one existed.
    #[must_use]
    pub fn invalidate(&self, key: Fp128) -> bool {
        std::fs::remove_file(self.path(key)).is_ok()
    }

    /// Removes every `.cert` file in the store, returning how many were
    /// deleted.
    #[must_use]
    pub fn clear(&self) -> usize {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return 0;
        };
        let mut removed = 0;
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "cert") && std::fs::remove_file(&path).is_ok()
            {
                removed += 1;
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh_store(name: &str) -> CacheStore {
        let dir =
            std::env::temp_dir().join(format!("anonreg-store-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CacheStore::new(dir).unwrap()
    }

    #[test]
    fn paths_are_keyed_by_full_128_bits() {
        let store = fresh_store("paths");
        let a = Fp128 { lo: 1, hi: 2 };
        let b = Fp128 { lo: 2, hi: 1 };
        assert_ne!(store.path(a), store.path(b));
        assert!(store
            .path(a)
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .ends_with(".cert"));
    }

    #[test]
    fn contains_invalidate_clear_lifecycle() {
        let store = fresh_store("lifecycle");
        let key = Fp128 { lo: 42, hi: 7 };
        assert!(!store.contains(key));
        assert!(!store.invalidate(key));
        std::fs::write(store.path(key), b"stub").unwrap();
        assert!(store.contains(key));
        assert!(store.invalidate(key));
        assert!(!store.contains(key));
        std::fs::write(store.path(key), b"stub").unwrap();
        std::fs::write(store.dir().join("unrelated.txt"), b"keep").unwrap();
        assert_eq!(store.clear(), 1);
        assert!(store.dir().join("unrelated.txt").exists());
    }
}
