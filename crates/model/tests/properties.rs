//! Property-style tests for the model vocabulary.
//!
//! These are randomized tests driven by the workspace's own seeded
//! [`Rng64`] generator (fixed seeds, so every run explores the same cases
//! and failures are replayable) — the workspace builds fully offline with
//! zero external dependencies, so no external property-testing framework is
//! used.

use anonreg_model::rng::Rng64;
use anonreg_model::trace::{Trace, TraceOp};
use anonreg_model::{Pid, PidMap, View};

const CASES: usize = 128;

/// A random permutation of `0..m` as a `View`.
fn perm(rng: &mut Rng64, m: usize) -> View {
    View::from_perm(rng.permutation(m)).expect("shuffled range is a permutation")
}

#[test]
fn from_perm_accepts_exactly_permutations() {
    let mut rng = Rng64::seed_from_u64(0xA11CE);
    for _ in 0..CASES {
        let m = rng.gen_index(10);
        let mut raw: Vec<usize> = (0..m).map(|_| rng.gen_index(16)).collect();
        let is_permutation = {
            let mut seen = vec![false; m];
            raw.iter().all(|&x| {
                if x < m && !seen[x] {
                    seen[x] = true;
                    true
                } else {
                    false
                }
            })
        };
        assert_eq!(View::from_perm(raw.clone()).is_ok(), is_permutation);
        // Sorting a duplicate-free in-range vector makes it the identity.
        if is_permutation {
            raw.sort_unstable();
            assert_eq!(View::from_perm(raw).unwrap(), View::identity(m));
        }
    }
}

#[test]
fn compose_is_associative() {
    let mut rng = Rng64::seed_from_u64(0xB0B);
    for _ in 0..CASES {
        let m = rng.gen_range_inclusive(1, 9);
        let a = perm(&mut rng, m);
        let b = perm(&mut rng, m);
        let c = View::rotated(m, rng.gen_index(m));
        let left = a.compose(&b).compose(&c);
        let right = a.compose(&b.compose(&c));
        assert_eq!(left, right);
    }
}

#[test]
fn identity_is_neutral() {
    let mut rng = Rng64::seed_from_u64(0xC0FFEE);
    for _ in 0..CASES {
        let m = rng.gen_range_inclusive(1, 9);
        let view = perm(&mut rng, m);
        assert_eq!(View::identity(m).compose(&view), view.clone());
        assert_eq!(view.compose(&View::identity(m)), view);
    }
}

#[test]
fn rotations_add_modulo_m() {
    let mut rng = Rng64::seed_from_u64(0xD1CE);
    for _ in 0..CASES {
        let m = rng.gen_range_inclusive(1, 11);
        let s1 = rng.gen_index(24);
        let s2 = rng.gen_index(24);
        let composed = View::rotated(m, s1 % m).compose(&View::rotated(m, s2 % m));
        assert_eq!(composed, View::rotated(m, (s1 + s2) % m));
    }
}

#[test]
fn pid_round_trips_through_strings() {
    let mut rng = Rng64::seed_from_u64(0xE66);
    for _ in 0..CASES {
        let raw = rng.next_u64().max(1);
        let p = Pid::new(raw).unwrap();
        let parsed: Pid = p.to_string().parse().unwrap();
        assert_eq!(parsed, p);
        assert_eq!(parsed.get(), raw);
    }
}

#[test]
fn pid_map_identity_law() {
    let mut rng = Rng64::seed_from_u64(0xF00);
    for _ in 0..CASES {
        let len = rng.gen_index(8);
        let pids: Vec<Pid> = (0..len)
            .map(|_| Pid::new(rng.next_u64().max(1)).unwrap())
            .collect();
        let mapped = pids.map_pids(&mut |p| p);
        assert_eq!(mapped, pids);
    }
}

#[test]
fn pid_map_composition_law() {
    let mut rng = Rng64::seed_from_u64(0xAB1E);
    for _ in 0..CASES {
        let len = rng.gen_range_inclusive(1, 7);
        let pids: Vec<Pid> = (0..len)
            .map(|_| Pid::new(rng.gen_range_inclusive(1, 999) as u64).unwrap())
            .collect();
        let off1 = rng.gen_range_inclusive(1, 49) as u64;
        let off2 = rng.gen_range_inclusive(1, 49) as u64;
        let mut f = |p: Pid| Pid::new(p.get() + off1).unwrap();
        let mut g = |p: Pid| Pid::new(p.get() + off2).unwrap();
        let two_step = pids.map_pids(&mut f).map_pids(&mut g);
        let fused = pids.map_pids(&mut |p| g(f(p)));
        assert_eq!(two_step, fused);
    }
}

#[test]
fn trace_accounting_is_consistent() {
    let mut rng = Rng64::seed_from_u64(0xBEEF);
    for _ in 0..CASES {
        let len = rng.gen_index(40);
        let ops: Vec<(usize, usize, bool)> = (0..len)
            .map(|_| {
                (
                    rng.gen_index(3),
                    rng.gen_index(4),
                    rng.next_u64().is_multiple_of(2),
                )
            })
            .collect();
        let mut trace: Trace<u64, ()> = Trace::new();
        for &(proc, reg, is_write) in &ops {
            let pid = Pid::new(proc as u64 + 1).unwrap();
            let op = if is_write {
                TraceOp::Write {
                    local: reg,
                    physical: reg,
                    value: 1,
                }
            } else {
                TraceOp::Read {
                    local: reg,
                    physical: reg,
                    value: 0,
                }
            };
            trace.record(proc, pid, op);
        }
        assert_eq!(trace.len(), ops.len());
        for proc in 0..3 {
            let expected = ops.iter().filter(|&&(p, _, _)| p == proc).count();
            assert_eq!(trace.memory_ops_of(proc), expected);
            // The write set contains exactly the distinct registers written.
            let mut ws = trace.write_set_of(proc);
            ws.sort_unstable();
            let mut truth: Vec<usize> = ops
                .iter()
                .filter(|&&(p, _, w)| p == proc && w)
                .map(|&(_, r, _)| r)
                .collect();
            truth.sort_unstable();
            truth.dedup();
            assert_eq!(ws, truth);
        }
    }
}
