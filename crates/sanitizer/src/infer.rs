//! Ordering inference: re-execute each algorithm family under
//! systematically weakened orderings and certify the minimal plan.
//!
//! For every family the pass walks the three site classes in
//! [`Site::ALL`] order (reads, then claim writes, then clear writes) and,
//! for each, climbs the site's ladder from weakest to strongest
//! (`Relaxed → Acquire/Release → SeqCst`), keeping the other sites at
//! their current plan. A rung is **accepted** when a sweep of seeded
//! schedules — half of them under seeded [`FaultPlan`]
//! crash/stall/restart schedules — produces neither a missing
//! happens-before edge nor a safety violation; otherwise the rung is
//! **rejected** with the seed and witness that killed it, and the next
//! stronger rung is tried. `SeqCst` tops every ladder, so a correct
//! family always certifies.
//!
//! The result is one [`Certificate`] per site: an empirical,
//! deterministic, replayable justification (same base seed ⇒ same
//! certificates) for running that site at the certified ordering *within
//! the sanitizer's observation model* — see the caveats on
//! [`crate::register`]. Timeouts are counted but never treated as
//! violations, mirroring the E15 policy: a crash mid-doorway may
//! legitimately block a mutex survivor forever.

use std::collections::HashSet;
use std::sync::atomic::Ordering;

use anonreg::baseline::Peterson;
use anonreg::consensus::{AnonConsensus, ConsensusEvent};
use anonreg::election::{AnonElection, ElectionEvent};
use anonreg::hybrid::{named_view, HybridMutex};
use anonreg::mutex::{AnonMutex, MutexEvent};
use anonreg::ordered::OrderedMutex;
use anonreg::renaming::{AnonRenaming, RenamingEvent};
use anonreg_model::rng::Rng64;
use anonreg_model::{Machine, Pid, View};
use anonreg_runtime::{FaultPlan, FaultProfile};

use crate::exec::{ExecEventKind, ExecReport, Factory, SanitizedExec};
use crate::plan::{OrderingPlan, Site};
use crate::register::SanitizerConfig;
use crate::report::{Certificate, OrderingViolation};

/// The algorithm families the inference pass certifies — the same seven
/// `check stress` sweeps.
pub const FAMILIES: [&str; 7] = [
    "mutex",
    "hybrid",
    "ordered",
    "baseline",
    "consensus",
    "election",
    "renaming",
];

/// Scheduler-step budget for one lock-family run.
const LOCK_BUDGET: u64 = 60_000;

/// Scheduler-step budget for one one-shot run (consensus, election,
/// renaming).
const ONESHOT_BUDGET: u64 = 120_000;

/// Critical-section entries each lock participant attempts.
const LOCK_CYCLES: u64 = 2;

/// The seed of schedule `index` in a sweep based on `base_seed` — the
/// same derivation `check stress` uses, so a printed seed replays with
/// `check sanitize --family F --replay SEED`.
#[must_use]
pub fn schedule_seed(base_seed: u64, index: u64) -> u64 {
    base_seed.wrapping_add(index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Whether schedule `index` of a sweep runs under an injected fault plan
/// (every odd schedule does).
#[must_use]
pub fn schedule_has_faults(index: u64) -> bool {
    index % 2 == 1
}

/// Outcome of one seeded sanitized run of one family.
#[derive(Clone, Debug)]
pub struct FamilyOutcome {
    /// Missing happens-before edges flagged.
    pub ordering_violations: u64,
    /// The first flagged violation, witness included.
    pub first_violation: Option<OrderingViolation>,
    /// Human-readable safety violation (mutual exclusion / agreement /
    /// validity / uniqueness), if any.
    pub safety: Option<String>,
    /// The step budget ran out (liveness loss, never a violation).
    pub timed_out: bool,
    /// Synchronizes-with edges established.
    pub hb_edges: u64,
    /// Loads that returned a non-newest store.
    pub stale_reads: u64,
    /// Scheduler steps consumed.
    pub steps: u64,
}

impl FamilyOutcome {
    /// Neither a missing edge nor a safety violation (timeouts allowed).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.ordering_violations == 0 && self.safety.is_none()
    }
}

/// Aggregated result of sweeping one plan over seeded schedules.
#[derive(Clone, Debug)]
pub struct PlanSweep {
    /// Total missing-edge violations across the sweep.
    pub violations: u64,
    /// Seed and witness of the first flagged violation.
    pub first_violation: Option<(u64, OrderingViolation)>,
    /// Seed and description of the first safety violation.
    pub safety: Option<(u64, String)>,
    /// Total synchronizes-with edges.
    pub hb_edges: u64,
    /// Total stale reads.
    pub stale_reads: u64,
    /// Schedules that exhausted their step budget.
    pub timeouts: u64,
}

impl PlanSweep {
    /// No rung-rejecting observation anywhere in the sweep.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations == 0 && self.safety.is_none()
    }
}

/// A ladder rung the inference pass tried and rejected.
#[derive(Clone, Debug)]
pub struct RejectedRung {
    /// The site being weakened.
    pub site: Site,
    /// The rejected ordering.
    pub ordering: Ordering,
    /// Why (with the seed that replays it).
    pub reason: String,
}

/// The inference pass's verdict for one family.
#[derive(Clone, Debug)]
pub struct FamilyCertification {
    /// The family certified.
    pub family: &'static str,
    /// The accepted minimal plan.
    pub plan: OrderingPlan,
    /// One certificate per site at the accepted plan.
    pub certificates: Vec<Certificate>,
    /// `true` when the final verification sweep at the accepted plan was
    /// clean (always, for a correct family — `SeqCst` tops every ladder).
    pub clean: bool,
    /// Violations in the final verification sweep (0 when `clean`).
    pub violations_at_plan: u64,
    /// Synchronizes-with edges in the final sweep.
    pub hb_edges: u64,
    /// Stale reads in the final sweep.
    pub stale_reads: u64,
    /// Budget exhaustions in the final sweep.
    pub timeouts: u64,
    /// Schedules per sweep.
    pub schedules: u64,
    /// Base seed of every sweep.
    pub base_seed: u64,
    /// The rungs rejected on the way down, in trial order.
    pub rejected: Vec<RejectedRung>,
}

/// Runs one seeded sanitized schedule of `family` under `plan`.
///
/// # Panics
///
/// Panics if `family` is not in [`FAMILIES`].
#[must_use]
pub fn run_family(family: &str, plan: OrderingPlan, seed: u64, faults: bool) -> FamilyOutcome {
    match family {
        "mutex" => mutex_cell(plan, seed, faults),
        "hybrid" => hybrid_cell(plan, seed, faults),
        "ordered" => ordered_cell(plan, seed, faults),
        "baseline" => baseline_cell(plan, seed, faults),
        "consensus" => consensus_cell(plan, seed, faults),
        "election" => election_cell(plan, seed, faults),
        "renaming" => renaming_cell(plan, seed, faults),
        other => panic!("unknown sanitizer family {other:?}"),
    }
}

/// Sweeps `schedules` seeded schedules of `family` under `plan`, odd
/// indices under injected faults.
#[must_use]
pub fn sweep_plan(family: &str, plan: OrderingPlan, base_seed: u64, schedules: u64) -> PlanSweep {
    let mut sweep = PlanSweep {
        violations: 0,
        first_violation: None,
        safety: None,
        hb_edges: 0,
        stale_reads: 0,
        timeouts: 0,
    };
    for index in 0..schedules {
        let seed = schedule_seed(base_seed, index);
        let outcome = run_family(family, plan, seed, schedule_has_faults(index));
        sweep.violations += outcome.ordering_violations;
        if sweep.first_violation.is_none() {
            if let Some(v) = outcome.first_violation {
                sweep.first_violation = Some((seed, v));
            }
        }
        if sweep.safety.is_none() {
            if let Some(s) = outcome.safety {
                sweep.safety = Some((seed, s));
            }
        }
        sweep.hb_edges += outcome.hb_edges;
        sweep.stale_reads += outcome.stale_reads;
        if outcome.timed_out {
            sweep.timeouts += 1;
        }
    }
    sweep
}

/// Certifies the minimal per-site orderings for `family`: greedy descent,
/// one site at a time in [`Site::ALL`] order, each site's ladder climbed
/// weakest-first, followed by a verification sweep at the accepted plan.
///
/// Deterministic in `(family, base_seed, schedules)` — re-running
/// re-derives byte-identical certificates.
#[must_use]
pub fn certify_family(family: &'static str, base_seed: u64, schedules: u64) -> FamilyCertification {
    let mut plan = OrderingPlan::seq_cst();
    let mut rejected = Vec::new();
    for site in Site::ALL {
        for ordering in site.ladder() {
            let candidate = plan.with_site(site, ordering);
            let sweep = sweep_plan(family, candidate, base_seed, schedules);
            if sweep.is_clean() {
                plan = candidate;
                break;
            }
            let reason = match (&sweep.first_violation, &sweep.safety) {
                (Some((seed, v)), _) => format!(
                    "{} (p{} read r{}@{:?} of p{}'s {:?} store, seed {seed})",
                    v.kind.name(),
                    v.reader,
                    v.register,
                    v.read_ordering,
                    v.writer,
                    v.write_ordering,
                ),
                (None, Some((seed, s))) => format!("safety: {s} (seed {seed})"),
                (None, None) => unreachable!("unclean sweep carries a reason"),
            };
            rejected.push(RejectedRung {
                site,
                ordering,
                reason,
            });
        }
    }
    let verify = sweep_plan(family, plan, base_seed, schedules);
    let certificates = Site::ALL
        .iter()
        .map(|&site| Certificate {
            id: Certificate::id_for(family, site),
            family,
            site,
            ordering: plan.of(site),
            schedules,
            base_seed,
        })
        .collect();
    FamilyCertification {
        family,
        plan,
        certificates,
        clean: verify.is_clean(),
        violations_at_plan: verify.violations,
        hb_edges: verify.hb_edges,
        stale_reads: verify.stale_reads,
        timeouts: verify.timeouts,
        schedules,
        base_seed,
        rejected,
    }
}

/// The two *structural* runtime certificates `check sanitize` prints
/// alongside the per-family ones: relaxed sites in `anonreg-runtime`
/// whose justification is architectural (the value never feeds algorithm
/// state) rather than a family sweep. The code sites cite these IDs.
#[must_use]
pub fn runtime_site_notes() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "ORD-RT-PEEK-001",
            "Register::peek / PackedAtomicRegister::peek (Relaxed load): backoff spin-loop \
             hint only — the peeked value decides when to re-read, never what the machine \
             observes; every value the machine consumes still goes through Register::read",
        ),
        (
            "ORD-RT-HANDLE-002",
            "SharedHandles claim/release (AcqRel fetch_add / Release fetch_sub): a pure \
             occupancy counter — the slot's acquire/release pairing orders handle reuse, \
             and no register data is published through it",
        ),
    ]
}

/// Structural certificates for the parallel explorer's lock-free dedup
/// substrate (`anonreg-sim`'s `explore/dedup.rs` and `explore/par.rs`).
/// Like [`runtime_site_notes`] these are architectural arguments, not
/// family sweeps: each justifies why an ordering weaker than `SeqCst` is
/// already minimal at its site. The code sites cite these IDs.
#[must_use]
pub fn explorer_site_notes() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "ORD-DEDUP-CLAIM-001",
            "FpTable slot claim (Relaxed/Relaxed compare_exchange on fp): the CAS transfers \
             slot *ownership* only, which its atomicity alone guarantees — no payload is \
             read through fp, so the claim needs no happens-before edge; all code/location \
             publication synchronises through meta",
        ),
        (
            "ORD-DEDUP-META-002",
            "FpTable meta publish (Release store) / probe (Acquire load): the table's one \
             true synchronisation edge, the Arc-style publication idiom — the claimant \
             stores meta only after the canonical code (arena slot or spill location) is \
             in place, and a reader that acquires a published meta therefore sees the code",
        ),
        (
            "ORD-DEDUP-SPIN-003",
            "FpTable publication-wait spin (Acquire loads of meta with periodic abort \
             checks): bounded by the claim-to-publish window because claimants always \
             publish — the state-limit path publishes a sentinel instead of an id — so a \
             spinning reader can only wait on live progress or observe the abort flag",
        ),
        (
            "ORD-DEDUP-BLOOM-004",
            "Bloom filter words (Relaxed fetch_or / load): bits are set before the claim \
             CAS, so a single-threaded probe sequence is never-false-negative; under \
             concurrency a query may race a sibling's insert, so the parallel engine \
             treats a miss as a statistic and never skips slot verification on it",
        ),
        (
            "ORD-EXP-PENDING-005",
            "parallel explorer pending counter (Relaxed fetch_add/fetch_sub/load): on this \
             single atomic, every child's increment precedes its parent's decrement in the \
             incrementing thread's program order, so coherence of the counter's \
             modification order alone guarantees an observed zero means the frontier is \
             truly drained — no cross-variable ordering is consumed",
        ),
        (
            "ORD-DEDUP-FLUSH-006",
            "SpillStore flushed watermark (Release store after write_all_at / Acquire \
             load before read_at): the writer advances the watermark only once the bytes \
             are durably written, so a reader that acquires a covering watermark may \
             read_at the range; codes not yet covered fall back to fingerprint-trust and \
             are counted dedup_unverified",
        ),
        (
            "ORD-EXP-ABORT-007",
            "parallel explorer abort flag (Relaxed store/load): advisory teardown signal \
             only — no data is published through it, the authoritative error is decided \
             on the main thread after the worker joins, and finite-time visibility \
             bounds the overshoot to a handful of extra expansions",
        ),
    ]
}

// ---------------------------------------------------------------------------
// Family cells
// ---------------------------------------------------------------------------

fn pid(n: u64) -> Pid {
    Pid::new(n).unwrap()
}

/// Per-incarnation view RNG: a pure function of the run seed, the pid and
/// the incarnation, so restarts mint fresh-but-replayable permutations.
fn view_rng(seed: u64, id: u64, incarnation: u64) -> Rng64 {
    Rng64::seed_from_u64(
        seed ^ id.wrapping_mul(0x9e37_79b9) ^ incarnation.wrapping_mul(0x5851_f42d_4c95_7f2d),
    )
}

fn fault_plan(seed: u64, pids: &[Pid], restarts: bool) -> FaultPlan {
    let profile = FaultProfile {
        restarts,
        ..FaultProfile::default()
    };
    FaultPlan::random(seed, pids, &profile)
}

fn run_exec<M: Machine>(
    seed: u64,
    m: usize,
    plan: OrderingPlan,
    factories: Vec<Factory<M>>,
    faults: Option<&FaultPlan>,
    budget: u64,
) -> ExecReport<M::Event> {
    let mut exec = SanitizedExec::new(seed, m, SanitizerConfig::default(), plan, factories);
    if let Some(faults) = faults {
        exec = exec.with_fault_plan(faults);
    }
    exec.run(budget)
}

fn outcome<E>(report: ExecReport<E>, safety: Option<String>) -> FamilyOutcome {
    FamilyOutcome {
        ordering_violations: report.snapshot.violation_count,
        first_violation: report.snapshot.violations.first().cloned(),
        safety,
        timed_out: report.timed_out,
        hb_edges: report.snapshot.hb_edges,
        stale_reads: report.snapshot.stale_reads,
        steps: report.steps,
    }
}

/// Mutual-exclusion monitor over the event log: a crashed or restarted
/// occupant leaves the critical section (§2: a crashed process is not in
/// its critical section).
fn mutex_safety(report: &ExecReport<MutexEvent>) -> Option<String> {
    let mut in_cs: HashSet<usize> = HashSet::new();
    for entry in &report.events {
        match &entry.kind {
            ExecEventKind::Event(MutexEvent::Enter) => {
                if !in_cs.is_empty() {
                    let mut inside: Vec<usize> = in_cs.iter().copied().collect();
                    inside.push(entry.slot);
                    inside.sort_unstable();
                    return Some(format!(
                        "mutual exclusion violated: slots {inside:?} in the critical section \
                         at step {}",
                        entry.step
                    ));
                }
                in_cs.insert(entry.slot);
            }
            ExecEventKind::Event(MutexEvent::Exit | MutexEvent::Aborted)
            | ExecEventKind::Crashed
            | ExecEventKind::Restarted => {
                in_cs.remove(&entry.slot);
            }
            ExecEventKind::Stalled => {}
        }
    }
    None
}

fn mutex_cell(plan: OrderingPlan, seed: u64, faults: bool) -> FamilyOutcome {
    let pids = [pid(1), pid(2)];
    let m = 3;
    let factories = pids
        .iter()
        .map(|&p| {
            let f: Factory<AnonMutex> = Box::new(move |incarnation| {
                let mut rng = view_rng(seed, p.get(), incarnation);
                (
                    AnonMutex::new(p, m)
                        .expect("m >= 3 odd")
                        .with_cycles(LOCK_CYCLES),
                    View::from_perm(rng.permutation(m)).expect("permutation is a view"),
                )
            });
            f
        })
        .collect();
    let fp = faults.then(|| fault_plan(seed, &pids, false));
    let report = run_exec(seed, m, plan, factories, fp.as_ref(), LOCK_BUDGET);
    let safety = mutex_safety(&report);
    outcome(report, safety)
}

fn hybrid_cell(plan: OrderingPlan, seed: u64, faults: bool) -> FamilyOutcome {
    let pids = [pid(1), pid(2)];
    let m_anon = 2;
    let factories = pids
        .iter()
        .map(|&p| {
            let f: Factory<HybridMutex> = Box::new(move |incarnation| {
                let mut rng = view_rng(seed, p.get(), incarnation);
                (
                    HybridMutex::new(p, m_anon)
                        .expect("m >= 2")
                        .with_cycles(LOCK_CYCLES),
                    named_view(m_anon, rng.permutation(m_anon)).expect("valid anon perm"),
                )
            });
            f
        })
        .collect();
    let fp = faults.then(|| fault_plan(seed, &pids, false));
    let report = run_exec(seed, m_anon + 1, plan, factories, fp.as_ref(), LOCK_BUDGET);
    let safety = mutex_safety(&report);
    outcome(report, safety)
}

fn ordered_cell(plan: OrderingPlan, seed: u64, faults: bool) -> FamilyOutcome {
    let pids = [pid(1), pid(2)];
    let m = 4;
    let factories = pids
        .iter()
        .map(|&p| {
            let f: Factory<OrderedMutex> = Box::new(move |incarnation| {
                let mut rng = view_rng(seed, p.get(), incarnation);
                (
                    OrderedMutex::new(p, m)
                        .expect("m >= 2")
                        .with_cycles(LOCK_CYCLES),
                    View::from_perm(rng.permutation(m)).expect("permutation is a view"),
                )
            });
            f
        })
        .collect();
    let fp = faults.then(|| fault_plan(seed, &pids, false));
    let report = run_exec(seed, m, plan, factories, fp.as_ref(), LOCK_BUDGET);
    let safety = mutex_safety(&report);
    outcome(report, safety)
}

fn baseline_cell(plan: OrderingPlan, seed: u64, faults: bool) -> FamilyOutcome {
    let pids = [pid(1), pid(2)];
    let factories = pids
        .iter()
        .enumerate()
        .map(|(slot, &p)| {
            // Named baseline: every incarnation sees the identity view.
            let f: Factory<Peterson> = Box::new(move |_incarnation| {
                (
                    Peterson::new(p, slot)
                        .expect("slot is 0 or 1")
                        .with_cycles(LOCK_CYCLES),
                    View::identity(3),
                )
            });
            f
        })
        .collect();
    let fp = faults.then(|| fault_plan(seed, &pids, false));
    let report = run_exec(seed, 3, plan, factories, fp.as_ref(), LOCK_BUDGET);
    let safety = mutex_safety(&report);
    outcome(report, safety)
}

fn consensus_cell(plan: OrderingPlan, seed: u64, faults: bool) -> FamilyOutcome {
    let pids = [pid(1), pid(2)];
    let n = pids.len();
    let m = 2 * n - 1;
    let input_of = |p: Pid| p.get() * 7;
    let factories = pids
        .iter()
        .map(|&p| {
            let f: Factory<AnonConsensus> = Box::new(move |incarnation| {
                let mut rng = view_rng(seed, p.get(), incarnation);
                (
                    AnonConsensus::new(p, n, input_of(p)).expect("nonzero input"),
                    View::from_perm(rng.permutation(m)).expect("permutation is a view"),
                )
            });
            f
        })
        .collect();
    // Restarts are safe for consensus: a restarted incarnation re-proposes.
    let fp = faults.then(|| fault_plan(seed, &pids, true));
    let report = run_exec(seed, m, plan, factories, fp.as_ref(), ONESHOT_BUDGET);
    let decisions: Vec<u64> = report
        .machine_events()
        .map(|(_, ConsensusEvent::Decide(v))| *v)
        .collect();
    let safety = if decisions.windows(2).any(|w| w[0] != w[1]) {
        Some(format!("agreement violated: decisions {decisions:?}"))
    } else if let Some(&value) = decisions.first() {
        (!pids.iter().any(|&p| input_of(p) == value))
            .then(|| format!("validity violated: decision {value} was never proposed"))
    } else {
        None
    };
    outcome(report, safety)
}

fn election_cell(plan: OrderingPlan, seed: u64, faults: bool) -> FamilyOutcome {
    let pids = [pid(1), pid(2)];
    let n = pids.len();
    let m = 2 * n - 1;
    let factories = pids
        .iter()
        .map(|&p| {
            let f: Factory<AnonElection> = Box::new(move |incarnation| {
                let mut rng = view_rng(seed, p.get(), incarnation);
                (
                    AnonElection::new(p, n).expect("n > 0"),
                    View::from_perm(rng.permutation(m)).expect("permutation is a view"),
                )
            });
            f
        })
        .collect();
    let fp = faults.then(|| fault_plan(seed, &pids, true));
    let report = run_exec(seed, m, plan, factories, fp.as_ref(), ONESHOT_BUDGET);
    let leaders: Vec<Pid> = report
        .machine_events()
        .map(|(_, ElectionEvent::Elected(l))| *l)
        .collect();
    let safety = if leaders.windows(2).any(|w| w[0] != w[1]) {
        Some(format!("agreement violated: leaders {leaders:?}"))
    } else if let Some(leader) = leaders.first() {
        (!pids.contains(leader))
            .then(|| format!("validity violated: leader {leader:?} is not a participant"))
    } else {
        None
    };
    outcome(report, safety)
}

fn renaming_cell(plan: OrderingPlan, seed: u64, faults: bool) -> FamilyOutcome {
    let pids = [pid(1), pid(2)];
    let n = pids.len();
    let m = 2 * n - 1;
    let factories = pids
        .iter()
        .map(|&p| {
            let f: Factory<AnonRenaming> = Box::new(move |incarnation| {
                let mut rng = view_rng(seed, p.get(), incarnation);
                (
                    AnonRenaming::new(p, n).expect("n > 0"),
                    View::from_perm(rng.permutation(m)).expect("permutation is a view"),
                )
            });
            f
        })
        .collect();
    // Crashes and stalls only: a restarted incarnation could legitimately
    // claim a second name (same policy as E15).
    let fp = faults.then(|| fault_plan(seed, &pids, false));
    let report = run_exec(seed, m, plan, factories, fp.as_ref(), ONESHOT_BUDGET);
    let mut names: Vec<u32> = report
        .machine_events()
        .map(|(_, RenamingEvent::Named(name))| *name)
        .collect();
    names.sort_unstable();
    let safety = if names.windows(2).any(|w| w[0] == w[1]) {
        Some(format!("uniqueness violated: names {names:?}"))
    } else {
        names
            .iter()
            .find(|&&name| name == 0 || name as usize > n)
            .map(|&name| format!("range violated: name {name} outside 1..={n}"))
    };
    outcome(report, safety)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_is_clean_at_seq_cst() {
        for family in FAMILIES {
            for (seed, faults) in [(1, false), (2, true)] {
                let out = run_family(family, OrderingPlan::seq_cst(), seed, faults);
                assert!(
                    out.is_clean(),
                    "{family} at SeqCst (seed {seed}, faults {faults}): {:?} / {:?}",
                    out.safety,
                    out.first_violation.map(|v| v.to_string()),
                );
            }
        }
    }

    #[test]
    fn relaxed_reads_are_rejected_with_a_witness() {
        // A fully relaxed plan must flag a missing edge on some schedule
        // of the mutex doorway — the heart of the sanitizer.
        let plan = OrderingPlan {
            read: Ordering::Relaxed,
            claim: Ordering::SeqCst,
            clear: Ordering::SeqCst,
        };
        let sweep = sweep_plan("mutex", plan, 0xE17, 4);
        assert!(sweep.violations > 0, "relaxed reads must be flagged");
        let (seed, v) = sweep.first_violation.expect("witness recorded");
        assert!(!v.witness.is_empty());
        // The same seed and fault setting replay the same first violation.
        for faults in [false, true] {
            if let Some(replay) = run_family("mutex", plan, seed, faults).first_violation {
                if replay.to_string() == v.to_string() {
                    return;
                }
            }
        }
        panic!("seed {seed} did not replay the recorded witness");
    }

    #[test]
    fn certification_is_deterministic_and_clean() {
        let a = certify_family("baseline", 0xC0DE, 2);
        let b = certify_family("baseline", 0xC0DE, 2);
        assert!(a.clean, "SeqCst tops the ladder, so baseline certifies");
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.certificates, b.certificates);
        assert_eq!(a.certificates.len(), 3);
        assert_eq!(a.certificates[0].id, "ORD-BASELINE-READ");
        // No site certifies weaker than its rejections allow: every
        // rejected rung is strictly below the accepted ordering on its
        // site's ladder.
        for r in &a.rejected {
            let ladder = r.site.ladder();
            let rejected_pos = ladder.iter().position(|&o| o == r.ordering).unwrap();
            let accepted_pos = ladder.iter().position(|&o| o == a.plan.of(r.site)).unwrap();
            assert!(rejected_pos < accepted_pos, "{r:?}");
        }
    }

    #[test]
    fn runtime_notes_cover_the_cited_ids() {
        let notes = runtime_site_notes();
        assert!(notes.iter().any(|(id, _)| *id == "ORD-RT-PEEK-001"));
        assert!(notes.iter().any(|(id, _)| *id == "ORD-RT-HANDLE-002"));
    }

    #[test]
    fn explorer_notes_cover_the_cited_ids() {
        // One note per certificate the dedup/par code comments cite, with
        // unique IDs.
        let notes = explorer_site_notes();
        let cited = [
            "ORD-DEDUP-CLAIM-001",
            "ORD-DEDUP-META-002",
            "ORD-DEDUP-SPIN-003",
            "ORD-DEDUP-BLOOM-004",
            "ORD-EXP-PENDING-005",
            "ORD-DEDUP-FLUSH-006",
            "ORD-EXP-ABORT-007",
        ];
        for id in cited {
            assert!(notes.iter().any(|(n, _)| *n == id), "missing note {id}");
        }
        let mut ids: Vec<&str> = notes.iter().map(|(id, _)| *id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), notes.len(), "duplicate note ids");
    }
}
