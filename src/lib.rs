//! Workspace umbrella crate: hosts the integration tests in `tests/` and the
//! runnable examples in `examples/`. The real library lives in the `anonreg*`
//! crates; see the repository README.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use anonreg_sim::prelude;
