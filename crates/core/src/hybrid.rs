//! A §8-inspired extension: mutual exclusion over `m` **anonymous**
//! registers plus a single **named** register.
//!
//! The paper's discussion (§8) proposes studying "models where, in addition
//! to unnamed objects, a limited number of named objects are also
//! available". This module explores the smallest such model: the Figure 1
//! algorithm augmented with one named tie-breaker register `T`.
//!
//! Recall why even `m` fails in the pure model (Theorem 3.1): two
//! symmetric processes can each claim exactly `m/2` registers, and with
//! equality-only comparisons nothing can break the tie. One named register
//! destroys that symmetry: on a tie, each process announces itself in `T`
//! and the *last* announcer yields — a Peterson-style move that is
//! impossible when no register has an agreed name.
//!
//! The protocol (process `i`, registers `r[0..m]` anonymous, `T` named):
//!
//! 1. Scan-and-claim and self-count exactly as Figure 1.
//! 2. `count == m` → enter the critical section.
//! 3. `2·count < m` → lose: erase own marks, await all-zero, retry.
//! 4. `2·count > m` (but not all) → retry (the opponent is losing).
//! 5. `2·count == m` → **tie**: write `T := i`, then read `T`;
//!    * `T ≠ i` (the opponent announced after us) → enter *forced* mode:
//!      rescan claiming **every** register (overwriting the opponent's
//!      marks) until all `m` are ours, then enter;
//!    * `T = i` → wait until `T ≠ i` or no register holds a foreign mark,
//!      then retry.
//!
//! **Correctness status.** This algorithm does not appear in the paper; it
//! is this reproduction's exploration of the §8 question. Its claims —
//! mutual exclusion and fair-livelock freedom for two processes with any
//! `m ≥ 2`, *including even `m`* — are established mechanically: the
//! integration test `hybrid_modelcheck.rs` exhaustively model-checks every
//! reachable state for `m ∈ {2, 3, 4, 5}` under every anonymous-view
//! rotation. The test is the proof; treat unchecked parameters
//! accordingly.

use std::fmt;

use anonreg_model::{Machine, Pid, PidMap, Step};

use crate::mutex::{MutexConfigError, MutexEvent, Section};

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Pc {
    Remainder,
    /// Figure 1 lines 2: scan read issued for anonymous register `j`.
    ScanRead,
    /// Scan write just issued.
    ScanWrote,
    /// View read issued for anonymous register `j`.
    ViewRead,
    /// Cleanup read issued (lose path).
    CleanupRead,
    /// Cleanup write just issued.
    CleanupWrote,
    /// Waiting-for-release read issued (lose path).
    WaitRead,
    /// Majority-but-not-all: announce `T := i` just issued (unblocks an
    /// opponent that tied on a stale view and is now waiting on `T`).
    AnnounceWrote,
    /// Tie: `T := i` just issued.
    TieWrote,
    /// Tie: read of `T` issued.
    TieReadT,
    /// Tie-wait: read of `T` issued (first half of the wait probe).
    TieWaitReadT,
    /// Tie-wait: read of anonymous register `j` issued (scanning for
    /// foreign marks).
    TieWaitScan,
    /// Forced mode: read of anonymous register `j` issued.
    ForcedRead,
    /// Forced mode: write just issued.
    ForcedWrote,
    /// In the critical section.
    Critical,
    /// Exit writes in progress.
    ExitWrite,
}

/// Mutual exclusion for two processes over `m ≥ 2` anonymous registers
/// plus **one named register** — a working answer, for this configuration,
/// to the paper's §8 question. Unlike Figure 1, works for *even* `m` too.
///
/// Local register indices `0..m` are anonymous (drivers may permute them
/// freely); local index `m` is the named tie-breaker `T` and **must map to
/// the same physical register for every process** (that is what "named"
/// means). [`named_view`] builds suitable views.
///
/// # Example
///
/// ```
/// use anonreg::hybrid::{named_view, HybridMutex};
/// use anonreg::{Machine, Pid};
///
/// let machine = HybridMutex::new(Pid::new(1).unwrap(), 4)?;
/// assert_eq!(machine.register_count(), 5); // 4 anonymous + 1 named
/// let view = named_view(4, vec![2, 0, 3, 1])?;
/// assert_eq!(view.physical(4), 4); // T is register 4 for everyone
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct HybridMutex {
    pid: Pid,
    /// Anonymous register count (the named `T` is index `m`).
    m: usize,
    cycles_remaining: Option<u64>,
    myview: Vec<u64>,
    j: usize,
    /// Set when the tie was won: claim every register, not just zeros.
    forced: bool,
    /// Whether a foreign mark was seen during the current tie-wait scan.
    saw_foreign: bool,
    /// Abort the current entry attempt at the next decision point.
    abort_requested: bool,
    /// Auto-abort after this many failed rounds (deterministic aborts for
    /// the model checker; `None` = never).
    abort_after: Option<u32>,
    /// Failed rounds in the current entry attempt (tracked only when
    /// `abort_after` is set, to keep the state space finite).
    rounds_this_entry: u32,
    /// Erasing marks because of an abort.
    aborting: bool,
    pc: Pc,
}

/// Builds a view for a hybrid configuration: `anon_perm` permutes the `m`
/// anonymous registers, and the named register (index `m`) is fixed.
///
/// # Errors
///
/// Returns an error if `anon_perm` is not a permutation of `0..m`.
pub fn named_view(
    m: usize,
    anon_perm: Vec<usize>,
) -> Result<anonreg_model::View, anonreg_model::ViewError> {
    let mut full = anon_perm;
    full.push(m);
    anonreg_model::View::from_perm(full)
}

impl HybridMutex {
    /// Creates the hybrid machine for process `pid` with `m ≥ 2` anonymous
    /// registers (total `m + 1` registers).
    ///
    /// # Errors
    ///
    /// Returns [`MutexConfigError::ZeroRegisters`] if `m < 2` (with `m = 1`
    /// a single anonymous register cannot distinguish contention from
    /// victory; use the named register alone — i.e. Peterson — instead).
    pub fn new(pid: Pid, m: usize) -> Result<Self, MutexConfigError> {
        if m < 2 {
            return Err(MutexConfigError::ZeroRegisters);
        }
        Ok(HybridMutex {
            pid,
            m,
            cycles_remaining: None,
            myview: vec![0; m],
            j: 0,
            forced: false,
            saw_foreign: false,
            abort_requested: false,
            abort_after: None,
            rounds_this_entry: 0,
            aborting: false,
            pc: Pc::Remainder,
        })
    }

    /// Bounds the machine to `cycles` critical-section entries.
    #[must_use]
    pub fn with_cycles(mut self, cycles: u64) -> Self {
        self.cycles_remaining = Some(cycles);
        self
    }

    /// Auto-aborts an entry attempt after `rounds` failed rounds (see
    /// [`AnonMutex::with_abort_after`](crate::mutex::AnonMutex::with_abort_after)
    /// — the semantics are identical).
    #[must_use]
    pub fn with_abort_after(mut self, rounds: u32) -> Self {
        self.abort_after = Some(rounds);
        self
    }

    /// Requests that the current entry attempt be abandoned at its next
    /// decision point (the try-lock escape hatch; the abort path is the
    /// algorithm's own lose move and is covered by the exhaustive checks).
    pub fn request_abort(&mut self) {
        self.abort_requested = true;
    }

    /// Whether the machine is idle in its remainder section.
    #[must_use]
    pub fn in_remainder(&self) -> bool {
        self.pc == Pc::Remainder
    }

    fn abort_due(&self) -> bool {
        self.abort_requested
            || self
                .abort_after
                .is_some_and(|limit| self.rounds_this_entry >= limit)
    }

    fn begin_abort(&mut self) -> Step<u64, MutexEvent> {
        self.abort_requested = false;
        self.aborting = true;
        self.forced = false;
        self.j = 0;
        self.continue_cleanup()
    }

    /// The code section the process is currently in.
    #[must_use]
    pub fn section(&self) -> Section {
        match self.pc {
            Pc::Remainder => Section::Remainder,
            Pc::Critical => Section::Critical,
            Pc::ExitWrite => Section::Exit,
            _ => Section::Entry,
        }
    }

    /// Local index of the named tie-breaker register.
    fn t_reg(&self) -> usize {
        self.m
    }

    /// Starts (or continues) the claiming scan; in forced mode every
    /// register is taken, otherwise only zeros are.
    fn continue_scan(&mut self) -> Step<u64, MutexEvent> {
        if self.j < self.m {
            self.pc = if self.forced {
                Pc::ForcedRead
            } else {
                Pc::ScanRead
            };
            Step::Read(self.j)
        } else {
            self.j = 0;
            self.pc = Pc::ViewRead;
            Step::Read(0)
        }
    }

    fn continue_cleanup(&mut self) -> Step<u64, MutexEvent> {
        if self.j < self.m {
            self.pc = Pc::CleanupRead;
            Step::Read(self.j)
        } else if self.aborting {
            self.aborting = false;
            self.rounds_this_entry = 0;
            self.pc = Pc::Remainder;
            Step::Event(MutexEvent::Aborted)
        } else {
            self.j = 0;
            self.pc = Pc::WaitRead;
            Step::Read(0)
        }
    }

    /// Decision point after a full view read.
    fn after_view(&mut self) -> Step<u64, MutexEvent> {
        let me = self.pid.get();
        let mine = self.myview.iter().filter(|&&v| v == me).count();
        if mine == self.m {
            self.forced = false;
            self.rounds_this_entry = 0;
            self.pc = Pc::Critical;
            return Step::Event(MutexEvent::Enter);
        }
        if self.abort_after.is_some() {
            self.rounds_this_entry = self.rounds_this_entry.saturating_add(1);
        }
        if self.abort_due() {
            return self.begin_abort();
        }
        if self.forced {
            // Forced mode persists until every register is ours.
            self.j = 0;
            self.continue_scan()
        } else if 2 * mine < self.m {
            self.j = 0;
            self.continue_cleanup()
        } else if 2 * mine == self.m {
            // The tie Figure 1 cannot break: announce in the named T.
            self.pc = Pc::TieWrote;
            Step::Write(self.t_reg(), me)
        } else {
            // Strict majority but not everything: the opponent must lose
            // eventually — but it may have *tied on a stale view* and be
            // parked in the T-wait. Announce in T on every retry so such a
            // waiter wakes up (as the tie winner), releases the deadlock and
            // lets the race resolve.
            self.pc = Pc::AnnounceWrote;
            Step::Write(self.t_reg(), me)
        }
    }
}

impl Machine for HybridMutex {
    type Value = u64;
    type Event = MutexEvent;

    fn pid(&self) -> Pid {
        self.pid
    }

    fn register_count(&self) -> usize {
        self.m + 1
    }

    fn resume(&mut self, read: Option<u64>) -> Step<u64, MutexEvent> {
        let me = self.pid.get();
        match self.pc {
            Pc::Remainder => {
                debug_assert!(read.is_none());
                match self.cycles_remaining {
                    Some(0) => Step::Halt,
                    other => {
                        if let Some(c) = other {
                            self.cycles_remaining = Some(c - 1);
                        }
                        self.j = 0;
                        self.continue_scan()
                    }
                }
            }
            Pc::ScanRead => {
                let value = read.expect("scan read result expected");
                if value == 0 {
                    self.pc = Pc::ScanWrote;
                    Step::Write(self.j, me)
                } else {
                    self.j += 1;
                    self.continue_scan()
                }
            }
            Pc::ScanWrote | Pc::ForcedWrote => {
                debug_assert!(read.is_none());
                self.j += 1;
                self.continue_scan()
            }
            Pc::ForcedRead => {
                let value = read.expect("forced read result expected");
                if value == me {
                    self.j += 1;
                    self.continue_scan()
                } else {
                    self.pc = Pc::ForcedWrote;
                    Step::Write(self.j, me)
                }
            }
            Pc::ViewRead => {
                let value = read.expect("view read result expected");
                self.myview[self.j] = value;
                self.j += 1;
                if self.j < self.m {
                    Step::Read(self.j)
                } else {
                    self.after_view()
                }
            }
            Pc::CleanupRead => {
                let value = read.expect("cleanup read result expected");
                if value == me {
                    self.pc = Pc::CleanupWrote;
                    Step::Write(self.j, 0)
                } else {
                    self.j += 1;
                    self.continue_cleanup()
                }
            }
            Pc::CleanupWrote => {
                debug_assert!(read.is_none());
                self.j += 1;
                self.continue_cleanup()
            }
            Pc::WaitRead => {
                let value = read.expect("wait read result expected");
                self.myview[self.j] = value;
                self.j += 1;
                if self.j < self.m {
                    Step::Read(self.j)
                } else if self.abort_due() {
                    // Waiting holds no marks; aborting from here is
                    // immediate.
                    self.abort_requested = false;
                    self.rounds_this_entry = 0;
                    self.pc = Pc::Remainder;
                    Step::Event(MutexEvent::Aborted)
                } else if self.myview.iter().all(|&v| v == 0) {
                    self.j = 0;
                    self.continue_scan()
                } else {
                    self.j = 0;
                    Step::Read(0)
                }
            }
            Pc::AnnounceWrote => {
                debug_assert!(read.is_none());
                self.j = 0;
                self.continue_scan()
            }
            Pc::TieWrote => {
                debug_assert!(read.is_none());
                self.pc = Pc::TieReadT;
                Step::Read(self.t_reg())
            }
            Pc::TieReadT => {
                let t = read.expect("T read result expected");
                if t != me {
                    // The opponent announced after us: we won the tie.
                    self.forced = true;
                    self.j = 0;
                    self.continue_scan()
                } else {
                    // We announced last: wait for the opponent to move.
                    self.pc = Pc::TieWaitReadT;
                    Step::Read(self.t_reg())
                }
            }
            Pc::TieWaitReadT => {
                let t = read.expect("T read result expected");
                if t != me {
                    self.forced = true;
                    self.j = 0;
                    self.continue_scan()
                } else {
                    self.j = 0;
                    self.saw_foreign = false;
                    self.pc = Pc::TieWaitScan;
                    Step::Read(0)
                }
            }
            Pc::TieWaitScan => {
                let value = read.expect("tie-wait scan result expected");
                if value != 0 && value != me {
                    self.saw_foreign = true;
                }
                self.j += 1;
                if self.j < self.m {
                    Step::Read(self.j)
                } else if self.abort_due() {
                    // Abort out of the tie-wait: we still hold marks, so
                    // take the cleanup path first.
                    self.begin_abort()
                } else if self.saw_foreign {
                    // Opponent still holds marks: probe T again, then
                    // rescan.
                    self.pc = Pc::TieWaitReadT;
                    Step::Read(self.t_reg())
                } else {
                    // Opponent is gone: retry the normal claiming scan.
                    self.j = 0;
                    self.continue_scan()
                }
            }
            Pc::Critical => {
                debug_assert!(read.is_none());
                self.j = 0;
                self.pc = Pc::ExitWrite;
                Step::Event(MutexEvent::Exit)
            }
            Pc::ExitWrite => {
                debug_assert!(read.is_none());
                let j = self.j;
                self.j += 1;
                if self.j == self.m {
                    self.pc = Pc::Remainder;
                }
                Step::Write(j, 0)
            }
        }
    }
}

impl PidMap for HybridMutex {
    fn map_pids(&self, f: &mut dyn FnMut(Pid) -> Pid) -> Self {
        HybridMutex {
            pid: f(self.pid),
            myview: self.myview.iter().map(|v| v.map_pids(f)).collect(),
            ..self.clone()
        }
    }
}

impl fmt::Debug for HybridMutex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HybridMutex")
            .field("pid", &self.pid)
            .field("m", &self.m)
            .field("pc", &self.pc)
            .field("j", &self.j)
            .field("forced", &self.forced)
            .field("aborting", &self.aborting)
            .field("myview", &self.myview)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonreg_model::View;

    fn pid(n: u64) -> Pid {
        Pid::new(n).unwrap()
    }

    fn run_solo(mut machine: HybridMutex) -> (Vec<MutexEvent>, Vec<u64>) {
        let mut regs = vec![0u64; machine.register_count()];
        let mut read = None;
        let mut events = Vec::new();
        for _ in 0..100_000 {
            match machine.resume(read.take()) {
                Step::Read(j) => read = Some(regs[j]),
                Step::Write(j, v) => regs[j] = v,
                Step::Event(e) => events.push(e),
                Step::Halt => return (events, regs),
            }
        }
        panic!("machine did not halt");
    }

    #[test]
    fn m_below_two_rejected() {
        assert!(HybridMutex::new(pid(1), 0).is_err());
        assert!(HybridMutex::new(pid(1), 1).is_err());
        assert!(HybridMutex::new(pid(1), 2).is_ok());
    }

    #[test]
    fn solo_enters_even_and_odd_m() {
        for m in [2usize, 3, 4, 6] {
            let machine = HybridMutex::new(pid(9), m).unwrap().with_cycles(2);
            let (events, regs) = run_solo(machine);
            assert_eq!(events.len(), 4, "m={m}");
            assert!(
                regs[..m].iter().all(|&v| v == 0),
                "anonymous registers reset, m={m}"
            );
        }
    }

    #[test]
    fn named_view_pins_the_tiebreaker() {
        let v = named_view(4, vec![3, 1, 0, 2]).unwrap();
        assert_eq!(v.physical(4), 4);
        assert_eq!(v.physical(0), 3);
        assert!(named_view(3, vec![0, 0, 1]).is_err());
    }

    #[test]
    fn tie_last_announcer_yields() {
        // Hand-drive a tie for m = 2: our machine holds register 0, the
        // opponent (id 7) holds register 1, and T already carries OUR id
        // (we announced last) — we must wait, not force.
        let mut machine = HybridMutex::new(pid(1), 2).unwrap();
        let regs = [1u64, 7, 1]; // r0=us, r1=opponent, T=us
        let mut read = None;
        let mut forced_write = false;
        for _ in 0..40 {
            match machine.resume(read.take()) {
                Step::Read(j) => read = Some(regs[j]),
                Step::Write(j, v) => {
                    // The only write we may issue here is the tie announce
                    // T := 1 (register index 2).
                    if j != 2 {
                        forced_write = true;
                    }
                    assert_eq!(v, 1);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(!forced_write, "last announcer must wait, not overwrite");
        assert_eq!(machine.section(), Section::Entry);
    }

    #[test]
    fn tie_first_announcer_forces_through() {
        // Same tie, but the opponent announces in T *after* us: on our read
        // T carries the opponent's id, so we won the tie and must
        // force-claim register 1 (overwriting id 7) and enter.
        let mut machine = HybridMutex::new(pid(1), 2).unwrap();
        let mut regs = [1u64, 7, 0]; // r0=us, r1=opponent
        let mut read = None;
        let mut entered = false;
        for _ in 0..60 {
            match machine.resume(read.take()) {
                Step::Read(j) => read = Some(regs[j]),
                Step::Write(j, v) => {
                    regs[j] = v;
                    if j == 2 {
                        // The opponent's announce lands right after ours.
                        regs[2] = 7;
                    }
                }
                Step::Event(MutexEvent::Enter) => {
                    entered = true;
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(entered, "tie winner must force through");
        assert_eq!(&regs[..2], &[1, 1]);
    }

    #[test]
    fn sections_and_debug() {
        let machine = HybridMutex::new(pid(1), 2).unwrap();
        assert_eq!(machine.section(), Section::Remainder);
        assert!(format!("{machine:?}").contains("HybridMutex"));
    }

    #[test]
    fn pid_map_round_trips() {
        let a = pid(1);
        let b = pid(2);
        let machine = HybridMutex::new(a, 4).unwrap();
        let swapped = machine.map_pids(&mut |p| if p == a { b } else { a });
        assert_eq!(swapped.pid(), b);
        let back = swapped.map_pids(&mut |p| if p == a { b } else { a });
        assert_eq!(back, machine);
    }

    #[test]
    fn two_sequential_processes_alternate() {
        // Not concurrent, but exercises claiming after another's exit.
        let mut regs = [0u64; 4]; // m=3 + T
        for id in [3u64, 4] {
            let mut machine = HybridMutex::new(pid(id), 3).unwrap().with_cycles(1);
            let mut read = None;
            let mut events = Vec::new();
            for _ in 0..10_000 {
                match machine.resume(read.take()) {
                    Step::Read(j) => read = Some(regs[j]),
                    Step::Write(j, v) => regs[j] = v,
                    Step::Event(e) => events.push(e),
                    Step::Halt => break,
                }
            }
            assert_eq!(events, vec![MutexEvent::Enter, MutexEvent::Exit]);
        }
        let _ = View::identity(4); // silence unused import in some cfgs
    }
}
