//! Theorem 6.5, constructively: with `≤ n − 1` anonymous registers, the
//! covering adversary makes two processes acquire the **same new name**
//! against the Figure 3 renaming algorithm.
//!
//! The victim runs alone and — by adaptivity — acquires name 1. The block
//! write then erases its every trace, and the coverers, seeing memory
//! indistinguishable from a fresh world, elect one of **themselves** to
//! name 1 (experiment E6).

use std::fmt;

use anonreg::renaming::AnonRenaming;
use anonreg::Pid;

use crate::consensus_cover::AttackError;
use crate::covering::{CoverError, CoveringAttack};

/// A constructed uniqueness violation: two processes with the same name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DuplicateName {
    /// Number of processes the algorithm was configured for.
    pub n: usize,
    /// Number of registers it was (under-)provisioned with.
    pub registers: usize,
    /// Registers the victim wrote in its solo run.
    pub write_set: Vec<usize>,
    /// The duplicated name (always 1, by adaptivity).
    pub name: u32,
}

impl fmt::Display for DuplicateName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n = {}, r = {}: victim and a coverer both acquired name {} (write set {:?})",
            self.n, self.registers, self.name, self.write_set
        )
    }
}

/// Extracts the name a halted renaming machine acquired by replaying its
/// final event from the simulation trace.
fn acquired_name(sim: &anonreg_sim::Simulation<AnonRenaming>, proc: usize) -> Option<u32> {
    sim.trace().events().find_map(|(p, _, event)| {
        if p == proc {
            let anonreg::renaming::RenamingEvent::Named(name) = event;
            Some(*name)
        } else {
            None
        }
    })
}

/// Mounts the Theorem 6.5 covering attack against Figure 3 instantiated for
/// `n` processes but only `registers ≤ n − 1` registers, and returns the
/// duplicated name.
///
/// # Errors
///
/// [`AttackError::NotUnderProvisioned`] when `registers ≥ 2n − 1`;
/// [`AttackError::BadParameters`] for degenerate inputs;
/// [`AttackError::NoViolation`] if the coverer acquired a different name
/// (would indicate the bound does not bind — an implementation bug).
pub fn duplicate_name(n: usize, registers: usize) -> Result<DuplicateName, AttackError> {
    if n < 2 || registers == 0 {
        return Err(AttackError::BadParameters);
    }
    if registers >= 2 * n - 1 {
        return Err(AttackError::NotUnderProvisioned { n, registers });
    }

    let victim = AnonRenaming::new(Pid::new(1).unwrap(), n)
        .expect("valid parameters")
        .with_registers(registers);
    let coverers: Vec<AnonRenaming> = (0..registers)
        .map(|i| {
            AnonRenaming::new(Pid::new(i as u64 + 2).unwrap(), n)
                .expect("valid parameters")
                .with_registers(registers)
        })
        .collect();

    // Solo renaming costs O(r²) per round over ≤ n rounds; generous slack.
    let budget = 4 * n * (registers * (registers + 2)) + 64;
    let mut attack =
        CoveringAttack::build(victim, coverers, |m: &AnonRenaming| m.has_name(), budget)?;
    let write_set = attack.write_set.clone();
    let victim_name =
        acquired_name(&attack.sim, 0).expect("victim announced its name before halting");

    // Step 4: the first coverer runs alone; by obstruction freedom +
    // adaptivity it takes name 1 — the same name the victim already holds.
    attack.sim.run_solo(1, budget).expect("slot 1 exists");
    if !attack.sim.machine(1).has_name() {
        return Err(AttackError::Cover(CoverError::VictimDidNotFinish {
            budget,
        }));
    }
    let coverer_name =
        acquired_name(&attack.sim, 1).expect("coverer announced its name before halting");

    if victim_name != coverer_name {
        return Err(AttackError::NoViolation {
            decided: u64::from(coverer_name),
        });
    }
    Ok(DuplicateName {
        n,
        registers,
        write_set,
        name: victim_name,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_succeeds_for_all_underprovisioned_counts() {
        for n in 2..=5 {
            for r in 1..n {
                let d = duplicate_name(n, r)
                    .unwrap_or_else(|e| panic!("attack failed for n={n}, r={r}: {e}"));
                assert_eq!(d.name, 1, "adaptivity forces the duplicate at name 1");
                assert!(d.write_set.len() <= r);
                assert!(!d.to_string().is_empty());
            }
        }
    }

    #[test]
    fn well_provisioned_algorithm_rejects_the_attack() {
        assert_eq!(
            duplicate_name(2, 3).unwrap_err(),
            AttackError::NotUnderProvisioned { n: 2, registers: 3 }
        );
    }

    #[test]
    fn bad_parameters_rejected() {
        assert_eq!(
            duplicate_name(1, 1).unwrap_err(),
            AttackError::BadParameters
        );
        assert_eq!(
            duplicate_name(2, 0).unwrap_err(),
            AttackError::BadParameters
        );
    }
}
