//! Exhaustive model checking of the Figure 2 consensus algorithm —
//! experiment E3's foundation (Theorems 4.1 and 4.2) plus the
//! obstruction-freedom verdict.

use anonreg::consensus::AnonConsensus;
use anonreg::{Pid, View};
use anonreg_sim::obstruction::check_obstruction_freedom;
use anonreg_sim::prelude::*;
use anonreg_sim::Simulation;

fn pid(n: u64) -> Pid {
    Pid::new(n).unwrap()
}

fn two_proc_sim(inputs: [u64; 2], view_b: View) -> Simulation<AnonConsensus> {
    Simulation::builder()
        .process(
            AnonConsensus::new(pid(1), 2, inputs[0]).unwrap(),
            View::identity(3),
        )
        .process(AnonConsensus::new(pid(2), 2, inputs[1]).unwrap(), view_b)
        .build()
        .unwrap()
}

fn decided_values(sim: &Simulation<AnonConsensus>) -> Vec<u64> {
    sim.machines()
        .filter(|m| m.has_decided())
        .map(anonreg::consensus::AnonConsensus::preference)
        .collect()
}

#[test]
fn n2_agreement_holds_in_every_reachable_state() {
    for shift in 0..3 {
        for inputs in [[1u64, 2], [2, 1], [5, 5]] {
            let sim = two_proc_sim(inputs, View::rotated(3, shift));
            let graph = Explorer::new(sim).run().unwrap();
            let disagreement = graph.find_state(|s| {
                let d = decided_values(s);
                d.len() == 2 && d[0] != d[1]
            });
            assert!(
                disagreement.is_none(),
                "disagreement reachable for inputs {inputs:?}, shift {shift}"
            );
        }
    }
}

#[test]
fn n2_validity_holds_in_every_reachable_state() {
    for shift in 0..3 {
        let inputs = [7u64, 9];
        let sim = two_proc_sim(inputs, View::rotated(3, shift));
        let graph = Explorer::new(sim).run().unwrap();
        let invalid = graph.find_state(|s| decided_values(s).iter().any(|v| !inputs.contains(v)));
        assert!(invalid.is_none(), "invalid decision for shift {shift}");
    }
}

#[test]
fn n2_is_obstruction_free_from_every_reachable_state() {
    // The Theorem 4.1 proof bounds a solo run by 2n−1 = m writing
    // iterations of m+1 operations each, plus the final all-read scan; from
    // an arbitrary reachable state one partially-completed scan (≤ m reads)
    // can precede that: m·(m+1) + 2m ops in total — 18 for n = 2.
    let m = 3;
    let sim = two_proc_sim([1, 2], View::rotated(3, 1));
    let graph = Explorer::new(sim).run().unwrap();
    let report = check_obstruction_freedom(&graph, 64).unwrap();
    assert!(report.solo_runs > 0);
    assert!(
        report.max_solo_ops <= m * (m + 1) + 2 * m,
        "solo cost {} exceeds the paper's bound",
        report.max_solo_ops
    );
}

#[test]
fn too_few_registers_lose_agreement_somewhere() {
    // Theorem 6.3 headline, checked by brute force for n = 2: with a single
    // register (< 2n − 1), some schedule produces a disagreement. (The
    // constructive covering run lives in `anonreg-lower`; this confirms the
    // model checker finds the same thing blindly.)
    let sim = Simulation::builder()
        .process(
            AnonConsensus::new(pid(1), 2, 1).unwrap().with_registers(1),
            View::identity(1),
        )
        .process(
            AnonConsensus::new(pid(2), 2, 2).unwrap().with_registers(1),
            View::identity(1),
        )
        .build()
        .unwrap();
    let graph = Explorer::new(sim).run().unwrap();
    let disagreement = graph.find_state(|s| {
        let d = decided_values(s);
        d.len() == 2 && d[0] != d[1]
    });
    assert!(
        disagreement.is_some(),
        "1 register must admit a disagreement for n = 2"
    );
}

#[test]
fn same_inputs_decide_that_input_everywhere() {
    let sim = two_proc_sim([4, 4], View::rotated(3, 2));
    let graph = Explorer::new(sim).run().unwrap();
    let wrong = graph.find_state(|s| decided_values(s).iter().any(|&v| v != 4));
    assert!(wrong.is_none());
}
