//! Executable impossibility results and space lower bounds.
//!
//! Section 6 of *"Coordination Without Prior Agreement"* proves three
//! impossibility results with one proof skeleton — the **covering
//! argument**:
//!
//! 1. run a process `q` alone until it reaches its milestone (critical
//!    section, decision, new name) and record `write(y, q)`, the set of
//!    registers it wrote;
//! 2. because registers are anonymous, fresh processes `P` can be given
//!    views that make each one's *first* write land on a distinct register
//!    of `write(y, q)`; run each until it is about to perform that write —
//!    it now **covers** the register;
//! 3. let `q` run to its milestone, then release the covered writes (a
//!    *block write*): every trace of `q` is overwritten, so the resulting
//!    memory — and everything `P` knows — is **indistinguishable** from a
//!    world where `q` never existed;
//! 4. let `P` run: whatever progress the algorithm guarantees them happens
//!    again, clashing with `q`'s milestone.
//!
//! This crate executes that skeleton against the real Figure 1–3
//! implementations:
//!
//! * [`covering`] — the generic attack builder (steps 1–3 above).
//! * [`consensus_cover`] — Theorem 6.3: with fewer than `2n − 1` registers
//!   the attack produces an actual **disagreement** (experiment E4).
//! * [`renaming_cover`] — Theorem 6.5: with `≤ n − 1` registers the attack
//!   produces a **duplicate name** (experiment E6).
//! * [`mutex_cover`] — Theorem 6.2: when more processes exist than the
//!   algorithm anticipates, the attack produces either two processes in the
//!   critical section (`m = 1`) or eternal starvation behind an
//!   indistinguishable memory (experiment E7).
//! * [`ring`] — Theorem 3.4: the lock-step ring adversary starves `ℓ | m`
//!   symmetric processes forever (experiment E2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod consensus_cover;
pub mod covering;
pub mod mutex_cover;
pub mod renaming_cover;
pub mod ring;
