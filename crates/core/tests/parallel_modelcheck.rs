//! Cross-family regression: the breadth-parallel explorer must produce a
//! graph isomorphic to the deterministic sequential engine on every
//! algorithm family of the reproduction.
//!
//! State ids are engine-specific (the parallel engine numbers states in
//! race order), so equality is checked up to the bijection induced by
//! state fingerprints: identical state counts, a one-to-one configuration
//! match, and identical per-state edge multisets under that bijection.
//! The fairness analyses must then agree verdict-for-verdict regardless
//! of the numbering.

use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::Hash;

use anonreg::baseline::Peterson;
use anonreg::consensus::AnonConsensus;
use anonreg::election::AnonElection;
use anonreg::hybrid::{named_view, HybridMutex};
use anonreg::mutex::{AnonMutex, MutexEvent, Section};
use anonreg::ordered::OrderedMutex;
use anonreg::renaming::AnonRenaming;
use anonreg::{Machine, Pid, View};
use anonreg_sim::prelude::*;

fn pid(n: u64) -> Pid {
    Pid::new(n).unwrap()
}

/// Asserts `a` and `b` are the same graph up to state renumbering.
fn assert_isomorphic<M>(family: &str, threads: usize, a: &StateGraph<M>, b: &StateGraph<M>)
where
    M: Machine + Eq + Hash,
    M::Event: Debug,
{
    assert_eq!(
        a.state_count(),
        b.state_count(),
        "{family} at {threads} threads: state counts differ"
    );
    assert_eq!(
        a.edge_count(),
        b.edge_count(),
        "{family} at {threads} threads: edge counts differ"
    );

    // Match each of a's states to a distinct configuration-equal state
    // of b (fingerprints narrow the candidates; equality decides).
    let mut by_fp: HashMap<u64, Vec<usize>> = HashMap::new();
    for (id, state) in b.states() {
        by_fp.entry(state.fingerprint()).or_default().push(id);
    }
    let mut a_to_b = vec![usize::MAX; a.state_count()];
    let mut used = vec![false; b.state_count()];
    for (id, state) in a.states() {
        let candidates = by_fp
            .get(&state.fingerprint())
            .map_or(&[][..], Vec::as_slice);
        let matched = candidates
            .iter()
            .copied()
            .find(|&bid| !used[bid] && state.same_configuration(b.state(bid)));
        let Some(bid) = matched else {
            panic!("{family} at {threads} threads: state {id} has no counterpart");
        };
        used[bid] = true;
        a_to_b[id] = bid;
    }
    assert_eq!(
        a_to_b[0], 0,
        "{family} at {threads} threads: initial states differ"
    );

    // Per-state edge multisets must agree under the bijection.
    for (id, _) in a.states() {
        let to_key = |map: &dyn Fn(usize) -> usize, e: &Edge<M::Event>| {
            (e.proc, map(e.target), e.crash, format!("{:?}", e.events))
        };
        let mut ea: Vec<_> = a
            .edges(id)
            .iter()
            .map(|e| to_key(&|t| a_to_b[t], e))
            .collect();
        let mut eb: Vec<_> = b
            .edges(a_to_b[id])
            .iter()
            .map(|e| to_key(&|t| t, e))
            .collect();
        ea.sort();
        eb.sort();
        assert_eq!(
            ea, eb,
            "{family} at {threads} threads: edges differ at state {id}"
        );
    }
}

/// Explores `build()` sequentially and at 2 and 4 threads, asserting
/// isomorphism each time.
fn check_family<M>(family: &str, crashes: bool, build: impl Fn() -> Simulation<M>)
where
    M: Machine + Eq + Hash,
    M::Event: Debug,
{
    let seq = Explorer::new(build())
        .max_states(500_000)
        .crashes(crashes)
        .run()
        .unwrap();
    for threads in [2, 4] {
        let par = Explorer::new(build())
            .max_states(500_000)
            .crashes(crashes)
            .parallelism(threads)
            .run()
            .unwrap();
        assert_isomorphic(family, threads, &seq, &par);
    }
}

#[test]
fn anonymous_mutex_graphs_are_isomorphic() {
    check_family("mutex", false, || {
        Simulation::builder()
            .process(AnonMutex::new(pid(1), 3).unwrap(), View::identity(3))
            .process(AnonMutex::new(pid(2), 3).unwrap(), View::rotated(3, 1))
            .build()
            .unwrap()
    });
}

#[test]
fn anonymous_mutex_crash_graphs_are_isomorphic() {
    check_family("mutex+crashes", true, || {
        Simulation::builder()
            .process(AnonMutex::new(pid(1), 3).unwrap(), View::identity(3))
            .process(AnonMutex::new(pid(2), 3).unwrap(), View::rotated(3, 1))
            .build()
            .unwrap()
    });
}

#[test]
fn ordered_mutex_graphs_are_isomorphic() {
    check_family("ordered", false, || {
        Simulation::builder()
            .process(OrderedMutex::new(pid(1), 3).unwrap(), View::identity(3))
            .process(OrderedMutex::new(pid(2), 3).unwrap(), View::rotated(3, 1))
            .build()
            .unwrap()
    });
}

#[test]
fn hybrid_mutex_graphs_are_isomorphic() {
    check_family("hybrid", false, || {
        let anon: Vec<usize> = (0..3).map(|j| (j + 1) % 3).collect();
        Simulation::builder()
            .process(
                HybridMutex::new(pid(1), 3).unwrap(),
                named_view(3, (0..3).collect()).unwrap(),
            )
            .process(
                HybridMutex::new(pid(2), 3).unwrap(),
                named_view(3, anon).unwrap(),
            )
            .build()
            .unwrap()
    });
}

#[test]
fn consensus_graphs_are_isomorphic() {
    check_family("consensus", false, || {
        Simulation::builder()
            .process(
                AnonConsensus::new(pid(1), 2, 1).unwrap().with_registers(2),
                View::identity(2),
            )
            .process(
                AnonConsensus::new(pid(2), 2, 2).unwrap().with_registers(2),
                View::rotated(2, 1),
            )
            .build()
            .unwrap()
    });
}

#[test]
fn renaming_graphs_are_isomorphic() {
    check_family("renaming", false, || {
        Simulation::builder()
            .process(AnonRenaming::new(pid(1), 2).unwrap(), View::identity(3))
            .process(AnonRenaming::new(pid(2), 2).unwrap(), View::rotated(3, 1))
            .build()
            .unwrap()
    });
}

#[test]
fn election_graphs_are_isomorphic() {
    check_family("election", false, || {
        Simulation::builder()
            .process(AnonElection::new(pid(1), 2).unwrap(), View::identity(3))
            .process(AnonElection::new(pid(2), 2).unwrap(), View::rotated(3, 1))
            .build()
            .unwrap()
    });
}

#[test]
fn peterson_baseline_graphs_are_isomorphic() {
    check_family("peterson", false, || {
        Simulation::builder()
            .process_identity(Peterson::new(pid(1), 0).unwrap())
            .process_identity(Peterson::new(pid(2), 1).unwrap())
            .build()
            .unwrap()
    });
}

/// The fairness analyses walk SCCs in canonical order, so their verdicts
/// must not depend on which engine numbered the states.
#[test]
fn fairness_verdicts_are_numbering_independent() {
    for m in [3usize, 4] {
        let build = || {
            Simulation::builder()
                .process(AnonMutex::new(pid(1), m).unwrap(), View::identity(m))
                .process(AnonMutex::new(pid(2), m).unwrap(), View::rotated(m, 1))
                .build()
                .unwrap()
        };
        let seq = Explorer::new(build()).run().unwrap();
        let par = Explorer::new(build()).parallelism(4).run().unwrap();

        let entry = |mach: &AnonMutex| mach.section() == Section::Entry;
        let enter = |e: &MutexEvent| *e == MutexEvent::Enter;
        assert_eq!(
            seq.find_fair_livelock(entry, enter).is_some(),
            par.find_fair_livelock(entry, enter).is_some(),
            "livelock verdict diverged at m = {m}"
        );
        for victim in 0..2 {
            assert_eq!(
                seq.find_fair_starvation(victim, entry, enter).is_some(),
                par.find_fair_starvation(victim, entry, enter).is_some(),
                "starvation verdict diverged for p{victim} at m = {m}"
            );
        }

        // Canonical SCC lists are fully deterministic per graph.
        assert_eq!(seq.nontrivial_sccs(), seq.nontrivial_sccs());
        assert_eq!(par.nontrivial_sccs(), par.nontrivial_sccs());
    }
}
