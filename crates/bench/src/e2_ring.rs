//! E2 — the ring symmetry table (Theorem 3.4).
//!
//! For a grid of `(m, ℓ)` pairs, run the lock-step ring adversary where it
//! exists (`ℓ | m`) and report whether rotation symmetry survived and
//! whether anyone entered the critical section. The theorem predicts
//! starvation — symmetry intact, zero entries — for every divisible pair;
//! where `gcd(m, ℓ) = 1` the adversary cannot even be built, which is why
//! odd `m` works for two processes.

use anonreg_lower::ring::{gcd, ring_starvation};

use crate::benchjson::{flag, BenchMetric};
use crate::table::Table;

/// One row of the ring table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Registers on the ring.
    pub m: usize,
    /// Processes on the ring.
    pub l: usize,
    /// `gcd(m, ℓ)`.
    pub gcd: usize,
    /// `Some(starved)` if the adversary ran (`ℓ | m`); `None` if the ring
    /// does not fit.
    pub starved: Option<bool>,
}

/// Runs the ring experiment on the grid `m × ℓ` for `m ∈ 2..=max_m`,
/// `ℓ ∈ 2..=max_l`, with `rounds` lock-step rounds per divisible pair.
#[must_use]
pub fn rows(max_m: usize, max_l: usize, rounds: usize) -> Vec<Row> {
    let mut out = Vec::new();
    for m in 2..=max_m {
        for l in 2..=max_l.min(m) {
            let starved = if m % l == 0 {
                let outcome =
                    ring_starvation(m, l, rounds).expect("divisible rings are constructible");
                Some(outcome.starved())
            } else {
                None
            };
            out.push(Row {
                m,
                l,
                gcd: gcd(m, l),
                starved,
            });
        }
    }
    out
}

/// Renders the table for the given rows.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(vec!["m", "l", "gcd", "ring adversary", "outcome"]);
    for r in rows {
        let (fits, outcome) = match r.starved {
            Some(true) => ("l | m", "STARVED (symmetry never broke)"),
            Some(false) => ("l | m", "progress?! (unexpected)"),
            None => ("does not fit", "-"),
        };
        t.row(vec![
            r.m.to_string(),
            r.l.to_string(),
            r.gcd.to_string(),
            fits.into(),
            outcome.into(),
        ]);
    }
    t.render()
}

/// Machine-readable metrics: one `starved` flag per divisible pair (pairs
/// where the ring does not fit are omitted — there is nothing to measure).
#[must_use]
pub fn metrics(rows: &[Row]) -> Vec<BenchMetric> {
    rows.iter()
        .filter_map(|r| {
            r.starved.map(|starved| {
                BenchMetric::new(
                    "E2",
                    "mutex",
                    format!("m{}_l{}_starved", r.m, r.l),
                    flag(starved),
                    "bool",
                )
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divisible_pairs_starve_and_coprime_pairs_do_not_fit() {
        for row in rows(8, 4, 300) {
            if row.m % row.l == 0 {
                assert_eq!(row.starved, Some(true), "m={}, l={}", row.m, row.l);
                assert!(row.gcd > 1);
            } else {
                assert_eq!(row.starved, None);
            }
        }
    }

    #[test]
    fn render_marks_unfit_pairs() {
        let s = render(&rows(4, 3, 50));
        assert!(s.contains("does not fit"));
        assert!(s.contains("STARVED"));
    }
}
