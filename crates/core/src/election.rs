//! Obstruction-free leader election (the §4 remark).
//!
//! "It is straightforward to use the above consensus algorithm for
//! constructing a memory-anonymous symmetric obstruction-free election
//! algorithm: each process simply uses its own identifier as its initial
//! input." This module is exactly that reduction: [`AnonElection`] wraps
//! [`AnonConsensus`] with the process's identifier as the input and reports
//! the decided identifier as the elected leader.
//!
//! Election tolerating even one crash is impossible with registers (named or
//! not — see the citations in §4), so obstruction freedom is again the
//! strongest achievable progress guarantee.

use std::fmt;

use anonreg_model::{Machine, Pid, PidMap, Step};

use crate::consensus::{AnonConsensus, ConsRecord, ConsensusConfigError, ConsensusEvent};

/// Observable milestone of an election algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ElectionEvent {
    /// The process learned the elected leader's identifier and is about to
    /// terminate.
    Elected(Pid),
}

/// Memory-anonymous symmetric obstruction-free leader election for `n`
/// processes using `2n − 1` anonymous registers.
///
/// Every participant that terminates outputs the same identifier, and that
/// identifier belongs to a participant (a consequence of consensus agreement
/// and validity, Theorems 4.1 and 4.2).
///
/// # Example
///
/// ```
/// use anonreg::election::{AnonElection, ElectionEvent};
/// use anonreg::{Machine, Pid, Step};
///
/// let me = Pid::new(42).unwrap();
/// let mut machine = AnonElection::new(me, 2)?;
/// let mut regs = vec![Default::default(); machine.register_count()];
/// let mut read = None;
/// loop {
///     match machine.resume(read.take()) {
///         Step::Read(j) => read = Some(regs[j]),
///         Step::Write(j, v) => regs[j] = v,
///         Step::Event(ElectionEvent::Elected(leader)) => {
///             assert_eq!(leader, me); // ran alone, so elected itself
///             break;
///         }
///         Step::Halt => unreachable!("elects before halting"),
///     }
/// }
/// # Ok::<(), anonreg::consensus::ConsensusConfigError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct AnonElection {
    inner: AnonConsensus,
}

impl AnonElection {
    /// Creates the election machine for process `pid`, one of `n` processes.
    ///
    /// # Errors
    ///
    /// Returns [`ConsensusConfigError`] if `n == 0` (a `Pid` is never zero,
    /// so the zero-input error cannot occur here).
    pub fn new(pid: Pid, n: usize) -> Result<Self, ConsensusConfigError> {
        Ok(AnonElection {
            inner: AnonConsensus::new(pid, n, pid.get())?,
        })
    }

    /// Returns `true` once the process knows the elected leader.
    #[must_use]
    pub fn has_elected(&self) -> bool {
        self.inner.has_decided()
    }
}

impl Machine for AnonElection {
    type Value = ConsRecord;
    type Event = ElectionEvent;

    fn pid(&self) -> Pid {
        self.inner.pid()
    }

    fn register_count(&self) -> usize {
        self.inner.register_count()
    }

    fn resume(&mut self, read: Option<ConsRecord>) -> Step<ConsRecord, ElectionEvent> {
        match self.inner.resume(read) {
            Step::Read(j) => Step::Read(j),
            Step::Write(j, v) => Step::Write(j, v),
            Step::Event(ConsensusEvent::Decide(raw)) => {
                let leader = Pid::new(raw)
                    .expect("decided values originate from inputs, which are nonzero pids");
                Step::Event(ElectionEvent::Elected(leader))
            }
            Step::Halt => Step::Halt,
        }
    }
}

impl PidMap for AnonElection {
    fn map_pids(&self, f: &mut dyn FnMut(Pid) -> Pid) -> Self {
        // In election, the consensus *values* (input, preference, the val
        // fields of the shared records) are themselves identifiers, so they
        // must be renamed along with the id fields. Plain consensus treats
        // values as opaque and leaves them alone, hence the bespoke mapping.
        let mut inner = self.inner.map_pids(f);
        inner.input = self.inner.input.map_pids(f);
        inner.mypref = self.inner.mypref.map_pids(f);
        inner.myview = self
            .inner
            .myview
            .iter()
            .map(|r| ConsRecord {
                id: r.id.map_pids(f),
                val: r.val.map_pids(f),
            })
            .collect();
        AnonElection { inner }
    }
}

impl fmt::Debug for AnonElection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AnonElection")
            .field("inner", &self.inner)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u64) -> Pid {
        Pid::new(n).unwrap()
    }

    fn run_solo(mut machine: AnonElection, regs: &mut [ConsRecord]) -> Pid {
        let mut read = None;
        for _ in 0..1_000_000 {
            match machine.resume(read.take()) {
                Step::Read(j) => read = Some(regs[j]),
                Step::Write(j, v) => regs[j] = v,
                Step::Event(ElectionEvent::Elected(leader)) => return leader,
                Step::Halt => panic!("halt before electing"),
            }
        }
        panic!("machine did not elect")
    }

    #[test]
    fn solo_process_elects_itself() {
        for n in 1..5 {
            let me = pid(77);
            let machine = AnonElection::new(me, n).unwrap();
            let mut regs = vec![ConsRecord::default(); machine.register_count()];
            assert_eq!(run_solo(machine, &mut regs), me, "n={n}");
        }
    }

    #[test]
    fn follower_elects_existing_leader() {
        // The shared array is already unanimous for pid 9 — a late process
        // must adopt and elect 9.
        let n = 2;
        let mut regs = vec![ConsRecord { id: 9, val: 9 }; 2 * n - 1];
        let machine = AnonElection::new(pid(4), n).unwrap();
        assert_eq!(run_solo(machine, &mut regs), pid(9));
    }

    #[test]
    fn sequential_processes_agree_on_leader() {
        let n = 3;
        let mut regs = vec![ConsRecord::default(); 2 * n - 1];
        let first = run_solo(AnonElection::new(pid(10), n).unwrap(), &mut regs);
        let second = run_solo(AnonElection::new(pid(20), n).unwrap(), &mut regs);
        let third = run_solo(AnonElection::new(pid(30), n).unwrap(), &mut regs);
        assert_eq!(first, pid(10));
        assert_eq!(second, pid(10));
        assert_eq!(third, pid(10));
    }

    #[test]
    fn zero_processes_rejected() {
        assert!(AnonElection::new(pid(1), 0).is_err());
    }

    #[test]
    fn has_elected_flag() {
        let me = pid(3);
        let mut machine = AnonElection::new(me, 1).unwrap();
        assert!(!machine.has_elected());
        let mut regs = [ConsRecord::default(); 1];
        let mut read = None;
        loop {
            match machine.resume(read.take()) {
                Step::Read(j) => read = Some(regs[j]),
                Step::Write(j, v) => regs[j] = v,
                Step::Event(_) => break,
                Step::Halt => panic!(),
            }
        }
        assert!(machine.has_elected());
    }
}
