//! Crash-model parity: the runtime's [`FaultyDriver`] implements the same
//! §2 failure model the simulator explores via its crash transitions. A
//! crash must leave the shared registers exactly as written, and the
//! survivor must behave identically on both substrates — the fault
//! injector is the model checker's adversary ported to real threads, not
//! a new failure semantics.

use anonreg::mutex::{AnonMutex, Section};
use anonreg::{Pid, View};
use anonreg_obs::{MemProbe, Metric};
use anonreg_runtime::{
    AnonymousMemory, DriveOutcome, Driver, FaultCell, FaultPlan, FaultProfile, FaultyDriver,
    FaultyStep, PackedAtomicRegister,
};
use anonreg_sim::prelude::*;
use std::sync::Arc;

fn pid(n: u64) -> Pid {
    Pid::new(n).unwrap()
}

const M: usize = 3;
const SOLO_BUDGET: u64 = 10_000;

/// Simulator side: step the adversary `k` machine steps into its doorway,
/// crash it, then run the survivor solo. Returns the register contents at
/// the crash and whether the survivor reached its critical section.
fn sim_crash_at(k: u64) -> (Vec<u64>, bool) {
    let mut sim = Simulation::builder()
        .process(AnonMutex::new(pid(1), M).unwrap(), View::identity(M))
        .process(AnonMutex::new(pid(2), M).unwrap(), View::rotated(M, 1))
        .build()
        .unwrap();
    for _ in 0..k {
        sim.step(1).unwrap();
    }
    sim.crash(1).unwrap();
    let registers = sim.registers().to_vec();
    let mut entered = false;
    for _ in 0..SOLO_BUDGET {
        if sim.machine(0).section() == Section::Critical {
            entered = true;
            break;
        }
        sim.step(0).unwrap();
    }
    (registers, entered)
}

/// Runtime side: the same schedule through a [`FaultyDriver`] — crash pid 2
/// after `k` machine steps, then drive pid 1 solo on a plain [`Driver`].
fn thread_crash_at(k: u64) -> (Vec<u64>, bool) {
    let memory: AnonymousMemory<PackedAtomicRegister<u64>> = AnonymousMemory::new(M);
    let plan = FaultPlan::new(k).crash(pid(2), k);
    let mem = memory.clone();
    let mut adversary = FaultyDriver::new(
        pid(2),
        move |_| {
            (
                AnonMutex::new(pid(2), M).unwrap(),
                mem.view(View::rotated(M, 1)),
            )
        },
        &plan,
        Arc::new(FaultCell::new()),
    );
    loop {
        match adversary.advance() {
            FaultyStep::Crashed => break,
            FaultyStep::Op | FaultyStep::Event(_) => {}
            FaultyStep::Halted => panic!("an unbounded mutex machine never halts"),
        }
    }
    assert!(adversary.is_crashed());
    let spy = memory.view(View::identity(M));
    let registers: Vec<u64> = (0..M).map(|j| spy.read(j)).collect();
    let mut survivor = Driver::new(
        AnonMutex::new(pid(1), M).unwrap(),
        memory.view(View::identity(M)),
    );
    let entered = survivor.run_until_bounded(|m| m.section() == Section::Critical, SOLO_BUDGET);
    (registers, entered)
}

#[test]
fn crashed_doorway_matches_the_simulators_crash_transition() {
    // Crash the adversary at every depth of its first doorway passes. Both
    // substrates must agree on the registers it leaves behind and on
    // whether the survivor can still enter — some crash points
    // legitimately block the survivor forever (mutual exclusion tolerates
    // crashes for safety, not progress), and the two models must agree on
    // *which* points those are.
    let mut blocked_points = 0;
    for k in 0..=16 {
        let (sim_registers, sim_enters) = sim_crash_at(k);
        let (thread_registers, thread_enters) = thread_crash_at(k);
        assert_eq!(
            sim_registers, thread_registers,
            "crash at step {k}: registers diverge between substrates"
        );
        assert_eq!(
            sim_enters, thread_enters,
            "crash at step {k}: survivor verdicts diverge between substrates"
        );
        if !sim_enters {
            blocked_points += 1;
        }
    }
    // Sanity: the sweep must exercise both survivor outcomes, or the
    // parity assertion above is vacuous.
    assert!(
        blocked_points > 0,
        "no crash point ever blocked the survivor"
    );
    assert!(
        blocked_points < 17,
        "every crash point blocked the survivor"
    );
}

#[test]
fn explorer_with_crashes_confirms_survivor_safety() {
    // The exhaustive cross-check: over *every* reachable interleaving and
    // every crash point, no two processes ever occupy the critical
    // section. The thread-level harness (E15) samples this space; the
    // explorer closes it.
    let sim = Simulation::builder()
        .process(AnonMutex::new(pid(1), M).unwrap(), View::identity(M))
        .process(AnonMutex::new(pid(2), M).unwrap(), View::rotated(M, 1))
        .build()
        .unwrap();
    let graph = Explorer::new(sim)
        .crashes(true)
        .max_states(2_000_000)
        .run()
        .unwrap();
    let unsafe_state = graph.find_state(|s| {
        s.machines()
            .filter(|m| m.section() == Section::Critical)
            .count()
            >= 2
    });
    assert_eq!(
        unsafe_state, None,
        "mutual exclusion violated somewhere in the crash-extended space"
    );
}

#[test]
fn same_fault_plan_seed_yields_identical_runs() {
    // A solo machine under a plan with a stall and a restart: two runs
    // from the same seed must agree on every event, every fault firing,
    // and the incarnation count — the replayability `check stress` banks
    // on when it prints a violating seed.
    let run = || {
        let memory: AnonymousMemory<PackedAtomicRegister<u64>> = AnonymousMemory::new(M);
        let plan = FaultPlan::new(7)
            .stall(pid(1), 3, 4)
            .restart(pid(1), 9)
            .crash(pid(1), 200);
        let mem = memory.clone();
        let mut driver = FaultyDriver::new(
            pid(1),
            move |incarnation| {
                (
                    AnonMutex::new(pid(1), M).unwrap().with_cycles(2),
                    mem.view(View::rotated(M, incarnation as usize % M)),
                )
            },
            &plan,
            Arc::new(FaultCell::new()),
        );
        let (events, outcome) = driver.run_to_halt(100_000);
        (
            events,
            outcome,
            driver.fault_log().to_vec(),
            driver.incarnations(),
        )
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "a seeded fault schedule must replay exactly");
    assert_eq!(
        first.3, 2,
        "the restart must have started a second incarnation"
    );
}

#[test]
fn random_plans_replay_identically_and_spare_a_survivor() {
    let pids = [pid(1), pid(2), pid(3)];
    let profile = FaultProfile {
        restarts: true,
        ..FaultProfile::default()
    };
    for seed in 0..200 {
        let a = FaultPlan::random(seed, &pids, &profile);
        let b = FaultPlan::random(seed, &pids, &profile);
        assert_eq!(a, b, "seed {seed}: plan drawing must be deterministic");
        let crashed = pids
            .iter()
            .filter(|&&p| {
                a.for_pid(p)
                    .iter()
                    .any(|pt| pt.kind == anonreg_runtime::FaultKind::Crash)
            })
            .count();
        assert!(
            crashed < pids.len(),
            "seed {seed}: every process crashed — nothing left to assert on"
        );
    }
}

#[test]
fn fault_metrics_reach_the_probe() {
    let memory: AnonymousMemory<PackedAtomicRegister<u64>> = AnonymousMemory::new(M);
    let plan = FaultPlan::new(0).stall(pid(1), 2, 1).restart(pid(1), 5);
    let probe = MemProbe::new();
    let mem = memory.clone();
    let mut driver = FaultyDriver::new(
        pid(1),
        move |_| {
            (
                AnonMutex::new(pid(1), M).unwrap().with_cycles(1),
                mem.view(View::identity(M)),
            )
        },
        &plan,
        Arc::new(FaultCell::new()),
    )
    .with_probe(&probe);
    let (_, outcome) = driver.run_to_halt(100_000);
    assert_eq!(outcome, DriveOutcome::Halted);
    let snapshot = probe.snapshot();
    assert_eq!(
        snapshot.counter_total(Metric::FaultInjected),
        2,
        "one stall + one restart injected"
    );
    assert_eq!(snapshot.counter_total(Metric::FaultRecovered), 1);
    assert_eq!(
        snapshot.counter_by_key(Metric::FaultRecovered),
        vec![(1, 1)],
        "recoveries are keyed by the faulted pid"
    );
}
