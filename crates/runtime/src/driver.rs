//! Driving a [`Machine`] on a real thread.

use std::fmt;

use anonreg_model::rng::Rng64;
use anonreg_model::{Machine, Step};

use crate::{MemoryView, Register};

/// Randomized exponential backoff inserted after writes.
///
/// The paper's obstruction-free algorithms guarantee progress only to a
/// process that runs alone "long enough". On real threads nobody schedules
/// such solo intervals, so symmetric contention can in principle livelock
/// forever. Randomized backoff is the standard engineering complement: it
/// breaks symmetry probabilistically, creating the solo windows
/// obstruction freedom needs. (The mutual exclusion algorithm does not
/// need it — its waiting is part of the algorithm — but consensus and
/// renaming drivers enable it by default.)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Backoff {
    /// Spin-loop iterations for the first backoff.
    pub min_spins: u32,
    /// Cap on spin-loop iterations.
    pub max_spins: u32,
}

impl Backoff {
    /// The default backoff window used by the facades.
    #[must_use]
    pub fn standard() -> Self {
        Backoff {
            min_spins: 32,
            max_spins: 1 << 14,
        }
    }
}

/// Statistics from a completed drive.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DriverReport {
    /// Atomic reads performed.
    pub reads: u64,
    /// Atomic writes performed.
    pub writes: u64,
}

impl DriverReport {
    /// Total atomic memory operations.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.reads + self.writes
    }
}

/// Runs a [`Machine`] against a [`MemoryView`] on the current thread.
///
/// The driver is the real-thread counterpart of the simulator's stepping
/// loop: it answers the machine's `Read`/`Write` steps with atomic register
/// operations (translated through the thread's private view), collects
/// events, and optionally backs off after writes.
pub struct Driver<M: Machine, R> {
    machine: M,
    view: MemoryView<R>,
    pending: Option<M::Value>,
    backoff: Option<Backoff>,
    rng: Rng64,
    current_spins: u32,
    report: DriverReport,
    halted: bool,
}

impl<M, R> Driver<M, R>
where
    M: Machine,
    R: Register<M::Value>,
{
    /// Creates a driver for `machine` over `view`.
    ///
    /// # Panics
    ///
    /// Panics if the machine's register count differs from the view's.
    #[must_use]
    pub fn new(machine: M, view: MemoryView<R>) -> Self {
        assert_eq!(
            machine.register_count(),
            view.permutation().len(),
            "machine and view must agree on the register count"
        );
        let seed = machine.pid().get() ^ 0x9e37_79b9_7f4a_7c15;
        Driver {
            machine,
            view,
            pending: None,
            backoff: None,
            rng: Rng64::seed_from_u64(seed),
            current_spins: 0,
            report: DriverReport::default(),
            halted: false,
        }
    }

    /// Enables randomized backoff after writes.
    #[must_use]
    pub fn with_backoff(mut self, backoff: Backoff) -> Self {
        self.backoff = Some(backoff);
        self.current_spins = backoff.min_spins;
        self
    }

    /// The machine being driven.
    #[must_use]
    pub fn machine(&self) -> &M {
        &self.machine
    }

    /// Mutable access to the machine, for out-of-band control knobs such as
    /// [`AnonMutex::request_abort`](anonreg::mutex::AnonMutex::request_abort).
    /// Mutating algorithm-internal state directly voids the correctness
    /// guarantees; use only the methods the algorithm documents as safe.
    pub fn machine_mut(&mut self) -> &mut M {
        &mut self.machine
    }

    /// Statistics so far.
    #[must_use]
    pub fn report(&self) -> &DriverReport {
        &self.report
    }

    /// Has the machine halted?
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Runs until the machine emits an event (returned) or halts (`None`).
    pub fn run_until_event(&mut self) -> Option<M::Event> {
        loop {
            if self.halted {
                return None;
            }
            match self.machine.resume(self.pending.take()) {
                Step::Read(local) => {
                    self.report.reads += 1;
                    self.pending = Some(self.view.read(local));
                }
                Step::Write(local, value) => {
                    self.report.writes += 1;
                    self.view.write(local, value);
                    self.spin_backoff();
                }
                Step::Event(event) => return Some(event),
                Step::Halt => {
                    self.halted = true;
                    return None;
                }
            }
        }
    }

    /// Runs until `pred` holds on the machine state (checked after every
    /// step) or the machine halts. Returns whether the predicate held.
    pub fn run_until<F>(&mut self, mut pred: F) -> bool
    where
        F: FnMut(&M) -> bool,
    {
        loop {
            if pred(&self.machine) {
                return true;
            }
            if self.halted {
                return false;
            }
            match self.machine.resume(self.pending.take()) {
                Step::Read(local) => {
                    self.report.reads += 1;
                    self.pending = Some(self.view.read(local));
                }
                Step::Write(local, value) => {
                    self.report.writes += 1;
                    self.view.write(local, value);
                    self.spin_backoff();
                }
                Step::Event(_) => {}
                Step::Halt => self.halted = true,
            }
        }
    }

    /// Like [`run_until`](Driver::run_until), but gives up after `max_ops`
    /// further atomic memory operations. Returns whether the predicate held
    /// before the budget ran out.
    pub fn run_until_bounded<F>(&mut self, mut pred: F, max_ops: u64) -> bool
    where
        F: FnMut(&M) -> bool,
    {
        let deadline = self.report.ops().saturating_add(max_ops);
        loop {
            if pred(&self.machine) {
                return true;
            }
            if self.halted || self.report.ops() >= deadline {
                return false;
            }
            match self.machine.resume(self.pending.take()) {
                Step::Read(local) => {
                    self.report.reads += 1;
                    self.pending = Some(self.view.read(local));
                }
                Step::Write(local, value) => {
                    self.report.writes += 1;
                    self.view.write(local, value);
                    self.spin_backoff();
                }
                Step::Event(_) => {}
                Step::Halt => self.halted = true,
            }
        }
    }

    /// Runs to halt, collecting every event.
    pub fn run_to_halt(&mut self) -> Vec<M::Event> {
        let mut events = Vec::new();
        while let Some(event) = self.run_until_event() {
            events.push(event);
        }
        events
    }

    /// Consumes the driver, returning the machine and its report.
    #[must_use]
    pub fn into_parts(self) -> (M, DriverReport) {
        (self.machine, self.report)
    }

    fn spin_backoff(&mut self) {
        let Some(backoff) = self.backoff else { return };
        let spins = self.rng.gen_range_inclusive(0, self.current_spins as usize) as u32;
        for _ in 0..spins {
            std::hint::spin_loop();
        }
        self.current_spins = (self.current_spins.saturating_mul(2)).min(backoff.max_spins);
    }
}

impl<M: Machine, R> fmt::Debug for Driver<M, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Driver")
            .field("machine", &self.machine)
            .field("halted", &self.halted)
            .field("report", &self.report)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnonymousMemory, PackedAtomicRegister};
    use anonreg::mutex::{AnonMutex, MutexEvent};
    use anonreg_model::{Pid, View};

    type Mem = AnonymousMemory<PackedAtomicRegister<u64>>;

    fn pid(n: u64) -> Pid {
        Pid::new(n).unwrap()
    }

    #[test]
    fn drives_solo_mutex_to_completion() {
        let mem: Mem = AnonymousMemory::new(3);
        let machine = AnonMutex::new(pid(1), 3).unwrap().with_cycles(2);
        let mut driver = Driver::new(machine, mem.view(View::identity(3)));
        let events = driver.run_to_halt();
        assert_eq!(
            events,
            vec![
                MutexEvent::Enter,
                MutexEvent::Exit,
                MutexEvent::Enter,
                MutexEvent::Exit
            ]
        );
        assert!(driver.is_halted());
        assert_eq!(driver.report().ops(), 2 * 4 * 3);
    }

    #[test]
    fn run_until_event_pauses_in_the_critical_section() {
        let mem: Mem = AnonymousMemory::new(3);
        let machine = AnonMutex::new(pid(1), 3).unwrap().with_cycles(1);
        let mut driver = Driver::new(machine, mem.view(View::rotated(3, 2)));
        assert_eq!(driver.run_until_event(), Some(MutexEvent::Enter));
        // Paused inside the CS: every register holds our id.
        let probe = mem.view(View::identity(3));
        for j in 0..3 {
            assert_eq!(probe.read::<u64>(j), 1);
        }
        assert_eq!(driver.run_until_event(), Some(MutexEvent::Exit));
        assert_eq!(driver.run_until_event(), None);
        // Exit code restored zeros.
        for j in 0..3 {
            assert_eq!(probe.read::<u64>(j), 0);
        }
    }

    #[test]
    fn run_until_predicate() {
        let mem: Mem = AnonymousMemory::new(3);
        let machine = AnonMutex::new(pid(1), 3).unwrap().with_cycles(1);
        let mut driver = Driver::new(machine, mem.view(View::identity(3)));
        use anonreg::mutex::Section;
        assert!(driver.run_until(|m| m.section() == Section::Critical));
        assert!(driver.run_until(|m| m.section() == Section::Remainder));
        // After the cycle, the machine halts; an unreachable predicate
        // returns false.
        assert!(!driver.run_until(|m| m.section() == Section::Critical));
    }

    #[test]
    fn backoff_does_not_change_results() {
        let mem: Mem = AnonymousMemory::new(3);
        let machine = AnonMutex::new(pid(1), 3).unwrap().with_cycles(1);
        let mut driver = Driver::new(machine, mem.view(View::identity(3))).with_backoff(Backoff {
            min_spins: 1,
            max_spins: 8,
        });
        let events = driver.run_to_halt();
        assert_eq!(events.len(), 2);
    }

    #[test]
    #[should_panic(expected = "register count")]
    fn mismatched_view_panics() {
        let mem: Mem = AnonymousMemory::new(4);
        let machine = AnonMutex::new(pid(1), 3).unwrap();
        let _ = Driver::new(machine, mem.view(View::identity(4)));
    }
}
