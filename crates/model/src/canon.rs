//! Orbit canonicalization support: the model-level half of symmetry
//! reduction.
//!
//! §2 of the paper defines memory-anonymous executions to be invariant
//! under register permutations, and the Theorem 3.4 ring argument shows
//! symmetric algorithms (identifiers admit only equality comparisons) are
//! additionally invariant under identifier renamings. Both invariances
//! together generate a finite group acting on global configurations; a
//! model checker only needs to store one representative per orbit
//! (Clarke/Emerson/Sistla-style symmetry reduction).
//!
//! This module provides the pieces that do not depend on the simulator:
//!
//! * [`SymmetryMode`] — how much of the group an exploration may use;
//! * [`ByteSink`] — a [`Hasher`] that *serializes* instead of mixing, so a
//!   configuration's `Hash` impl doubles as a stable byte encoding;
//! * [`PidCanon`] — first-occurrence identifier renumbering, the canonical
//!   representative of a pid-renaming class;
//! * [`view_symmetries`] — the admissible register/slot permutations of a
//!   fixed view assignment.
//!
//! # Why views constrain the group
//!
//! Within one exploration every process keeps the view it started with, so
//! a register permutation `π` composed with a slot permutation (process
//! `j`'s configuration moving to slot `t`) only maps the system to *itself*
//! when `view_t = π ∘ view_j` for every such pair — otherwise the image is
//! a configuration of a *different* adversary choice and must not be
//! identified with this one. Given where slot `0` goes, `π` is forced
//! (`π = view_t ∘ view_0⁻¹`), so there are at most `n` candidate register
//! permutations, each inducing a partition of slots into view classes that
//! may be permuted among themselves.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hasher;
use std::str::FromStr;

use crate::fingerprint::Fnv64;
use crate::{Pid, View};

/// How much symmetry an exploration is allowed to quotient away.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SymmetryMode {
    /// No reduction: states are identified only when bit-identical.
    #[default]
    Off,
    /// View-compatible register *and* slot permutations (§2 anonymity).
    /// Sound for every machine — it is a pure relabeling of anonymous
    /// registers and slot indices, assuming nothing about the algorithm —
    /// but it only merges configurations in which distinct slots reached
    /// identical local states.
    Registers,
    /// [`Registers`](SymmetryMode::Registers) plus canonical identifier
    /// renaming. Sound for *symmetric* algorithms in the sense of the
    /// Theorem 3.4 ring argument (identifiers compared only for equality);
    /// for non-symmetric machines the embedded identifiers pin every
    /// process to its slot and the mode degenerates to no extra merging.
    Full,
}

impl SymmetryMode {
    /// All modes, weakest first — handy for parity sweeps.
    pub const ALL: [SymmetryMode; 3] = [
        SymmetryMode::Off,
        SymmetryMode::Registers,
        SymmetryMode::Full,
    ];
}

impl fmt::Display for SymmetryMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SymmetryMode::Off => "off",
            SymmetryMode::Registers => "registers",
            SymmetryMode::Full => "full",
        })
    }
}

/// Error parsing a [`SymmetryMode`] from the command line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseSymmetryError(String);

impl fmt::Display for ParseSymmetryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown symmetry mode `{}` (off|registers|full)", self.0)
    }
}

impl std::error::Error for ParseSymmetryError {}

impl FromStr for SymmetryMode {
    type Err = ParseSymmetryError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(SymmetryMode::Off),
            "registers" => Ok(SymmetryMode::Registers),
            "full" => Ok(SymmetryMode::Full),
            other => Err(ParseSymmetryError(other.to_string())),
        }
    }
}

/// A [`Hasher`] that appends instead of mixing: feeding a value's `Hash`
/// impl through a `ByteSink` yields a stable little-endian byte encoding
/// of the value.
///
/// For `derive(Hash)` types this encoding is injective in practice: enum
/// discriminants and slice length prefixes make it prefix-free, so two
/// structurally different values produce different byte strings. The
/// explorer's dedup therefore compares these encodings directly (safer
/// than a 64-bit fingerprint: a hash collision can at worst *fail to
/// merge*, never conflate). Like [`Fnv64`], `usize` values are widened to
/// `u64` so encodings agree across platforms.
#[derive(Clone, Debug, Default)]
pub struct ByteSink {
    bytes: Vec<u8>,
}

impl ByteSink {
    /// A fresh, empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes encoded so far.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the sink, returning the encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// The stable FNV-1a fingerprint of the encoded bytes — identical to
    /// hashing the same values straight into an [`Fnv64`].
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write(&self.bytes);
        h.finish()
    }
}

impl Hasher for ByteSink {
    fn finish(&self) -> u64 {
        self.fingerprint()
    }

    fn write(&mut self, bytes: &[u8]) {
        self.bytes.extend_from_slice(bytes);
    }

    fn write_u8(&mut self, i: u8) {
        self.bytes.push(i);
    }

    fn write_u16(&mut self, i: u16) {
        self.write(&i.to_le_bytes());
    }

    fn write_u32(&mut self, i: u32) {
        self.write(&i.to_le_bytes());
    }

    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }

    fn write_u128(&mut self, i: u128) {
        self.write(&i.to_le_bytes());
    }

    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }

    fn write_i8(&mut self, i: i8) {
        self.write_u8(i as u8);
    }

    fn write_i16(&mut self, i: i16) {
        self.write_u16(i as u16);
    }

    fn write_i32(&mut self, i: i32) {
        self.write_u32(i as u32);
    }

    fn write_i64(&mut self, i: i64) {
        self.write_u64(i as u64);
    }

    fn write_i128(&mut self, i: i128) {
        self.write_u128(i as u128);
    }

    fn write_isize(&mut self, i: isize) {
        self.write_u64(i as u64);
    }
}

/// First-occurrence identifier renumbering: the `k`-th distinct [`Pid`]
/// encountered maps to `Pid(k)`. Scanning a configuration in a fixed
/// order through a `PidCanon` yields the canonical representative of its
/// pid-renaming class — two configurations related by an identifier
/// bijection produce identical renumberings.
#[derive(Clone, Debug, Default)]
pub struct PidCanon {
    map: HashMap<u64, u64>,
}

impl PidCanon {
    /// A fresh renumbering with no identifiers seen yet.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The canonical identifier for `pid`, assigning the next free number
    /// on first encounter.
    pub fn canon(&mut self, pid: Pid) -> Pid {
        let next = self.map.len() as u64 + 1;
        let id = *self.map.entry(pid.get()).or_insert(next);
        Pid::new(id).expect("canonical pids start at 1")
    }

    /// How many distinct identifiers have been renumbered.
    #[must_use]
    pub fn seen(&self) -> usize {
        self.map.len()
    }
}

/// One admissible symmetry of a fixed view assignment: a register
/// permutation together with the slot classes it allows to permute.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ViewSymmetry {
    /// The register permutation as `perm[old_physical] = new_physical`.
    pub perm: Vec<usize>,
    /// Slot classes: within each class, any bijection from `sources`
    /// (slots of the original configuration) onto `targets` (positions of
    /// the image) respects the view assignment. Classes partition
    /// `0..n` on both sides.
    pub classes: Vec<ViewClass>,
}

/// One slot class of a [`ViewSymmetry`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ViewClass {
    /// Target positions, ascending.
    pub targets: Vec<usize>,
    /// Source slots that may occupy them, ascending.
    pub sources: Vec<usize>,
}

/// Enumerates the admissible symmetries of a view assignment: every
/// register permutation `π` for which slots can be re-assigned such that
/// the slot landing on position `t` carried view `π⁻¹ ∘ view_t`. The
/// identity symmetry is always first. At most `n` symmetries exist (one
/// candidate `π` per possible image of slot 0).
#[must_use]
pub fn view_symmetries(views: &[View]) -> Vec<ViewSymmetry> {
    let n = views.len();
    if n == 0 {
        return vec![ViewSymmetry {
            perm: Vec::new(),
            classes: Vec::new(),
        }];
    }
    let inv0 = views[0].inverse();
    let mut out: Vec<ViewSymmetry> = Vec::new();
    for k in 0..n {
        // The forced register permutation if slot 0's configuration moves
        // to position k.
        // `pi` maps physical→physical: the register v_0 calls `l` goes to
        // the one v_k calls `l`, so π ∘ v_0 = v_k.
        let pi = views[k].compose(&inv0);
        let perm: Vec<usize> = (0..pi.len()).map(|r| pi.physical(r)).collect();
        debug_assert!(
            (0..views[0].len()).all(|l| perm[views[0].physical(l)] == views[k].physical(l))
        );
        if out.iter().any(|s| s.perm == perm) {
            continue;
        }
        // Group slots by the view their image position must carry.
        let needed: Vec<View> = views.iter().map(|v| pi.compose(v)).collect();
        let mut classes: Vec<ViewClass> = Vec::new();
        let mut admissible = true;
        for (j, need) in needed.iter().enumerate() {
            if let Some(class) = classes.iter_mut().find(|c| &views[c.targets[0]] == need) {
                class.sources.push(j);
                continue;
            }
            let targets: Vec<usize> = (0..n).filter(|&t| &views[t] == need).collect();
            if targets.is_empty() {
                admissible = false;
                break;
            }
            classes.push(ViewClass {
                targets,
                sources: vec![j],
            });
        }
        if !admissible {
            continue;
        }
        // The classes must partition both sides with matching sizes.
        let covered: usize = classes.iter().map(|c| c.targets.len()).sum();
        if covered != n || classes.iter().any(|c| c.sources.len() != c.targets.len()) {
            continue;
        }
        out.push(ViewSymmetry { perm, classes });
    }
    // `k = 0` always yields the identity; keep it first for callers that
    // treat candidate 0 specially.
    debug_assert!(out[0].perm.iter().enumerate().all(|(r, &p)| r == p));
    out
}

#[cfg(test)]
mod tests {
    use std::hash::Hash;

    use super::*;

    #[test]
    fn byte_sink_is_stable_and_prefix_sensitive() {
        let mut a = ByteSink::new();
        42u64.hash(&mut a);
        let mut b = ByteSink::new();
        42u64.hash(&mut b);
        assert_eq!(a.bytes(), b.bytes());
        assert_eq!(a.fingerprint(), b.fingerprint());

        let mut c = ByteSink::new();
        vec![1u64, 2].hash(&mut c);
        let mut d = ByteSink::new();
        vec![1u64].hash(&mut d);
        2u64.hash(&mut d);
        // The slice length prefix keeps adjacent fields from bleeding.
        assert_ne!(c.into_bytes(), d.into_bytes());
    }

    #[test]
    fn byte_sink_fingerprint_matches_fnv() {
        let mut sink = ByteSink::new();
        ("hello", 7u64).hash(&mut sink);
        let mut direct = Fnv64::new();
        direct.write(sink.bytes());
        assert_eq!(sink.fingerprint(), direct.finish());
    }

    #[test]
    fn pid_canon_renumbers_by_first_occurrence() {
        let p = |n| Pid::new(n).unwrap();
        let mut canon = PidCanon::new();
        assert_eq!(canon.canon(p(17)), p(1));
        assert_eq!(canon.canon(p(5)), p(2));
        assert_eq!(canon.canon(p(17)), p(1));
        assert_eq!(canon.seen(), 2);

        // A renamed scan canonicalizes identically.
        let mut other = PidCanon::new();
        assert_eq!(other.canon(p(3)), p(1));
        assert_eq!(other.canon(p(9)), p(2));
        assert_eq!(other.canon(p(3)), p(1));
    }

    #[test]
    fn ring_views_admit_the_cyclic_group() {
        let views: Vec<View> = (0..3).map(|k| View::rotated(3, k)).collect();
        let syms = view_symmetries(&views);
        assert_eq!(syms.len(), 3, "C3 on the Theorem 3.4 ring");
        assert!(syms[0].perm.iter().enumerate().all(|(r, &p)| r == p));
        for sym in &syms {
            // Every class is a singleton: the rotation forces each slot.
            assert!(sym.classes.iter().all(|c| c.sources.len() == 1));
        }
    }

    #[test]
    fn identical_views_admit_the_symmetric_group() {
        let views = vec![View::identity(2); 3];
        let syms = view_symmetries(&views);
        // Only π = id survives, with one class of all three slots.
        assert_eq!(syms.len(), 1);
        assert_eq!(syms[0].classes.len(), 1);
        assert_eq!(syms[0].classes[0].sources, vec![0, 1, 2]);
        assert_eq!(syms[0].classes[0].targets, vec![0, 1, 2]);
    }

    #[test]
    fn mismatched_views_admit_only_identity() {
        let views = vec![View::identity(3), View::rotated(3, 1)];
        let syms = view_symmetries(&views);
        assert_eq!(syms.len(), 1, "identity plus rot1 pin both slots");
        assert_eq!(syms[0].classes.len(), 2);
    }

    #[test]
    fn symmetry_mode_round_trips_through_strings() {
        for mode in SymmetryMode::ALL {
            assert_eq!(mode.to_string().parse::<SymmetryMode>().unwrap(), mode);
        }
        assert!("sideways".parse::<SymmetryMode>().is_err());
    }
}
