//! Property-based tests over the core invariants (proptest).
//!
//! Each property quantifies over the *adversary's* choices — register
//! permutations, schedules, process counts, identifiers — and asserts the
//! paper's guarantees survive all of them.

use anonreg::consensus::AnonConsensus;
use anonreg::mutex::AnonMutex;
use anonreg::renaming::AnonRenaming;
use anonreg::spec::{check_consensus, check_mutual_exclusion, check_renaming};
use anonreg::{Pid, View};
use anonreg_sim::{sched, Simulation};
use proptest::collection::vec;
use proptest::prelude::*;

fn pid(n: u64) -> Pid {
    Pid::new(n).unwrap()
}

/// Strategy: a random permutation of `0..m`.
fn perm(m: usize) -> impl Strategy<Value = View> {
    Just(()).prop_perturb(move |(), mut rng| {
        let mut p: Vec<usize> = (0..m).collect();
        for i in (1..m).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            p.swap(i, j);
        }
        View::from_perm(p).expect("shuffled range is a permutation")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// View algebra: inverse and composition behave like a permutation
    /// group.
    #[test]
    fn view_inverse_round_trips(view in (1usize..12).prop_flat_map(perm)) {
        let m = view.len();
        prop_assert_eq!(view.compose(&view.inverse()), View::identity(m));
        prop_assert_eq!(view.inverse().compose(&view), View::identity(m));
        prop_assert_eq!(view.inverse().inverse(), view.clone());
        for local in 0..m {
            prop_assert_eq!(view.local(view.physical(local)), local);
        }
    }

    /// Figure 1 safety: under ANY pair of views and ANY seeded schedule,
    /// two processes with an odd register count never overlap in the
    /// critical section.
    #[test]
    fn mutex_safety_under_random_views_and_schedules(
        m_idx in 0usize..2,
        view_a in perm(5),
        view_b in perm(5),
        seed in any::<u64>(),
    ) {
        let m = [3, 5][m_idx];
        // Shrink the 5-permutations down to m registers by filtering.
        let shrink = |v: &View| {
            let p: Vec<usize> = v.iter().filter(|&x| x < m).collect();
            View::from_perm(p).expect("filtered permutation stays one")
        };
        let mut sim = Simulation::builder()
            .process(AnonMutex::new(pid(1), m).unwrap(), shrink(&view_a))
            .process(AnonMutex::new(pid(2), m).unwrap(), shrink(&view_b))
            .build()
            .unwrap();
        sched::random(&mut sim, seed, 4_000);
        let stats = check_mutual_exclusion(sim.trace())
            .map_err(|v| TestCaseError::fail(format!("m={m} seed={seed}: {v}")))?;
        // Under a fair-ish random schedule someone usually gets in, but
        // safety is the property under test; entries may be 0 on adversarial
        // prefixes.
        let _ = stats;
    }

    /// Figure 2 agreement + validity under random views, schedules, and
    /// inputs.
    #[test]
    fn consensus_agreement_under_random_everything(
        n in 2usize..5,
        seed in any::<u64>(),
        raw_inputs in vec(1u64..100, 4),
    ) {
        let inputs: Vec<u64> = raw_inputs.into_iter().take(n).collect();
        prop_assume!(inputs.len() == n);
        let machines: Vec<AnonConsensus> = inputs
            .iter()
            .enumerate()
            .map(|(i, &input)| AnonConsensus::new(pid(50 + i as u64), n, input).unwrap())
            .collect();
        let m = 2 * n - 1;
        let views = anonreg_bench::workload::random_views(m, n, seed);
        let mut builder = Simulation::builder();
        for (machine, view) in machines.into_iter().zip(views) {
            builder = builder.process(machine, view);
        }
        let mut sim = builder.build().unwrap();
        sched::random_bursts(&mut sim, seed, 8 * n, 60_000 * n);
        check_consensus(sim.trace(), &inputs)
            .map_err(|v| TestCaseError::fail(format!("n={n} seed={seed}: {v}")))?;
    }

    /// Figure 3 uniqueness + adaptivity under random participation.
    #[test]
    fn renaming_adaptivity_under_random_everything(
        n in 2usize..5,
        k_raw in 1usize..5,
        seed in any::<u64>(),
    ) {
        let k = k_raw.min(n);
        let machines: Vec<AnonRenaming> = (0..k)
            .map(|i| AnonRenaming::new(pid(300 + 7 * i as u64), n).unwrap())
            .collect();
        let m = 2 * n - 1;
        let views = anonreg_bench::workload::random_views(m, k, seed);
        let mut builder = Simulation::builder();
        for (machine, view) in machines.into_iter().zip(views) {
            builder = builder.process(machine, view);
        }
        let mut sim = builder.build().unwrap();
        sched::random_bursts(&mut sim, seed, 16 * n, 80_000 * n);
        let stats = check_renaming(sim.trace(), k as u32)
            .map_err(|v| TestCaseError::fail(format!("n={n} k={k} seed={seed}: {v}")))?;
        prop_assert!(stats.max_name() <= k as u32);
    }

    /// Determinism: the same seed reproduces the same run, byte for byte.
    #[test]
    fn seeded_runs_replay_identically(seed in any::<u64>()) {
        let run = |seed: u64| {
            let mut sim = Simulation::builder()
                .process(AnonMutex::new(pid(1), 3).unwrap(), View::identity(3))
                .process(AnonMutex::new(pid(2), 3).unwrap(), View::rotated(3, 1))
                .build()
                .unwrap();
            sched::random(&mut sim, seed, 500);
            format!("{}", sim.trace())
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Packing: consensus records with 32-bit fields round-trip through the
    /// atomic encoding.
    #[test]
    fn cons_record_pack_round_trips(id in 0u64..=u32::MAX as u64, val in 0u64..=u32::MAX as u64) {
        use anonreg::consensus::ConsRecord;
        use anonreg_runtime::Pack64;
        let record = ConsRecord { id, val };
        prop_assert_eq!(ConsRecord::unpack(record.pack()), record);
    }
}
