//! Cross-family verdict parity for ample-set partial-order reduction.
//!
//! The explorer's POR mode prunes successors at states where some live
//! process is poised at a register-free local step (event announcement or
//! halt): those steps commute with every other process's steps, and
//! milestone events are announced *by* them, so restricting expansion to
//! the local steps preserves every reachability and fairness verdict the
//! reproduction checks. This suite holds the reduction to that promise on
//! every algorithm family, against both engines:
//!
//! * the reduced graph never has more states or edges than the full one;
//! * the family's safety verdict is bit-identical with POR on and off;
//! * the sequential and parallel engines agree on the reduced graph
//!   exactly (isomorphism up to state renumbering);
//! * `run_stats` counts exactly what `run` materialises under POR;
//! * POR composed with `SymmetryMode::Registers` — sound because
//!   register renaming never touches process slots, so ample sets are
//!   orbit-invariant — keeps the safety verdict and never grows the
//!   reduced graph, while `SymmetryMode::Full` × POR is an explicit
//!   `ExploreError`;
//! * the mutex fairness verdicts (fair livelock, per-victim starvation)
//!   are identical with POR on and off.

use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::Hash;

use anonreg::baseline::Peterson;
use anonreg::consensus::AnonConsensus;
use anonreg::election::AnonElection;
use anonreg::hybrid::{named_view, HybridMutex};
use anonreg::mutex::{AnonMutex, MutexEvent, Section};
use anonreg::ordered::OrderedMutex;
use anonreg::renaming::AnonRenaming;
use anonreg::{Machine, Pid, PidMap, View};
use anonreg_sim::prelude::*;

fn pid(n: u64) -> Pid {
    Pid::new(n).unwrap()
}

/// Asserts `a` and `b` are the same graph up to state renumbering.
fn assert_isomorphic<M>(family: &str, threads: usize, a: &StateGraph<M>, b: &StateGraph<M>)
where
    M: Machine + Eq + Hash,
    M::Event: Debug,
{
    assert_eq!(
        a.state_count(),
        b.state_count(),
        "{family} at {threads} threads: state counts differ"
    );
    assert_eq!(
        a.edge_count(),
        b.edge_count(),
        "{family} at {threads} threads: edge counts differ"
    );
    let mut by_fp: HashMap<u64, Vec<usize>> = HashMap::new();
    for (id, state) in b.states() {
        by_fp.entry(state.fingerprint()).or_default().push(id);
    }
    let mut a_to_b = vec![usize::MAX; a.state_count()];
    let mut used = vec![false; b.state_count()];
    for (id, state) in a.states() {
        let candidates = by_fp
            .get(&state.fingerprint())
            .map_or(&[][..], Vec::as_slice);
        let matched = candidates
            .iter()
            .copied()
            .find(|&bid| !used[bid] && state.same_configuration(b.state(bid)));
        let Some(bid) = matched else {
            panic!("{family} at {threads} threads: state {id} has no counterpart");
        };
        used[bid] = true;
        a_to_b[id] = bid;
    }
    for (id, _) in a.states() {
        let to_key = |map: &dyn Fn(usize) -> usize, e: &Edge<M::Event>| {
            (e.proc, map(e.target), e.crash, format!("{:?}", e.events))
        };
        let mut ea: Vec<_> = a
            .edges(id)
            .iter()
            .map(|e| to_key(&|t| a_to_b[t], e))
            .collect();
        let mut eb: Vec<_> = b
            .edges(a_to_b[id])
            .iter()
            .map(|e| to_key(&|t| t, e))
            .collect();
        ea.sort();
        eb.sort();
        assert_eq!(
            ea, eb,
            "{family} at {threads} threads: edges differ at state {id}"
        );
    }
}

/// Runs the family with POR off and on, across both engines, and asserts
/// the contract described in the module docs. `violated` is the family's
/// safety predicate; its verdict must not move under the reduction.
fn check_por_parity<M>(
    family: &str,
    build: impl Fn() -> Simulation<M>,
    violated: impl Fn(&Simulation<M>) -> bool + Copy,
) where
    M: Machine + Eq + Hash + PidMap,
    M::Value: PidMap,
    M::Event: Debug,
{
    let full = Explorer::new(build()).max_states(500_000).run().unwrap();
    let reduced = Explorer::new(build())
        .max_states(500_000)
        .por(true)
        .run()
        .unwrap();
    assert!(
        reduced.state_count() <= full.state_count(),
        "{family}: POR grew the state space"
    );
    assert!(
        reduced.edge_count() <= full.edge_count(),
        "{family}: POR grew the edge set"
    );
    assert_eq!(
        full.find_state(&violated).is_some(),
        reduced.find_state(&violated).is_some(),
        "{family}: safety verdict moved under POR"
    );

    for threads in [2, 4] {
        let parallel = Explorer::new(build())
            .max_states(500_000)
            .por(true)
            .parallelism(threads)
            .run()
            .unwrap();
        assert_isomorphic(family, threads, &reduced, &parallel);
    }

    for threads in [1, 2] {
        let stats = Explorer::new(build())
            .max_states(500_000)
            .por(true)
            .parallelism(threads)
            .run_stats()
            .unwrap();
        assert_eq!(
            stats.states as usize,
            reduced.state_count(),
            "{family} stats at {threads} threads: state count"
        );
        assert_eq!(
            stats.edges as usize,
            reduced.edge_count(),
            "{family} stats at {threads} threads: edge count"
        );
    }

    // POR composed with register-symmetry reduction: the quotient of the
    // reduced graph can only shrink it further, the safety verdict must
    // not move, and `run_stats` must count what `run` stores.
    let composed = Explorer::new(build())
        .max_states(500_000)
        .por(true)
        .symmetry(SymmetryMode::Registers)
        .run()
        .unwrap();
    assert!(
        composed.state_count() <= reduced.state_count(),
        "{family}: POR × Registers grew the state space"
    );
    assert!(
        composed.edge_count() <= reduced.edge_count(),
        "{family}: POR × Registers grew the edge set"
    );
    assert_eq!(
        full.find_state(&violated).is_some(),
        composed.find_state(&violated).is_some(),
        "{family}: safety verdict moved under POR × Registers"
    );
    let composed_stats = Explorer::new(build())
        .max_states(500_000)
        .por(true)
        .symmetry(SymmetryMode::Registers)
        .parallelism(2)
        .run_stats()
        .unwrap();
    assert_eq!(
        composed_stats.states as usize,
        composed.state_count(),
        "{family} composed stats: state count"
    );
    assert_eq!(
        composed_stats.edges as usize,
        composed.edge_count(),
        "{family} composed stats: edge count"
    );

    // Full-mode canonicalization un-pins process slots; composing it
    // with POR must stay an explicit error on both run paths.
    let err = Explorer::new(build())
        .por(true)
        .symmetry(SymmetryMode::Full)
        .run()
        .unwrap_err();
    assert_eq!(err, ExploreError::PorWithFullSymmetry, "{family}");
    let err = Explorer::new(build())
        .por(true)
        .symmetry(SymmetryMode::Full)
        .run_stats()
        .unwrap_err();
    assert_eq!(err, ExploreError::PorWithFullSymmetry, "{family}");
    assert!(!err.to_string().is_empty());
}

/// Two processes are simultaneously critical — the mutual-exclusion
/// violation predicate shared by every mutex-like family.
fn overlap<M>(section: impl Fn(&M) -> Section + Copy) -> impl Fn(&Simulation<M>) -> bool + Copy
where
    M: Machine + Eq + Hash,
{
    move |s: &Simulation<M>| {
        s.machines()
            .filter(|m| section(m) == Section::Critical)
            .count()
            >= 2
    }
}

#[test]
fn mutex_por_verdicts_match() {
    check_por_parity(
        "mutex",
        || {
            Simulation::builder()
                .process(AnonMutex::new(pid(1), 3).unwrap(), View::identity(3))
                .process(AnonMutex::new(pid(2), 3).unwrap(), View::rotated(3, 1))
                .build()
                .unwrap()
        },
        overlap(AnonMutex::section),
    );
}

#[test]
fn ordered_mutex_por_verdicts_match() {
    check_por_parity(
        "ordered",
        || {
            Simulation::builder()
                .process(OrderedMutex::new(pid(1), 3).unwrap(), View::identity(3))
                .process(OrderedMutex::new(pid(2), 3).unwrap(), View::rotated(3, 1))
                .build()
                .unwrap()
        },
        overlap(OrderedMutex::section),
    );
}

#[test]
fn hybrid_mutex_por_verdicts_match() {
    check_por_parity(
        "hybrid",
        || {
            let anon: Vec<usize> = (0..3).map(|j| (j + 1) % 3).collect();
            Simulation::builder()
                .process(
                    HybridMutex::new(pid(1), 3).unwrap(),
                    named_view(3, (0..3).collect()).unwrap(),
                )
                .process(
                    HybridMutex::new(pid(2), 3).unwrap(),
                    named_view(3, anon).unwrap(),
                )
                .build()
                .unwrap()
        },
        overlap(HybridMutex::section),
    );
}

#[test]
fn peterson_baseline_por_verdicts_match() {
    check_por_parity(
        "peterson",
        || {
            Simulation::builder()
                .process_identity(Peterson::new(pid(1), 0).unwrap())
                .process_identity(Peterson::new(pid(2), 1).unwrap())
                .build()
                .unwrap()
        },
        overlap(Peterson::section),
    );
}

#[test]
fn consensus_por_verdicts_match() {
    check_por_parity(
        "consensus",
        || {
            Simulation::builder()
                .process(
                    AnonConsensus::new(pid(1), 2, 1).unwrap().with_registers(2),
                    View::identity(2),
                )
                .process(
                    AnonConsensus::new(pid(2), 2, 2).unwrap().with_registers(2),
                    View::rotated(2, 1),
                )
                .build()
                .unwrap()
        },
        // Agreement: two decided processes must hold the same preference.
        |s| {
            let decided: Vec<u64> = s
                .machines()
                .filter(|m| m.has_decided())
                .map(AnonConsensus::preference)
                .collect();
            decided.len() == 2 && decided[0] != decided[1]
        },
    );
}

#[test]
fn renaming_por_verdicts_match() {
    check_por_parity(
        "renaming",
        || {
            Simulation::builder()
                .process(AnonRenaming::new(pid(1), 2).unwrap(), View::identity(3))
                .process(AnonRenaming::new(pid(2), 2).unwrap(), View::rotated(3, 1))
                .build()
                .unwrap()
        },
        // Termination without a name is the renaming failure mode.
        |s| s.all_halted() && s.machines().any(|m| !m.has_name()),
    );
}

#[test]
fn election_por_verdicts_match() {
    check_por_parity(
        "election",
        || {
            Simulation::builder()
                .process(AnonElection::new(pid(1), 2).unwrap(), View::identity(3))
                .process(AnonElection::new(pid(2), 2).unwrap(), View::rotated(3, 1))
                .build()
                .unwrap()
        },
        // A halted process that never learned the leader.
        |s| s.all_halted() && s.machines().any(|m| !m.has_elected()),
    );
}

/// The fairness analyses must return the same verdicts on the reduced
/// graph: milestone events are only announced by local steps, which the
/// ample set always keeps.
#[test]
fn mutex_fairness_verdicts_survive_por() {
    for m in [3usize, 4] {
        let build = || {
            Simulation::builder()
                .process(AnonMutex::new(pid(1), m).unwrap(), View::identity(m))
                .process(AnonMutex::new(pid(2), m).unwrap(), View::rotated(m, 1))
                .build()
                .unwrap()
        };
        let full = Explorer::new(build()).run().unwrap();
        let reduced = Explorer::new(build()).por(true).run().unwrap();
        let reduced_par = Explorer::new(build())
            .por(true)
            .parallelism(2)
            .run()
            .unwrap();

        let entry = |mach: &AnonMutex| mach.section() == Section::Entry;
        let enter = |e: &MutexEvent| *e == MutexEvent::Enter;
        assert_eq!(
            full.find_fair_livelock(entry, enter).is_some(),
            reduced.find_fair_livelock(entry, enter).is_some(),
            "livelock verdict moved under POR at m = {m}"
        );
        assert_eq!(
            reduced.find_fair_livelock(entry, enter).is_some(),
            reduced_par.find_fair_livelock(entry, enter).is_some(),
            "livelock verdict differs between engines at m = {m}"
        );
        for victim in 0..2 {
            assert_eq!(
                full.find_fair_starvation(victim, entry, enter).is_some(),
                reduced.find_fair_starvation(victim, entry, enter).is_some(),
                "starvation verdict moved under POR for p{victim} at m = {m}"
            );
            assert_eq!(
                reduced.find_fair_starvation(victim, entry, enter).is_some(),
                reduced_par
                    .find_fair_starvation(victim, entry, enter)
                    .is_some(),
                "starvation verdict differs between engines for p{victim} at m = {m}"
            );
        }
    }
}
