//! E10 benchmark: solo completion cost of the obstruction-free algorithms
//! as `n` grows — the proofs predict `Θ(n²)` memory operations, so the
//! measured time should grow quadratically.

use anonreg_bench::timing::{criterion_group, criterion_main, BenchmarkId, Criterion};

use anonreg::consensus::AnonConsensus;
use anonreg::renaming::AnonRenaming;
use anonreg::Pid;
use anonreg_model::View;
use anonreg_sim::Simulation;

fn solo_run<M: anonreg_model::Machine>(machine: M) -> usize {
    let m = machine.register_count();
    let mut sim = Simulation::builder()
        .process(machine, View::identity(m))
        .build()
        .unwrap();
    let (ops, halted) = sim.run_solo(0, 10_000_000).unwrap();
    assert!(halted);
    ops
}

fn bench_solo_consensus(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_solo_consensus");
    for n in [2usize, 8, 32, 128] {
        group.bench_with_input(BenchmarkId::new("decide", n), &n, |b, &n| {
            b.iter(|| solo_run(AnonConsensus::new(Pid::new(5).unwrap(), n, 9).unwrap()));
        });
    }
    group.finish();
}

fn bench_solo_renaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_solo_renaming");
    for n in [2usize, 8, 32] {
        group.bench_with_input(BenchmarkId::new("acquire", n), &n, |b, &n| {
            b.iter(|| solo_run(AnonRenaming::new(Pid::new(5).unwrap(), n).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solo_consensus, bench_solo_renaming);
criterion_main!(benches);
