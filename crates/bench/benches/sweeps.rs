//! E3/E5/E8 machinery benchmark: cost of one full seeded-adversary
//! validation run per algorithm (simulation + specification checking).

use anonreg_bench::timing::{criterion_group, criterion_main, BenchmarkId, Criterion};

use anonreg::consensus::AnonConsensus;
use anonreg::election::AnonElection;
use anonreg::renaming::AnonRenaming;
use anonreg::spec::{check_consensus, check_election, check_renaming};
use anonreg::Pid;
use anonreg_bench::workload::run_randomized;

fn bench_consensus_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_one_validated_run");
    for n in [2usize, 4, 6] {
        group.bench_with_input(BenchmarkId::new("consensus", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let inputs: Vec<u64> = (0..n as u64).map(|i| 10 + i).collect();
                let machines: Vec<AnonConsensus> = inputs
                    .iter()
                    .enumerate()
                    .map(|(i, &input)| {
                        AnonConsensus::new(Pid::new(100 + i as u64).unwrap(), n, input).unwrap()
                    })
                    .collect();
                let sim = run_randomized(machines, seed, 8 * n, 40_000 * n);
                check_consensus(sim.trace(), &inputs).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_renaming_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_one_validated_run");
    for n in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("renaming", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let machines: Vec<AnonRenaming> = (0..n)
                    .map(|i| AnonRenaming::new(Pid::new(1000 + i as u64).unwrap(), n).unwrap())
                    .collect();
                let sim = run_randomized(machines, seed, 16 * n, 60_000 * n);
                check_renaming(sim.trace(), n as u32).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_election_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_one_validated_run");
    for n in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("election", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let pids: Vec<Pid> = (0..n).map(|i| Pid::new(7000 + i as u64).unwrap()).collect();
                let machines: Vec<AnonElection> = pids
                    .iter()
                    .map(|&pid| AnonElection::new(pid, n).unwrap())
                    .collect();
                let sim = run_randomized(machines, seed, 8 * n, 40_000 * n);
                check_election(sim.trace(), &pids).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_consensus_sweep,
    bench_renaming_sweep,
    bench_election_sweep
);
criterion_main!(benches);
