//! Cross-substrate equivalence: the same `Machine` must behave identically
//! under the deterministic simulator and the real-thread driver when given
//! the same view and no contention — the two substrates are different
//! adversaries over the same algorithm, not different algorithms.

use anonreg::consensus::{AnonConsensus, ConsensusEvent};
use anonreg::election::{AnonElection, ElectionEvent};
use anonreg::mutex::{AnonMutex, MutexEvent};
use anonreg::renaming::{AnonRenaming, RenamingEvent};
use anonreg::{Machine, Pid, View};
use anonreg_model::trace::TraceOp;
use anonreg_runtime::{AnonymousMemory, Driver, LockRegister, PackedAtomicRegister, Register};
use anonreg_sim::{sched, Simulation};

fn pid(n: u64) -> Pid {
    Pid::new(n).unwrap()
}

/// Runs `machine` solo under the simulator; returns (events, ops).
fn sim_solo<M: Machine>(machine: M, view: View) -> (Vec<M::Event>, usize) {
    let mut sim = Simulation::builder()
        .process(machine, view)
        .build()
        .unwrap();
    let ops = sched::round_robin(&mut sim, 1_000_000);
    assert!(sim.all_halted());
    let events = sim
        .trace()
        .iter()
        .filter_map(|entry| match &entry.op {
            TraceOp::Event(e) => Some(e.clone()),
            _ => None,
        })
        .collect();
    (events, ops)
}

/// Runs `machine` solo on the thread driver; returns (events, ops).
fn thread_solo<M, R>(machine: M, view: View) -> (Vec<M::Event>, u64)
where
    M: Machine,
    R: Register<M::Value>,
    M::Value: Default,
{
    let memory: AnonymousMemory<R> = AnonymousMemory::new(machine.register_count());
    let mut driver = Driver::new(machine, memory.view(view));
    let events = driver.run_to_halt();
    (events, driver.report().ops())
}

#[test]
fn consensus_solo_matches_across_substrates() {
    for n in 1..5 {
        for shift in 0..(2 * n - 1) {
            let view = View::rotated(2 * n - 1, shift);
            let machine = AnonConsensus::new(pid(9), n, 77).unwrap();
            let (sim_events, sim_ops) = sim_solo(machine.clone(), view.clone());
            let (thread_events, thread_ops) =
                thread_solo::<_, PackedAtomicRegister<_>>(machine, view);
            assert_eq!(sim_events, thread_events, "n={n} shift={shift}");
            assert_eq!(sim_ops as u64, thread_ops, "n={n} shift={shift}");
            assert_eq!(sim_events, vec![ConsensusEvent::Decide(77)]);
        }
    }
}

#[test]
fn election_solo_matches_across_substrates() {
    for n in 1..4 {
        let view = View::rotated(2 * n - 1, n - 1);
        let machine = AnonElection::new(pid(4), n).unwrap();
        let (sim_events, sim_ops) = sim_solo(machine.clone(), view.clone());
        let (thread_events, thread_ops) = thread_solo::<_, PackedAtomicRegister<_>>(machine, view);
        assert_eq!(sim_events, thread_events, "n={n}");
        assert_eq!(sim_ops as u64, thread_ops);
        assert_eq!(sim_events, vec![ElectionEvent::Elected(pid(4))]);
    }
}

#[test]
fn renaming_solo_matches_across_substrates() {
    for n in 1..5 {
        let view = View::rotated(2 * n - 1, 1 % (2 * n - 1));
        let machine = AnonRenaming::new(pid(6), n).unwrap();
        let (sim_events, sim_ops) = sim_solo(machine.clone(), view.clone());
        let (thread_events, thread_ops) = thread_solo::<_, LockRegister<_>>(machine, view);
        assert_eq!(sim_events, thread_events, "n={n}");
        assert_eq!(sim_ops as u64, thread_ops);
        assert_eq!(sim_events, vec![RenamingEvent::Named(1)]);
    }
}

#[test]
fn mutex_solo_matches_across_substrates() {
    for m in [3usize, 5, 9] {
        let view = View::rotated(m, m - 1);
        let machine = AnonMutex::new(pid(2), m).unwrap().with_cycles(3);
        let (sim_events, sim_ops) = sim_solo(machine.clone(), view.clone());
        let (thread_events, thread_ops) = thread_solo::<_, PackedAtomicRegister<_>>(machine, view);
        assert_eq!(sim_events, thread_events, "m={m}");
        assert_eq!(sim_ops as u64, thread_ops);
        assert_eq!(sim_events.len(), 6);
        assert_eq!(sim_events[0], MutexEvent::Enter);
    }
}

#[test]
fn probe_counters_match_trace_stats_across_substrates() {
    // The driver's live per-register counters and the register statistics
    // recomputed from the simulator's recorded trace are two independent
    // observers of the same solo run; they must agree exactly — including
    // after a JSONL export/import round trip of the trace.
    use anonreg_obs::{register_stats, trace_from_jsonl, trace_to_jsonl, MemProbe, Metric};

    for m in [3usize, 5] {
        let view = View::rotated(m, 1);
        let machine = AnonMutex::new(pid(3), m).unwrap().with_cycles(2);

        let probe = MemProbe::new();
        let memory: AnonymousMemory<PackedAtomicRegister<_>> = AnonymousMemory::new(m);
        let mut driver = Driver::new(machine.clone(), memory.view(view.clone())).with_probe(&probe);
        driver.run_to_halt();
        let snapshot = probe.snapshot();

        let mut sim = Simulation::builder()
            .process(machine, view)
            .build()
            .unwrap();
        sched::round_robin(&mut sim, 1_000_000);
        assert!(sim.all_halted());
        let jsonl = trace_to_jsonl(sim.trace());
        let reimported: anonreg_model::trace::Trace<u64, MutexEvent> =
            trace_from_jsonl(&jsonl).unwrap();
        assert_eq!(&reimported, sim.trace());
        let stats = register_stats(&reimported);

        for (metric, totals) in [
            (Metric::RegRead, &stats.reads),
            (Metric::RegWrite, &stats.writes),
        ] {
            for (register, &count) in totals.iter().enumerate() {
                let probed = snapshot
                    .counter_by_key(metric)
                    .into_iter()
                    .find(|&(key, _)| key == register as u64)
                    .map_or(0, |(_, v)| v);
                assert_eq!(probed, count, "m={m} register={register} {metric:?}");
            }
        }
        // A solo run never observes foreign writes, on either substrate.
        assert_eq!(snapshot.counter_total(Metric::RegContention), 0);
        assert_eq!(stats.contention.iter().sum::<u64>(), 0);
    }
}

#[test]
fn sequential_renaming_matches_across_substrates() {
    // Two processes run back-to-back (no concurrency): both substrates must
    // assign the same names in the same order.
    let n = 3;
    let m = 2 * n - 1;

    // Simulator: run machines one after another in one shared memory.
    let mut sim = Simulation::builder()
        .process(AnonRenaming::new(pid(1), n).unwrap(), View::identity(m))
        .process(AnonRenaming::new(pid(2), n).unwrap(), View::rotated(m, 2))
        .build()
        .unwrap();
    sim.run_solo(0, 1_000_000).unwrap();
    sim.run_solo(1, 1_000_000).unwrap();
    let sim_names: Vec<_> = sim.trace().events().map(|(_, _, e)| *e).collect();

    // Threads (still sequential): same memory, same views.
    let memory: AnonymousMemory<LockRegister<_>> = AnonymousMemory::new(m);
    let mut d1 = Driver::new(
        AnonRenaming::new(pid(1), n).unwrap(),
        memory.view(View::identity(m)),
    );
    let first = d1.run_to_halt();
    let mut d2 = Driver::new(
        AnonRenaming::new(pid(2), n).unwrap(),
        memory.view(View::rotated(m, 2)),
    );
    let second = d2.run_to_halt();
    let thread_names: Vec<_> = first.into_iter().chain(second).collect();

    assert_eq!(sim_names, thread_names);
    assert_eq!(
        thread_names,
        vec![RenamingEvent::Named(1), RenamingEvent::Named(2)]
    );
}
