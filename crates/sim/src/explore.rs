//! Exhaustive explicit-state model checking.
//!
//! For fixed process count and register count, the paper's algorithms have
//! **finite** state spaces: register contents range over finitely many
//! values and each machine has finitely many local states. [`Explorer`]
//! enumerates every configuration reachable under *any* adversary and
//! returns a [`StateGraph`] on which two kinds of questions are decided
//! exactly:
//!
//! * **Safety** — [`StateGraph::find_state`] searches for a bad
//!   configuration (e.g. two processes in their critical sections, the
//!   mutual exclusion violation of §3.1), and
//!   [`StateGraph::schedule_to`] reconstructs the adversary schedule that
//!   reaches it, making every counterexample replayable.
//! * **Fair liveness** — [`StateGraph::find_fair_livelock`] looks for a
//!   strongly connected component in which every live process keeps taking
//!   steps but no progress event ever fires. Such a component is exactly a
//!   *fair livelock*: an infinite schedule that starves the system even
//!   though no process is ever denied steps. This is how experiment E1
//!   refutes deadlock-freedom for the Figure 1 algorithm with an even
//!   number of registers (Theorem 3.1) — the checker finds the symmetric
//!   lock-step loop.
//!
//! # The `Explorer` builder
//!
//! All exploration goes through one entry point:
//!
//! ```ignore
//! let graph = Explorer::new(sim)
//!     .max_states(500_000)   // or .limits(ExploreConfig { .. })
//!     .crashes(true)         // also explore crash transitions
//!     .parallelism(4)        // worker threads (1 = sequential, 0 = auto)
//!     .probe(&probe)         // live metrics (optional)
//!     .run()?;
//! ```
//!
//! With `parallelism(1)` (the default) the graph is produced by a
//! deterministic sequential loop and state ids are *canonical*: two runs
//! number the states identically, so golden tests and recorded
//! [`StateGraph::schedule_to`] replays stay stable. With more threads the
//! breadth-parallel engine (sharded dedup table, per-worker frontier
//! deques with work stealing, interned states) explores the same graph —
//! same states, same transition structure — but discovery order, and
//! therefore the numbering, depends on the race between workers. Analyses
//! on [`StateGraph`] are order-independent (see
//! [`StateGraph::nontrivial_sccs`]), so results agree either way.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use anonreg_model::fingerprint::{fp128, Fp128};
use anonreg_model::structural::StructuralHasher;
use anonreg_model::{Machine, PidMap, SymmetryMode, View};
use anonreg_obs::{Metric, NoopProbe, Phase, Probe, Profiler, Span};

use crate::canon::StateEncoder;
use crate::{Simulation, StepOutcome};

use self::dedup::Bloom;

pub mod cert;
mod dedup;
mod par;

/// Configuration for an [`Explorer`] run: resource limits, the failure
/// model, and the degree of parallelism.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Maximum number of distinct states to enumerate before giving up.
    pub max_states: usize,
    /// Also explore *crash* transitions: from every state, every live
    /// process may crash (§2's failure model). Roughly doubles the state
    /// space per process; off by default.
    pub crashes: bool,
    /// Number of worker threads. `1` (the default) uses the deterministic
    /// sequential engine with canonical state ids; `0` means "one worker
    /// per available CPU"; anything else runs the breadth-parallel engine.
    pub parallelism: usize,
    /// Ample-set partial-order reduction: when some live processes are
    /// poised at a register-free local step (an event or a halt), explore
    /// only those processes from that state and prune the other
    /// interleavings. See [`Explorer::por`] for the soundness argument.
    /// Incompatible with [`crashes`](ExploreConfig::crashes).
    pub por: bool,
    /// Parallel engine only: spill interned canonical codes to disk
    /// behind an in-memory LRU tier, so the dedup table's memory use no
    /// longer grows with the code bytes of every distinct state. See
    /// [`Explorer::spill`].
    pub spill: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_states: 1_000_000,
            crashes: false,
            parallelism: 1,
            por: false,
            spill: false,
        }
    }
}

/// Error returned when exploration exceeds its limits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExploreError {
    /// The reachable state space exceeded [`ExploreConfig::max_states`].
    StateLimitExceeded {
        /// The configured limit.
        limit: usize,
    },
    /// A parallel-engine worker panicked mid-expansion. The run shut
    /// down cleanly (the panicking worker's pending count was released
    /// by a drop guard, so the siblings drained and exited), but the
    /// graph is incomplete and no verdict can be drawn from it.
    WorkerPanicked,
    /// Partial-order reduction was requested together with crash
    /// transitions. §2's crash is enabled from *every* state and is
    /// never independent of the crashing process's own pending step, so
    /// no ample set smaller than the full successor set is sound there;
    /// the combination is rejected rather than silently unsound.
    PorWithCrashes,
    /// Partial-order reduction was requested together with
    /// [`SymmetryMode::Full`]. Full-mode canonicalization renumbers
    /// identifiers, which un-pins process slots: an orbit
    /// representative's ample set need not match its siblings', so the
    /// reduction could prune interleavings the symmetry quotient still
    /// needs. [`SymmetryMode::Registers`] keeps slots pinned and
    /// composes soundly (see [`Explorer::por`]).
    PorWithFullSymmetry,
    /// Emitting or re-reading a reachability certificate failed after
    /// the exploration itself succeeded. The message carries the
    /// underlying [`anonreg_cache::CertError`] or IO failure.
    Certificate {
        /// Human-readable cause.
        message: String,
    },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::StateLimitExceeded { limit } => {
                write!(f, "state space exceeds the limit of {limit} states")
            }
            ExploreError::WorkerPanicked => {
                write!(f, "an exploration worker panicked; the run was aborted")
            }
            ExploreError::PorWithCrashes => {
                write!(
                    f,
                    "partial-order reduction cannot be combined with crash \
                     transitions (no ample set is sound under §2's crash model)"
                )
            }
            ExploreError::PorWithFullSymmetry => {
                write!(
                    f,
                    "partial-order reduction cannot be combined with \
                     SymmetryMode::Full (identifier renumbering un-pins process \
                     slots, so an orbit representative's ample set need not \
                     match its siblings'); SymmetryMode::Registers composes \
                     soundly"
                )
            }
            ExploreError::Certificate { message } => {
                write!(f, "certificate error: {message}")
            }
        }
    }
}

impl std::error::Error for ExploreError {}

/// One outgoing transition of a state: process `proc` takes one atomic step,
/// emitting `events` on the way, and the system moves to state `target`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Edge<E> {
    /// The process that moves.
    pub proc: usize,
    /// The id of the successor state.
    pub target: usize,
    /// Events emitted during the step (usually empty or a single event).
    pub events: Vec<E>,
    /// `true` if this transition is the process *crashing* rather than
    /// taking a step (only with [`ExploreConfig::crashes`]).
    pub crash: bool,
}

/// One adversary move in a reconstructed schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScheduleAction {
    /// Process takes one atomic step.
    Step(usize),
    /// Process crashes.
    Crash(usize),
}

/// The complete reachable state graph of a simulation.
///
/// State `0` is the initial configuration. Each state stores the full
/// [`Simulation`] (with an empty trace), so analyses can inspect machines
/// and registers directly.
pub struct StateGraph<M: Machine> {
    states: Vec<Simulation<M>>,
    edges: Vec<Vec<Edge<M::Event>>>,
    /// `parents[id]` = (predecessor state, moving process, was-a-crash);
    /// `None` for the initial state. Used to reconstruct adversary
    /// schedules.
    parents: Vec<Option<(usize, usize, bool)>>,
}

/// The single entry point for state-space exploration.
///
/// Build with [`Explorer::new`], adjust with the chainable setters, then
/// [`Explorer::run`]:
///
/// ```ignore
/// let graph = Explorer::new(sim).max_states(100_000).parallelism(4).run()?;
/// ```
///
/// The default configuration matches [`ExploreConfig::default`]: one
/// million states, no crash transitions, one (deterministic) worker.
#[must_use = "an Explorer does nothing until `.run()` is called"]
pub struct Explorer<'p, M: Machine, P: Probe = NoopProbe> {
    initial: Simulation<M>,
    config: ExploreConfig,
    probe: &'p P,
    encoder: StateEncoder<M>,
    profiler: Option<Arc<Profiler>>,
    /// Where [`Explorer::run`] writes a reachability certificate, if
    /// anywhere.
    certify: Option<PathBuf>,
    /// Named verdict predicates evaluated on the finished graph and
    /// recorded in the certificate.
    verdicts: Vec<(String, cert::VerdictFn<M>)>,
}

/// The probe target for unprobed explorations.
static SILENT: NoopProbe = NoopProbe;

impl<M> Explorer<'static, M, NoopProbe>
where
    M: Machine + Eq + Hash,
{
    /// Starts configuring an exploration from `initial`. The accumulated
    /// trace of `initial` is ignored; state identity is the pair
    /// (register contents, machine states incl. pending reads/poised
    /// writes).
    pub fn new(initial: Simulation<M>) -> Self {
        Explorer {
            initial,
            config: ExploreConfig::default(),
            probe: &SILENT,
            encoder: StateEncoder::plain(),
            profiler: None,
            certify: None,
            verdicts: Vec::new(),
        }
    }
}

impl<'p, M, P> Explorer<'p, M, P>
where
    M: Machine + Eq + Hash,
    P: Probe,
{
    /// Replaces the whole configuration at once.
    pub fn limits(mut self, config: ExploreConfig) -> Self {
        self.config = config;
        self
    }

    /// Caps the number of distinct states to enumerate.
    pub fn max_states(mut self, max_states: usize) -> Self {
        self.config.max_states = max_states;
        self
    }

    /// Also explores crash transitions (§2's failure model).
    pub fn crashes(mut self, crashes: bool) -> Self {
        self.config.crashes = crashes;
        self
    }

    /// Enables ample-set partial-order reduction.
    ///
    /// When one or more live processes are poised at a **register-free
    /// local step** — their next step is an event announcement or a halt,
    /// not a read or a write — those processes form the state's *ample
    /// set* and only their transitions are explored; the reads and writes
    /// of the remaining processes are deferred to the successor states.
    ///
    /// Soundness rests on three facts about this substrate:
    ///
    /// 1. **Independence.** An event/halt step touches no shared register
    ///    and only its own process slot, so it commutes with every step
    ///    of every other process: both orders reach the same
    ///    configuration, and the deferred steps are still enabled after
    ///    it (events never disable a read or write of another process).
    /// 2. **Invisibility of the pruned orders.** The crate-wide contract
    ///    (see [`Simulation::step`] and the family machines) is that
    ///    observable milestones — critical-section membership, decision
    ///    values, leadership — change *only at event steps*. The pruned
    ///    interleavings differ from the kept one only in where another
    ///    process's read/write lands relative to the event, and reads
    ///    and writes change no milestone, so every predicate checked by
    ///    the analyses sees a stutter-equivalent run. Note the ample set
    ///    is **all** event-poised processes, never a proper subset: two
    ///    simultaneously poised events (say, two `Enter`s) are genuinely
    ///    dependent — dropping one would hide the overlap state that
    ///    mutual-exclusion checking exists to find.
    /// 3. **No event cycles.** A machine performs a memory operation or
    ///    halts after finitely many events ([`Simulation::run_solo`]
    ///    enforces this with a fuse), so ample-only expansion cannot
    ///    postpone the rest of the system forever.
    ///
    /// Crash transitions break fact 1 — §2's crash is enabled everywhere
    /// and races the crashing process's own poised step — so
    /// [`Explorer::run`] rejects `por` + `crashes` with
    /// [`ExploreError::PorWithCrashes`].
    ///
    /// Composition with [`Explorer::symmetry`]:
    /// [`SymmetryMode::Registers`] is allowed — register renaming never
    /// touches process slots, so the ample set (a set of process
    /// *indices* poised at local steps) is identical across every member
    /// of an orbit, and the reduced quotient graph is the quotient of
    /// the reduced graph. In practice the view-compatible register group
    /// is trivial for the pinned-view families, so the trivial-orbit
    /// fast path makes the composition exact as well as sound.
    /// [`SymmetryMode::Full`] renumbers identifiers and can merge states
    /// whose ample sets differ; that combination is rejected with
    /// [`ExploreError::PorWithFullSymmetry`].
    ///
    /// The reduced graph has fewer states and edges; safety, fair-
    /// livelock and starvation verdicts are unchanged (enforced across
    /// every family and both engines by the POR parity suite).
    pub fn por(mut self, por: bool) -> Self {
        self.config.por = por;
        self
    }

    /// Parallel engine only: spills interned canonical codes to
    /// per-worker temp files behind a sharded in-memory LRU tier.
    ///
    /// Dedup candidates are verified against the LRU, then against the
    /// spill file when the bytes are already flushed; a candidate whose
    /// code is still buffered by another worker is matched on its
    /// 128-bit fingerprint alone (collision probability below 2⁻⁷⁰ at
    /// 10⁸ states) and counted in the `dedup_unverified` probe metric.
    pub fn spill(mut self, spill: bool) -> Self {
        self.config.spill = spill;
        self
    }

    /// Sets the number of worker threads: `1` for the deterministic
    /// sequential engine (canonical state ids), `0` for one worker per
    /// available CPU, `n > 1` for the breadth-parallel engine.
    pub fn parallelism(mut self, parallelism: usize) -> Self {
        self.config.parallelism = parallelism;
        self
    }

    /// Attaches a live [`Probe`].
    ///
    /// The exploration then emits `explore_states`/`explore_edges`/
    /// `explore_dedup` counters (the parallel engine keys dedup counters
    /// and `explore_steals` by worker), sampled
    /// `explore_frontier`/`explore_depth` gauges (final values exact),
    /// one `explore` span whose length is the number of distinct states,
    /// and — parallel engine only — one `explore_worker` span per worker
    /// whose length is the number of states that worker expanded.
    /// Counters are flushed incrementally on the gauge sampling cadence
    /// (totals stay exact), so a live stream attached to the probe sees
    /// the exploration progress while it is still running. With
    /// [`NoopProbe`] the instrumentation compiles away.
    pub fn probe<'q, Q: Probe>(self, probe: &'q Q) -> Explorer<'q, M, Q> {
        Explorer {
            initial: self.initial,
            config: self.config,
            probe,
            encoder: self.encoder,
            profiler: self.profiler,
            certify: self.certify,
            verdicts: self.verdicts,
        }
    }

    /// Attaches a wall-clock [`Profiler`].
    ///
    /// Each engine worker then keeps a [`Phase`] timer — `step` (clone +
    /// machine step), `canon` (canonical/plain encoding), `dedup`
    /// (intern-table probe), plus `steal`/`idle` in the parallel engine —
    /// and records its per-phase self-times into the profiler when the
    /// exploration ends, including on the state-limit error path. Runs
    /// without a profiler pay nothing.
    pub fn profiler(mut self, profiler: Arc<Profiler>) -> Self {
        self.profiler = Some(profiler);
        self
    }

    /// Enables symmetry reduction: states are deduplicated by the
    /// canonical code of their orbit under `mode`'s permutation group
    /// (see [`Simulation::canonical_code`]), so only one representative
    /// per orbit is stored and expanded.
    ///
    /// Every stored state is still a *concretely reachable*
    /// configuration — the first member of its orbit the engine
    /// discovered — so [`StateGraph::schedule_to`] replays keep working
    /// verbatim. Edge targets point at orbit representatives; analyses of
    /// *symmetric* predicates (mutual exclusion, deadlock, agreement…)
    /// are unaffected, while predicates naming a specific process index
    /// are answered up to symmetry.
    ///
    /// [`SymmetryMode::Registers`] is sound for every machine;
    /// [`SymmetryMode::Full`] additionally assumes the algorithm is
    /// *symmetric* in the Theorem 3.4 sense (identifiers admit only
    /// equality comparisons) — true for all the paper's anonymous
    /// algorithms.
    pub fn symmetry(mut self, mode: SymmetryMode) -> Self
    where
        M: PidMap,
        M::Value: PidMap,
    {
        let views: Vec<View> = (0..self.initial.process_count())
            .map(|i| self.initial.view(i).clone())
            .collect();
        self.encoder = StateEncoder::for_mode(mode, &views, &self.initial);
        self
    }

    /// Also writes a reachability certificate to `path` when the
    /// exploration completes (see [`Explorer::run`] and the
    /// `anonreg-cache` crate). The certificate is keyed by
    /// [`Explorer::structural_hash`] and records the canonical state
    /// set, the edge multiset, and every [`Explorer::verdict`]'s value
    /// on the finished graph.
    pub fn certify(mut self, path: impl Into<PathBuf>) -> Self {
        self.certify = Some(path.into());
        self
    }

    /// Registers a named verdict predicate — e.g. `"safety"` = "no
    /// reachable state violates mutual exclusion" — to be evaluated on
    /// the finished [`StateGraph`] and pinned into the certificate, so a
    /// warm [`Explorer::replay_certificate`] can return it without
    /// re-running the analysis.
    pub fn verdict(
        mut self,
        name: impl Into<String>,
        pred: impl Fn(&StateGraph<M>) -> bool + 'static,
    ) -> Self {
        self.verdicts.push((name.into(), Box::new(pred)));
        self
    }

    /// The 128-bit structural key of this verification problem: the
    /// machine type and the crate version it was compiled under, the
    /// initial configuration (registers, machine states, per-process
    /// views), the exploration limits, the failure model, the symmetry
    /// mode and the registered verdict names — everything that can
    /// change the reachable set or a verdict drawn from it. Thread
    /// count and spilling are deliberately excluded: they change *how*
    /// the same graph is enumerated, never *what* it is.
    ///
    /// The machine's transition function is code, not data, so the key
    /// can only pin its closest stable proxies: the machine's
    /// [`type_name`](std::any::type_name) (two types whose initial
    /// fields encode identically still get distinct keys) and this
    /// crate's `CARGO_PKG_VERSION`. Editing transition logic *without*
    /// bumping the crate version is invisible to the key — after such
    /// an edit, invalidate persisted stores by hand
    /// (`check verify-cache --invalidate`,
    /// [`anonreg_cache::CacheStore::clear`], or point
    /// `ANONREG_CACHE_DIR` somewhere fresh).
    #[must_use]
    pub fn structural_hash(&self) -> Fp128 {
        let mut hasher = StructuralHasher::new("anonreg-cert-v2")
            .component("machine", std::any::type_name::<M>())
            .component("code_version", env!("CARGO_PKG_VERSION"))
            .raw("initial", &crate::canon::encode_plain(&self.initial));
        // The plain encoding omits views (constant within one run, so
        // they never distinguish states) — but across runs a changed
        // view changes reachability, so fold them in here.
        for i in 0..self.initial.process_count() {
            hasher = hasher.component("view", self.initial.view(i));
        }
        let mode = match self.encoder.mode() {
            SymmetryMode::Off => "off",
            SymmetryMode::Registers => "registers",
            SymmetryMode::Full => "full",
        };
        hasher = hasher
            .component("max_states", &(self.config.max_states as u64))
            .component("crashes", &self.config.crashes)
            .component("por", &self.config.por)
            .component("symmetry", mode);
        // A certificate answers exactly the verdict set it was asked;
        // registering, dropping or renaming a verdict is a different
        // question and must miss the cache.
        for (name, _) in &self.verdicts {
            hasher = hasher.component("verdict", name.as_str());
        }
        hasher.finish()
    }

    /// Runs the exploration and returns the complete reachable
    /// [`StateGraph`].
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::StateLimitExceeded`] if the reachable
    /// state space is larger than the configured `max_states`. Counters
    /// emitted up to that point are still in the probe, so a budget-blown
    /// exploration is still measurable. With [`Explorer::certify`],
    /// failures while writing the certificate surface as
    /// [`ExploreError::Certificate`].
    pub fn run(mut self) -> Result<StateGraph<M>, ExploreError> {
        let threads = self.validate()?;
        let emit = self
            .certify
            .take()
            .map(|path| (path, self.structural_hash()));
        let verdicts = std::mem::take(&mut self.verdicts);
        let encoder = self.encoder;
        let graph = if threads <= 1 {
            run_sequential(
                self.initial,
                &self.config,
                self.probe,
                &encoder,
                self.profiler.as_deref(),
            )
        } else {
            par::run_parallel(
                self.initial,
                &self.config,
                self.probe,
                threads,
                &encoder,
                self.profiler.as_deref(),
            )
        }?;
        if let Some((path, structural)) = emit {
            cert::write_graph(&graph, &encoder, structural, &verdicts, &path).map_err(|e| {
                ExploreError::Certificate {
                    message: e.to_string(),
                }
            })?;
        }
        Ok(graph)
    }

    /// Re-validates the certificate at `path` against this explorer's
    /// configuration **without exploring**: no frontier, no dedup table —
    /// one streaming membership/closure pass over the recorded graph
    /// (see [`anonreg_cache::replay`]), in memory bounded by two state
    /// codes. On success the probe receives one `cache_hit` count and
    /// the replay's wall-clock nanoseconds under `cache_replay_time`.
    ///
    /// # Errors
    ///
    /// [`anonreg_cache::CertError::Stale`] when the certificate pins a
    /// different structural key than [`Explorer::structural_hash`] — the
    /// machines, limits, symmetry mode or verdict set changed since it
    /// was written — [`anonreg_cache::CertError::VerdictMismatch`] when
    /// an intact certificate with the right key records a different
    /// verdict set than the one registered here (possible only through
    /// a key collision or a tampered store, since the key covers the
    /// verdict names), and the other [`anonreg_cache::CertError`]
    /// variants for damaged or unreadable files.
    pub fn replay_certificate(
        mut self,
        path: &std::path::Path,
    ) -> Result<cert::ReplayReport, anonreg_cache::CertError> {
        let expected = self.structural_hash();
        self.initial.clear_trace();
        let initial_code = self.encoder.encode(&self.initial).0;
        let start = Instant::now();
        let summary = anonreg_cache::replay(path, expected, &initial_code)?;
        if !summary
            .verdicts
            .iter()
            .map(|(name, _)| name.as_str())
            .eq(self.verdicts.iter().map(|(name, _)| name.as_str()))
        {
            return Err(anonreg_cache::CertError::VerdictMismatch {
                recorded: summary.verdicts.into_iter().map(|(name, _)| name).collect(),
                registered: self.verdicts.iter().map(|(name, _)| name.clone()).collect(),
            });
        }
        let elapsed = start.elapsed();
        if P::ENABLED {
            self.probe.counter(Metric::CacheHit, 0, 1);
            self.probe
                .counter(Metric::CacheReplayTime, 0, elapsed.as_nanos() as u64);
        }
        Ok(cert::ReplayReport {
            states: summary.states,
            edges: summary.edges,
            verdicts: summary.verdicts,
            elapsed,
        })
    }

    /// Runs the exploration for its **counts only** — states, edges,
    /// maximum depth, dedup hits — without materialising a
    /// [`StateGraph`].
    ///
    /// Expanded configurations are dropped as soon as their successors
    /// are interned, so memory scales with the frontier plus the dedup
    /// table (plus nothing at all for codes when
    /// [`spill`](Explorer::spill) is on), not with the full graph. This
    /// is the mode the E19 scale experiment runs in.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Explorer::run`].
    pub fn run_stats(self) -> Result<ExploreStats, ExploreError> {
        let threads = self.validate()?;
        if threads <= 1 {
            run_sequential_stats(
                self.initial,
                &self.config,
                self.probe,
                &self.encoder,
                self.profiler.as_deref(),
            )
        } else {
            par::run_parallel_stats(
                self.initial,
                &self.config,
                self.probe,
                threads,
                &self.encoder,
                self.profiler.as_deref(),
            )
        }
    }

    /// Shared run-time validation; returns the resolved thread count.
    fn validate(&self) -> Result<usize, ExploreError> {
        if self.config.por && self.config.crashes {
            return Err(ExploreError::PorWithCrashes);
        }
        if self.config.por && self.encoder.mode() == SymmetryMode::Full {
            return Err(ExploreError::PorWithFullSymmetry);
        }
        Ok(match self.config.parallelism {
            0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            t => t,
        })
    }
}

/// The counts of an exploration run in [`Explorer::run_stats`] mode.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Distinct states interned.
    pub states: u64,
    /// Transitions taken (after any partial-order pruning).
    pub edges: u64,
    /// Dedup hits (edges whose target was already interned).
    pub dedup: u64,
    /// Maximum discovery depth.
    pub max_depth: u32,
}

/// How often the explorer samples its frontier/depth gauges, in
/// discovered states. Sampling (rather than reporting every state) keeps
/// the gauges cheap on million-state runs; the final values are always
/// reported exactly.
const GAUGE_SAMPLE_EVERY: usize = 1024;

/// The sequential engine's interning table: a bloom-screened,
/// fingerprint-first index into an arena of flat state codes. Probing
/// compares `Box<[u8]>` codes — never whole `Simulation`s — so a dedup
/// hit costs one hash lookup plus one byte-string compare instead of
/// cloning registers and slots; a definite bloom miss (the common case
/// for a fresh state) skips even the hash lookup. Single-threaded, so
/// the bloom's never-false-negative contract is unconditional here.
struct InternTable {
    /// low fingerprint half → candidate state ids (almost always one).
    ids: HashMap<u64, Vec<u32>>,
    /// Arena of state codes, indexed by state id.
    codes: Vec<Box<[u8]>>,
    bloom: Bloom,
    /// Definite bloom misses: map lookups skipped.
    bloom_neg: u64,
}

impl InternTable {
    fn new(max_states: usize, first: Box<[u8]>) -> Self {
        let mut table = InternTable {
            ids: HashMap::new(),
            codes: Vec::new(),
            bloom: Bloom::new(max_states),
            bloom_neg: 0,
        };
        table.insert(fp128(&first), first);
        table
    }

    /// The id already holding `code` (fingerprinted as `fp`), if any.
    fn find(&mut self, fp: Fp128, code: &[u8]) -> Option<usize> {
        if !self.bloom.query(fp) {
            self.bloom_neg += 1;
            return None;
        }
        let candidates = self.ids.get(&fp.lo)?;
        candidates
            .iter()
            .find(|&&id| &*self.codes[id as usize] == code)
            .map(|&id| id as usize)
    }

    /// Interns `code` as the next state id.
    fn insert(&mut self, fp: Fp128, code: Box<[u8]>) -> usize {
        let id = self.codes.len();
        self.bloom.insert(fp);
        self.ids.entry(fp.lo).or_default().push(id as u32);
        self.codes.push(code);
        id
    }
}

/// One computed successor of a state, before interning.
struct Successor<M: Machine> {
    proc: usize,
    crash: bool,
    sim: Simulation<M>,
    event: Option<M::Event>,
    /// The step was a register-free local step (event announcement or
    /// halt) — membership in the state's ample set.
    local: bool,
}

/// Expands `state` into `out` (cleared first): one successor per live
/// process, plus one crash successor each under the crash model. With
/// `por`, and when at least one process is poised at a register-free
/// local step, only those processes' successors are kept (the ample
/// set — see [`Explorer::por`] for why this is sound and why the ample
/// set is *all* such processes, never fewer). Returns how many
/// successors were pruned.
fn expand_into<M: Machine + Eq>(
    state: &Simulation<M>,
    crashes: bool,
    por: bool,
    out: &mut Vec<Successor<M>>,
) -> u64 {
    out.clear();
    for proc in 0..state.process_count() {
        if state.is_halted(proc) {
            continue;
        }
        let mut sim = state.clone();
        let (outcome, event) = sim.step_quiet(proc).expect("slot is valid and not halted");
        let local = matches!(outcome, StepOutcome::Event | StepOutcome::Halted);
        out.push(Successor {
            proc,
            crash: false,
            sim,
            event,
            local,
        });
        if crashes {
            let mut sim = state.clone();
            sim.crash_quiet(proc).expect("slot is valid");
            out.push(Successor {
                proc,
                crash: true,
                sim,
                event: None,
                local: false,
            });
        }
    }
    if por && out.iter().any(|s| s.local) {
        let before = out.len();
        out.retain(|s| s.local);
        (before - out.len()) as u64
    } else {
        0
    }
}

/// POR counters for one engine worker, reported only when the reduction
/// actually fired so unreduced runs keep their probe output unchanged.
#[derive(Default)]
pub(crate) struct PorTally {
    /// States at which the ample set was a proper subset.
    pub(crate) ample: u64,
    /// Successors pruned across those states.
    pub(crate) pruned: u64,
}

impl PorTally {
    pub(crate) fn absorb(&mut self, pruned: u64) {
        if pruned > 0 {
            self.ample += 1;
            self.pruned += pruned;
        }
    }

    pub(crate) fn report<P: Probe>(&self, probe: &P, key: u64) {
        if self.ample > 0 {
            probe.counter(Metric::PorAmple, key, self.ample);
            probe.counter(Metric::PorPruned, key, self.pruned);
        }
    }
}

/// Reports the sequential intern table's bloom statistics (definite
/// misses that skipped a map lookup), if any.
fn report_bloom<P: Probe>(probe: &P, table: &InternTable) {
    if table.bloom_neg > 0 {
        probe.counter(Metric::BloomNeg, 0, table.bloom_neg);
    }
}

/// The deterministic sequential engine: a depth-first loop with one
/// global dedup map. State ids are canonical — two runs from the same
/// initial simulation number the states identically.
fn run_sequential<M, P>(
    initial: Simulation<M>,
    limits: &ExploreConfig,
    probe: &P,
    encoder: &StateEncoder<M>,
    profiler: Option<&Profiler>,
) -> Result<StateGraph<M>, ExploreError>
where
    M: Machine + Eq + Hash,
    P: Probe,
{
    let mut initial = initial;
    initial.clear_trace();

    if P::ENABLED {
        probe.span_open(Span::Explore, 0);
    }
    let mut timer = profiler.map(|p| p.timer(0));

    let mut canon_nanos = 0u64;
    let mut symmetry_hits = 0u64;
    let mut canon_skipped = 0u64;
    // When the encoder detected a trivial symmetry group it already
    // short-circuits to the plain identity path, so timing it as
    // canonicalization would charge symmetry reduction for work it no
    // longer does; count the skipped encodes instead.
    let track_canon =
        P::ENABLED && encoder.mode() != SymmetryMode::Off && !encoder.skips_trivial_orbits();
    let track_skipped = P::ENABLED && encoder.skips_trivial_orbits();
    let mut encode = |sim: &Simulation<M>| {
        if track_canon {
            let start = Instant::now();
            let (code, moved) = encoder.encode(sim);
            canon_nanos += start.elapsed().as_nanos() as u64;
            symmetry_hits += u64::from(moved);
            code
        } else {
            canon_skipped += u64::from(track_skipped);
            encoder.encode(sim).0
        }
    };

    let mut table = InternTable::new(limits.max_states, encode(&initial));
    let mut states = vec![initial];
    let mut edges: Vec<Vec<Edge<M::Event>>> = Vec::new();
    let mut parents = vec![None];

    // Discovery depth per state and the running maximum; maintained only
    // when the probe is enabled.
    let mut depths: Vec<u32> = if P::ENABLED { vec![0] } else { Vec::new() };
    let mut max_depth = 0u32;
    let mut dedup_hits = 0u64;
    let mut edge_total = 0u64;
    let mut flushed = FlushedCounters::default();
    let mut por = PorTally::default();
    let mut successors: Vec<Successor<M>> = Vec::new();

    let mut frontier = vec![0usize];
    while let Some(id) = frontier.pop() {
        if let Some(t) = timer.as_mut() {
            t.switch(Phase::Step);
        }
        por.absorb(expand_into(
            &states[id],
            limits.crashes,
            limits.por,
            &mut successors,
        ));
        let mut out = Vec::with_capacity(successors.len());
        for succ in successors.drain(..) {
            if let Some(t) = timer.as_mut() {
                t.switch(Phase::Canon);
            }
            let code = encode(&succ.sim);
            if let Some(t) = timer.as_mut() {
                t.switch(Phase::Dedup);
            }
            let fp = fp128(&code);
            let target = match table.find(fp, &code) {
                Some(t) => {
                    if P::ENABLED {
                        dedup_hits += 1;
                    }
                    t
                }
                None => {
                    let t = states.len();
                    if t >= limits.max_states {
                        if P::ENABLED {
                            report_explore(
                                probe,
                                t as u64,
                                edge_total,
                                dedup_hits,
                                &frontier,
                                max_depth,
                                &mut flushed,
                            );
                            report_symmetry(probe, 0, symmetry_hits, canon_nanos, canon_skipped);
                            report_bloom(probe, &table);
                            por.report(probe, 0);
                            probe.span_close(Span::Explore, 0, t as u64);
                        }
                        record_timer(profiler, timer);
                        return Err(ExploreError::StateLimitExceeded {
                            limit: limits.max_states,
                        });
                    }
                    table.insert(fp, code);
                    states.push(succ.sim);
                    parents.push(Some((id, succ.proc, succ.crash)));
                    frontier.push(t);
                    if P::ENABLED {
                        let depth = depths[id] + 1;
                        depths.push(depth);
                        max_depth = max_depth.max(depth);
                        if t % GAUGE_SAMPLE_EVERY == 0 {
                            probe.gauge(Metric::ExploreFrontier, 0, frontier.len() as u64);
                            probe.gauge(Metric::ExploreDepth, 0, u64::from(max_depth));
                            flushed.flush(probe, 0, states.len() as u64, edge_total, dedup_hits);
                        }
                    }
                    t
                }
            };
            if P::ENABLED {
                edge_total += 1;
            }
            out.push(Edge {
                proc: succ.proc,
                target,
                events: succ.event.into_iter().collect(),
                crash: succ.crash,
            });
        }
        // `edges` is indexed by discovery order; fill gaps lazily.
        if edges.len() <= id {
            edges.resize_with(states.len(), Vec::new);
        }
        edges[id] = out;
    }
    edges.resize_with(states.len(), Vec::new);

    if P::ENABLED {
        report_explore(
            probe,
            states.len() as u64,
            edge_total,
            dedup_hits,
            &frontier,
            max_depth,
            &mut flushed,
        );
        report_symmetry(probe, 0, symmetry_hits, canon_nanos, canon_skipped);
        report_bloom(probe, &table);
        por.report(probe, 0);
        probe.span_close(Span::Explore, 0, states.len() as u64);
    }
    record_timer(profiler, timer);

    Ok(StateGraph {
        states,
        edges,
        parents,
    })
}

/// The counting sibling of [`run_sequential`]: same interning, same
/// discovery order, but expanded configurations are dropped immediately —
/// the frontier owns the only copy of each undiscovered state and no
/// graph is materialised.
fn run_sequential_stats<M, P>(
    initial: Simulation<M>,
    limits: &ExploreConfig,
    probe: &P,
    encoder: &StateEncoder<M>,
    profiler: Option<&Profiler>,
) -> Result<ExploreStats, ExploreError>
where
    M: Machine + Eq + Hash,
    P: Probe,
{
    let mut initial = initial;
    initial.clear_trace();

    if P::ENABLED {
        probe.span_open(Span::Explore, 0);
    }
    let mut timer = profiler.map(|p| p.timer(0));

    // Same symmetry instrumentation as the graph path: canonical encodes
    // are timed, trivial-orbit fast-path encodes are counted instead.
    let mut canon_nanos = 0u64;
    let mut symmetry_hits = 0u64;
    let mut canon_skipped = 0u64;
    let track_canon =
        P::ENABLED && encoder.mode() != SymmetryMode::Off && !encoder.skips_trivial_orbits();
    let track_skipped = P::ENABLED && encoder.skips_trivial_orbits();
    let mut encode = |sim: &Simulation<M>| {
        if track_canon {
            let start = Instant::now();
            let (code, moved) = encoder.encode(sim);
            canon_nanos += start.elapsed().as_nanos() as u64;
            symmetry_hits += u64::from(moved);
            code
        } else {
            canon_skipped += u64::from(track_skipped);
            encoder.encode(sim).0
        }
    };

    let mut table = InternTable::new(limits.max_states, encode(&initial));
    let mut stats = ExploreStats {
        states: 1,
        ..ExploreStats::default()
    };
    let mut flushed = FlushedCounters::default();
    let mut por = PorTally::default();
    let mut successors: Vec<Successor<M>> = Vec::new();

    let mut frontier: Vec<(Simulation<M>, u32)> = vec![(initial, 0)];
    while let Some((state, depth)) = frontier.pop() {
        if let Some(t) = timer.as_mut() {
            t.switch(Phase::Step);
        }
        por.absorb(expand_into(
            &state,
            limits.crashes,
            limits.por,
            &mut successors,
        ));
        drop(state);
        for succ in successors.drain(..) {
            if let Some(t) = timer.as_mut() {
                t.switch(Phase::Canon);
            }
            let code = encode(&succ.sim);
            if let Some(t) = timer.as_mut() {
                t.switch(Phase::Dedup);
            }
            let fp = fp128(&code);
            stats.edges += 1;
            if table.find(fp, &code).is_some() {
                stats.dedup += 1;
            } else {
                if stats.states >= limits.max_states as u64 {
                    if P::ENABLED {
                        flushed.finish(probe, 0, stats.states, stats.edges, stats.dedup);
                        report_symmetry(probe, 0, symmetry_hits, canon_nanos, canon_skipped);
                        por.report(probe, 0);
                        report_bloom(probe, &table);
                        probe.span_close(Span::Explore, 0, stats.states);
                    }
                    record_timer(profiler, timer);
                    return Err(ExploreError::StateLimitExceeded {
                        limit: limits.max_states,
                    });
                }
                table.insert(fp, code);
                stats.states += 1;
                stats.max_depth = stats.max_depth.max(depth + 1);
                frontier.push((succ.sim, depth + 1));
                if P::ENABLED && stats.states.is_multiple_of(GAUGE_SAMPLE_EVERY as u64) {
                    probe.gauge(Metric::ExploreFrontier, 0, frontier.len() as u64);
                    probe.gauge(Metric::ExploreDepth, 0, u64::from(stats.max_depth));
                    flushed.flush(probe, 0, stats.states, stats.edges, stats.dedup);
                }
            }
        }
    }

    if P::ENABLED {
        flushed.finish(probe, 0, stats.states, stats.edges, stats.dedup);
        probe.gauge(Metric::ExploreFrontier, 0, 0);
        probe.gauge(Metric::ExploreDepth, 0, u64::from(stats.max_depth));
        report_symmetry(probe, 0, symmetry_hits, canon_nanos, canon_skipped);
        por.report(probe, 0);
        report_bloom(probe, &table);
        probe.span_close(Span::Explore, 0, stats.states);
    }
    record_timer(profiler, timer);
    Ok(stats)
}

/// Hands a finished engine worker's phase timer to the profiler, if both
/// are attached.
pub(crate) fn record_timer(profiler: Option<&Profiler>, timer: Option<anonreg_obs::PhaseTimer>) {
    if let (Some(p), Some(t)) = (profiler, timer) {
        p.record(t.finish());
    }
}

/// Running totals already emitted as incremental `explore_*` counter
/// flushes. The engines flush on the gauge sampling cadence so a live
/// stream sees progress mid-run; the final report emits only the
/// remainder, keeping every counter total exact.
#[derive(Default)]
pub(crate) struct FlushedCounters {
    states: u64,
    edges: u64,
    dedup: u64,
}

impl FlushedCounters {
    /// Emits the not-yet-flushed part of each running total.
    fn flush<P: Probe>(&mut self, probe: &P, dedup_key: u64, states: u64, edges: u64, dedup: u64) {
        if states > self.states {
            probe.counter(Metric::ExploreStates, 0, states - self.states);
            self.states = states;
        }
        if edges > self.edges {
            probe.counter(Metric::ExploreEdges, 0, edges - self.edges);
            self.edges = edges;
        }
        if dedup > self.dedup {
            probe.counter(Metric::ExploreDedup, dedup_key, dedup - self.dedup);
            self.dedup = dedup;
        }
    }

    /// Final emission: like [`FlushedCounters::flush`] but unconditional,
    /// so each counter has an entry even when its total is zero.
    pub(crate) fn finish<P: Probe>(
        &mut self,
        probe: &P,
        dedup_key: u64,
        states: u64,
        edges: u64,
        dedup: u64,
    ) {
        probe.counter(Metric::ExploreStates, 0, states.saturating_sub(self.states));
        probe.counter(Metric::ExploreEdges, 0, edges.saturating_sub(self.edges));
        probe.counter(
            Metric::ExploreDedup,
            dedup_key,
            dedup.saturating_sub(self.dedup),
        );
        self.states = states.max(self.states);
        self.edges = edges.max(self.edges);
        self.dedup = dedup.max(self.dedup);
    }
}

/// Final (exact) gauge/counter emission for one sequential exploration:
/// flushes the counter remainders and reports the exact final gauges.
fn report_explore<P: Probe>(
    probe: &P,
    states: u64,
    edges: u64,
    dedup: u64,
    frontier: &[usize],
    max_depth: u32,
    flushed: &mut FlushedCounters,
) {
    flushed.finish(probe, 0, states, edges, dedup);
    probe.gauge(Metric::ExploreFrontier, 0, frontier.len() as u64);
    probe.gauge(Metric::ExploreDepth, 0, u64::from(max_depth));
}

/// Symmetry-reduction counters for one engine (`key` is 0 for the
/// sequential engine, the worker index for the parallel one). Emitted
/// only when canonicalization actually did something, so plain
/// explorations keep their probe output unchanged. `skipped` counts the
/// encodes that took the trivial-orbit fast path instead of a canonical
/// search — proof in the metrics that the short-circuit fired.
pub(crate) fn report_symmetry<P: Probe>(probe: &P, key: u64, hits: u64, nanos: u64, skipped: u64) {
    if hits > 0 {
        probe.counter(Metric::SymmetryHits, key, hits);
    }
    if nanos > 0 {
        probe.counter(Metric::CanonTime, key, nanos);
    }
    if skipped > 0 {
        probe.counter(Metric::CanonSkipped, key, skipped);
    }
}

impl<M: Machine> StateGraph<M> {
    /// The number of reachable states.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// The total number of transitions.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// The configuration of state `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn state(&self, id: usize) -> &Simulation<M> {
        &self.states[id]
    }

    /// Iterates over all states with their ids.
    pub fn states(&self) -> impl Iterator<Item = (usize, &Simulation<M>)> {
        self.states.iter().enumerate()
    }

    /// The outgoing transitions of state `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn edges(&self, id: usize) -> &[Edge<M::Event>] {
        &self.edges[id]
    }

    /// Finds a reachable state satisfying `pred` (a safety-violation
    /// search). States are scanned in discovery (BFS/DFS mix) order, so the
    /// returned state is reachable by the schedule from
    /// [`schedule_to`](StateGraph::schedule_to).
    pub fn find_state<F>(&self, mut pred: F) -> Option<usize>
    where
        F: FnMut(&Simulation<M>) -> bool,
    {
        (0..self.states.len()).find(|&id| pred(&self.states[id]))
    }

    /// Reconstructs the adversary schedule (sequence of process slots, one
    /// per atomic step) that drives the initial state to state `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range, or if the discovery path contains a
    /// crash transition (crash-enabled graphs need
    /// [`actions_to`](StateGraph::actions_to)).
    #[must_use]
    pub fn schedule_to(&self, id: usize) -> Vec<usize> {
        self.actions_to(id)
            .into_iter()
            .map(|action| match action {
                ScheduleAction::Step(proc) => proc,
                ScheduleAction::Crash(_) => {
                    panic!("path contains a crash; use actions_to for crash-enabled graphs")
                }
            })
            .collect()
    }

    /// Reconstructs the adversary actions (steps and crashes) that drive
    /// the initial state to state `id`. Replay with
    /// [`Simulation::step`]/[`Simulation::crash`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn actions_to(&self, id: usize) -> Vec<ScheduleAction> {
        let mut actions = Vec::new();
        let mut cursor = id;
        while let Some((parent, proc, crash)) = self.parents[cursor] {
            actions.push(if crash {
                ScheduleAction::Crash(proc)
            } else {
                ScheduleAction::Step(proc)
            });
            cursor = parent;
        }
        actions.reverse();
        actions
    }

    /// Computes the strongly connected components that contain at least one
    /// internal edge (i.e. can be stayed in forever), as lists of state ids.
    ///
    /// The result is canonical: each component's ids are sorted ascending
    /// and the components are ordered by their smallest id. Tarjan's
    /// emission order depends on edge order, which the parallel explorer
    /// does not reproduce run-to-run — canonicalizing here makes every
    /// SCC-based analysis independent of discovery order.
    #[must_use]
    pub fn nontrivial_sccs(&self) -> Vec<Vec<usize>> {
        let sccs = tarjan(self.states.len(), &self.edges);
        canonicalize_sccs(
            sccs.into_iter()
                .filter(|scc| {
                    scc.len() > 1 || self.edges[scc[0]].iter().any(|e| e.target == scc[0])
                })
                .collect(),
        )
    }

    /// Searches for a **fair livelock**: a strongly connected component in
    /// which
    ///
    /// 1. every live (non-halted) process has at least one transition that
    ///    stays inside the component — so a schedule confined to it can give
    ///    every process infinitely many steps (fairness), and
    /// 2. no transition inside the component emits an event accepted by
    ///    `is_progress`, and
    /// 3. some state in the component has a process for which `stuck` holds
    ///    (e.g. "is in its entry section").
    ///
    /// Such a component is a complete violation of deadlock freedom: an
    /// infinite fair schedule under which a process remains stuck forever.
    /// Returns the component's state ids, or `None` if the property holds.
    pub fn find_fair_livelock<FS, FP>(
        &self,
        mut stuck: FS,
        mut is_progress: FP,
    ) -> Option<Vec<usize>>
    where
        FS: FnMut(&M) -> bool,
        FP: FnMut(&M::Event) -> bool,
    {
        let mut in_scc_bits = vec![false; self.states.len()];
        for scc in self.nontrivial_sccs() {
            for &id in &scc {
                in_scc_bits[id] = true;
            }
            let qualifies = {
                let in_scc = |target: usize| in_scc_bits[target];

                // (2) No progress inside the component.
                let progress_inside = scc.iter().any(|&id| {
                    self.edges[id]
                        .iter()
                        .any(|e| in_scc(e.target) && e.events.iter().any(&mut is_progress))
                });

                // (1) Every live process can keep moving inside the
                // component. Halting is permanent, so the live set is
                // constant across an SCC; take it from the first state.
                let probe = &self.states[scc[0]];
                let live: Vec<usize> = (0..probe.process_count())
                    .filter(|&p| !probe.is_halted(p))
                    .collect();
                let all_can_move = !live.is_empty()
                    && live.iter().all(|&p| {
                        scc.iter().any(|&id| {
                            self.edges[id]
                                .iter()
                                .any(|e| e.proc == p && in_scc(e.target))
                        })
                    });

                // (3) Someone is stuck.
                let mut someone_stuck = || {
                    scc.iter().any(|&id| {
                        (0..self.states[id].process_count()).any(|p| {
                            !self.states[id].is_halted(p) && stuck(self.states[id].machine(p))
                        })
                    })
                };

                !progress_inside && all_can_move && someone_stuck()
            };
            for &id in &scc {
                in_scc_bits[id] = false;
            }
            if qualifies {
                return Some(scc);
            }
        }
        None
    }

    /// Searches for **fair starvation** of process `victim`: a strongly
    /// connected component in which
    ///
    /// 1. every live process (the victim included) has a transition that
    ///    stays inside the component — a fair schedule exists,
    /// 2. no transition *by the victim* inside the component emits a
    ///    progress event, while
    /// 3. some transition *by another process* inside the component does —
    ///    the system as a whole keeps making progress, and
    /// 4. the victim satisfies `stuck` somewhere in the component.
    ///
    /// This is strictly weaker than a fair livelock: the algorithm may be
    /// perfectly deadlock-free (others enter again and again) while the
    /// victim starves. Deadlock-freedom permits this; starvation-freedom —
    /// which the paper's §8 lists as open for the memory-anonymous model —
    /// forbids it.
    ///
    /// Implementation note: the victim's progress edges are *deleted* from
    /// the graph first. Machines are deterministic, so the adversary cannot
    /// make a scheduled victim skip its progress step — but it can simply
    /// decline to schedule the victim in states where that step is next,
    /// which is exactly what the edge deletion models. A qualifying SCC of
    /// the remaining subgraph is then a fair infinite schedule in which the
    /// victim steps forever without ever progressing while others do.
    /// Returns the component's state ids.
    pub fn find_fair_starvation<FS, FP>(
        &self,
        victim: usize,
        mut stuck: FS,
        mut is_progress: FP,
    ) -> Option<Vec<usize>>
    where
        FS: FnMut(&M) -> bool,
        FP: FnMut(&M::Event) -> bool,
    {
        // The subgraph without the victim's progress edges.
        let filtered: Vec<Vec<Edge<M::Event>>> = self
            .edges
            .iter()
            .map(|out| {
                out.iter()
                    .filter(|e| !(e.proc == victim && e.events.iter().any(&mut is_progress)))
                    .cloned()
                    .collect()
            })
            .collect();
        let sccs = canonicalize_sccs(tarjan(self.states.len(), &filtered));
        let mut in_scc_bits = vec![false; self.states.len()];
        for scc in sccs {
            let has_internal_edge =
                scc.len() > 1 || filtered[scc[0]].iter().any(|e| e.target == scc[0]);
            if !has_internal_edge {
                continue;
            }
            for &id in &scc {
                in_scc_bits[id] = true;
            }
            let qualifies = {
                let in_scc = |target: usize| in_scc_bits[target];

                // Someone other than the victim keeps progressing.
                let others_progress = scc.iter().any(|&id| {
                    filtered[id].iter().any(|e| {
                        e.proc != victim
                            && in_scc(e.target)
                            && e.events.iter().any(&mut is_progress)
                    })
                });

                // Fairness: every live process — the victim included — can
                // keep moving inside the filtered component.
                let probe = &self.states[scc[0]];
                let victim_live = victim < probe.process_count() && !probe.is_halted(victim);
                let all_can_move = victim_live && {
                    let live: Vec<usize> = (0..probe.process_count())
                        .filter(|&p| !probe.is_halted(p))
                        .collect();
                    live.iter().all(|&p| {
                        scc.iter()
                            .any(|&id| filtered[id].iter().any(|e| e.proc == p && in_scc(e.target)))
                    })
                };

                // The victim is actually stuck (e.g. in its entry section)
                // somewhere in the component.
                let mut victim_stuck = || {
                    victim < probe.process_count()
                        && scc.iter().any(|&id| stuck(self.states[id].machine(victim)))
                };

                others_progress && all_can_move && victim_stuck()
            };
            for &id in &scc {
                in_scc_bits[id] = false;
            }
            if qualifies {
                return Some(scc);
            }
        }
        None
    }
}

impl<M: Machine> fmt::Debug for StateGraph<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StateGraph")
            .field("states", &self.states.len())
            .field("edges", &self.edge_count())
            .finish()
    }
}

/// Canonicalizes a list of SCCs: ids inside each component sorted
/// ascending, components ordered by smallest id. Tarjan emits components
/// in reverse topological order, which depends on edge order and hence on
/// discovery order; analyses that scan components must not.
fn canonicalize_sccs(mut sccs: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
    for scc in &mut sccs {
        scc.sort_unstable();
    }
    sccs.sort_unstable_by_key(|scc| scc.first().copied());
    sccs
}

/// Iterative Tarjan SCC over the edge lists. Returns components in reverse
/// topological order.
fn tarjan<E>(n: usize, edges: &[Vec<Edge<E>>]) -> Vec<Vec<usize>> {
    #[derive(Clone, Copy)]
    struct NodeData {
        index: usize,
        lowlink: usize,
        on_stack: bool,
        visited: bool,
    }
    let mut data = vec![
        NodeData {
            index: 0,
            lowlink: 0,
            on_stack: false,
            visited: false,
        };
        n
    ];
    let mut counter = 0usize;
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS stack: (node, next edge index to examine).
    for root in 0..n {
        if data[root].visited {
            continue;
        }
        let mut dfs: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut ei)) = dfs.last_mut() {
            if *ei == 0 && !data[v].visited {
                data[v].visited = true;
                data[v].index = counter;
                data[v].lowlink = counter;
                counter += 1;
                data[v].on_stack = true;
                stack.push(v);
            }
            if let Some(edge) = edges[v].get(*ei) {
                *ei += 1;
                let w = edge.target;
                if !data[w].visited {
                    dfs.push((w, 0));
                } else if data[w].on_stack {
                    data[v].lowlink = data[v].lowlink.min(data[w].index);
                }
            } else {
                // Done with v.
                dfs.pop();
                if let Some(&(parent, _)) = dfs.last() {
                    let low = data[v].lowlink;
                    data[parent].lowlink = data[parent].lowlink.min(low);
                }
                if data[v].lowlink == data[v].index {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        data[w].on_stack = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonreg_model::{Pid, Step, View};

    /// Two-phase toy: writes its pid, reads, halts. Tiny state space.
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct Toy {
        pid: Pid,
        phase: u8,
    }

    impl Machine for Toy {
        type Value = u64;
        type Event = &'static str;

        fn pid(&self) -> Pid {
            self.pid
        }

        fn register_count(&self) -> usize {
            1
        }

        fn resume(&mut self, _read: Option<u64>) -> Step<u64, &'static str> {
            match self.phase {
                0 => {
                    self.phase = 1;
                    Step::Write(0, self.pid.get())
                }
                1 => {
                    self.phase = 2;
                    Step::Event("wrote")
                }
                _ => Step::Halt,
            }
        }
    }

    /// Spins forever re-reading register 0 (a guaranteed livelock).
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct Spinner {
        pid: Pid,
    }

    impl Machine for Spinner {
        type Value = u64;
        type Event = &'static str;

        fn pid(&self) -> Pid {
            self.pid
        }

        fn register_count(&self) -> usize {
            1
        }

        fn resume(&mut self, _read: Option<u64>) -> Step<u64, &'static str> {
            Step::Read(0)
        }
    }

    fn pid(n: u64) -> Pid {
        Pid::new(n).unwrap()
    }

    #[test]
    fn explores_tiny_interleaving_space() {
        let sim = Simulation::builder()
            .process(
                Toy {
                    pid: pid(1),
                    phase: 0,
                },
                View::identity(1),
            )
            .process(
                Toy {
                    pid: pid(2),
                    phase: 0,
                },
                View::identity(1),
            )
            .build()
            .unwrap();
        let graph = Explorer::new(sim).run().unwrap();
        // Each process contributes a write step and an event+halt step;
        // states are (register value, phase of each process) combinations.
        assert!(graph.state_count() >= 4);
        assert!(graph.state_count() <= 3 * 3 * 3);
        // Terminal states exist where everyone halted.
        let terminal = graph.find_state(super::super::simulation::Simulation::all_halted);
        assert!(terminal.is_some());
    }

    #[test]
    fn schedule_to_replays() {
        let build = || {
            Simulation::builder()
                .process(
                    Toy {
                        pid: pid(1),
                        phase: 0,
                    },
                    View::identity(1),
                )
                .process(
                    Toy {
                        pid: pid(2),
                        phase: 0,
                    },
                    View::identity(1),
                )
                .build()
                .unwrap()
        };
        let graph = Explorer::new(build()).run().unwrap();
        // Find a state where register 0 holds 1 and both halted: process 2
        // wrote first, process 1 overwrote.
        let id = graph
            .find_state(|s| s.all_halted() && s.registers()[0] == 1)
            .expect("such a terminal state exists");
        let schedule = graph.schedule_to(id);
        // Replay on a fresh simulation.
        let mut sim = build();
        for &p in &schedule {
            sim.step(p).unwrap();
        }
        assert!(sim.same_configuration(graph.state(id)));
    }

    #[test]
    fn state_limit_is_enforced() {
        let sim = Simulation::builder()
            .process(
                Toy {
                    pid: pid(1),
                    phase: 0,
                },
                View::identity(1),
            )
            .process(
                Toy {
                    pid: pid(2),
                    phase: 0,
                },
                View::identity(1),
            )
            .build()
            .unwrap();
        let err = Explorer::new(sim).max_states(2).run().unwrap_err();
        assert_eq!(err, ExploreError::StateLimitExceeded { limit: 2 });
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn spinner_is_a_fair_livelock() {
        let sim = Simulation::builder()
            .process(Spinner { pid: pid(1) }, View::identity(1))
            .process(Spinner { pid: pid(2) }, View::identity(1))
            .build()
            .unwrap();
        let graph = Explorer::new(sim).run().unwrap();
        let livelock = graph.find_fair_livelock(|_| true, |_| false);
        assert!(livelock.is_some());
    }

    #[test]
    fn halting_machines_have_no_livelock() {
        let sim = Simulation::builder()
            .process(
                Toy {
                    pid: pid(1),
                    phase: 0,
                },
                View::identity(1),
            )
            .process(
                Toy {
                    pid: pid(2),
                    phase: 0,
                },
                View::identity(1),
            )
            .build()
            .unwrap();
        let graph = Explorer::new(sim).run().unwrap();
        assert!(graph.nontrivial_sccs().is_empty());
        assert!(graph.find_fair_livelock(|_| true, |_| false).is_none());
    }

    #[test]
    fn progress_inside_scc_is_not_a_livelock() {
        /// Cycles forever but emits a progress event every lap.
        #[derive(Clone, Debug, PartialEq, Eq, Hash)]
        struct Lapper {
            pid: Pid,
            lap: bool,
        }
        impl Machine for Lapper {
            type Value = u64;
            type Event = &'static str;
            fn pid(&self) -> Pid {
                self.pid
            }
            fn register_count(&self) -> usize {
                1
            }
            fn resume(&mut self, _read: Option<u64>) -> Step<u64, &'static str> {
                self.lap = !self.lap;
                if self.lap {
                    Step::Read(0)
                } else {
                    Step::Event("progress")
                }
            }
        }
        let sim = Simulation::builder()
            .process(
                Lapper {
                    pid: pid(1),
                    lap: false,
                },
                View::identity(1),
            )
            .build()
            .unwrap();
        let graph = Explorer::new(sim).run().unwrap();
        assert!(!graph.nontrivial_sccs().is_empty());
        let livelock = graph.find_fair_livelock(|_| true, |e| *e == "progress");
        assert!(livelock.is_none());
    }

    #[test]
    fn probed_explore_reports_exact_counts() {
        use anonreg_obs::MemProbe;
        let build = || {
            Simulation::builder()
                .process(
                    Toy {
                        pid: pid(1),
                        phase: 0,
                    },
                    View::identity(1),
                )
                .process(
                    Toy {
                        pid: pid(2),
                        phase: 0,
                    },
                    View::identity(1),
                )
                .build()
                .unwrap()
        };
        let probe = MemProbe::new();
        let graph = Explorer::new(build()).probe(&probe).run().unwrap();
        let snap = probe.into_snapshot();
        assert_eq!(
            snap.counter_total(Metric::ExploreStates),
            graph.state_count() as u64
        );
        assert_eq!(
            snap.counter_total(Metric::ExploreEdges),
            graph.edge_count() as u64
        );
        // Every edge either discovers a state or hits the dedup table
        // (the initial state is discovered without an edge).
        assert_eq!(
            snap.counter_total(Metric::ExploreDedup),
            graph.edge_count() as u64 - (graph.state_count() as u64 - 1)
        );
        // Frontier drained; depth bounded by the longest acyclic path.
        let frontier = snap.gauge_stat(Metric::ExploreFrontier).unwrap();
        assert_eq!(frontier.last, 0);
        let depth = snap.gauge_stat(Metric::ExploreDepth).unwrap();
        assert!(depth.max >= 1 && depth.max < graph.state_count() as u64);
        // One explore span, length = states.
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].length, graph.state_count() as u64);
        // And the probed graph is identical to the unprobed one.
        let plain = Explorer::new(build()).run().unwrap();
        assert_eq!(plain.state_count(), graph.state_count());
        assert_eq!(plain.edge_count(), graph.edge_count());
    }

    #[test]
    fn probed_explore_reports_partial_counts_on_limit() {
        use anonreg_obs::MemProbe;
        let sim = Simulation::builder()
            .process(
                Toy {
                    pid: pid(1),
                    phase: 0,
                },
                View::identity(1),
            )
            .process(
                Toy {
                    pid: pid(2),
                    phase: 0,
                },
                View::identity(1),
            )
            .build()
            .unwrap();
        let probe = MemProbe::new();
        let err = Explorer::new(sim)
            .max_states(3)
            .probe(&probe)
            .run()
            .unwrap_err();
        assert_eq!(err, ExploreError::StateLimitExceeded { limit: 3 });
        let snap = probe.into_snapshot();
        assert_eq!(snap.counter_total(Metric::ExploreStates), 3);
        assert_eq!(snap.spans.len(), 1);
    }

    #[test]
    fn edge_events_are_captured() {
        let sim = Simulation::builder()
            .process(
                Toy {
                    pid: pid(1),
                    phase: 0,
                },
                View::identity(1),
            )
            .build()
            .unwrap();
        let graph = Explorer::new(sim).run().unwrap();
        let has_event_edge = (0..graph.state_count())
            .any(|id| graph.edges(id).iter().any(|e| e.events.contains(&"wrote")));
        assert!(has_event_edge);
    }

    /// Builds the two-Toy simulation used by the parallel tests.
    fn two_toys() -> Simulation<Toy> {
        Simulation::builder()
            .process(
                Toy {
                    pid: pid(1),
                    phase: 0,
                },
                View::identity(1),
            )
            .process(
                Toy {
                    pid: pid(2),
                    phase: 0,
                },
                View::identity(1),
            )
            .build()
            .unwrap()
    }

    /// Asserts `a` and `b` are the same graph up to state renumbering.
    fn assert_isomorphic<M: Machine + Eq + Hash>(a: &StateGraph<M>, b: &StateGraph<M>) {
        assert_eq!(a.state_count(), b.state_count());
        assert_eq!(a.edge_count(), b.edge_count());
        // Configurations are unique within a graph, so fingerprint +
        // equality gives a bijection.
        let mut by_fp: HashMap<u64, Vec<usize>> = HashMap::new();
        for (id, s) in b.states() {
            by_fp.entry(s.fingerprint()).or_default().push(id);
        }
        let mut map = vec![usize::MAX; a.state_count()];
        for (id, s) in a.states() {
            let candidates = by_fp.get(&s.fingerprint()).expect("fingerprint matches");
            map[id] = *candidates
                .iter()
                .find(|&&c| s.same_configuration(b.state(c)))
                .expect("configuration present in both graphs");
        }
        // Edge multisets agree under the bijection.
        for (id, _) in a.states() {
            let mut ea: Vec<(usize, usize, bool, String)> = a
                .edges(id)
                .iter()
                .map(|e| (e.proc, map[e.target], e.crash, format!("{:?}", e.events)))
                .collect();
            let mut eb: Vec<(usize, usize, bool, String)> = b
                .edges(map[id])
                .iter()
                .map(|e| (e.proc, e.target, e.crash, format!("{:?}", e.events)))
                .collect();
            ea.sort();
            eb.sort();
            assert_eq!(ea, eb, "edge multiset mismatch at state {id}");
        }
    }

    #[test]
    fn parallel_graph_is_isomorphic_to_sequential() {
        let sequential = Explorer::new(two_toys()).run().unwrap();
        for threads in [2, 4] {
            let parallel = Explorer::new(two_toys())
                .parallelism(threads)
                .run()
                .unwrap();
            assert_isomorphic(&parallel, &sequential);
        }
    }

    #[test]
    fn parallel_explorer_handles_crashes() {
        let sequential = Explorer::new(two_toys()).crashes(true).run().unwrap();
        let parallel = Explorer::new(two_toys())
            .crashes(true)
            .parallelism(3)
            .run()
            .unwrap();
        assert_isomorphic(&parallel, &sequential);
        // Crash edges survive the parallel path.
        let crash_edges = (0..parallel.state_count())
            .flat_map(|id| parallel.edges(id))
            .filter(|e| e.crash)
            .count();
        assert!(crash_edges > 0);
    }

    #[test]
    fn parallel_state_limit_is_enforced() {
        let err = Explorer::new(two_toys())
            .max_states(2)
            .parallelism(4)
            .run()
            .unwrap_err();
        assert_eq!(err, ExploreError::StateLimitExceeded { limit: 2 });
    }

    #[test]
    fn parallelism_zero_means_auto() {
        let graph = Explorer::new(two_toys()).parallelism(0).run().unwrap();
        let sequential = Explorer::new(two_toys()).run().unwrap();
        assert_isomorphic(&graph, &sequential);
    }

    #[test]
    fn parallel_probed_reports_exact_counts() {
        use anonreg_obs::MemProbe;
        let probe = MemProbe::new();
        let threads = 4;
        let graph = Explorer::new(two_toys())
            .parallelism(threads)
            .probe(&probe)
            .run()
            .unwrap();
        let snap = probe.into_snapshot();
        assert_eq!(
            snap.counter_total(Metric::ExploreStates),
            graph.state_count() as u64
        );
        assert_eq!(
            snap.counter_total(Metric::ExploreEdges),
            graph.edge_count() as u64
        );
        // Every edge either discovers a state or hits the (sharded) dedup
        // table; summing across shard keys restores the global invariant.
        assert_eq!(
            snap.counter_total(Metric::ExploreDedup),
            graph.edge_count() as u64 - (graph.state_count() as u64 - 1)
        );
        // One explore span plus one per worker; the workers' lengths (states
        // expanded) sum to the state count.
        assert_eq!(snap.spans.len(), 1 + threads);
        let expanded: u64 = snap
            .spans
            .iter()
            .filter(|s| s.span == Span::ExploreWorker)
            .map(|s| s.length)
            .sum();
        assert_eq!(expanded, graph.state_count() as u64);
    }

    #[test]
    fn parallel_livelock_detection_matches_sequential() {
        let build = || {
            Simulation::builder()
                .process(Spinner { pid: pid(1) }, View::identity(1))
                .process(Spinner { pid: pid(2) }, View::identity(1))
                .build()
                .unwrap()
        };
        let sequential = Explorer::new(build()).run().unwrap();
        let parallel = Explorer::new(build()).parallelism(4).run().unwrap();
        assert_isomorphic(&parallel, &sequential);
        assert!(parallel.find_fair_livelock(|_| true, |_| false).is_some());
    }

    #[test]
    fn nontrivial_sccs_are_canonical() {
        let sim = Simulation::builder()
            .process(Spinner { pid: pid(1) }, View::identity(1))
            .process(Spinner { pid: pid(2) }, View::identity(1))
            .build()
            .unwrap();
        let graph = Explorer::new(sim).run().unwrap();
        let sccs = graph.nontrivial_sccs();
        assert!(!sccs.is_empty());
        for scc in &sccs {
            assert!(scc.windows(2).all(|w| w[0] < w[1]), "ids sorted ascending");
        }
        assert!(
            sccs.windows(2).all(|w| w[0][0] < w[1][0]),
            "components ordered by smallest id"
        );
    }

    /// `step_quiet` must be `step` minus the trace: identical machine,
    /// register and halt evolution under a lockstep schedule.
    #[test]
    fn step_quiet_matches_step_in_lockstep() {
        let mut traced = two_toys();
        let mut quiet = two_toys();
        for round in 0..6 {
            for p in 0..2 {
                let r1 = traced.step(p);
                let r2 = quiet.step_quiet(p);
                match (r1, r2) {
                    (Ok(o1), Ok((o2, _event))) => assert_eq!(o1, o2, "round {round} proc {p}"),
                    (Err(e1), Err(e2)) => assert_eq!(e1, e2, "round {round} proc {p}"),
                    (a, b) => panic!("divergence at round {round} proc {p}: {a:?} vs {b:?}"),
                }
            }
            traced.clear_trace();
            assert!(
                traced.same_configuration(&quiet),
                "configurations diverged at round {round}"
            );
        }
        assert!(quiet.all_halted());
    }

    #[test]
    fn por_with_crashes_is_rejected() {
        let err = Explorer::new(two_toys())
            .por(true)
            .crashes(true)
            .run()
            .unwrap_err();
        assert_eq!(err, ExploreError::PorWithCrashes);
        assert!(!err.to_string().is_empty());
        let err = Explorer::new(two_toys())
            .por(true)
            .crashes(true)
            .run_stats()
            .unwrap_err();
        assert_eq!(err, ExploreError::PorWithCrashes);
    }

    /// POR prunes interleavings of the Toys' local (event/halt) steps but
    /// must preserve reachability of the terminal configurations and the
    /// engines must agree on the reduced graph exactly.
    #[test]
    fn por_reduces_and_engines_agree() {
        let full = Explorer::new(two_toys()).run().unwrap();
        let reduced = Explorer::new(two_toys()).por(true).run().unwrap();
        assert!(reduced.state_count() < full.state_count(), "nothing pruned");
        assert!(reduced.edge_count() < full.edge_count());
        // Both terminal register outcomes stay reachable.
        for winner in [1u64, 2] {
            assert!(
                reduced
                    .find_state(|s| s.all_halted() && s.registers()[0] == winner)
                    .is_some(),
                "terminal state with register {winner} lost by the reduction"
            );
        }
        for threads in [2, 4] {
            let parallel = Explorer::new(two_toys())
                .por(true)
                .parallelism(threads)
                .run()
                .unwrap();
            assert_isomorphic(&parallel, &reduced);
        }
    }

    #[test]
    fn por_counters_are_reported() {
        use anonreg_obs::MemProbe;
        let probe = MemProbe::new();
        let reduced = Explorer::new(two_toys())
            .por(true)
            .probe(&probe)
            .run()
            .unwrap();
        let snap = probe.into_snapshot();
        let ample = snap.counter_total(Metric::PorAmple);
        let pruned = snap.counter_total(Metric::PorPruned);
        assert!(ample > 0, "no ample sets fired on the Toy space");
        assert!(pruned > 0, "ample sets fired but nothing was pruned");
        // An ample set fires at most once per expanded state.
        assert!(ample <= reduced.state_count() as u64);
    }

    /// `run_stats` must count exactly what `run` materialises, on both
    /// engines, with and without POR.
    #[test]
    fn run_stats_matches_graph_counts() {
        for por in [false, true] {
            let graph = Explorer::new(two_toys()).por(por).run().unwrap();
            for threads in [1, 3] {
                let stats = Explorer::new(two_toys())
                    .por(por)
                    .parallelism(threads)
                    .run_stats()
                    .unwrap();
                assert_eq!(stats.states as usize, graph.state_count(), "por={por}");
                assert_eq!(stats.edges as usize, graph.edge_count(), "por={por}");
                assert_eq!(
                    stats.dedup as usize,
                    graph.edge_count() - (graph.state_count() - 1),
                    "por={por}"
                );
                assert!(stats.max_depth > 0);
            }
        }
    }

    /// Spilling codes to disk must not change the graph.
    #[test]
    fn spilled_graph_is_isomorphic_to_in_memory() {
        let baseline = Explorer::new(two_toys()).run().unwrap();
        for threads in [2, 4] {
            let spilled = Explorer::new(two_toys())
                .spill(true)
                .parallelism(threads)
                .run()
                .unwrap();
            assert_isomorphic(&spilled, &baseline);
        }
        let stats = Explorer::new(two_toys())
            .spill(true)
            .parallelism(2)
            .run_stats()
            .unwrap();
        assert_eq!(stats.states as usize, baseline.state_count());
        assert_eq!(stats.edges as usize, baseline.edge_count());
    }

    /// Blows up mid-exploration: halves a fuse per write, panics at zero.
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct Grenade {
        pid: Pid,
        fuse: u8,
    }

    impl Machine for Grenade {
        type Value = u64;
        type Event = &'static str;

        fn pid(&self) -> Pid {
            self.pid
        }

        fn register_count(&self) -> usize {
            1
        }

        fn resume(&mut self, _read: Option<u64>) -> Step<u64, &'static str> {
            assert!(self.fuse > 0, "grenade went off (injected worker panic)");
            self.fuse -= 1;
            Step::Write(0, u64::from(self.fuse))
        }
    }

    /// A worker that panics mid-expansion must not hang the run: the
    /// drop guard releases its pending slot and trips the abort flag, and
    /// the main thread reports the panic as an error verdict.
    #[test]
    fn worker_panic_is_reported_not_hung() {
        let build = || {
            Simulation::builder()
                .process(
                    Grenade {
                        pid: pid(1),
                        fuse: 3,
                    },
                    View::identity(1),
                )
                .process(
                    Grenade {
                        pid: pid(2),
                        fuse: 3,
                    },
                    View::identity(1),
                )
                .build()
                .unwrap()
        };
        for threads in [2, 4] {
            let err = Explorer::new(build())
                .parallelism(threads)
                .run()
                .unwrap_err();
            assert_eq!(err, ExploreError::WorkerPanicked, "{threads} threads");
            assert!(!err.to_string().is_empty());
            let err = Explorer::new(build())
                .parallelism(threads)
                .run_stats()
                .unwrap_err();
            assert_eq!(err, ExploreError::WorkerPanicked, "{threads} threads");
        }
    }

    /// Seeded cross-thread dedup races: many short-lived explorations of
    /// the same space, varying thread counts, must all agree with the
    /// sequential graph (exercises the claim-CAS/publish/spin protocol
    /// under real interleavings).
    #[test]
    fn seeded_parallel_runs_agree_with_sequential() {
        let baseline = Explorer::new(two_toys()).run().unwrap();
        for seed in 0..8u32 {
            let threads = 2 + (seed as usize % 3);
            let parallel = Explorer::new(two_toys())
                .parallelism(threads)
                .spill(seed % 2 == 1)
                .run()
                .unwrap();
            assert_isomorphic(&parallel, &baseline);
        }
    }

    /// The batched fingerprint path (encode+hash `FP_BATCH` successors,
    /// then probe the table) must leave every count bit-identical to the
    /// sequential engine under seeded race variation — the batching
    /// reorders nothing, it only groups.
    #[test]
    fn batched_fingerprinting_counts_are_bit_identical() {
        let baseline = Explorer::new(two_toys()).run_stats().unwrap();
        for seed in 0..8u32 {
            let threads = 2 + (seed as usize % 3);
            let stats = Explorer::new(two_toys())
                .parallelism(threads)
                .spill(seed % 2 == 1)
                .run_stats()
                .unwrap();
            assert_eq!(stats.states, baseline.states, "seed {seed}");
            assert_eq!(stats.edges, baseline.edges, "seed {seed}");
            assert_eq!(stats.dedup, baseline.dedup, "seed {seed}");
        }
    }

    #[test]
    fn por_with_full_symmetry_is_rejected() {
        // Toy lacks PidMap, so exercise the validation through config
        // alone is impossible here — the mode check needs an encoder in
        // Full mode, which `symmetry()` gates on PidMap. The family-level
        // rejection test lives in por_modelcheck.rs; this one pins the
        // error's Display text.
        let err = ExploreError::PorWithFullSymmetry;
        assert!(err.to_string().contains("SymmetryMode::Full"));
        assert!(err.to_string().contains("Registers"));
    }

    fn cert_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "anonreg-explore-cert-{}-{name}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Certify → replay round-trip: the replay's counts and verdicts
    /// match the explored graph, with zero exploration on the warm path.
    #[test]
    fn certificate_round_trips_counts_and_verdicts() {
        let path = cert_dir("roundtrip").join("toys.cert");
        let graph = Explorer::new(two_toys())
            .certify(&path)
            .verdict("terminates", |g: &StateGraph<Toy>| {
                g.find_state(Simulation::all_halted).is_some()
            })
            .verdict("livelock", |g: &StateGraph<Toy>| {
                g.find_fair_livelock(|_| true, |_| false).is_some()
            })
            .run()
            .unwrap();
        // The replaying explorer must register the same verdict set —
        // the names are part of the structural key (the predicates are
        // not evaluated on a warm path, so any bodies do).
        let report = Explorer::new(two_toys())
            .verdict("terminates", |_: &StateGraph<Toy>| false)
            .verdict("livelock", |_: &StateGraph<Toy>| false)
            .replay_certificate(&path)
            .unwrap();
        assert_eq!(report.states, graph.state_count() as u64);
        assert_eq!(report.edges, graph.edge_count() as u64);
        assert_eq!(
            report.verdicts,
            vec![
                ("terminates".to_string(), true),
                ("livelock".to_string(), false)
            ]
        );
    }

    /// Both engines must emit byte-identical certificates: the canonical
    /// code sort erases discovery order.
    #[test]
    fn parallel_certificate_matches_sequential_bytes() {
        let dir = cert_dir("engines");
        let seq_path = dir.join("seq.cert");
        let par_path = dir.join("par.cert");
        Explorer::new(two_toys()).certify(&seq_path).run().unwrap();
        Explorer::new(two_toys())
            .parallelism(4)
            .certify(&par_path)
            .run()
            .unwrap();
        let seq = std::fs::read(&seq_path).unwrap();
        let par = std::fs::read(&par_path).unwrap();
        assert_eq!(seq, par, "certificates diverge between engines");
    }

    /// A certificate is refused once the problem changes: different
    /// machine behavior, different limits, different failure model.
    #[test]
    fn stale_certificates_are_refused() {
        use anonreg_cache::CertError;
        let path = cert_dir("stale").join("toys.cert");
        Explorer::new(two_toys()).certify(&path).run().unwrap();
        // Same machines, different limits.
        let err = Explorer::new(two_toys())
            .max_states(77)
            .replay_certificate(&path)
            .unwrap_err();
        assert!(matches!(err, CertError::Stale { .. }), "{err}");
        assert!(err.to_string().contains("stale"), "{err}");
        // Same machines, crash model on.
        let err = Explorer::new(two_toys())
            .crashes(true)
            .replay_certificate(&path)
            .unwrap_err();
        assert!(matches!(err, CertError::Stale { .. }), "{err}");
        // Different initial configuration (three toys, not two).
        let three = Simulation::builder()
            .process(
                Toy {
                    pid: pid(1),
                    phase: 0,
                },
                View::identity(1),
            )
            .process(
                Toy {
                    pid: pid(2),
                    phase: 0,
                },
                View::identity(1),
            )
            .process(
                Toy {
                    pid: pid(3),
                    phase: 0,
                },
                View::identity(1),
            )
            .build()
            .unwrap();
        let err = Explorer::new(three).replay_certificate(&path).unwrap_err();
        assert!(matches!(err, CertError::Stale { .. }), "{err}");
        // The unchanged problem still replays.
        assert!(Explorer::new(two_toys()).replay_certificate(&path).is_ok());
    }

    /// Two machine *types* whose initial fields encode identically must
    /// still key differently: their transition functions live in code,
    /// not in the encoded bytes, so without the type identity in the key
    /// one family's certificate could answer for the other.
    #[test]
    fn structural_hash_distinguishes_machine_types() {
        /// Field-for-field clone of [`Toy`] with different `resume`
        /// logic — it halts immediately, so its reachable set is a
        /// single state while `Toy`'s is not.
        #[derive(Clone, Debug, PartialEq, Eq, Hash)]
        struct TwinToy {
            pid: Pid,
            phase: u8,
        }
        impl Machine for TwinToy {
            type Value = u64;
            type Event = &'static str;
            fn pid(&self) -> Pid {
                self.pid
            }
            fn register_count(&self) -> usize {
                1
            }
            fn resume(&mut self, _read: Option<u64>) -> Step<u64, &'static str> {
                Step::Halt
            }
        }
        let twins = Simulation::builder()
            .process(
                TwinToy {
                    pid: pid(1),
                    phase: 0,
                },
                View::identity(1),
            )
            .process(
                TwinToy {
                    pid: pid(2),
                    phase: 0,
                },
                View::identity(1),
            )
            .build()
            .unwrap();
        // The premise: both initial configurations encode to the same
        // bytes, so only the machine's type identity can separate them.
        assert_eq!(
            crate::canon::encode_plain(&two_toys()),
            crate::canon::encode_plain(&twins)
        );
        assert_ne!(
            Explorer::new(two_toys()).structural_hash(),
            Explorer::new(twins).structural_hash()
        );
    }

    /// The registered verdict set is part of the key: adding, renaming
    /// or dropping a verdict asks a different question, so it must miss
    /// the cache rather than warm-hit a certificate that never recorded
    /// the answer.
    #[test]
    fn structural_hash_tracks_the_verdict_set() {
        let bare = || Explorer::new(two_toys());
        let base = bare().structural_hash();
        let safety = bare()
            .verdict("safety", |_: &StateGraph<Toy>| false)
            .structural_hash();
        let renamed = bare()
            .verdict("liveness", |_: &StateGraph<Toy>| false)
            .structural_hash();
        let both = bare()
            .verdict("safety", |_: &StateGraph<Toy>| false)
            .verdict("liveness", |_: &StateGraph<Toy>| false)
            .structural_hash();
        assert_ne!(base, safety);
        assert_ne!(safety, renamed);
        assert_ne!(safety, both);
        // The predicate body is code, not identity: same names, same key.
        assert_eq!(
            safety,
            bare()
                .verdict("safety", |g: &StateGraph<Toy>| g.state_count() > 0)
                .structural_hash()
        );
    }

    /// Defense in depth behind the key: an intact certificate carrying
    /// the *right* structural key but the wrong verdict set (a key
    /// collision, or a store written by a tampered tool) is refused by
    /// the replay-side name comparison instead of answering the wrong
    /// question.
    #[test]
    fn replay_refuses_a_verdict_set_mismatch() {
        use anonreg_cache::{CertError, CertWriter};
        let path = cert_dir("verdict-mismatch").join("toys.cert");
        let expect = || Explorer::new(two_toys()).verdict("expected", |_: &StateGraph<Toy>| false);
        // Hand-build a certificate under the explorer's own key whose
        // recorded state set is just the initial configuration and whose
        // verdict section names something else entirely.
        let mut writer = CertWriter::create(&path, expect().structural_hash()).unwrap();
        writer
            .push_code(&crate::canon::encode_plain(&two_toys()))
            .unwrap();
        writer.finish(&[("other".to_string(), true)]).unwrap();
        let err = expect().replay_certificate(&path).unwrap_err();
        match err {
            CertError::VerdictMismatch {
                recorded,
                registered,
            } => {
                assert_eq!(recorded, vec!["other".to_string()]);
                assert_eq!(registered, vec!["expected".to_string()]);
            }
            other => panic!("expected a verdict-set mismatch, got: {other}"),
        }
    }

    /// The structural hash must also see the *views*: the plain state
    /// encoding omits them, so a rotated view with identical machines
    /// must still produce a different key.
    #[test]
    fn structural_hash_distinguishes_views() {
        /// Two-register toy so a non-identity view exists.
        #[derive(Clone, Debug, PartialEq, Eq, Hash)]
        struct Wide {
            pid: Pid,
            done: bool,
        }
        impl Machine for Wide {
            type Value = u64;
            type Event = ();
            fn pid(&self) -> Pid {
                self.pid
            }
            fn register_count(&self) -> usize {
                2
            }
            fn resume(&mut self, _read: Option<u64>) -> Step<u64, ()> {
                if self.done {
                    Step::Halt
                } else {
                    self.done = true;
                    Step::Write(0, self.pid.get())
                }
            }
        }
        let build = |second_view: View| {
            Simulation::builder()
                .process(
                    Wide {
                        pid: pid(1),
                        done: false,
                    },
                    View::identity(2),
                )
                .process(
                    Wide {
                        pid: pid(2),
                        done: false,
                    },
                    second_view,
                )
                .build()
                .unwrap()
        };
        assert_ne!(
            Explorer::new(build(View::rotated(2, 1))).structural_hash(),
            Explorer::new(build(View::identity(2))).structural_hash()
        );
    }

    /// `run_cached` — cold populates, warm replays, counts agree, and
    /// the escape hatch is honored by the store layer.
    #[test]
    fn run_cached_warm_matches_cold() {
        use crate::explore::cert::run_cached;
        let store = anonreg_cache::CacheStore::new(cert_dir("runcached")).unwrap();
        let key = Explorer::new(two_toys()).structural_hash();
        let _ = store.invalidate(key);
        let cold = run_cached(&store, || {
            Explorer::new(two_toys()).verdict("terminates", |g: &StateGraph<Toy>| {
                g.find_state(Simulation::all_halted).is_some()
            })
        })
        .unwrap();
        assert!(!cold.warm);
        let warm = run_cached(&store, || {
            Explorer::new(two_toys()).verdict("terminates", |g: &StateGraph<Toy>| {
                g.find_state(Simulation::all_halted).is_some()
            })
        })
        .unwrap();
        assert!(warm.warm, "second run should replay the certificate");
        assert_eq!(warm.states, cold.states);
        assert_eq!(warm.edges, cold.edges);
        assert_eq!(warm.verdicts, cold.verdicts);
    }

    /// A damaged certificate degrades to a cold recomputation, never an
    /// error.
    #[test]
    fn run_cached_recovers_from_corruption() {
        use crate::explore::cert::run_cached;
        let store = anonreg_cache::CacheStore::new(cert_dir("corrupt")).unwrap();
        let key = Explorer::new(two_toys()).structural_hash();
        let cold = run_cached(&store, || Explorer::new(two_toys())).unwrap();
        std::fs::write(store.path(key), b"not a certificate").unwrap();
        let recomputed = run_cached(&store, || Explorer::new(two_toys())).unwrap();
        assert!(!recomputed.warm);
        assert_eq!(recomputed.states, cold.states);
        // And the refreshed certificate serves the next run warm.
        let warm = run_cached(&store, || Explorer::new(two_toys())).unwrap();
        assert!(warm.warm);
    }

    /// Warm replays emit the cache probe counters.
    #[test]
    fn replay_emits_cache_metrics() {
        use anonreg_obs::MemProbe;
        let path = cert_dir("metrics").join("toys.cert");
        Explorer::new(two_toys()).certify(&path).run().unwrap();
        let probe = MemProbe::new();
        Explorer::new(two_toys())
            .probe(&probe)
            .replay_certificate(&path)
            .unwrap();
        let snap = probe.into_snapshot();
        assert_eq!(snap.counter_total(Metric::CacheHit), 1);
        assert!(snap.counter_total(Metric::CacheReplayTime) > 0);
    }
}
