//! ASCII per-register contention heatmap for terminal triage.
//!
//! Renders labeled rows of per-register counts with a shade ramp, scaled
//! to the hottest cell, plus the raw maximum so the picture is
//! quantitative:
//!
//! ```text
//! register     0123456789
//! reads        @%#==:. .
//! writes       #=:-.
//! contention   *-.
//! scale: ' .:-=+*#%@' (max = 1824)
//! ```

use crate::trace_io::RegisterStats;

/// The shade ramp, coolest to hottest. A zero count renders as a space;
/// nonzero counts map linearly onto the remaining glyphs.
const RAMP: &str = " .:-=+*#%@";

/// A labeled matrix of per-register counts, ready to render.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Heatmap {
    rows: Vec<(String, Vec<u64>)>,
    axis: String,
}

impl Default for Heatmap {
    fn default() -> Self {
        Heatmap {
            rows: Vec::new(),
            axis: "register".to_string(),
        }
    }
}

impl Heatmap {
    /// Creates an empty heatmap over the default `register` axis.
    #[must_use]
    pub fn new() -> Self {
        Heatmap::default()
    }

    /// Adds a labeled row of per-register counts.
    pub fn row(&mut self, label: &str, counts: Vec<u64>) -> &mut Self {
        self.rows.push((label.to_string(), counts));
        self
    }

    /// Relabels the column axis (e.g. `worker` for per-worker maps).
    pub fn axis(&mut self, label: &str) -> &mut Self {
        self.axis = label.to_string();
        self
    }

    /// Builds the standard three-row (reads / writes / contention) map
    /// from trace-derived [`RegisterStats`].
    #[must_use]
    pub fn from_register_stats(stats: &RegisterStats) -> Self {
        let mut map = Heatmap::new();
        map.row("reads", stats.reads.clone());
        map.row("writes", stats.writes.clone());
        map.row("contention", stats.contention.clone());
        map
    }

    /// The hottest cell across all rows.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.rows
            .iter()
            .flat_map(|(_, counts)| counts.iter().copied())
            .max()
            .unwrap_or(0)
    }

    fn glyph(count: u64, max: u64) -> char {
        let ramp = RAMP.as_bytes();
        if count == 0 || max == 0 {
            return ramp[0] as char;
        }
        // Nonzero counts use ramp[1..=last], linearly in count/max, with
        // count == max pinned to the hottest glyph.
        let hot = ramp.len() - 1;
        let scaled = u128::from(count) * (hot as u128 - 1) / u128::from(max);
        let idx = 1 + usize::try_from(scaled).unwrap_or(hot);
        ramp[idx.min(hot)] as char
    }

    /// Renders the map. Registers run left to right; the header row labels
    /// them modulo 10 so wide maps stay readable.
    #[must_use]
    pub fn render(&self) -> String {
        let registers = self
            .rows
            .iter()
            .map(|(_, counts)| counts.len())
            .max()
            .unwrap_or(0);
        let label_width = self
            .rows
            .iter()
            .map(|(label, _)| label.len())
            .max()
            .unwrap_or(0)
            .max(self.axis.len());
        let max = self.max();
        let mut out = String::new();
        out.push_str(&format!("{:<label_width$}  ", self.axis));
        for r in 0..registers {
            out.push(char::from_digit((r % 10) as u32, 10).unwrap_or('?'));
        }
        out.push('\n');
        for (label, counts) in &self.rows {
            out.push_str(&format!("{label:<label_width$}  "));
            for r in 0..registers {
                let count = counts.get(r).copied().unwrap_or(0);
                out.push(Self::glyph(count, max));
            }
            // Trailing spaces in all-cool tails are noise; trim per row.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        }
        out.push_str(&format!("scale: '{RAMP}' (max = {max})\n"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_cool_to_hot() {
        let mut map = Heatmap::new();
        map.row("writes", vec![0, 1, 50, 100]);
        let s = map.render();
        let row = s.lines().find(|l| l.starts_with("writes")).unwrap();
        let cells: Vec<char> = row.chars().rev().take(3).collect();
        // Hottest cell gets the hottest glyph.
        assert_eq!(cells[0], '@');
        // Zero renders as (trimmed) space — the row body starts after the
        // label padding with the count-1 glyph.
        assert!(row.contains('.'));
        assert!(s.contains("max = 100"));
    }

    #[test]
    fn from_register_stats_has_three_rows() {
        let stats = RegisterStats {
            reads: vec![4, 0],
            writes: vec![1, 1],
            contention: vec![0, 2],
        };
        let s = Heatmap::from_register_stats(&stats).render();
        assert!(s.contains("reads"));
        assert!(s.contains("writes"));
        assert!(s.contains("contention"));
        assert!(s.lines().next().unwrap().contains("01"));
    }

    #[test]
    fn empty_map_is_harmless() {
        let s = Heatmap::new().render();
        assert!(s.contains("max = 0"));
    }

    #[test]
    fn axis_relabels_the_header() {
        let mut map = Heatmap::new();
        map.axis("worker").row("orbit hits", vec![3, 1]);
        let s = map.render();
        assert!(s.lines().next().unwrap().starts_with("worker"));
        assert!(!s.contains("register"));
    }

    #[test]
    fn glyphs_are_monotone() {
        let max = 1000;
        let mut prev = 0u32;
        for count in [0, 1, 10, 100, 500, 1000] {
            let g = Heatmap::glyph(count, max);
            let rank = RAMP.chars().position(|c| c == g).unwrap() as u32;
            assert!(rank >= prev, "ramp must not cool as counts grow");
            prev = rank;
        }
    }
}
