//! Bring your own algorithm: the recommended three-stage verification
//! workflow.
//!
//! ```text
//! cargo run --release --example verify_your_algorithm
//! ```
//!
//! This workspace is not only a reproduction — the analyzer, simulator and
//! runtime work for *any* algorithm expressed as a [`Machine`]. The
//! recommended author workflow runs three gates, cheapest first:
//!
//! 1. **Lint** (`anonreg-lint`, milliseconds): static structural checks —
//!    index bounds, protocol conformance, §2 symmetry, exit restoration,
//!    solo termination, pack width — by abstract resumption, no scheduler.
//! 2. **Model-check** (`anonreg-sim`, seconds): exhaustive state-space
//!    exploration decides safety and liveness for a fixed configuration.
//! 3. **Thread run** (`anonreg-runtime`): the surviving algorithm on real
//!    atomics under the OS scheduler.
//!
//! The demo machine is the classic **broken** flag mutex (read the flag;
//! if clear, set it and enter). The punchline is *why three stages*: the
//! naive lock is structurally impeccable — every lint passes — yet stage 2
//! hands back the interleaving every concurrency course warns about. The
//! lints catch malformed machines cheaply; only exhaustive exploration
//! catches wrong ones. Both extensions in this workspace
//! (`anonreg::hybrid`, `anonreg::ordered`) were designed exactly this way.

use anonreg::mutex::{AnonMutex, MutexEvent, Section};
use anonreg::{Machine, Pid, Step, View};
use anonreg_lint::{
    exit_restores_memory, solo_termination, symmetry, Analysis, CfgConfig, LintId, LintReport,
};
use anonreg_runtime::AnonymousMutex;
use anonreg_sim::prelude::*;
use anonreg_sim::Simulation;

/// The classic broken lock: `if flag == 0 { flag = 1; /* enter */ }`.
/// The read and the write are separate atomic steps, so two processes can
/// both read 0 before either writes. One critical-section cycle, then
/// halt (so solo runs are bounded and the lints have a full CFG).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct NaiveFlagMutex {
    pid: Pid,
    pc: NaivePc,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum NaivePc {
    Remainder,
    ReadFlag,
    WroteFlag,
    Critical,
    ExitWrite,
    Done,
}

impl NaiveFlagMutex {
    fn new(pid: Pid) -> Self {
        NaiveFlagMutex {
            pid,
            pc: NaivePc::Remainder,
        }
    }

    fn section(&self) -> Section {
        match self.pc {
            NaivePc::Remainder | NaivePc::Done => Section::Remainder,
            NaivePc::ReadFlag | NaivePc::WroteFlag => Section::Entry,
            NaivePc::Critical => Section::Critical,
            NaivePc::ExitWrite => Section::Exit,
        }
    }
}

impl Machine for NaiveFlagMutex {
    type Value = u64;
    type Event = MutexEvent;

    fn pid(&self) -> Pid {
        self.pid
    }

    fn register_count(&self) -> usize {
        1
    }

    fn resume(&mut self, read: Option<u64>) -> Step<u64, MutexEvent> {
        match self.pc {
            NaivePc::Remainder => {
                self.pc = NaivePc::ReadFlag;
                Step::Read(0)
            }
            NaivePc::ReadFlag => {
                let flag = read.expect("flag value");
                if flag == 0 {
                    self.pc = NaivePc::WroteFlag;
                    Step::Write(0, 1)
                } else {
                    // Spin.
                    Step::Read(0)
                }
            }
            NaivePc::WroteFlag => {
                self.pc = NaivePc::Critical;
                Step::Event(MutexEvent::Enter)
            }
            NaivePc::Critical => {
                self.pc = NaivePc::ExitWrite;
                Step::Event(MutexEvent::Exit)
            }
            NaivePc::ExitWrite => {
                self.pc = NaivePc::Done;
                Step::Write(0, 0)
            }
            NaivePc::Done => Step::Halt,
        }
    }
}

/// Stage 1: the full L1–L6 battery over an arbitrary machine.
fn lint_stage(subject: &str, a: NaiveFlagMutex, b: NaiveFlagMutex) -> LintReport {
    let config = CfgConfig::new(vec![0u64, 1]);
    let mut report = LintReport::new(subject);
    let analysis = Analysis::new(&a, &config);
    report.record(LintId::IndexBounds, analysis.index_bounds());
    report.record(LintId::Protocol, analysis.protocol());
    report.record(
        LintId::PackWidth,
        analysis.pack_width(|v| *v <= u64::from(u32::MAX)),
    );
    // The naive lock never touches its pid, so the identity substitution
    // on values certifies symmetry.
    report.record(LintId::Symmetry, symmetry(&a, &b, |v| *v, &config));
    report.record(
        LintId::ExitRestoresMemory,
        exit_restores_memory(a.clone(), vec![0], 32),
    );
    report.record(LintId::SoloTermination, solo_termination(a, vec![0], 32));
    report
}

fn main() {
    let p1 = Pid::new(1).unwrap();
    let p2 = Pid::new(2).unwrap();

    println!("== stage 1: lint your algorithm (milliseconds, no scheduler) ==");
    let report = lint_stage(
        "naive flag mutex",
        NaiveFlagMutex::new(p1),
        NaiveFlagMutex::new(p2),
    );
    print!("{report}");
    assert!(report.passed());
    println!(
        "structurally well-formed: in bounds, deterministic, symmetric, \
         restoring, terminating.\nBut the lints check *shape*, not mutual \
         exclusion — on to the adversary.\n"
    );

    println!("== stage 2: model-check it (exhaustive, per configuration) ==");
    let sim = Simulation::builder()
        .process(NaiveFlagMutex::new(p1), View::identity(1))
        .process(NaiveFlagMutex::new(p2), View::identity(1))
        .build()
        .expect("uniform configuration");
    let graph = Explorer::new(sim).run().expect("tiny state space");
    println!("reachable states: {}", graph.state_count());
    let bad = graph
        .find_state(|s| {
            s.machines()
                .filter(|m| m.section() == Section::Critical)
                .count()
                >= 2
        })
        .expect("the naive lock is broken");
    println!("VERDICT: mutual exclusion VIOLATED (state {bad})");
    println!(
        "the schedule every textbook warns about: {:?}",
        graph.schedule_to(bad)
    );
    println!("(both processes read flag = 0 before either write landed)\n");

    println!("== the paper's algorithm passes both gates: Figure 1, m = 3 ==");
    let sim = Simulation::builder()
        .process(AnonMutex::new(p1, 3).unwrap(), View::identity(3))
        .process(AnonMutex::new(p2, 3).unwrap(), View::rotated(3, 1))
        .build()
        .expect("uniform configuration");
    let graph = Explorer::new(sim).run().expect("fits the limit");
    println!("reachable states: {}", graph.state_count());
    let bad = graph.find_state(|s| {
        s.machines()
            .filter(|m| m.section() == Section::Critical)
            .count()
            >= 2
    });
    assert!(bad.is_none());
    println!("VERDICT: mutual exclusion holds in every reachable state");
    let livelock = graph.find_fair_livelock(
        |m| m.section() == Section::Entry,
        |e| *e == MutexEvent::Enter,
    );
    assert!(livelock.is_none());
    println!("VERDICT: no fair livelock — deadlock-freedom holds");
    println!("(its full lint report: `check lint mutex` — all six pass)\n");

    println!("== stage 3: run the survivor on real threads ==");
    let mutex = AnonymousMutex::new(3).expect("m = 3 is odd");
    let a = mutex.handle(p1).expect("fresh pid");
    let b = mutex.handle(p2).expect("fresh pid");
    let mut shared = 0u64;
    let total = std::thread::scope(|s| {
        let shared = &mut shared;
        let ta = s.spawn(move || {
            let mut handle = a;
            let mut local = 0;
            for _ in 0..50 {
                let _guard = handle.enter();
                local += 1;
            }
            local
        });
        let tb = s.spawn(move || {
            let mut handle = b;
            let mut local = 0;
            for _ in 0..50 {
                let _guard = handle.enter();
                local += 1;
            }
            local
        });
        let sum: u64 = ta.join().unwrap() + tb.join().unwrap();
        *shared = sum;
        sum
    });
    println!("100 critical sections across 2 threads, counted {total}");
    assert_eq!(shared, 100);
    println!("\nexpress your algorithm as a Machine; lint it, check it, run it.");
}
