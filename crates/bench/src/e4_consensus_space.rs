//! E4 — the consensus space-bound table (Theorem 6.3).
//!
//! For each `n` and each under-provisioned register count `r < n`, mount
//! the covering attack of `anonreg-lower` and report the manufactured
//! disagreement. For `r ≥ 2n − 1` the attack is (correctly) impossible.

use anonreg_lower::consensus_cover::disagreement;

use crate::benchjson::{flag, BenchMetric};
use crate::table::Table;

/// One row of the space-bound table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Processes.
    pub n: usize,
    /// Registers provided.
    pub registers: usize,
    /// Whether the covering attack produced a disagreement.
    pub violated: bool,
    /// Size of the victim's write set (`= |P|`, the coverers needed).
    pub coverers: usize,
}

/// Runs the attack for every `n ∈ 2..=max_n` and `r ∈ 1..n`.
#[must_use]
pub fn rows(max_n: usize) -> Vec<Row> {
    let mut out = Vec::new();
    for n in 2..=max_n {
        for r in 1..n {
            match disagreement(n, r) {
                Ok(d) => out.push(Row {
                    n,
                    registers: r,
                    violated: true,
                    coverers: d.write_set.len(),
                }),
                Err(_) => out.push(Row {
                    n,
                    registers: r,
                    violated: false,
                    coverers: 0,
                }),
            }
        }
    }
    out
}

/// Renders the table for the given rows.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(vec![
        "n",
        "registers",
        "required (2n-1)",
        "agreement",
        "coverers",
    ]);
    for r in rows {
        t.row(vec![
            r.n.to_string(),
            r.registers.to_string(),
            (2 * r.n - 1).to_string(),
            if r.violated {
                "VIOLATED (attack)"
            } else {
                "held?!"
            }
            .into(),
            r.coverers.to_string(),
        ]);
    }
    t.render()
}

/// Machine-readable metrics for the given rows.
#[must_use]
pub fn metrics(rows: &[Row]) -> Vec<BenchMetric> {
    let mut out = Vec::new();
    for r in rows {
        let (n, reg) = (r.n, r.registers);
        out.push(BenchMetric::new(
            "E4",
            "consensus",
            format!("n{n}_r{reg}_violated"),
            flag(r.violated),
            "bool",
        ));
        out.push(BenchMetric::new(
            "E4",
            "consensus",
            format!("n{n}_r{reg}_coverers"),
            r.coverers as f64,
            "processes",
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_underprovisioned_count_is_attacked() {
        for row in rows(5) {
            assert!(row.violated, "n={}, r={}", row.n, row.registers);
            assert!(row.coverers >= 1);
            assert!(row.coverers <= row.registers);
        }
    }
}
