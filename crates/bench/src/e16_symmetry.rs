//! E16 — symmetry-reduced exploration: orbit canonicalization payoff.
//!
//! The paper's model is symmetric twice over: registers are anonymous
//! (§2 — nothing distinguishes one register from another beyond a
//! process's private view of them) and the algorithms are symmetric in
//! the Theorem 3.4 sense (identifiers are compared, never computed
//! with). Both symmetries induce automorphisms of the reachable state
//! graph, so the explorer only needs one representative per orbit. This
//! experiment measures that payoff: each workload is explored under
//! `--symmetry off`, `registers` and `full` and the table reports how
//! many fewer states (and edges) each mode stores, with verdict parity
//! hard-asserted — a reduction that changed a verdict would be a
//! soundness bug, not a measurement.
//!
//! Two workloads bracket the group sizes that arise in practice:
//!
//! * **Figure 1 mutex on a ring** — `procs` processes over `m`
//!   registers through `ring_views`, one critical-section cycle each.
//!   The view ring admits the cyclic group `C_procs`, so `full` can
//!   approach a `procs`-fold reduction.
//! * **Symmetric Figure 2 consensus** — `n` processes with *equal*
//!   inputs behind identity views, under-provisioned at `registers`
//!   registers. Fully interchangeable processes admit the symmetric
//!   group `S_n`, the best case for `full` (`n!`-fold ceiling).
//!
//! `Registers` mode is expected to report ~1.0x here: both algorithms
//! stamp identifiers into registers, so distinct slots essentially never
//! reach bit-identical local states — the honest baseline that motivates
//! the identifier-renaming half of `full`.

use std::time::{Duration, Instant};

use anonreg::consensus::AnonConsensus;
use anonreg::mutex::{AnonMutex, Section};
use anonreg::{Pid, View};
use anonreg_sim::prelude::*;
use anonreg_sim::symmetry::ring_views;

use crate::benchjson::BenchMetric;
use crate::live::{self, Instruments};
use crate::table::Table;

/// One of the two symmetric workloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Figure 1 mutex: `procs` processes over `m` registers via ring
    /// views, one critical-section cycle each. Requires `procs ∣ m`.
    MutexRing {
        /// Anonymous registers.
        m: usize,
        /// Ring processes.
        procs: usize,
    },
    /// Figure 2 consensus: `n` equal-input processes behind identity
    /// views over `registers` anonymous registers.
    SymmetricConsensus {
        /// Consensus processes.
        n: usize,
        /// Anonymous registers (under-provisioned below `2n − 1`).
        registers: usize,
    },
}

impl Workload {
    /// The full-scale pair reported in `BENCH_explore.json`.
    #[must_use]
    pub fn full_scale() -> [Workload; 2] {
        [
            Workload::MutexRing { m: 3, procs: 3 },
            Workload::SymmetricConsensus { n: 3, registers: 2 },
        ]
    }

    /// Metric-friendly identifier, e.g. `mutex_m3_l3`.
    #[must_use]
    pub fn slug(&self) -> String {
        match *self {
            Workload::MutexRing { m, procs } => format!("mutex_m{m}_l{procs}"),
            Workload::SymmetricConsensus { n, registers } => {
                format!("consensus_n{n}_r{registers}")
            }
        }
    }

    fn family(&self) -> &'static str {
        match self {
            Workload::MutexRing { .. } => "mutex",
            Workload::SymmetricConsensus { .. } => "consensus",
        }
    }
}

/// One timed exploration of a workload under one symmetry mode.
#[derive(Clone, Debug)]
pub struct Row {
    /// Which workload was explored.
    pub workload: Workload,
    /// The symmetry mode the explorer quotiented by.
    pub mode: SymmetryMode,
    /// Explorer worker threads (`1` = the sequential engine).
    pub threads: usize,
    /// Stored orbit representatives.
    pub states: usize,
    /// Stored transitions.
    pub edges: usize,
    /// Wall time of the exploration.
    pub elapsed: Duration,
}

impl Row {
    /// Stored-state reduction relative to `baseline` (normally the
    /// `off` row of the same workload): `baseline.states / self.states`.
    #[must_use]
    pub fn reduction_over(&self, baseline: &Row) -> f64 {
        baseline.states as f64 / (self.states as f64).max(1.0)
    }
}

/// Builds the ring-mutex simulation.
///
/// # Panics
///
/// Panics if `procs` does not divide `m` or `procs < 2`.
#[must_use]
pub fn mutex_ring_sim(m: usize, procs: usize) -> Simulation<AnonMutex> {
    let views = ring_views(m, procs).unwrap();
    let mut builder = Simulation::builder();
    for (i, view) in views.into_iter().enumerate() {
        builder = builder.process(
            AnonMutex::new(Pid::new(i as u64 + 1).unwrap(), m)
                .unwrap()
                .with_cycles(1),
            view,
        );
    }
    builder.build().unwrap()
}

/// Builds the equal-input identity-view consensus simulation.
///
/// # Panics
///
/// Panics if `n` or `registers` is zero.
#[must_use]
pub fn symmetric_consensus_sim(n: usize, registers: usize) -> Simulation<AnonConsensus> {
    let mut builder = Simulation::builder();
    for i in 0..n {
        builder = builder.process(
            AnonConsensus::new(Pid::new(i as u64 + 1).unwrap(), n, 1)
                .unwrap()
                .with_registers(registers),
            View::identity(registers),
        );
    }
    builder.build().unwrap()
}

/// The safety verdict of a workload's graph, compared across modes.
fn verdict(
    workload: Workload,
    graph_mutex: Option<&StateGraph<AnonMutex>>,
    graph_cons: Option<&StateGraph<AnonConsensus>>,
) -> bool {
    match workload {
        Workload::MutexRing { .. } => graph_mutex
            .unwrap()
            .find_state(|s| {
                (0..s.process_count())
                    .filter(|&p| s.machine(p).section() == Section::Critical)
                    .count()
                    >= 2
            })
            .is_some(),
        Workload::SymmetricConsensus { .. } => graph_cons
            .unwrap()
            .find_state(|s| {
                let mut decided = (0..s.process_count())
                    .filter(|&p| s.machine(p).has_decided())
                    .map(|p| s.machine(p).preference());
                let first = decided.next();
                first.is_some_and(|v| v != 1) || decided.any(|v| Some(v) != first)
            })
            .is_some(),
    }
}

/// Explores `workload` once per symmetry mode (`off`, `registers`,
/// `full`, in that order) at `threads` threads.
///
/// # Errors
///
/// Propagates [`ExploreError::StateLimitExceeded`] if the `off` space
/// exceeds `max_states`.
///
/// # Panics
///
/// Panics if any mode's safety verdict diverges from the `off`
/// baseline, or a reduced mode stores *more* states than `off` — either
/// would be a canonicalization soundness bug, not a measurement.
pub fn rows(
    workload: Workload,
    threads: usize,
    max_states: usize,
) -> Result<Vec<Row>, ExploreError> {
    rows_with(workload, threads, max_states, &Instruments::none())
}

/// [`rows`] with live instrumentation attached: every mode's exploration
/// feeds the shared probe (for `--stream`) and/or the profiler.
///
/// # Errors
///
/// Propagates [`ExploreError::StateLimitExceeded`].
///
/// # Panics
///
/// Same divergence assertions as [`rows`].
pub fn rows_with(
    workload: Workload,
    threads: usize,
    max_states: usize,
    ins: &Instruments<'_>,
) -> Result<Vec<Row>, ExploreError> {
    const MODES: [SymmetryMode; 3] = [
        SymmetryMode::Off,
        SymmetryMode::Registers,
        SymmetryMode::Full,
    ];
    let mut out: Vec<Row> = Vec::new();
    let mut baseline_verdict: Option<bool> = None;
    for mode in MODES {
        let start = Instant::now();
        let (states, edges, violated) = match workload {
            Workload::MutexRing { m, procs } => {
                let graph =
                    live::explore(mutex_ring_sim(m, procs), mode, threads, max_states, ins)?;
                (
                    graph.state_count(),
                    graph.edge_count(),
                    verdict(workload, Some(&graph), None),
                )
            }
            Workload::SymmetricConsensus { n, registers } => {
                let graph = live::explore(
                    symmetric_consensus_sim(n, registers),
                    mode,
                    threads,
                    max_states,
                    ins,
                )?;
                (
                    graph.state_count(),
                    graph.edge_count(),
                    verdict(workload, None, Some(&graph)),
                )
            }
        };
        let elapsed = start.elapsed();
        match baseline_verdict {
            None => baseline_verdict = Some(violated),
            Some(base) => assert_eq!(
                violated,
                base,
                "{}: safety verdict diverged under {mode}",
                workload.slug()
            ),
        }
        if let Some(off) = out.first() {
            assert!(
                states <= off.states,
                "{}: {mode} stored more states than off ({} vs {})",
                workload.slug(),
                states,
                off.states
            );
        }
        out.push(Row {
            workload,
            mode,
            threads,
            states,
            edges,
            elapsed,
        });
    }
    Ok(out)
}

/// Renders the reduction table for one or more workloads' rows.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(vec![
        "workload",
        "mode",
        "threads",
        "states",
        "edges",
        "elapsed",
        "reduction",
    ]);
    for r in rows {
        let baseline = rows
            .iter()
            .find(|b| b.workload == r.workload && b.mode == SymmetryMode::Off);
        t.row(vec![
            r.workload.slug(),
            r.mode.to_string(),
            r.threads.to_string(),
            r.states.to_string(),
            r.edges.to_string(),
            format!("{:?}", r.elapsed),
            baseline.map_or_else(String::new, |b| format!("{:.2}x", r.reduction_over(b))),
        ]);
    }
    t.render()
}

/// Machine-readable metrics for the given rows (experiment `E16`).
#[must_use]
pub fn metrics(rows: &[Row]) -> Vec<BenchMetric> {
    let mut out = Vec::new();
    for r in rows {
        let base = format!("{}_{}_t{}", r.workload.slug(), r.mode, r.threads);
        let family = r.workload.family();
        out.push(BenchMetric::new(
            "E16",
            family,
            format!("{base}_states"),
            r.states as f64,
            "states",
        ));
        out.push(BenchMetric::new(
            "E16",
            family,
            format!("{base}_edges"),
            r.edges as f64,
            "edges",
        ));
        out.push(BenchMetric::new(
            "E16",
            family,
            format!("{base}_time"),
            r.elapsed.as_secs_f64() * 1000.0,
            "ms",
        ));
        if let Some(b) = rows
            .iter()
            .find(|b| b.workload == r.workload && b.mode == SymmetryMode::Off)
        {
            out.push(BenchMetric::new(
                "E16",
                family,
                format!("{base}_reduction"),
                r.reduction_over(b),
                "x",
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mutex_sweep_reduces_and_agrees() {
        let rows = rows(Workload::MutexRing { m: 2, procs: 2 }, 1, 200_000).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].mode, SymmetryMode::Off);
        assert!(rows[0].states > 100);
        // Full strictly reduces even this 2-process ring.
        assert!(rows[2].states < rows[0].states);
        assert!(rows[2].reduction_over(&rows[0]) > 1.0);
    }

    #[test]
    fn quick_consensus_sweep_reduces_and_agrees() {
        let rows = rows(
            Workload::SymmetricConsensus { n: 2, registers: 2 },
            2,
            200_000,
        )
        .unwrap();
        // Two fully interchangeable processes: essentially the S₂
        // halving (diagonal states fixed by the swap are their own
        // orbits, so the ratio lands just under 2.0 on tiny spaces).
        assert!(
            rows[2].reduction_over(&rows[0]) > 1.9,
            "expected ~2x, rows: {rows:?}"
        );
    }

    #[test]
    fn render_and_metrics_cover_all_rows() {
        let rows = rows(Workload::MutexRing { m: 2, procs: 2 }, 1, 200_000).unwrap();
        let table = render(&rows);
        assert!(table.contains("reduction"));
        assert!(table.contains("mutex_m2_l2"));
        let metrics = metrics(&rows);
        // states/edges/time/reduction for every row.
        assert_eq!(metrics.len(), 4 * rows.len());
        assert!(metrics.iter().all(|m| m.experiment == "E16"));
    }

    /// The E16 regression this PR fixes: `Registers` mode on workloads
    /// whose pids pin every slot (the ring mutex, the symmetric
    /// consensus) used to pay full orbit-search cost for provably zero
    /// reduction — 14% slower than `off` at identical counts in
    /// `BENCH_explore.json`. The encoder now detects that at build time
    /// and takes the identity fast path. Deterministic assertion, not a
    /// wall-clock one: the probe must report *skipped* encodes and no
    /// canonicalization time on both engines.
    #[test]
    fn registers_fast_path_skips_trivial_orbits_on_both_engines() {
        use anonreg_obs::{MemProbe, Metric};

        for workload in [
            Workload::MutexRing { m: 2, procs: 2 },
            Workload::SymmetricConsensus { n: 2, registers: 2 },
        ] {
            let baseline = {
                let probe = MemProbe::new();
                match workload {
                    Workload::MutexRing { m, procs } => Explorer::new(mutex_ring_sim(m, procs))
                        .max_states(200_000)
                        .probe(&probe)
                        .run_stats()
                        .unwrap(),
                    Workload::SymmetricConsensus { n, registers } => {
                        Explorer::new(symmetric_consensus_sim(n, registers))
                            .max_states(200_000)
                            .probe(&probe)
                            .run_stats()
                            .unwrap()
                    }
                }
            };
            for threads in [1usize, 2] {
                let probe = MemProbe::new();
                let run = |probe: &MemProbe| match workload {
                    Workload::MutexRing { m, procs } => Explorer::new(mutex_ring_sim(m, procs))
                        .max_states(200_000)
                        .parallelism(threads)
                        .probe(probe)
                        .symmetry(SymmetryMode::Registers)
                        .run_stats()
                        .unwrap(),
                    Workload::SymmetricConsensus { n, registers } => {
                        Explorer::new(symmetric_consensus_sim(n, registers))
                            .max_states(200_000)
                            .parallelism(threads)
                            .probe(probe)
                            .symmetry(SymmetryMode::Registers)
                            .run_stats()
                            .unwrap()
                    }
                };
                let stats = run(&probe);
                let snap = probe.snapshot();
                let slug = workload.slug();
                assert!(
                    snap.counter_total(Metric::CanonSkipped) > 0,
                    "{slug} t{threads}: fast path did not engage"
                );
                assert_eq!(
                    snap.counter_total(Metric::CanonTime),
                    0,
                    "{slug} t{threads}: canonicalization was still timed"
                );
                assert_eq!(
                    snap.counter_total(Metric::SymmetryHits),
                    0,
                    "{slug} t{threads}: fast path cannot move configurations"
                );
                // Pid-pinned slots ⇒ zero reduction was already the
                // status quo; the fast path must preserve the counts.
                assert_eq!(
                    (stats.states, stats.edges),
                    (baseline.states, baseline.edges),
                    "{slug} t{threads}: fast path changed the graph"
                );
            }
        }
    }

    #[test]
    fn limit_error_propagates() {
        assert!(matches!(
            rows(Workload::SymmetricConsensus { n: 2, registers: 2 }, 1, 10),
            Err(ExploreError::StateLimitExceeded { limit: 10 })
        ));
    }
}
