//! Classic *named-register* baselines.
//!
//! The paper's central contrast is between the standard model — where
//! processes a priori agree on the names of the shared registers — and the
//! strictly weaker memory-anonymous model. These modules implement canonical
//! algorithms of the standard model as [`Machine`](anonreg_model::Machine)s
//! so the two models can be compared head-to-head under the same simulator,
//! checkers and thread runtime (experiment E9):
//!
//! * [`peterson`] — Peterson's two-process mutual exclusion (3 registers).
//! * [`bakery`] — Lamport's Bakery: n-process mutual exclusion (2n
//!   registers). Note that Bakery *orders* identifiers, which the
//!   memory-anonymous symmetric model forbids — precisely the kind of prior
//!   agreement the paper removes.
//! * [`lock_consensus`] — consensus in the failure-free named model: acquire
//!   a mutex, then read-or-set a decision register.
//! * [`splitter`] — Moir–Anderson splitter-grid renaming: wait-free one-shot
//!   renaming to `{1..k(k+1)/2}`, the classic named-register renaming
//!   network.
//!
//! All baselines run with [`View::identity`](anonreg_model::View::identity):
//! giving them an anonymous (permuted) view breaks them, which is itself an
//! instructive demonstration of Theorem 6.1.

pub mod bakery;
pub mod lock_consensus;
pub mod peterson;
pub mod splitter;

pub use bakery::Bakery;
pub use lock_consensus::LockConsensus;
pub use peterson::Peterson;
pub use splitter::SplitterRenaming;
