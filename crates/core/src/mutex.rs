//! Figure 1: memory-anonymous symmetric deadlock-free mutual exclusion for
//! two processes.
//!
//! The algorithm uses `m` anonymous registers, all initially `0`. A process
//! tries to claim every register it reads as `0` by writing its identifier;
//! it then re-reads all registers:
//!
//! * its identifier in **all** `m` registers → enter the critical section;
//! * its identifier in fewer than `⌈m/2⌉` registers → *lose*: erase its own
//!   identifier and spin until all registers read `0` again, then retry;
//! * otherwise → retry immediately.
//!
//! On exit, the winner resets all `m` registers to `0`.
//!
//! Theorem 3.1 proves this works **iff `m` is odd**: with odd `m` and two
//! contenders, exactly one of them claims a majority. With even `m` both can
//! claim exactly `m/2`, neither loses, and a lock-step adversary livelocks
//! the system forever — experiment E1 demonstrates both sides by exhaustive
//! model checking.

use std::fmt;

use anonreg_model::{Machine, Pid, PidMap, Step};

/// Observable milestones of a mutual exclusion algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MutexEvent {
    /// The process entered its critical section.
    Enter,
    /// The process left its critical section (and is about to run its exit
    /// code).
    Exit,
    /// The process abandoned an entry attempt (abortable/try-lock variants
    /// only) and is back in its remainder section.
    Aborted,
}

/// Which of the paper's four code sections a process is currently in.
///
/// "It is assumed that each process is executing a sequence of instructions
/// in an infinite loop. The instructions are divided into four continuous
/// sections: the remainder, entry, critical and exit." (§3.1)
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Section {
    /// Not competing for the critical section.
    Remainder,
    /// Executing the entry code (lines 1–10 of Figure 1).
    Entry,
    /// Inside the critical section.
    Critical,
    /// Executing the wait-free exit code (line 12).
    Exit,
}

/// Error returned for invalid mutual exclusion configurations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MutexConfigError {
    /// The algorithm was configured with zero registers.
    ZeroRegisters,
    /// A two-slot named algorithm (Peterson) was given a slot other than
    /// 0 or 1.
    BadSlot {
        /// The offending slot.
        slot: usize,
    },
}

impl MutexConfigError {
    /// Constructs the bad-slot error (used by the named baselines).
    #[must_use]
    pub(crate) fn slot(slot: usize) -> Self {
        MutexConfigError::BadSlot { slot }
    }
}

impl fmt::Display for MutexConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutexConfigError::ZeroRegisters => {
                write!(f, "mutual exclusion needs at least one register")
            }
            MutexConfigError::BadSlot { slot } => {
                write!(f, "two-process algorithm slot must be 0 or 1, got {slot}")
            }
        }
    }
}

impl std::error::Error for MutexConfigError {}

/// Program counter of the Figure 1 state machine. Line numbers refer to the
/// paper's Figure 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Pc {
    /// In the remainder section; the next resume starts the entry code (or
    /// halts if the configured number of cycles is exhausted).
    Remainder,
    /// Line 2, read issued for register `j`: scanning, about to learn whether
    /// `p.i[j] = 0`.
    ScanRead,
    /// Line 2, write `p.i[j] := i` just issued; advance the scan.
    ScanWrote,
    /// Line 3 (or line 7 when `waiting`), read issued for register `j`:
    /// copying the shared array into `myview`.
    ViewRead,
    /// Line 5, read issued for register `j`: cleaning up, about to learn
    /// whether `p.i[j] = i`.
    CleanupRead,
    /// Line 5, write `p.i[j] := 0` just issued; advance the cleanup.
    CleanupWrote,
    /// Line 7, read issued for register `j`: waiting for the critical section
    /// to be released (`myview` must become all zero).
    WaitRead,
    /// `Event(Enter)` just emitted; the process is in its critical section.
    Critical,
    /// `Event(Exit)` just emitted; line 12 writes follow.
    ExitWrite,
}

/// The Figure 1 algorithm: memory-anonymous symmetric deadlock-free mutual
/// exclusion for two processes using `m` registers.
///
/// The machine loops forever through remainder → entry → critical → exit
/// unless bounded with [`with_cycles`](AnonMutex::with_cycles). It announces
/// [`MutexEvent::Enter`] when entering and [`MutexEvent::Exit`] when leaving
/// the critical section.
///
/// Correct (mutual exclusion + deadlock freedom) for **two** processes and
/// **odd** `m ≥ 3` — both facts are established in Theorems 3.2 and 3.3 and
/// verified exhaustively by the model checker in `anonreg-sim`. The
/// constructor deliberately accepts *any* `m ≥ 1` so the even-`m` livelock
/// of Theorem 3.1 and the `n ≥ 3` failure of Theorem 3.4 can be demonstrated
/// rather than merely asserted.
///
/// # Example
///
/// ```
/// use anonreg::mutex::{AnonMutex, Section};
/// use anonreg::{Machine, Pid, Step};
///
/// let machine = AnonMutex::new(Pid::new(1).unwrap(), 5)?;
/// assert_eq!(machine.register_count(), 5);
/// assert_eq!(machine.section(), Section::Remainder);
/// # Ok::<(), anonreg::mutex::MutexConfigError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct AnonMutex {
    pid: Pid,
    m: usize,
    /// `None` = loop forever (the paper's infinite loop).
    cycles_remaining: Option<u64>,
    /// Local copy of the shared array (`myview[1..m]` in the paper).
    myview: Vec<u64>,
    /// Loop index `j`.
    j: usize,
    /// Abort the current entry attempt at the next decision point (see
    /// [`request_abort`](AnonMutex::request_abort)).
    abort_requested: bool,
    /// Auto-abort after this many failed scan+view rounds in one entry
    /// (deterministic abort, for model checking; `None` = never).
    abort_after: Option<u32>,
    /// Failed rounds in the current entry attempt.
    rounds_this_entry: u32,
    /// Erasing marks because of an abort (return to remainder afterwards,
    /// not to the waiting loop).
    aborting: bool,
    pc: Pc,
}

impl AnonMutex {
    /// Creates the Figure 1 machine for the process `pid` with `m` anonymous
    /// registers.
    ///
    /// The machine cycles forever; use [`with_cycles`](AnonMutex::with_cycles)
    /// to bound the number of critical-section entries.
    ///
    /// # Errors
    ///
    /// Returns [`MutexConfigError`] if `m == 0`. Note that correctness
    /// additionally requires `m` odd and at most two competing processes
    /// (Theorem 3.1); violating those is permitted so the failure modes can
    /// be observed.
    pub fn new(pid: Pid, m: usize) -> Result<Self, MutexConfigError> {
        if m == 0 {
            return Err(MutexConfigError::ZeroRegisters);
        }
        Ok(AnonMutex {
            pid,
            m,
            cycles_remaining: None,
            myview: vec![0; m],
            j: 0,
            abort_requested: false,
            abort_after: None,
            rounds_this_entry: 0,
            aborting: false,
            pc: Pc::Remainder,
        })
    }

    /// Bounds the machine to `cycles` critical-section entries, after which
    /// it halts (in its remainder section). A bound of `0` halts immediately.
    #[must_use]
    pub fn with_cycles(mut self, cycles: u64) -> Self {
        self.cycles_remaining = Some(cycles);
        self
    }

    /// Auto-aborts an entry attempt after `rounds` failed scan+view rounds:
    /// the process voluntarily takes the algorithm's *lose* path (erase own
    /// marks) and returns to its remainder section instead of waiting.
    ///
    /// Aborting is sound because it is exactly the line 4–5 giving-up move
    /// the correctness proofs already cover; the abortable configurations
    /// are model-checked in `mutex_modelcheck.rs`. Deterministic (counted)
    /// aborts exist primarily for that checker; real code uses
    /// [`request_abort`](AnonMutex::request_abort).
    #[must_use]
    pub fn with_abort_after(mut self, rounds: u32) -> Self {
        self.abort_after = Some(rounds);
        self
    }

    /// Requests that the current (or next) entry attempt be abandoned: at
    /// its next decision point the machine erases its marks and returns to
    /// the remainder section. This is the try-lock escape hatch used by
    /// `anonreg-runtime`'s `try_enter`.
    ///
    /// A no-op if the process is already in its critical section — the
    /// request then applies to the *next* entry attempt, so callers should
    /// only request an abort while the machine is in its entry section.
    pub fn request_abort(&mut self) {
        self.abort_requested = true;
    }

    /// Whether the machine is idle in its remainder section (e.g. after an
    /// abort completed).
    #[must_use]
    pub fn in_remainder(&self) -> bool {
        self.pc == Pc::Remainder
    }

    fn abort_due(&self) -> bool {
        self.abort_requested
            || self
                .abort_after
                .is_some_and(|limit| self.rounds_this_entry >= limit)
    }

    /// Begin the abort: erase own marks (the lose path's cleanup), then
    /// return to the remainder section.
    fn begin_abort(&mut self) -> Step<u64, MutexEvent> {
        self.abort_requested = false;
        self.aborting = true;
        self.j = 0;
        self.continue_cleanup()
    }

    /// The code section the process is currently in.
    #[must_use]
    pub fn section(&self) -> Section {
        match self.pc {
            Pc::Remainder => Section::Remainder,
            Pc::ScanRead
            | Pc::ScanWrote
            | Pc::ViewRead
            | Pc::CleanupRead
            | Pc::CleanupWrote
            | Pc::WaitRead => Section::Entry,
            Pc::Critical => Section::Critical,
            Pc::ExitWrite => Section::Exit,
        }
    }

    /// Number of registers `m`.
    #[must_use]
    pub fn m(&self) -> usize {
        self.m
    }

    /// The threshold `⌈m/2⌉` from line 4 of Figure 1.
    #[must_use]
    pub fn majority(&self) -> usize {
        self.m.div_ceil(2)
    }

    /// Line 2: issue the scan read for the current `j`, or — once the scan is
    /// done — move on to line 3.
    fn continue_scan(&mut self) -> Step<u64, MutexEvent> {
        if self.j < self.m {
            self.pc = Pc::ScanRead;
            Step::Read(self.j)
        } else {
            self.j = 0;
            self.pc = Pc::ViewRead;
            Step::Read(0)
        }
    }

    /// Line 5: issue the cleanup read for the current `j`, or — once cleanup
    /// is done — move on to the waiting loop (lines 6–8), or, when
    /// aborting, return to the remainder section.
    fn continue_cleanup(&mut self) -> Step<u64, MutexEvent> {
        if self.j < self.m {
            self.pc = Pc::CleanupRead;
            Step::Read(self.j)
        } else if self.aborting {
            self.aborting = false;
            self.rounds_this_entry = 0;
            self.pc = Pc::Remainder;
            Step::Event(MutexEvent::Aborted)
        } else {
            self.j = 0;
            self.pc = Pc::WaitRead;
            Step::Read(0)
        }
    }

    /// Line 4 / line 10: the scan and view are complete; decide between
    /// entering the critical section, giving up, retrying — or aborting.
    fn after_view(&mut self) -> Step<u64, MutexEvent> {
        let me = self.pid.get();
        let mine = self.myview.iter().filter(|&&v| v == me).count();
        if mine == self.m {
            // Line 10 satisfied: my identifier is everywhere.
            self.rounds_this_entry = 0;
            self.pc = Pc::Critical;
            return Step::Event(MutexEvent::Enter);
        }
        // The round counter only exists for bounded-abort machines; keeping
        // it frozen otherwise keeps the state space finite (it would grow
        // without bound round after round).
        if self.abort_after.is_some() {
            self.rounds_this_entry = self.rounds_this_entry.saturating_add(1);
        }
        if self.abort_due() {
            return self.begin_abort();
        }
        if mine < self.majority() {
            // Line 4: lose; clean up (line 5) then wait (lines 6–8).
            self.j = 0;
            self.continue_cleanup()
        } else {
            // Line 10 not satisfied but no loss either: start over (line 1).
            self.j = 0;
            self.continue_scan()
        }
    }
}

impl Machine for AnonMutex {
    type Value = u64;
    type Event = MutexEvent;

    fn pid(&self) -> Pid {
        self.pid
    }

    fn register_count(&self) -> usize {
        self.m
    }

    fn resume(&mut self, read: Option<u64>) -> Step<u64, MutexEvent> {
        match self.pc {
            Pc::Remainder => {
                debug_assert!(read.is_none());
                match self.cycles_remaining {
                    Some(0) => Step::Halt,
                    other => {
                        if let Some(c) = other {
                            self.cycles_remaining = Some(c - 1);
                        }
                        self.rounds_this_entry = 0;
                        self.j = 0;
                        self.continue_scan()
                    }
                }
            }
            Pc::ScanRead => {
                let value = read.expect("scan read result expected");
                if value == 0 {
                    self.pc = Pc::ScanWrote;
                    Step::Write(self.j, self.pid.get())
                } else {
                    self.j += 1;
                    self.continue_scan()
                }
            }
            Pc::ScanWrote => {
                debug_assert!(read.is_none());
                self.j += 1;
                self.continue_scan()
            }
            Pc::ViewRead => {
                let value = read.expect("view read result expected");
                self.myview[self.j] = value;
                self.j += 1;
                if self.j < self.m {
                    Step::Read(self.j)
                } else {
                    self.after_view()
                }
            }
            Pc::CleanupRead => {
                let value = read.expect("cleanup read result expected");
                if value == self.pid.get() {
                    self.pc = Pc::CleanupWrote;
                    Step::Write(self.j, 0)
                } else {
                    self.j += 1;
                    self.continue_cleanup()
                }
            }
            Pc::CleanupWrote => {
                debug_assert!(read.is_none());
                self.j += 1;
                self.continue_cleanup()
            }
            Pc::WaitRead => {
                let value = read.expect("wait read result expected");
                self.myview[self.j] = value;
                self.j += 1;
                if self.j < self.m {
                    Step::Read(self.j)
                } else if self.abort_due() {
                    // Waiting holds no marks; aborting from here is
                    // immediate.
                    self.abort_requested = false;
                    self.rounds_this_entry = 0;
                    self.pc = Pc::Remainder;
                    Step::Event(MutexEvent::Aborted)
                } else if self.myview.iter().all(|&v| v == 0) {
                    // Line 8 satisfied: the critical section was released;
                    // try again from line 2.
                    self.j = 0;
                    self.continue_scan()
                } else {
                    // Keep waiting (line 6).
                    self.j = 0;
                    Step::Read(0)
                }
            }
            Pc::Critical => {
                debug_assert!(read.is_none());
                self.j = 0;
                self.pc = Pc::ExitWrite;
                Step::Event(MutexEvent::Exit)
            }
            Pc::ExitWrite => {
                debug_assert!(read.is_none());
                let j = self.j;
                self.j += 1;
                if self.j == self.m {
                    // The final exit write completes the cycle: the process
                    // is in its remainder section as soon as this write
                    // lands, so the state is observable there (drivers wait
                    // for it when releasing a lock).
                    self.pc = Pc::Remainder;
                }
                Step::Write(j, 0)
            }
        }
    }
}

impl PidMap for AnonMutex {
    fn map_pids(&self, f: &mut dyn FnMut(Pid) -> Pid) -> Self {
        AnonMutex {
            pid: f(self.pid),
            myview: self.myview.iter().map(|v| v.map_pids(f)).collect(),
            ..self.clone()
        }
    }
}

impl fmt::Debug for AnonMutex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AnonMutex")
            .field("pid", &self.pid)
            .field("m", &self.m)
            .field("pc", &self.pc)
            .field("j", &self.j)
            .field("myview", &self.myview)
            .field("cycles_remaining", &self.cycles_remaining)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u64) -> Pid {
        Pid::new(n).unwrap()
    }

    /// Drives a single machine against a private register array until it
    /// halts; returns (events, registers, memory ops performed).
    fn run_solo(mut machine: AnonMutex) -> (Vec<MutexEvent>, Vec<u64>, usize) {
        let mut regs = vec![0u64; machine.register_count()];
        let mut read = None;
        let mut events = Vec::new();
        let mut ops = 0;
        for _ in 0..100_000 {
            match machine.resume(read.take()) {
                Step::Read(j) => {
                    ops += 1;
                    read = Some(regs[j]);
                }
                Step::Write(j, v) => {
                    ops += 1;
                    regs[j] = v;
                }
                Step::Event(e) => events.push(e),
                Step::Halt => return (events, regs, ops),
            }
        }
        panic!("machine did not halt");
    }

    #[test]
    fn zero_registers_rejected() {
        let err = AnonMutex::new(pid(1), 0).unwrap_err();
        assert!(err.to_string().contains("at least one register"));
    }

    #[test]
    fn solo_process_enters_and_exits() {
        for m in [1, 3, 5, 9] {
            let machine = AnonMutex::new(pid(7), m).unwrap().with_cycles(1);
            let (events, regs, _) = run_solo(machine);
            assert_eq!(events, vec![MutexEvent::Enter, MutexEvent::Exit], "m={m}");
            assert!(regs.iter().all(|&v| v == 0), "exit code must reset, m={m}");
        }
    }

    #[test]
    fn solo_process_cycles_repeatedly() {
        let machine = AnonMutex::new(pid(7), 3).unwrap().with_cycles(4);
        let (events, _, _) = run_solo(machine);
        assert_eq!(events.len(), 8);
        for pair in events.chunks(2) {
            assert_eq!(pair, [MutexEvent::Enter, MutexEvent::Exit]);
        }
    }

    #[test]
    fn zero_cycles_halts_immediately() {
        let machine = AnonMutex::new(pid(7), 3).unwrap().with_cycles(0);
        let (events, _, ops) = run_solo(machine);
        assert!(events.is_empty());
        assert_eq!(ops, 0);
    }

    #[test]
    fn solo_step_complexity_is_linear() {
        // Solo entry: m reads + m writes (scan) + m reads (view) + enter +
        // exit + m writes = 4m memory ops.
        for m in [3, 5, 7, 11] {
            let machine = AnonMutex::new(pid(9), m).unwrap().with_cycles(1);
            let (_, _, ops) = run_solo(machine);
            assert_eq!(ops, 4 * m, "m={m}");
        }
    }

    #[test]
    fn sections_track_progress() {
        let mut machine = AnonMutex::new(pid(3), 3).unwrap().with_cycles(1);
        assert_eq!(machine.section(), Section::Remainder);
        let mut regs = [0u64; 3];
        let mut read = None;
        loop {
            match machine.resume(read.take()) {
                Step::Read(j) => read = Some(regs[j]),
                Step::Write(j, v) => regs[j] = v,
                Step::Event(MutexEvent::Enter) => break,
                Step::Event(MutexEvent::Exit | MutexEvent::Aborted) | Step::Halt => {
                    panic!("entered CS expected first")
                }
            }
            assert_eq!(machine.section(), Section::Entry);
        }
        assert_eq!(machine.section(), Section::Critical);
        machine.resume(None); // Exit event
        assert_eq!(machine.section(), Section::Exit);
    }

    #[test]
    fn loser_gives_up_when_opponent_holds_all() {
        // Registers all hold the opponent's id: the process scans (no zero
        // found), views, counts 0 < ⌈m/2⌉, cleans up (writes nothing since no
        // register holds its id) and waits.
        let mut machine = AnonMutex::new(pid(1), 3).unwrap();
        let regs = [2u64; 3];
        let mut read = None;
        for _ in 0..(3 + 3 + 3) {
            match machine.resume(read.take()) {
                Step::Read(j) => read = Some(regs[j]),
                Step::Write(..) => panic!("must not write over the opponent"),
                other => panic!("unexpected step {other:?}"),
            }
        }
        // Now in the waiting loop re-reading registers forever.
        for _ in 0..12 {
            match machine.resume(read.take()) {
                Step::Read(j) => read = Some(regs[j]),
                other => panic!("expected to wait, got {other:?}"),
            }
        }
        assert_eq!(machine.section(), Section::Entry);
    }

    #[test]
    fn majority_threshold_matches_paper() {
        assert_eq!(AnonMutex::new(pid(1), 3).unwrap().majority(), 2);
        assert_eq!(AnonMutex::new(pid(1), 4).unwrap().majority(), 2);
        assert_eq!(AnonMutex::new(pid(1), 5).unwrap().majority(), 3);
        assert_eq!(AnonMutex::new(pid(1), 9).unwrap().majority(), 5);
    }

    #[test]
    fn pid_map_renames_state_consistently() {
        let a = pid(1);
        let b = pid(2);
        let mut machine = AnonMutex::new(a, 3).unwrap();
        // Put the machine into a state that mentions its pid.
        let mut regs = [0u64; 3];
        let mut read = None;
        for _ in 0..6 {
            match machine.resume(read.take()) {
                Step::Read(j) => read = Some(regs[j]),
                Step::Write(j, v) => regs[j] = v,
                _ => {}
            }
        }
        let renamed = machine.map_pids(&mut |p| if p == a { b } else { a });
        assert_eq!(renamed.pid(), b);
        // Renaming twice with the swap is the identity.
        let back = renamed.map_pids(&mut |p| if p == a { b } else { a });
        assert_eq!(back, machine);
    }

    #[test]
    fn auto_abort_takes_the_lose_path_and_parks() {
        // All registers held by the opponent: the machine scans (claiming
        // nothing), views, counts 0, and with abort_after(1) must abort —
        // erase nothing, announce Aborted, and park in the remainder.
        let mut machine = AnonMutex::new(pid(1), 3).unwrap().with_abort_after(1);
        let regs = [2u64; 3];
        let mut read = None;
        let mut aborted = false;
        for _ in 0..40 {
            match machine.resume(read.take()) {
                Step::Read(j) => read = Some(regs[j]),
                Step::Write(..) => panic!("nothing to claim or clean"),
                Step::Event(MutexEvent::Aborted) => {
                    aborted = true;
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(aborted);
        assert_eq!(machine.section(), Section::Remainder);
        assert!(machine.in_remainder());
    }

    #[test]
    fn abort_erases_own_marks() {
        // Tie scenario (m = 2): we claim one register, the opponent holds
        // the other. abort_after(1) must clean our mark before parking.
        let mut machine = AnonMutex::new(pid(1), 2).unwrap().with_abort_after(1);
        let mut regs = vec![0u64, 2];
        let mut read = None;
        let mut aborted = false;
        for _ in 0..40 {
            match machine.resume(read.take()) {
                Step::Read(j) => read = Some(regs[j]),
                Step::Write(j, v) => regs[j] = v,
                Step::Event(MutexEvent::Aborted) => {
                    aborted = true;
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(aborted);
        assert_eq!(regs, vec![0, 2], "our mark was erased, theirs intact");
    }

    #[test]
    fn requested_abort_interrupts_a_waiting_machine() {
        // The machine loses and waits; request_abort must free it at the
        // next wait-loop round.
        let mut machine = AnonMutex::new(pid(1), 3).unwrap();
        let regs = [2u64; 3];
        let mut read = None;
        // Drive into the waiting loop: scan (3 reads), view (3), cleanup
        // (3), then wait reads.
        for _ in 0..10 {
            match machine.resume(read.take()) {
                Step::Read(j) => read = Some(regs[j]),
                other => panic!("unexpected {other:?}"),
            }
        }
        machine.request_abort();
        let mut aborted = false;
        for _ in 0..10 {
            match machine.resume(read.take()) {
                Step::Read(j) => read = Some(regs[j]),
                Step::Event(MutexEvent::Aborted) => {
                    aborted = true;
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(aborted);
        assert!(machine.in_remainder());
    }

    #[test]
    fn aborted_machine_reenters_cleanly() {
        let mut machine = AnonMutex::new(pid(1), 3).unwrap().with_abort_after(1);
        // First attempt against a fully-held array: aborts.
        let mut regs = vec![2u64; 3];
        let mut read = None;
        loop {
            match machine.resume(read.take()) {
                Step::Read(j) => read = Some(regs[j]),
                Step::Event(MutexEvent::Aborted) => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        // Opponent releases; the next attempt must win.
        regs = vec![0u64; 3];
        let mut entered = false;
        for _ in 0..40 {
            match machine.resume(read.take()) {
                Step::Read(j) => read = Some(regs[j]),
                Step::Write(j, v) => regs[j] = v,
                Step::Event(MutexEvent::Enter) => {
                    entered = true;
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(entered);
    }

    #[test]
    fn debug_is_nonempty() {
        let machine = AnonMutex::new(pid(1), 3).unwrap();
        let s = format!("{machine:?}");
        assert!(s.contains("AnonMutex"));
        assert!(s.contains("pc"));
    }
}
