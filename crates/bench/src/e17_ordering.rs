//! E17 — memory-ordering inference: certified minimal orderings per
//! algorithm family.
//!
//! The thread runtime realizes the paper's atomic registers with `SeqCst`
//! atomics; the `anonreg-sanitizer` substrate asks which of those
//! orderings each of the seven families actually needs. This experiment
//! runs [`certify_family`](anonreg_sanitizer::certify_family) for every
//! family — greedy per-site ladders `Relaxed → Acquire/Release → SeqCst`,
//! each rung accepted only when a seeded sweep (half the schedules under
//! injected faults) shows neither a missing happens-before edge nor a
//! safety violation — and tabulates the certified plans, the rungs
//! rejected on the way, and the negative controls (the broken fixtures
//! the sanitizer *must* flag).
//!
//! The certified orderings are empirical and bound to the sanitizer's
//! SC-per-location observation model, which is why the runtime's
//! general-purpose register operations stay `SeqCst` and only
//! structurally justified sites (certificates `ORD-RT-PEEK-001`,
//! `ORD-RT-HANDLE-002`) run relaxed — see `ci/seqcst_allowlist.txt`.

use std::sync::atomic::Ordering;

use anonreg_sanitizer::fixtures::run_fixture;
use anonreg_sanitizer::{
    broken_fixtures, certify_family, FamilyCertification, FixtureOutcome, Site, FAMILIES,
};

use crate::benchjson::BenchMetric;
use crate::table::Table;

/// Schedules per inference sweep in the default configuration.
pub const DEFAULT_SCHEDULES: u64 = 12;

/// Schedules per inference sweep under `--quick`.
pub const QUICK_SCHEDULES: u64 = 6;

/// Schedules a fixture scan tries before giving up.
pub const FIXTURE_SCHEDULES: u64 = 16;

/// The ladder level of an ordering (0 relaxed, 1 acquire/release,
/// 2 sequentially consistent) — how the metrics stream encodes a
/// certified ordering numerically.
#[must_use]
pub fn ordering_level(ordering: Ordering) -> u64 {
    match ordering {
        Ordering::Relaxed => 0,
        Ordering::Acquire | Ordering::Release | Ordering::AcqRel => 1,
        _ => 2,
    }
}

/// Certifies every family at `base_seed` with `schedules` schedules per
/// sweep.
#[must_use]
pub fn certifications(base_seed: u64, schedules: u64) -> Vec<FamilyCertification> {
    FAMILIES
        .iter()
        .map(|&family| certify_family(family, base_seed, schedules))
        .collect()
}

/// Runs every broken fixture, scanning up to [`FIXTURE_SCHEDULES`]
/// schedules for the violation each must produce.
#[must_use]
pub fn fixture_outcomes(base_seed: u64) -> Vec<FixtureOutcome> {
    broken_fixtures()
        .iter()
        .map(|f| run_fixture(f, base_seed, FIXTURE_SCHEDULES))
        .collect()
}

/// Renders the certification table.
#[must_use]
pub fn render(certs: &[FamilyCertification]) -> String {
    let mut t = Table::new(vec![
        "family",
        "read",
        "claim",
        "clear",
        "rejected rungs",
        "hb edges",
        "stale reads",
        "timeouts",
        "verdict",
    ]);
    for c in certs {
        t.row(vec![
            c.family.to_string(),
            format!("{:?}", c.plan.read),
            format!("{:?}", c.plan.claim),
            format!("{:?}", c.plan.clear),
            c.rejected.len().to_string(),
            c.hb_edges.to_string(),
            c.stale_reads.to_string(),
            c.timeouts.to_string(),
            if c.clean {
                "clean".to_string()
            } else {
                format!("{} VIOLATIONS", c.violations_at_plan)
            },
        ]);
    }
    t.render()
}

/// Renders the negative-control table.
#[must_use]
pub fn render_fixtures(outcomes: &[FixtureOutcome]) -> String {
    let mut t = Table::new(vec![
        "fixture",
        "flagged",
        "schedules tried",
        "firing seed",
        "violation",
    ]);
    for o in outcomes {
        t.row(vec![
            o.name.to_string(),
            if o.flagged() { "yes" } else { "NO" }.to_string(),
            o.schedules_tried.to_string(),
            o.seed.map_or_else(|| "-".to_string(), |s| s.to_string()),
            o.violation
                .as_ref()
                .map_or_else(|| "-".to_string(), |v| v.kind.name().to_string()),
        ]);
    }
    t.render()
}

/// Machine-readable metrics for the given certifications and fixture
/// outcomes (experiment `E17`).
#[must_use]
pub fn metrics(certs: &[FamilyCertification], fixtures: &[FixtureOutcome]) -> Vec<BenchMetric> {
    let mut out = Vec::new();
    for c in certs {
        for (name, value) in [
            ("read_level", ordering_level(c.plan.of(Site::Read))),
            ("claim_level", ordering_level(c.plan.of(Site::Claim))),
            ("clear_level", ordering_level(c.plan.of(Site::Clear))),
            ("rejected_rungs", c.rejected.len() as u64),
            ("violations_at_plan", c.violations_at_plan),
            ("hb_edges", c.hb_edges),
            ("stale_reads", c.stale_reads),
            ("timeouts", c.timeouts),
            ("clean", u64::from(c.clean)),
        ] {
            out.push(BenchMetric::new(
                "E17",
                c.family,
                format!("{}_{name}", c.family),
                value as f64,
                "count",
            ));
        }
    }
    for o in fixtures {
        for (name, value) in [
            ("flagged", u64::from(o.flagged())),
            ("schedules_tried", o.schedules_tried),
        ] {
            out.push(BenchMetric::new(
                "E17",
                o.name,
                format!("{}_{name}", o.name),
                value as f64,
                "count",
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_certifies_clean() {
        let certs = certifications(0xE17, 2);
        assert_eq!(certs.len(), FAMILIES.len());
        for c in &certs {
            assert!(c.clean, "{}: certification must verify clean", c.family);
            // No family should need more than SeqCst anywhere (trivially
            // true) and every rejected rung sits strictly below the
            // accepted ordering for its site.
            for r in &c.rejected {
                assert!(
                    ordering_level(r.ordering) < ordering_level(c.plan.of(r.site)),
                    "{}: rejected {:?} at {:?} but certified {:?}",
                    c.family,
                    r.ordering,
                    r.site,
                    c.plan.of(r.site)
                );
            }
        }
    }

    #[test]
    fn fixtures_are_flagged_and_tabulated() {
        let outcomes = fixture_outcomes(3);
        assert_eq!(outcomes.len(), 2);
        for o in &outcomes {
            assert!(o.flagged(), "{} must be flagged", o.name);
        }
        let table = render_fixtures(&outcomes);
        assert!(table.contains("relaxed-doorway-write"));
        assert!(table.contains("missing-hb-edge"));
    }

    #[test]
    fn render_and_metrics_cover_all_rows() {
        let certs = certifications(1, 2);
        let fixtures = fixture_outcomes(1);
        let table = render(&certs);
        for family in FAMILIES {
            assert!(table.contains(family));
        }
        let ms = metrics(&certs, &fixtures);
        assert_eq!(ms.len(), 9 * certs.len() + 2 * fixtures.len());
        assert!(ms.iter().all(|m| m.experiment == "E17"));
    }

    #[test]
    fn ordering_levels_are_ordered() {
        assert!(ordering_level(Ordering::Relaxed) < ordering_level(Ordering::Acquire));
        assert!(ordering_level(Ordering::Release) < ordering_level(Ordering::SeqCst));
    }
}
