//! The paper's correctness proofs, walked through as executable scenarios:
//! each test drives the simulator into the exact configuration a proof
//! reasons about and asserts the proof's intermediate claims on the real
//! implementation.

use anonreg::consensus::{AnonConsensus, ConsRecord};
use anonreg::mutex::{AnonMutex, Section};
use anonreg::renaming::AnonRenaming;
use anonreg::{Pid, View};
use anonreg_sim::prelude::*;
use anonreg_sim::{Simulation, StepOutcome};

fn pid(n: u64) -> Pid {
    Pid::new(n).unwrap()
}

/// Theorem 3.2's argument: once process i is in its critical section (all m
/// registers hold i), process j "might write once into one of the registers
/// overwriting the i value. Thus process j … will find that its identifier
/// appears in less than ⌈m/2⌉ of the entries (actually, the value j may
/// appear in at most one entry) and will change back to 0 the single entry
/// in which its identifier may appear. From that point on, as long as i is
/// in its critical section, the value i will appear in at least m − 1
/// entries."
#[test]
fn theorem_3_2_walkthrough() {
    let m = 5;
    let mut sim = Simulation::builder()
        .process(AnonMutex::new(pid(1), m).unwrap(), View::identity(m))
        .process(AnonMutex::new(pid(2), m).unwrap(), View::rotated(m, 2))
        .build()
        .unwrap();

    // Process j (slot 1) reads register 0 as zero and is poised to claim it
    // — the one write the proof allows it.
    assert_eq!(sim.step_to_cover(1).unwrap(), StepOutcome::Write);

    // Process i (slot 0) runs alone into its critical section: all m
    // registers hold i.
    let mut entered = false;
    for _ in 0..10_000 {
        sim.step(0).unwrap();
        if sim.machine(0).section() == Section::Critical {
            entered = true;
            break;
        }
    }
    assert!(entered);
    assert!(sim.registers().iter().all(|&v| v == 1));

    // j's delayed write lands: exactly one register now holds j.
    sim.apply_poised(1).unwrap();
    let i_count = sim.registers().iter().filter(|&&v| v == 1).count();
    assert_eq!(i_count, m - 1, "i appears in at least m-1 entries");

    // j completes its scan (claiming nothing: nothing reads 0) and its
    // view read; the proof says it must lose and zero its single entry.
    let mut j_wrote_zero = false;
    for _ in 0..10_000 {
        if sim.machine(1).section() != Section::Entry {
            break;
        }
        sim.step(1).unwrap();
        let j_count = sim.registers().iter().filter(|&&v| v == 2).count();
        assert!(j_count <= 1, "j never holds more than one register");
        if j_count == 0 && sim.registers().iter().filter(|&&v| v == 1).count() == m - 1 {
            j_wrote_zero = true;
            // From here on, i holds m-1 and j is in its waiting loop; stop
            // after a few confirmation steps.
            break;
        }
    }
    assert!(j_wrote_zero, "j resets its single entry to 0");
    // And i is still alone in the critical section.
    assert_eq!(sim.machine(0).section(), Section::Critical);
    assert_ne!(sim.machine(1).section(), Section::Critical);
}

/// Theorem 4.1's argument: after the first decision on v, "each one of the
/// other n − 1 processes might write into one of the registers overwriting
/// the (i, v) value. Thus, all the other processes … will find that v
/// appears in at least n of the val fields … and each one of them will
/// change its preference to v."
#[test]
fn theorem_4_1_walkthrough() {
    let n = 3;
    let m = 2 * n - 1; // 5 registers
    let mut sim = Simulation::builder()
        .process(AnonConsensus::new(pid(1), n, 7).unwrap(), View::identity(m))
        .process(
            AnonConsensus::new(pid(2), n, 8).unwrap(),
            View::rotated(m, 1),
        )
        .process(
            AnonConsensus::new(pid(3), n, 9).unwrap(),
            View::rotated(m, 3),
        )
        .build()
        .unwrap();

    // The two other processes each get poised on their first write —
    // together they can overwrite at most n − 1 = 2 registers later.
    assert_eq!(sim.step_to_cover(1).unwrap(), StepOutcome::Write);
    assert_eq!(sim.step_to_cover(2).unwrap(), StepOutcome::Write);

    // Process 1 runs alone and decides its input 7.
    let (_, halted) = sim.run_solo(0, 10_000).unwrap();
    assert!(halted);
    assert!(sim.machine(0).has_decided());
    assert_eq!(sim.machine(0).preference(), 7);
    assert!(sim
        .registers()
        .iter()
        .all(|r| *r == ConsRecord { id: 1, val: 7 }));

    // Both delayed writes land, overwriting two of the five registers.
    sim.apply_poised(1).unwrap();
    sim.apply_poised(2).unwrap();
    let sevens = sim.registers().iter().filter(|r| r.val == 7).count();
    assert_eq!(sevens, m - 2, "v remains in at least n of the val fields");
    assert!(sevens >= n);

    // Each other process performs one full scan (m reads) and must adopt 7.
    for proc in [1, 2] {
        for _ in 0..m {
            sim.step(proc).unwrap();
        }
        // The adoption happens when the machine processes the last read of
        // the scan; one more resume settles it.
        sim.step(proc).unwrap();
        assert_eq!(
            sim.machine(proc).preference(),
            7,
            "process {proc} adopts the decided value"
        );
    }

    // From that point on the only possible decision is 7: run both to
    // completion and confirm.
    for proc in [1, 2] {
        let (_, halted) = sim.run_solo(proc, 10_000).unwrap();
        assert!(halted);
        assert_eq!(sim.machine(proc).preference(), 7);
    }
}

/// Theorem 5.2's argument, one round: after process i is elected in round
/// 1 (its tuple fills all registers), any other process scanning during
/// round 1 finds i's value in at least n of the round-1 val fields and
/// adopts it — so no one else can win round 1.
#[test]
fn theorem_5_2_walkthrough() {
    let n = 2;
    let m = 2 * n - 1; // 3 registers
    let mut sim = Simulation::builder()
        .process(AnonRenaming::new(pid(1), n).unwrap(), View::identity(m))
        .process(AnonRenaming::new(pid(2), n).unwrap(), View::rotated(m, 1))
        .build()
        .unwrap();

    // Process 2 poised on its first write (its preference is itself, 2).
    assert_eq!(sim.step_to_cover(1).unwrap(), StepOutcome::Write);

    // Process 1 runs alone: wins round 1, takes name 1, halts.
    let (_, halted) = sim.run_solo(0, 10_000).unwrap();
    assert!(halted);
    assert!(sim.machine(0).has_name());

    // Process 2's delayed write lands (one register now carries pref 2),
    // then it scans: among round-1 entries, value 1 appears ≥ n = 2 times,
    // so it must adopt 1 as its round-1 preference — it cannot elect
    // itself.
    sim.apply_poised(1).unwrap();
    let ones = sim
        .registers()
        .iter()
        .filter(|r| r.round == 1 && r.val == 1)
        .count();
    assert!(ones >= n);
    let (_, halted) = sim.run_solo(1, 100_000).unwrap();
    assert!(halted);
    // Process 2's name is 2: round 1 already belonged to process 1.
    let names: Vec<u32> = sim
        .trace()
        .events()
        .map(|(_, _, e)| {
            let anonreg::renaming::RenamingEvent::Named(name) = e;
            *name
        })
        .collect();
    assert_eq!(names, vec![1, 2]);
}

/// Obstruction freedom is the *strongest achievable* progress guarantee:
/// the model checker confirms that Figure 2 admits fair non-deciding
/// executions (the FLP-shaped reality the paper cites in §4) — wait-freedom
/// is impossible, so the paper's choice of obstruction freedom is not an
/// implementation shortcut.
#[test]
fn consensus_admits_fair_nondeciding_executions() {
    let sim = Simulation::builder()
        .process(AnonConsensus::new(pid(1), 2, 1).unwrap(), View::identity(3))
        .process(
            AnonConsensus::new(pid(2), 2, 2).unwrap(),
            View::rotated(3, 1),
        )
        .build()
        .unwrap();
    let graph = Explorer::new(sim).run().unwrap();
    let livelock = graph.find_fair_livelock(
        |machine| !machine.has_decided(),
        |event| matches!(event, anonreg::consensus::ConsensusEvent::Decide(_)),
    );
    assert!(
        livelock.is_some(),
        "a fair schedule exists under which no one ever decides — \
         wait-free consensus from registers is impossible"
    );
}
