//! Plasticity: measuring the §1 claim that memory-anonymous algorithms can
//! have their scan orders *chosen* — e.g. to reduce contention — because
//! they are correct under every assignment of views.
//!
//! ```text
//! cargo run --release --example plasticity
//! ```
//!
//! Three view assignments for the Figure 1 mutex, same algorithm, same
//! machine code, only the register numbering differs per thread:
//!
//! * **identical** — both threads scan in the same order (maximum collision
//!   on the first registers);
//! * **opposed** — the second thread starts halfway around the ring
//!   (claims race toward each other);
//! * **random** — independently shuffled views (the honest default).
//!
//! The correctness of all three is the plasticity property; their relative
//! throughput is the performance observation. Run it on your machine — the
//! differences are real but hardware-dependent.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use anonreg::mutex::{AnonMutex, Section};
use anonreg_model::rng::Rng64;
use anonreg_model::{Pid, View};
use anonreg_runtime::{AnonymousMemory, Driver, PackedAtomicRegister};

const M: usize = 9;
const ENTRIES: u64 = 30_000;

fn run_assignment(label: &str, view_a: View, view_b: View) {
    let memory: AnonymousMemory<PackedAtomicRegister<u64>> = AnonymousMemory::new(M);
    let counter = AtomicU64::new(0);
    let mut drv_a = Driver::new(
        AnonMutex::new(Pid::new(1).unwrap(), M).unwrap(),
        memory.view(view_a),
    );
    let mut drv_b = Driver::new(
        AnonMutex::new(Pid::new(2).unwrap(), M).unwrap(),
        memory.view(view_b),
    );
    let start = Instant::now();
    std::thread::scope(|s| {
        for driver in [&mut drv_a, &mut drv_b] {
            s.spawn(|| {
                for _ in 0..ENTRIES {
                    driver.run_until(|m| m.section() == Section::Critical);
                    counter.fetch_add(1, Ordering::Relaxed);
                    driver.run_until(|m| m.section() == Section::Remainder);
                }
            });
        }
    });
    let elapsed = start.elapsed();
    assert_eq!(counter.into_inner(), 2 * ENTRIES);
    let ops = drv_a.report().ops() + drv_b.report().ops();
    println!(
        "{label:<10}  {elapsed:>12?}  {:>12.0} CS/s  {:>6.1} ops/CS",
        (2 * ENTRIES) as f64 / elapsed.as_secs_f64(),
        ops as f64 / (2 * ENTRIES) as f64,
    );
}

fn main() {
    println!("Figure 1 mutex, m = {M}, 2 threads x {ENTRIES} critical sections");
    println!(
        "{:<10}  {:>12}  {:>12}  {:>6}",
        "views", "elapsed", "throughput", "cost"
    );
    run_assignment("identical", View::identity(M), View::identity(M));
    run_assignment("opposed", View::rotated(M, 0), View::rotated(M, M / 2));
    let mut rng = Rng64::seed_from_u64(42);
    let memory_probe: AnonymousMemory<PackedAtomicRegister<u64>> = AnonymousMemory::new(M);
    let ra = memory_probe.random_view(&mut rng).permutation().clone();
    let rb = memory_probe.random_view(&mut rng).permutation().clone();
    run_assignment("random", ra, rb);
    println!(
        "\nall three assignments are correct — that is plasticity; their relative\n\
         cost is the §1 performance observation (hardware-dependent)."
    );
}
