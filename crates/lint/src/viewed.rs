//! Renumbering a machine's registers through a [`View`].
//!
//! In the memory-anonymous model a process never knows which physical
//! register its local index `j` denotes. [`Viewed`] makes that renaming a
//! machine-level transformation: it wraps any machine and routes every
//! `Read(j)` / `Write(j, _)` through a permutation. Because the paper's
//! correctness properties are view-independent, every lint verdict must
//! survive wrapping — which is exactly how the randomized property tests
//! use this type: lint a shipped algorithm under hundreds of random
//! permutations and assert the verdicts never change.

use anonreg_model::{Machine, Pid, Step, View};

/// A machine whose register numbering is composed with a permutation.
///
/// `Viewed { inner, view }` behaves exactly like `inner` except that local
/// index `j` becomes `view.physical(j)`. Wrapping with
/// [`View::identity`] is the identity transformation.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Viewed<M> {
    inner: M,
    view: View,
}

impl<M: Machine> Viewed<M> {
    /// Wraps `machine`, renumbering through `view`.
    ///
    /// # Panics
    ///
    /// Panics if `view.len() != machine.register_count()` — a partial
    /// renaming is not a permutation of the machine's registers.
    #[must_use]
    pub fn new(machine: M, view: View) -> Self {
        assert_eq!(
            view.len(),
            machine.register_count(),
            "view must permute exactly the machine's registers"
        );
        Viewed {
            inner: machine,
            view,
        }
    }

    /// The wrapped machine.
    #[must_use]
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The permutation applied to register indices.
    #[must_use]
    pub fn view(&self) -> &View {
        &self.view
    }
}

impl<M: Machine> Machine for Viewed<M> {
    type Value = M::Value;
    type Event = M::Event;

    fn pid(&self) -> Pid {
        self.inner.pid()
    }

    fn register_count(&self) -> usize {
        self.inner.register_count()
    }

    fn resume(&mut self, read: Option<Self::Value>) -> Step<Self::Value, Self::Event> {
        match self.inner.resume(read) {
            Step::Read(j) => Step::Read(self.view.physical(j)),
            Step::Write(j, v) => Step::Write(self.view.physical(j), v),
            Step::Event(e) => Step::Event(e),
            Step::Halt => Step::Halt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Writes 1 to register 0 and 2 to register 1, then halts.
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct TwoWrites {
        pid: Pid,
        at: usize,
    }

    impl Machine for TwoWrites {
        type Value = u64;
        type Event = ();

        fn pid(&self) -> Pid {
            self.pid
        }

        fn register_count(&self) -> usize {
            2
        }

        fn resume(&mut self, _read: Option<u64>) -> Step<u64, ()> {
            match self.at {
                0 | 1 => {
                    let step = Step::Write(self.at, self.at as u64 + 1);
                    self.at += 1;
                    step
                }
                _ => Step::Halt,
            }
        }
    }

    fn machine() -> TwoWrites {
        TwoWrites {
            pid: Pid::new(1).unwrap(),
            at: 0,
        }
    }

    #[test]
    fn identity_view_is_transparent() {
        let mut plain = machine();
        let mut viewed = Viewed::new(machine(), View::identity(2));
        for _ in 0..3 {
            assert_eq!(plain.resume(None), viewed.resume(None));
        }
    }

    #[test]
    fn rotation_renumbers_indices() {
        let mut viewed = Viewed::new(machine(), View::rotated(2, 1));
        assert_eq!(viewed.resume(None), Step::Write(1, 1));
        assert_eq!(viewed.resume(None), Step::Write(0, 2));
        assert_eq!(viewed.resume(None), Step::Halt);
    }

    #[test]
    #[should_panic(expected = "permute exactly")]
    fn size_mismatch_panics() {
        let _ = Viewed::new(machine(), View::identity(3));
    }
}
