//! E9 — real-thread throughput: memory-anonymous algorithms vs classic
//! named-register baselines, on real atomics under the OS scheduler.
//!
//! The paper's introduction argues memory-anonymous algorithms have
//! practical "plasticity" (each thread may scan registers in its own
//! order). This experiment quantifies the price of anonymity today:
//!
//! * **mutex** — Figure 1 (`m` anonymous registers, random views) vs
//!   Peterson (3 named registers): two threads, critical sections per
//!   second;
//! * **consensus** — Figure 2 (`2n − 1` anonymous registers, backoff) vs
//!   lock-based consensus (Bakery + decision register): wall time for all
//!   `n` threads to decide;
//! * **renaming** — Figure 3 (`2n − 1` wide anonymous registers) vs the
//!   Moir–Anderson splitter grid (`n(n+1)` named registers): wall time for
//!   all participants to acquire names.
//!
//! Expected shape: the named baselines win (they exploit the agreement the
//! anonymous model forbids — fewer registers for mutex, wait-freedom for
//! renaming), while the anonymous algorithms stay within small constant
//! factors at low process counts and degrade as `n` grows (their register
//! arrays and scan lengths grow with `n`). Absolute numbers are
//! machine-dependent.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use anonreg::baseline::{LockConsensus, Peterson, SplitterRenaming};
use anonreg::consensus::ConsensusEvent;
use anonreg::mutex::Section;
use anonreg::ordered::OrderedMutex;
use anonreg::renaming::RenamingEvent;
use anonreg_model::{Pid, View};
use anonreg_runtime::{
    AnonymousConsensus, AnonymousMemory, AnonymousMutex, AnonymousRenaming, Driver,
    HybridAnonymousMutex, PackedAtomicRegister,
};

use crate::benchjson::{slug, BenchMetric};
use crate::table::Table;

/// One throughput/latency measurement.
#[derive(Clone, Debug)]
pub struct Row {
    /// Experiment family (`mutex`, `consensus`, `renaming`).
    pub family: &'static str,
    /// Algorithm measured.
    pub algo: String,
    /// Thread count.
    pub threads: usize,
    /// Registers used.
    pub registers: usize,
    /// Completed operations (critical sections / decisions / names).
    pub completed: u64,
    /// Wall time.
    pub elapsed: Duration,
}

impl Row {
    /// Operations per second.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        self.completed as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

fn pid(n: u64) -> Pid {
    Pid::new(n).unwrap()
}

/// Figure 1 mutex: two threads, `entries` critical sections each.
#[must_use]
pub fn anonymous_mutex(m: usize, entries: u64) -> Row {
    let lock = AnonymousMutex::new(m).expect("odd m >= 3");
    let mut a = lock.handle(pid(1)).unwrap();
    let mut b = lock.handle(pid(2)).unwrap();
    let counter = AtomicUsize::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for handle in [&mut a, &mut b] {
            s.spawn(|| {
                for _ in 0..entries {
                    let _guard = handle.enter();
                    counter.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    Row {
        family: "mutex",
        algo: format!("anonymous (Fig.1, m={m})"),
        threads: 2,
        registers: m,
        completed: counter.load(Ordering::Relaxed) as u64,
        elapsed: start.elapsed(),
    }
}

/// The §8 hybrid mutex (`m` anonymous + 1 named): two threads.
#[must_use]
pub fn hybrid_mutex(m: usize, entries: u64) -> Row {
    let lock = HybridAnonymousMutex::new(m).expect("m >= 2");
    let mut a = lock.handle(pid(1)).unwrap();
    let mut b = lock.handle(pid(2)).unwrap();
    let counter = AtomicUsize::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for handle in [&mut a, &mut b] {
            s.spawn(|| {
                for _ in 0..entries {
                    let _guard = handle.enter();
                    counter.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    Row {
        family: "mutex",
        algo: format!("hybrid §8 ({m} anon + 1 named)"),
        threads: 2,
        registers: m + 1,
        completed: counter.load(Ordering::Relaxed) as u64,
        elapsed: start.elapsed(),
    }
}

/// The §2 ordered mutex (identifier-order tie-break): two threads.
#[must_use]
pub fn ordered_mutex(m: usize, entries: u64) -> Row {
    let memory: AnonymousMemory<PackedAtomicRegister<u64>> = AnonymousMemory::new(m);
    let counter = AtomicUsize::new(0);
    let mut drv_a = Driver::new(
        OrderedMutex::new(pid(1), m).expect("m >= 2"),
        memory.view(View::identity(m)),
    );
    let mut drv_b = Driver::new(
        OrderedMutex::new(pid(2), m).expect("m >= 2"),
        memory.view(View::rotated(m, m / 2)),
    );
    let start = Instant::now();
    std::thread::scope(|s| {
        for driver in [&mut drv_a, &mut drv_b] {
            let counter = &counter;
            s.spawn(move || {
                for _ in 0..entries {
                    driver.run_until(|mach| mach.section() == Section::Critical);
                    counter.fetch_add(1, Ordering::Relaxed);
                    driver.run_until(|mach| mach.section() == Section::Remainder);
                }
            });
        }
    });
    Row {
        family: "mutex",
        algo: format!("ordered §2 (m={m})"),
        threads: 2,
        registers: m,
        completed: counter.load(Ordering::Relaxed) as u64,
        elapsed: start.elapsed(),
    }
}

/// Peterson baseline: two threads, `entries` critical sections each.
#[must_use]
pub fn peterson_mutex(entries: u64) -> Row {
    let memory: AnonymousMemory<PackedAtomicRegister<u64>> = AnonymousMemory::new(3);
    let counter = AtomicUsize::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for slot in 0..2usize {
            let view = memory.view(View::identity(3));
            let counter = &counter;
            s.spawn(move || {
                let machine = Peterson::new(pid(slot as u64 + 1), slot).unwrap();
                let mut driver = Driver::new(machine, view);
                for _ in 0..entries {
                    driver.run_until(|mach| mach.section() == Section::Critical);
                    counter.fetch_add(1, Ordering::Relaxed);
                    driver.run_until(|mach| mach.section() == Section::Remainder);
                }
            });
        }
    });
    Row {
        family: "mutex",
        algo: "Peterson (named, 3 regs)".into(),
        threads: 2,
        registers: 3,
        completed: counter.load(Ordering::Relaxed) as u64,
        elapsed: start.elapsed(),
    }
}

/// Figure 2 consensus: `n` threads decide once per repetition.
#[must_use]
pub fn anonymous_consensus(n: usize, reps: u64) -> Row {
    let start = Instant::now();
    let mut completed = 0;
    for rep in 0..reps {
        let consensus = AnonymousConsensus::new(n).unwrap();
        let decided: Vec<u64> = std::thread::scope(|s| {
            let joins: Vec<_> = (0..n)
                .map(|i| {
                    let h = consensus.handle(pid(1 + i as u64 + rep * 64)).unwrap();
                    s.spawn(move || h.propose(i as u64 + 1).unwrap())
                })
                .collect();
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });
        assert!(decided.windows(2).all(|w| w[0] == w[1]));
        completed += n as u64;
    }
    Row {
        family: "consensus",
        algo: format!("anonymous (Fig.2, {} regs)", 2 * n - 1),
        threads: n,
        registers: 2 * n - 1,
        completed,
        elapsed: start.elapsed(),
    }
}

/// Lock-based consensus baseline (Bakery + decision register).
#[must_use]
pub fn lock_consensus(n: usize, reps: u64) -> Row {
    let start = Instant::now();
    let mut completed = 0;
    for rep in 0..reps {
        let memory: AnonymousMemory<PackedAtomicRegister<u64>> = AnonymousMemory::new(2 * n + 1);
        let decided: Vec<u64> = std::thread::scope(|s| {
            let joins: Vec<_> = (0..n)
                .map(|slot| {
                    let view = memory.view(View::identity(2 * n + 1));
                    s.spawn(move || {
                        let machine = LockConsensus::new(
                            pid(1 + slot as u64 + rep * 64),
                            slot,
                            n,
                            slot as u64 + 1,
                        )
                        .unwrap();
                        let mut driver = Driver::new(machine, view);
                        match driver.run_until_event() {
                            Some(ConsensusEvent::Decide(v)) => v,
                            None => unreachable!("lock consensus decides"),
                        }
                    })
                })
                .collect();
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });
        assert!(decided.windows(2).all(|w| w[0] == w[1]));
        completed += n as u64;
    }
    Row {
        family: "consensus",
        algo: format!("lock-based (named, {} regs)", 2 * n + 1),
        threads: n,
        registers: 2 * n + 1,
        completed,
        elapsed: start.elapsed(),
    }
}

/// Figure 3 renaming: `n` threads acquire names once per repetition.
#[must_use]
pub fn anonymous_renaming(n: usize, reps: u64) -> Row {
    let start = Instant::now();
    let mut completed = 0;
    for rep in 0..reps {
        let renaming = AnonymousRenaming::new(n).unwrap();
        let mut names: Vec<u32> = std::thread::scope(|s| {
            let joins: Vec<_> = (0..n)
                .map(|i| {
                    let h = renaming.handle(pid(1 + i as u64 + rep * 64)).unwrap();
                    s.spawn(move || h.acquire())
                })
                .collect();
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });
        names.sort_unstable();
        assert_eq!(names, (1..=n as u32).collect::<Vec<_>>());
        completed += n as u64;
    }
    Row {
        family: "renaming",
        algo: format!("anonymous (Fig.3, {} wide regs)", 2 * n - 1),
        threads: n,
        registers: 2 * n - 1,
        completed,
        elapsed: start.elapsed(),
    }
}

/// Moir–Anderson splitter-grid baseline.
#[must_use]
pub fn splitter_renaming(n: usize, reps: u64) -> Row {
    let registers = 2 * SplitterRenaming::splitters(n);
    let start = Instant::now();
    let mut completed = 0;
    for rep in 0..reps {
        let memory: AnonymousMemory<PackedAtomicRegister<u64>> = AnonymousMemory::new(registers);
        let names: Vec<u32> = std::thread::scope(|s| {
            let joins: Vec<_> = (0..n)
                .map(|i| {
                    let view = memory.view(View::identity(registers));
                    s.spawn(move || {
                        let machine =
                            SplitterRenaming::new(pid(1 + i as u64 + rep * 64), n).unwrap();
                        let mut driver = Driver::new(machine, view);
                        match driver.run_until_event() {
                            Some(RenamingEvent::Named(name)) => name,
                            None => unreachable!("splitters always name"),
                        }
                    })
                })
                .collect();
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), n, "splitter names must be distinct");
        completed += n as u64;
    }
    Row {
        family: "renaming",
        algo: format!("splitter grid (named, {registers} regs)"),
        threads: n,
        registers,
        completed,
        elapsed: start.elapsed(),
    }
}

/// The full E9 table at the given scale.
#[must_use]
pub fn rows(mutex_entries: u64, consensus_reps: u64, renaming_reps: u64) -> Vec<Row> {
    let mut out = Vec::new();
    for m in [3, 5, 9, 15] {
        out.push(anonymous_mutex(m, mutex_entries));
    }
    for m in [2, 4] {
        out.push(hybrid_mutex(m, mutex_entries));
        out.push(ordered_mutex(m, mutex_entries));
    }
    out.push(peterson_mutex(mutex_entries));
    for n in [2, 4, 8] {
        out.push(anonymous_consensus(n, consensus_reps));
        out.push(lock_consensus(n, consensus_reps));
    }
    for n in [2, 4, 8] {
        out.push(anonymous_renaming(n, renaming_reps));
        out.push(splitter_renaming(n, renaming_reps));
    }
    out
}

/// Renders the table for the given rows.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(vec![
        "family",
        "algorithm",
        "threads",
        "regs",
        "ops",
        "elapsed",
        "ops/s",
    ]);
    for r in rows {
        t.row(vec![
            r.family.into(),
            r.algo.clone(),
            r.threads.to_string(),
            r.registers.to_string(),
            r.completed.to_string(),
            format!("{:?}", r.elapsed),
            format!("{:.0}", r.throughput()),
        ]);
    }
    t.render()
}

/// Metric family for one measurement: the classic named-register
/// algorithms report under `baselines`; the §8 hybrid and §2 ordered
/// variants under their own families; everything else under the row's
/// algorithm family.
fn metric_family(row: &Row) -> &'static str {
    if row.algo.contains("named") {
        "baselines"
    } else if row.algo.starts_with("hybrid") {
        "hybrid"
    } else if row.algo.starts_with("ordered") {
        "ordered"
    } else {
        row.family
    }
}

/// Machine-readable metrics for the given rows.
#[must_use]
pub fn metrics(rows: &[Row]) -> Vec<BenchMetric> {
    let mut out = Vec::new();
    for r in rows {
        let family = metric_family(r);
        let base = format!("{}_t{}", slug(&r.algo), r.threads);
        out.push(BenchMetric::new(
            "E9",
            family,
            format!("{base}_completed"),
            r.completed as f64,
            "ops",
        ));
        out.push(BenchMetric::new(
            "E9",
            family,
            format!("{base}_throughput"),
            r.throughput(),
            "ops_per_s",
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_measurements_complete() {
        let anon = anonymous_mutex(3, 50);
        assert_eq!(anon.completed, 100);
        let named = peterson_mutex(50);
        assert_eq!(named.completed, 100);
        assert_eq!(hybrid_mutex(2, 50).completed, 100);
        assert_eq!(ordered_mutex(2, 50).completed, 100);
    }

    #[test]
    fn consensus_measurements_complete() {
        assert_eq!(anonymous_consensus(3, 3).completed, 9);
        assert_eq!(lock_consensus(3, 3).completed, 9);
    }

    #[test]
    fn renaming_measurements_complete() {
        assert_eq!(anonymous_renaming(3, 3).completed, 9);
        assert_eq!(splitter_renaming(3, 3).completed, 9);
    }

    #[test]
    fn throughput_is_positive() {
        let row = anonymous_mutex(3, 10);
        assert!(row.throughput() > 0.0);
    }
}
