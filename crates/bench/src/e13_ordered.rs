//! E13 — the arbitrary-comparisons table (§2 variant).
//!
//! Theorem 3.1's odd-`m` requirement is proved for the *symmetric with
//! equality* model. Under the paper's other variant — *symmetric with
//! arbitrary comparisons* (§2) — identifier order can break the tie, and
//! `anonreg::ordered` does so with zero extra registers. This table mirrors
//! E1 for that algorithm: the expected column is "safe+live" for every
//! `m ≥ 2`, even values included.

use anonreg::mutex::{MutexEvent, Section};
use anonreg::ordered::OrderedMutex;
use anonreg::{Pid, View};
use anonreg_sim::prelude::*;
use anonreg_sim::Simulation;

use crate::benchjson::{flag, BenchMetric};
use crate::table::Table;

/// One row of the ordered-model table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Register count.
    pub m: usize,
    /// Rotation views checked (exhaustive per view).
    pub views_checked: usize,
    /// Largest reachable state count among the checked views.
    pub max_states: usize,
    /// Mutual exclusion held in every reachable state of every view.
    pub safe: bool,
    /// No fair livelock exists in any checked view.
    pub live: bool,
}

impl Row {
    /// The ordered-model claim: safe and live for every `m ≥ 2`.
    #[must_use]
    pub fn verified(&self) -> bool {
        self.safe && self.live
    }
}

/// Runs the ordered-model experiment for `m` in `2..=max_m`.
#[must_use]
pub fn rows(max_m: usize) -> Vec<Row> {
    (2..=max_m)
        .map(|m| {
            let mut safe = true;
            let mut live = true;
            let mut max_states = 0;
            for shift in 0..m {
                let sim = Simulation::builder()
                    .process(
                        OrderedMutex::new(Pid::new(1).unwrap(), m).expect("m >= 2"),
                        View::identity(m),
                    )
                    .process(
                        OrderedMutex::new(Pid::new(2).unwrap(), m).expect("m >= 2"),
                        View::rotated(m, shift),
                    )
                    .build()
                    .expect("uniform configuration");
                let graph = Explorer::new(sim)
                    .max_states(8_000_000)
                    .crashes(false)
                    .run()
                    .expect("ordered-mutex state spaces fit the limit");
                max_states = max_states.max(graph.state_count());
                if graph
                    .find_state(|s| {
                        s.machines()
                            .filter(|mach| mach.section() == Section::Critical)
                            .count()
                            >= 2
                    })
                    .is_some()
                {
                    safe = false;
                }
                if graph
                    .find_fair_livelock(
                        |mach| mach.section() == Section::Entry,
                        |event| *event == MutexEvent::Enter,
                    )
                    .is_some()
                {
                    live = false;
                }
            }
            Row {
                m,
                views_checked: m,
                max_states,
                safe,
                live,
            }
        })
        .collect()
}

/// Renders the table for the given rows.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(vec![
        "m",
        "views",
        "max states",
        "mutual excl",
        "deadlock-free",
        "equality-only model (Fig.1)",
    ]);
    for r in rows {
        t.row(vec![
            r.m.to_string(),
            r.views_checked.to_string(),
            r.max_states.to_string(),
            if r.safe { "HOLDS" } else { "VIOLATED" }.into(),
            if r.live { "HOLDS" } else { "LIVELOCK" }.into(),
            if r.m % 2 == 0 { "livelocks" } else { "works" }.into(),
        ]);
    }
    t.render()
}

/// Machine-readable metrics for the given rows.
#[must_use]
pub fn metrics(rows: &[Row]) -> Vec<BenchMetric> {
    let mut out = Vec::new();
    for r in rows {
        let m = r.m;
        out.push(BenchMetric::new(
            "E13",
            "ordered",
            format!("m{m}_max_states"),
            r.max_states as f64,
            "states",
        ));
        out.push(BenchMetric::new(
            "E13",
            "ordered",
            format!("m{m}_verified"),
            flag(r.verified()),
            "bool",
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_and_odd_m_both_verify() {
        for row in rows(3) {
            assert!(row.verified(), "m={}: {row:?}", row.m);
        }
    }
}
