//! E12 — the starvation table (§8 open-problem context).
//!
//! The paper proves Figure 1 deadlock-free and lists starvation-free
//! memory-anonymous mutual exclusion as open. This table separates the two
//! properties mechanically: for each algorithm, the checker searches for a
//! *fair starvation* schedule — the victim steps forever without entering
//! while the other process enters again and again. Deadlock-freedom permits
//! such schedules; starvation-freedom forbids them.

use anonreg::baseline::{Bakery, Peterson};
use anonreg::hybrid::{named_view, HybridMutex};
use anonreg::mutex::{AnonMutex, MutexEvent, Section};
use anonreg::ordered::OrderedMutex;
use anonreg::{Machine, Pid, View};
use anonreg_sim::prelude::*;
use anonreg_sim::Simulation;

use crate::benchjson::{flag, slug, BenchMetric};
use crate::table::Table;

/// One row of the starvation table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Algorithm analyzed.
    pub algo: &'static str,
    /// Register configuration description.
    pub registers: String,
    /// Whether a fair starvation schedule exists for some victim.
    pub starvable: bool,
    /// The expected verdict.
    pub expected_starvable: bool,
}

impl Row {
    /// Did the analysis match the expectation?
    #[must_use]
    pub fn matches(&self) -> bool {
        self.starvable == self.expected_starvable
    }
}

fn starvable<M>(graph: &StateGraph<M>, section: impl Fn(&M) -> Section) -> bool
where
    M: Machine<Event = MutexEvent> + Eq + std::hash::Hash,
{
    (0..2).any(|victim| {
        graph
            .find_fair_starvation(
                victim,
                |mach| section(mach) == Section::Entry,
                |event| *event == MutexEvent::Enter,
            )
            .is_some()
    })
}

/// Runs the starvation analysis across the mutual exclusion algorithms.
#[must_use]
pub fn rows() -> Vec<Row> {
    let pid = |n: u64| Pid::new(n).unwrap();
    let mut out = Vec::new();

    // Figure 1, m = 3 (the paper's smallest correct instance).
    let sim = Simulation::builder()
        .process(AnonMutex::new(pid(1), 3).unwrap(), View::identity(3))
        .process(AnonMutex::new(pid(2), 3).unwrap(), View::identity(3))
        .build()
        .unwrap();
    let graph = Explorer::new(sim).run().unwrap();
    out.push(Row {
        algo: "Figure 1 (anonymous)",
        registers: "3 anonymous".into(),
        starvable: starvable(&graph, AnonMutex::section),
        expected_starvable: true,
    });

    // Hybrid, m = 2 + 1 named.
    let sim = Simulation::builder()
        .process(
            HybridMutex::new(pid(1), 2).unwrap(),
            named_view(2, vec![0, 1]).unwrap(),
        )
        .process(
            HybridMutex::new(pid(2), 2).unwrap(),
            named_view(2, vec![0, 1]).unwrap(),
        )
        .build()
        .unwrap();
    let graph = Explorer::new(sim).run().unwrap();
    out.push(Row {
        algo: "Hybrid (§8)",
        registers: "2 anonymous + 1 named".into(),
        starvable: starvable(&graph, HybridMutex::section),
        expected_starvable: true,
    });

    // Ordered (§2 arbitrary comparisons): the smaller id always yields, so
    // it starves whenever the larger keeps competing.
    let sim = Simulation::builder()
        .process(OrderedMutex::new(pid(1), 2).unwrap(), View::identity(2))
        .process(OrderedMutex::new(pid(2), 2).unwrap(), View::identity(2))
        .build()
        .unwrap();
    let graph = Explorer::new(sim).run().unwrap();
    out.push(Row {
        algo: "Ordered (§2 comparisons)",
        registers: "2 anonymous".into(),
        starvable: starvable(&graph, OrderedMutex::section),
        expected_starvable: true,
    });

    // Peterson (named): starvation-free by bounded bypass.
    let sim = Simulation::builder()
        .process_identity(Peterson::new(pid(1), 0).unwrap())
        .process_identity(Peterson::new(pid(2), 1).unwrap())
        .build()
        .unwrap();
    let graph = Explorer::new(sim).run().unwrap();
    out.push(Row {
        algo: "Peterson (named)",
        registers: "3 named".into(),
        starvable: starvable(&graph, Peterson::section),
        expected_starvable: false,
    });

    // Bakery (named): FCFS. Bounded cycles keep the state space finite.
    let sim = Simulation::builder()
        .process_identity(Bakery::new(pid(1), 0, 2).unwrap().with_cycles(3))
        .process_identity(Bakery::new(pid(2), 1, 2).unwrap().with_cycles(3))
        .build()
        .unwrap();
    let graph = Explorer::new(sim)
        .max_states(4_000_000)
        .crashes(false)
        .run()
        .unwrap();
    out.push(Row {
        algo: "Bakery (named)",
        registers: "4 named".into(),
        starvable: starvable(&graph, Bakery::section),
        expected_starvable: false,
    });

    out
}

/// Renders the table for the given rows.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(vec![
        "algorithm",
        "registers",
        "fair starvation",
        "expected",
        "match",
    ]);
    for r in rows {
        t.row(vec![
            r.algo.into(),
            r.registers.clone(),
            if r.starvable {
                "EXISTS (schedule found)"
            } else {
                "none (starvation-free)"
            }
            .into(),
            if r.expected_starvable {
                "starvable"
            } else {
                "starvation-free"
            }
            .into(),
            if r.matches() { "yes" } else { "NO" }.into(),
        ]);
    }
    t.render()
}

/// Machine-readable metrics for the given rows. The named baselines
/// (Peterson, Bakery) report under `baselines`; the hybrid and ordered
/// variants under their own families; Figure 1 under `mutex`.
#[must_use]
pub fn metrics(rows: &[Row]) -> Vec<BenchMetric> {
    let mut out = Vec::new();
    for r in rows {
        let family = if r.algo.contains("named") {
            "baselines"
        } else if r.algo.starts_with("Hybrid") {
            "hybrid"
        } else if r.algo.starts_with("Ordered") {
            "ordered"
        } else {
            "mutex"
        };
        let base = slug(r.algo);
        out.push(BenchMetric::new(
            "E12",
            family,
            format!("{base}_starvable"),
            flag(r.starvable),
            "bool",
        ));
        out.push(BenchMetric::new(
            "E12",
            family,
            format!("{base}_matches"),
            flag(r.matches()),
            "bool",
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_verdicts_match_theory() {
        for row in rows() {
            assert!(row.matches(), "{row:?}");
        }
    }
}
