//! Bench-to-bench regression diffing for the `BENCH_*.json` artifacts.
//!
//! Every experiment can emit machine-readable metrics
//! ([`crate::benchjson`]); CI archives them as JSONL artifacts. This
//! module compares two such files — a committed baseline and a fresh
//! run — and classifies every shared metric by its unit:
//!
//! * `ms` is **lower-better**: the fresh value may grow by at most
//!   `max_time_ratio` (default 1.5×) before it counts as a regression.
//! * `x` and `ops_per_s` are **higher-better**: the fresh value may
//!   shrink to no less than `1 / max_drop_ratio` of the baseline.
//! * counting units (`states`, `edges`, `bool`, …) must match
//!   **exactly** for parity runs — a parallel exploration that loses
//!   states is a bug, not noise. Runs that *declare* a state-space
//!   reduction (a symmetry mode other than `off`, or POR — detected by
//!   the [`Thresholds::reduced_markers`] name segments the experiment
//!   naming schemes embed) compare `states`/`edges` **lower-better**
//!   instead: a tighter reduction is an improvement, only a *grown*
//!   count regresses. Exact-match semantics would flag every reduction
//!   improvement as a failure.
//!
//! `--require NAME=FLOOR` adds absolute floors on fresh metrics (suffix
//! match, so `reduction=2` covers every `*_reduction`), which is how
//! the E16 CI gate expresses "full symmetry still reduces ≥ 2×" without
//! re-deriving thresholds inside the workflow. `check bench-diff` exits
//! nonzero iff [`Diff::regressed`].

use std::collections::BTreeMap;

use anonreg_obs::Json;

use crate::table::Table;

/// One metric parsed back from a bench JSONL file.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedMetric {
    /// Experiment id, e.g. `E16`.
    pub experiment: String,
    /// Metric name, e.g. `consensus_n3_r2_full_t4_reduction`.
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// Unit string — decides the comparison direction.
    pub unit: String,
}

/// How a shared metric compared against the baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Within threshold (or an improvement).
    Ok,
    /// Out of threshold in the losing direction, or an exact-match
    /// unit that changed, or a `--require` floor violated.
    Regressed,
}

/// One row of the comparison.
#[derive(Clone, Debug)]
pub struct DiffRow {
    /// `experiment/name` key.
    pub key: String,
    /// Baseline value (`None` for metrics only in the fresh file).
    pub before: Option<f64>,
    /// Fresh value (`None` for metrics only in the baseline).
    pub after: Option<f64>,
    /// Unit of the metric.
    pub unit: String,
    /// after/before where both sides exist and before is nonzero.
    pub ratio: Option<f64>,
    /// The comparison verdict.
    pub verdict: Verdict,
    /// Human reason when regressed or skipped.
    pub note: String,
}

/// Comparison thresholds.
#[derive(Clone, Debug)]
pub struct Thresholds {
    /// Max allowed `after/before` for lower-better (`ms`) metrics.
    pub max_time_ratio: f64,
    /// Max allowed `before/after` for higher-better (`x`, `ops_per_s`)
    /// metrics.
    pub max_drop_ratio: f64,
    /// Metrics present in only one file are tolerated instead of
    /// counting as regressions.
    pub allow_missing: bool,
    /// Absolute floors on fresh metrics, matched by name suffix.
    pub require: Vec<(String, f64)>,
    /// Underscore-delimited name segments that mark a run as using a
    /// state-space reduction. `states`/`edges` metrics whose name
    /// contains one of these segments compare lower-better; all other
    /// counting metrics stay exact-match. Clear this to restore
    /// exact-count semantics everywhere (`--exact-counts`).
    pub reduced_markers: Vec<String>,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            max_time_ratio: 1.5,
            max_drop_ratio: 1.5,
            allow_missing: false,
            require: Vec::new(),
            reduced_markers: ["registers", "full", "por"].map(str::to_string).to_vec(),
        }
    }
}

/// The full comparison result.
#[derive(Clone, Debug)]
pub struct Diff {
    /// Every compared (or missing) metric, regressions first.
    pub rows: Vec<DiffRow>,
}

impl Diff {
    /// `true` if any row regressed — the exit-code signal.
    #[must_use]
    pub fn regressed(&self) -> bool {
        self.rows.iter().any(|r| r.verdict == Verdict::Regressed)
    }

    /// Count of regressed rows.
    #[must_use]
    pub fn regressions(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.verdict == Verdict::Regressed)
            .count()
    }
}

/// Parses bench JSONL text into metrics, ignoring non-`bench` records
/// (meta lines, v2 stream records, blank lines).
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn parse_bench_jsonl(text: &str) -> Result<Vec<ParsedMetric>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let json = Json::parse(line).map_err(|e| format!("line {}: {e:?}", i + 1))?;
        if json.get("t").and_then(Json::as_str) != Some("bench") {
            continue;
        }
        let field = |key: &str| -> Result<String, String> {
            json.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("line {}: bench record missing `{key}`", i + 1))
        };
        let value = json
            .get("value")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("line {}: bench record missing numeric `value`", i + 1))?;
        out.push(ParsedMetric {
            experiment: field("experiment")?,
            name: field("name")?,
            value,
            unit: field("unit")?,
        });
    }
    Ok(out)
}

fn is_lower_better(unit: &str) -> bool {
    unit == "ms" || unit == "ns" || unit == "s"
}

fn is_higher_better(unit: &str) -> bool {
    unit == "x" || unit == "ops_per_s"
}

/// `true` when the metric's name declares a state-space reduction: one
/// of its underscore-delimited segments is a reduction marker. Segment
/// matching (not substring) keeps `full` from hitting `fullness` etc.
fn is_reduced_run(name: &str, markers: &[String]) -> bool {
    name.split('_').any(|seg| markers.iter().any(|m| m == seg))
}

/// Compares fresh metrics against a baseline under the thresholds.
#[must_use]
pub fn diff(before: &[ParsedMetric], after: &[ParsedMetric], thresholds: &Thresholds) -> Diff {
    let key = |m: &ParsedMetric| format!("{}/{}", m.experiment, m.name);
    let before_map: BTreeMap<String, &ParsedMetric> = before.iter().map(|m| (key(m), m)).collect();
    let after_map: BTreeMap<String, &ParsedMetric> = after.iter().map(|m| (key(m), m)).collect();
    let mut keys: Vec<&String> = before_map.keys().chain(after_map.keys()).collect();
    keys.sort();
    keys.dedup();

    let mut rows = Vec::new();
    for k in keys {
        let b = before_map.get(k).copied();
        let a = after_map.get(k).copied();
        let row = match (b, a) {
            (Some(b), Some(a)) => compare(k, b, a, thresholds),
            (Some(b), None) => missing_row(k, Some(b.value), None, &b.unit, thresholds, "after"),
            (None, Some(a)) => missing_row(k, None, Some(a.value), &a.unit, thresholds, "before"),
            (None, None) => unreachable!("key came from one of the maps"),
        };
        rows.push(row);
    }
    for (suffix, floor) in &thresholds.require {
        let hits: Vec<&ParsedMetric> = after
            .iter()
            .filter(|m| m.name.ends_with(suffix.as_str()))
            .collect();
        if hits.is_empty() {
            rows.push(DiffRow {
                key: format!("require:{suffix}"),
                before: None,
                after: None,
                unit: String::new(),
                ratio: None,
                verdict: Verdict::Regressed,
                note: format!("no fresh metric matches required suffix `{suffix}`"),
            });
        }
        for m in hits {
            if m.value < *floor {
                rows.push(DiffRow {
                    key: format!("require:{}/{}", m.experiment, m.name),
                    before: None,
                    after: Some(m.value),
                    unit: m.unit.clone(),
                    ratio: None,
                    verdict: Verdict::Regressed,
                    note: format!("{:.3} below required floor {floor}", m.value),
                });
            }
        }
    }
    rows.sort_by_key(|r| r.verdict == Verdict::Ok);
    Diff { rows }
}

fn missing_row(
    key: &str,
    before: Option<f64>,
    after: Option<f64>,
    unit: &str,
    thresholds: &Thresholds,
    side: &str,
) -> DiffRow {
    let (verdict, note) = if thresholds.allow_missing {
        (Verdict::Ok, format!("missing in {side} (allowed)"))
    } else {
        (Verdict::Regressed, format!("missing in {side}"))
    };
    DiffRow {
        key: key.to_string(),
        before,
        after,
        unit: unit.to_string(),
        ratio: None,
        verdict,
        note,
    }
}

fn compare(key: &str, b: &ParsedMetric, a: &ParsedMetric, thresholds: &Thresholds) -> DiffRow {
    let ratio = (b.value.abs() > f64::EPSILON).then(|| a.value / b.value);
    let mut verdict = Verdict::Ok;
    let mut note = String::new();
    if b.unit != a.unit {
        verdict = Verdict::Regressed;
        note = format!("unit changed {} -> {}", b.unit, a.unit);
    } else if is_lower_better(&a.unit) {
        if let Some(r) = ratio {
            if r > thresholds.max_time_ratio {
                verdict = Verdict::Regressed;
                note = format!("{r:.2}x slower (limit {:.2}x)", thresholds.max_time_ratio);
            }
        }
    } else if is_higher_better(&a.unit) {
        if a.value < b.value / thresholds.max_drop_ratio {
            verdict = Verdict::Regressed;
            note = format!(
                "dropped {:.3} -> {:.3} (limit {:.2}x)",
                b.value, a.value, thresholds.max_drop_ratio
            );
        }
    } else if matches!(a.unit.as_str(), "states" | "edges")
        && is_reduced_run(&a.name, &thresholds.reduced_markers)
    {
        // A reduction-mode run may legitimately visit fewer states when
        // the reduction tightens; only a grown count regresses.
        if a.value > b.value {
            verdict = Verdict::Regressed;
            note = format!(
                "reduced run grew its `{}` count {} -> {}",
                a.unit, b.value, a.value
            );
        } else if a.value < b.value {
            note = "reduction tightened (lower-better)".to_string();
        }
    } else if (a.value - b.value).abs() > f64::EPSILON {
        verdict = Verdict::Regressed;
        note = format!(
            "exact-match unit `{}` changed {} -> {}",
            a.unit, b.value, a.value
        );
    }
    DiffRow {
        key: key.to_string(),
        before: Some(b.value),
        after: Some(a.value),
        unit: a.unit.clone(),
        ratio,
        verdict,
        note,
    }
}

/// Renders the diff as a table (regressions first).
#[must_use]
pub fn render(diff: &Diff) -> String {
    let fmt = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |v| format!("{v:.3}"));
    let mut t = Table::new(vec![
        "metric", "before", "after", "ratio", "unit", "verdict",
    ]);
    for r in &diff.rows {
        t.row(vec![
            r.key.clone(),
            fmt(r.before),
            fmt(r.after),
            r.ratio
                .map_or_else(|| "-".to_string(), |x| format!("{x:.2}x")),
            r.unit.clone(),
            match r.verdict {
                Verdict::Ok => "ok".to_string(),
                Verdict::Regressed => format!("REGRESSED: {}", r.note),
            },
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchjson::{to_jsonl, BenchMetric};

    fn metric(name: &str, value: f64, unit: &'static str) -> ParsedMetric {
        ParsedMetric {
            experiment: "E16".to_string(),
            name: name.to_string(),
            value,
            unit: unit.to_string(),
        }
    }

    #[test]
    fn identical_inputs_have_no_regressions() {
        let m = vec![
            metric("a_time", 100.0, "ms"),
            metric("a_states", 5000.0, "states"),
            metric("a_reduction", 3.0, "x"),
        ];
        let d = diff(&m, &m, &Thresholds::default());
        assert!(!d.regressed(), "{}", render(&d));
    }

    #[test]
    fn doubled_time_regresses() {
        let before = vec![metric("a_time", 100.0, "ms")];
        let after = vec![metric("a_time", 200.0, "ms")];
        let d = diff(&before, &after, &Thresholds::default());
        assert!(d.regressed());
        assert_eq!(d.regressions(), 1);
        assert!(render(&d).contains("REGRESSED"));
    }

    #[test]
    fn faster_time_and_better_reduction_pass() {
        let before = vec![
            metric("a_time", 100.0, "ms"),
            metric("a_reduction", 2.0, "x"),
        ];
        let after = vec![
            metric("a_time", 20.0, "ms"),
            metric("a_reduction", 4.0, "x"),
        ];
        assert!(!diff(&before, &after, &Thresholds::default()).regressed());
    }

    #[test]
    fn state_count_must_match_exactly() {
        let before = vec![metric("a_states", 5000.0, "states")];
        let after = vec![metric("a_states", 4999.0, "states")];
        assert!(diff(&before, &after, &Thresholds::default()).regressed());
    }

    #[test]
    fn parity_run_counts_stay_exact_in_both_directions() {
        // `off` is not a reduction marker: both shrinking and growing
        // the count regress, exactly as before.
        let before = vec![metric("mutex_m3_l3_off_t4_states", 5000.0, "states")];
        for fresh in [4999.0, 5001.0] {
            let after = vec![metric("mutex_m3_l3_off_t4_states", fresh, "states")];
            assert!(
                diff(&before, &after, &Thresholds::default()).regressed(),
                "off-mode count {fresh} must be exact-match"
            );
        }
    }

    #[test]
    fn reduced_run_counts_are_lower_better() {
        for name in [
            "mutex_m3_l3_full_t4_states",
            "consensus_n3_r2_registers_t4_edges",
            "mutex_m4_l3_por_t1_states",
        ] {
            let before = vec![metric(name, 5000.0, "states")];
            let tighter = vec![metric(name, 4000.0, "states")];
            let d = diff(&before, &tighter, &Thresholds::default());
            assert!(!d.regressed(), "tighter reduction flagged: {}", render(&d));
            let grown = vec![metric(name, 5001.0, "states")];
            assert!(
                diff(&before, &grown, &Thresholds::default()).regressed(),
                "{name}: grown count must regress"
            );
        }
    }

    #[test]
    fn reduced_marker_matches_segments_not_substrings() {
        // `fullness` contains `full` but is not the `full` segment.
        let before = vec![metric("queue_fullness_t4_states", 5000.0, "states")];
        let after = vec![metric("queue_fullness_t4_states", 4999.0, "states")];
        assert!(diff(&before, &after, &Thresholds::default()).regressed());
    }

    #[test]
    fn exact_counts_override_disables_lower_better() {
        let exact = Thresholds {
            reduced_markers: Vec::new(),
            ..Thresholds::default()
        };
        let before = vec![metric("mutex_m3_l3_full_t4_states", 5000.0, "states")];
        let after = vec![metric("mutex_m3_l3_full_t4_states", 4000.0, "states")];
        assert!(diff(&before, &after, &exact).regressed());
    }

    #[test]
    fn reduced_runs_keep_non_count_units_exact() {
        // Lower-better applies to states/edges only; a bool verdict on a
        // reduced run must still match exactly.
        let before = vec![metric("mutex_m3_l3_full_t4_parity", 1.0, "bool")];
        let after = vec![metric("mutex_m3_l3_full_t4_parity", 0.0, "bool")];
        assert!(diff(&before, &after, &Thresholds::default()).regressed());
    }

    #[test]
    fn missing_metric_gated_by_allow_missing() {
        let before = vec![metric("a_time", 100.0, "ms"), metric("b_time", 50.0, "ms")];
        let after = vec![metric("a_time", 100.0, "ms")];
        assert!(diff(&before, &after, &Thresholds::default()).regressed());
        let lenient = Thresholds {
            allow_missing: true,
            ..Thresholds::default()
        };
        assert!(!diff(&before, &after, &lenient).regressed());
    }

    #[test]
    fn require_floor_is_suffix_matched() {
        let after = vec![metric("consensus_n3_r2_full_t4_reduction", 2.5, "x")];
        let floor_ok = Thresholds {
            allow_missing: true,
            require: vec![("reduction".to_string(), 2.0)],
            ..Thresholds::default()
        };
        assert!(!diff(&[], &after, &floor_ok).regressed());
        let floor_high = Thresholds {
            allow_missing: true,
            require: vec![("reduction".to_string(), 3.0)],
            ..Thresholds::default()
        };
        assert!(diff(&[], &after, &floor_high).regressed());
        let floor_unmatched = Thresholds {
            allow_missing: true,
            require: vec![("no_such_metric".to_string(), 1.0)],
            ..Thresholds::default()
        };
        assert!(diff(&[], &after, &floor_unmatched).regressed());
    }

    #[test]
    fn roundtrips_through_benchjson_writer() {
        let written = to_jsonl(&[
            BenchMetric::new("E14", "consensus", "a_time".to_string(), 12.5, "ms"),
            BenchMetric::new("E14", "consensus", "a_speedup".to_string(), 1.8, "x"),
        ]);
        let parsed = parse_bench_jsonl(&written).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "a_time");
        assert_eq!(parsed[0].value, 12.5);
        assert_eq!(parsed[1].unit, "x");
    }

    #[test]
    fn malformed_line_is_an_error() {
        assert!(parse_bench_jsonl("{\"t\":\"bench\",").is_err());
        assert!(parse_bench_jsonl("{\"t\":\"bench\",\"experiment\":\"E1\"}").is_err());
    }
}
