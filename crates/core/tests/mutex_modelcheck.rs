//! Exhaustive model checking of the Figure 1 mutual exclusion algorithm —
//! the integration between `anonreg` and `anonreg-sim` that powers
//! experiment E1 (Theorems 3.1–3.3).

use anonreg::mutex::{AnonMutex, MutexEvent, Section};
use anonreg::{Pid, View};
use anonreg_sim::prelude::*;
use anonreg_sim::Simulation;

fn pid(n: u64) -> Pid {
    Pid::new(n).unwrap()
}

fn two_proc_sim(m: usize, view_a: View, view_b: View) -> Simulation<AnonMutex> {
    Simulation::builder()
        .process(AnonMutex::new(pid(1), m).unwrap(), view_a)
        .process(AnonMutex::new(pid(2), m).unwrap(), view_b)
        .build()
        .unwrap()
}

/// All rotations of the identity view — every "ring position" a process
/// could start from. (Full permutation coverage is exercised separately by
/// the property tests; rotations are the adversary used in the paper's
/// Theorem 3.4 construction.)
fn rotations(m: usize) -> Vec<View> {
    (0..m).map(|s| View::rotated(m, s)).collect()
}

fn both_in_cs(sim: &Simulation<AnonMutex>) -> bool {
    sim.machines()
        .filter(|mach| mach.section() == Section::Critical)
        .count()
        >= 2
}

#[test]
fn odd_m3_satisfies_mutual_exclusion_and_liveness_for_all_rotations() {
    for view_b in rotations(3) {
        let sim = two_proc_sim(3, View::identity(3), view_b.clone());
        let graph = Explorer::new(sim).run().unwrap();
        assert!(
            graph.find_state(both_in_cs).is_none(),
            "mutual exclusion violated for m=3, view_b={view_b}"
        );
        let livelock = graph.find_fair_livelock(
            |mach| mach.section() == Section::Entry,
            |event| *event == MutexEvent::Enter,
        );
        assert!(livelock.is_none(), "fair livelock for m=3, view_b={view_b}");
    }
}

#[test]
fn odd_m5_spot_check_is_safe_and_live() {
    // The m=5 full-rotation sweep lives in the E1 bench (release mode);
    // here the paper's worst adversary view — ring spacing ⌊m/2⌋ — is
    // checked exhaustively.
    let sim = two_proc_sim(5, View::rotated(5, 0), View::rotated(5, 2));
    let graph = Explorer::new(sim).run().unwrap();
    assert!(graph.find_state(both_in_cs).is_none());
    let livelock = graph.find_fair_livelock(
        |mach| mach.section() == Section::Entry,
        |event| *event == MutexEvent::Enter,
    );
    assert!(livelock.is_none());
}

#[test]
fn even_m_livelocks_under_the_ring_adversary() {
    // Theorem 3.1 (only-if direction): with an even number of registers the
    // ring adversary — same scan direction, initial registers m/2 apart —
    // admits a fair livelock. (m=6 is covered by the E1 bench; its state
    // space is ~2·10⁶.)
    for m in [2, 4] {
        let sim = two_proc_sim(m, View::rotated(m, 0), View::rotated(m, m / 2));
        let graph = Explorer::new(sim).run().unwrap();
        let livelock = graph.find_fair_livelock(
            |mach| mach.section() == Section::Entry,
            |event| *event == MutexEvent::Enter,
        );
        assert!(livelock.is_some(), "expected livelock for even m={m}");
    }
}

#[test]
fn even_m_still_satisfies_safety() {
    // Even m breaks deadlock-freedom, not mutual exclusion: the algorithm
    // never lets two processes into the critical section.
    for m in [2, 4] {
        for view_b in rotations(m) {
            let sim = two_proc_sim(m, View::identity(m), view_b.clone());
            let graph = Explorer::new(sim).run().unwrap();
            assert!(
                graph.find_state(both_in_cs).is_none(),
                "mutual exclusion violated for m={m}, view_b={view_b}"
            );
        }
    }
}

#[test]
fn three_processes_on_a_ring_starve_forever() {
    // Theorem 3.4 with ℓ = 3 | m = 3: three symmetric processes on a
    // divisible ring, run in lock step, preserve rotation symmetry forever
    // — so none of them can ever be the unique majority holder, and no one
    // enters the critical section. (The full (m, ℓ) sweep is experiment
    // E2.)
    let m = 3;
    let l = 3;
    let views = anonreg_sim::symmetry::ring_views(m, l).unwrap();
    let mut builder = Simulation::builder();
    for (k, view) in views.into_iter().enumerate() {
        builder = builder.process(AnonMutex::new(pid(k as u64 + 1), m).unwrap(), view);
    }
    let mut sim = builder.build().unwrap();
    let report = anonreg_sim::symmetry::run_lockstep_symmetric(&mut sim, l, 2_000);
    assert!(
        report.symmetric_throughout(),
        "symmetry broke: {:?}",
        report.first_break
    );
    let entries = sim
        .trace()
        .events()
        .filter(|(_, _, e)| **e == MutexEvent::Enter)
        .count();
    assert_eq!(entries, 0, "no process may enter under the ring adversary");
    // Everyone is still stuck in its entry section.
    assert!(sim.machines().all(|mach| mach.section() == Section::Entry));
}

#[test]
fn abortable_entries_preserve_safety_everywhere() {
    // try-lock configurations: one or both processes auto-abort after a
    // failed round. Whatever the mix, mutual exclusion must hold in every
    // reachable state — aborting is just the algorithm's own lose path.
    for m in [3usize, 4] {
        for aborters in [[true, false], [false, true], [true, true]] {
            let mut builder = Simulation::builder();
            for (i, &aborts) in aborters.iter().enumerate() {
                let mut machine = AnonMutex::new(pid(i as u64 + 1), m).unwrap();
                if aborts {
                    machine = machine.with_abort_after(1);
                }
                builder = builder.process(machine, View::rotated(m, i * (m / 2)));
            }
            let sim = builder.build().unwrap();
            let graph = Explorer::new(sim)
                .max_states(6_000_000)
                .crashes(false)
                .run()
                .unwrap();
            assert!(
                graph.find_state(both_in_cs).is_none(),
                "m={m} aborters={aborters:?}"
            );
        }
    }
}

#[test]
fn one_abortable_one_persistent_is_still_live() {
    // A persistent process competing against a try-locker must not starve
    // forever with nobody entering: no fair livelock exists. (Two
    // try-lockers CAN livelock each other — the usual try-lock caveat —
    // which is why deadlock-freedom is only claimed for this mix.)
    let m = 3;
    let sim = Simulation::builder()
        .process(
            AnonMutex::new(pid(1), m).unwrap().with_abort_after(1),
            View::identity(m),
        )
        .process(AnonMutex::new(pid(2), m).unwrap(), View::rotated(m, 1))
        .build()
        .unwrap();
    let graph = Explorer::new(sim).run().unwrap();
    let livelock = graph.find_fair_livelock(
        |mach| mach.section() == Section::Entry,
        |event| *event == MutexEvent::Enter,
    );
    assert!(livelock.is_none());
}

#[test]
fn counterexample_schedules_replay() {
    // The livelock's states must be reachable; replay the schedule to one
    // of them and confirm the configuration matches.
    let m = 4;
    let build = || two_proc_sim(m, View::rotated(m, 0), View::rotated(m, m / 2));
    let graph = Explorer::new(build()).run().unwrap();
    let livelock = graph
        .find_fair_livelock(
            |mach| mach.section() == Section::Entry,
            |event| *event == MutexEvent::Enter,
        )
        .expect("even m livelocks");
    let target = livelock[0];
    let schedule = graph.schedule_to(target);
    let mut sim = build();
    for &p in &schedule {
        sim.step(p).unwrap();
    }
    assert_eq!(sim.registers(), graph.state(target).registers());
}
